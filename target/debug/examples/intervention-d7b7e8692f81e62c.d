/root/repo/target/debug/examples/intervention-d7b7e8692f81e62c.d: examples/intervention.rs

/root/repo/target/debug/examples/libintervention-d7b7e8692f81e62c.rmeta: examples/intervention.rs

examples/intervention.rs:
