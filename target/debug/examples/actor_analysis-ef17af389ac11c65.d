/root/repo/target/debug/examples/actor_analysis-ef17af389ac11c65.d: examples/actor_analysis.rs

/root/repo/target/debug/examples/actor_analysis-ef17af389ac11c65: examples/actor_analysis.rs

examples/actor_analysis.rs:
