/root/repo/target/debug/examples/safety_pipeline-5f6dd4d328f1f52c.d: examples/safety_pipeline.rs

/root/repo/target/debug/examples/safety_pipeline-5f6dd4d328f1f52c: examples/safety_pipeline.rs

examples/safety_pipeline.rs:
