/root/repo/target/debug/examples/dataset_release-601078fb2c6e05b3.d: examples/dataset_release.rs

/root/repo/target/debug/examples/dataset_release-601078fb2c6e05b3: examples/dataset_release.rs

examples/dataset_release.rs:
