/root/repo/target/debug/examples/financial_profits-a65d0916af5bb08a.d: examples/financial_profits.rs

/root/repo/target/debug/examples/financial_profits-a65d0916af5bb08a: examples/financial_profits.rs

examples/financial_profits.rs:
