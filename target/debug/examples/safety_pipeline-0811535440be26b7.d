/root/repo/target/debug/examples/safety_pipeline-0811535440be26b7.d: examples/safety_pipeline.rs

/root/repo/target/debug/examples/libsafety_pipeline-0811535440be26b7.rmeta: examples/safety_pipeline.rs

examples/safety_pipeline.rs:
