/root/repo/target/debug/examples/dataset_release-a254fb0cd4a26e8e.d: examples/dataset_release.rs Cargo.toml

/root/repo/target/debug/examples/libdataset_release-a254fb0cd4a26e8e.rmeta: examples/dataset_release.rs Cargo.toml

examples/dataset_release.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
