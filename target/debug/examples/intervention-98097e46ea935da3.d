/root/repo/target/debug/examples/intervention-98097e46ea935da3.d: examples/intervention.rs

/root/repo/target/debug/examples/intervention-98097e46ea935da3: examples/intervention.rs

examples/intervention.rs:
