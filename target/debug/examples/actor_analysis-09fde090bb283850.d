/root/repo/target/debug/examples/actor_analysis-09fde090bb283850.d: examples/actor_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libactor_analysis-09fde090bb283850.rmeta: examples/actor_analysis.rs Cargo.toml

examples/actor_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
