/root/repo/target/debug/examples/actor_analysis-5773bf7acfb872f3.d: examples/actor_analysis.rs

/root/repo/target/debug/examples/libactor_analysis-5773bf7acfb872f3.rmeta: examples/actor_analysis.rs

examples/actor_analysis.rs:
