/root/repo/target/debug/examples/financial_profits-b711ed6306ed1143.d: examples/financial_profits.rs

/root/repo/target/debug/examples/libfinancial_profits-b711ed6306ed1143.rmeta: examples/financial_profits.rs

examples/financial_profits.rs:
