/root/repo/target/debug/examples/quickstart-96af7ffe15228b65.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-96af7ffe15228b65.rmeta: examples/quickstart.rs

examples/quickstart.rs:
