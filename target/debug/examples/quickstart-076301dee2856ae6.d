/root/repo/target/debug/examples/quickstart-076301dee2856ae6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-076301dee2856ae6: examples/quickstart.rs

examples/quickstart.rs:
