/root/repo/target/debug/examples/image_provenance-d8490577bf2538e5.d: examples/image_provenance.rs

/root/repo/target/debug/examples/libimage_provenance-d8490577bf2538e5.rmeta: examples/image_provenance.rs

examples/image_provenance.rs:
