/root/repo/target/debug/examples/quickstart-bc275651793ba39a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-bc275651793ba39a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
