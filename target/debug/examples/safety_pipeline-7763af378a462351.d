/root/repo/target/debug/examples/safety_pipeline-7763af378a462351.d: examples/safety_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libsafety_pipeline-7763af378a462351.rmeta: examples/safety_pipeline.rs Cargo.toml

examples/safety_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
