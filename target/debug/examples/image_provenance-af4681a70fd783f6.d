/root/repo/target/debug/examples/image_provenance-af4681a70fd783f6.d: examples/image_provenance.rs

/root/repo/target/debug/examples/image_provenance-af4681a70fd783f6: examples/image_provenance.rs

examples/image_provenance.rs:
