/root/repo/target/debug/examples/intervention-7d1d8410af6f0af5.d: examples/intervention.rs Cargo.toml

/root/repo/target/debug/examples/libintervention-7d1d8410af6f0af5.rmeta: examples/intervention.rs Cargo.toml

examples/intervention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
