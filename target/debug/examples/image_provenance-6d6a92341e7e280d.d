/root/repo/target/debug/examples/image_provenance-6d6a92341e7e280d.d: examples/image_provenance.rs Cargo.toml

/root/repo/target/debug/examples/libimage_provenance-6d6a92341e7e280d.rmeta: examples/image_provenance.rs Cargo.toml

examples/image_provenance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
