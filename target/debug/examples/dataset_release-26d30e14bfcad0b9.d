/root/repo/target/debug/examples/dataset_release-26d30e14bfcad0b9.d: examples/dataset_release.rs

/root/repo/target/debug/examples/libdataset_release-26d30e14bfcad0b9.rmeta: examples/dataset_release.rs

examples/dataset_release.rs:
