/root/repo/target/debug/examples/financial_profits-25109da978be7304.d: examples/financial_profits.rs Cargo.toml

/root/repo/target/debug/examples/libfinancial_profits-25109da978be7304.rmeta: examples/financial_profits.rs Cargo.toml

examples/financial_profits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
