/root/repo/target/debug/deps/world_invariants-4d7be0e21ded0a7b.d: tests/world_invariants.rs

/root/repo/target/debug/deps/libworld_invariants-4d7be0e21ded0a7b.rmeta: tests/world_invariants.rs

tests/world_invariants.rs:
