/root/repo/target/debug/deps/socgraph-42da7b2eb0963e11.d: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs Cargo.toml

/root/repo/target/debug/deps/libsocgraph-42da7b2eb0963e11.rmeta: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs Cargo.toml

crates/socgraph/src/lib.rs:
crates/socgraph/src/centrality.rs:
crates/socgraph/src/graph.rs:
crates/socgraph/src/hindex.rs:
crates/socgraph/src/pagerank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
