/root/repo/target/debug/deps/synthrand-bed988ebab746c85.d: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs

/root/repo/target/debug/deps/libsynthrand-bed988ebab746c85.rmeta: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs

crates/synthrand/src/lib.rs:
crates/synthrand/src/dist.rs:
crates/synthrand/src/seed.rs:
crates/synthrand/src/time.rs:
crates/synthrand/src/weighted.rs:
crates/synthrand/src/zipf.rs:
