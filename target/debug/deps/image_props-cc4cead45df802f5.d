/root/repo/target/debug/deps/image_props-cc4cead45df802f5.d: crates/imagesim/tests/image_props.rs Cargo.toml

/root/repo/target/debug/deps/libimage_props-cc4cead45df802f5.rmeta: crates/imagesim/tests/image_props.rs Cargo.toml

crates/imagesim/tests/image_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
