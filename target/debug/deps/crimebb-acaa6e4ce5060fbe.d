/root/repo/target/debug/deps/crimebb-acaa6e4ce5060fbe.d: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs Cargo.toml

/root/repo/target/debug/deps/libcrimebb-acaa6e4ce5060fbe.rmeta: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs Cargo.toml

crates/crimebb/src/lib.rs:
crates/crimebb/src/corpus.rs:
crates/crimebb/src/export.rs:
crates/crimebb/src/ids.rs:
crates/crimebb/src/model.rs:
crates/crimebb/src/query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
