/root/repo/target/debug/deps/safety-3447989aaf8f5478.d: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs

/root/repo/target/debug/deps/libsafety-3447989aaf8f5478.rmeta: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs

crates/safety/src/lib.rs:
crates/safety/src/gate.rs:
crates/safety/src/hashlist.rs:
crates/safety/src/report.rs:
