/root/repo/target/debug/deps/textkit-69c278318c72680c.d: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs Cargo.toml

/root/repo/target/debug/deps/libtextkit-69c278318c72680c.rmeta: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs Cargo.toml

crates/textkit/src/lib.rs:
crates/textkit/src/dtm.rs:
crates/textkit/src/hw.rs:
crates/textkit/src/lexicon.rs:
crates/textkit/src/tokenize.rs:
crates/textkit/src/url.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
