/root/repo/target/debug/deps/report-3901b92517cc4619.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-3901b92517cc4619.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
