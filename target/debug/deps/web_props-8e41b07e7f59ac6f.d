/root/repo/target/debug/deps/web_props-8e41b07e7f59ac6f.d: crates/websim/tests/web_props.rs

/root/repo/target/debug/deps/web_props-8e41b07e7f59ac6f: crates/websim/tests/web_props.rs

crates/websim/tests/web_props.rs:
