/root/repo/target/debug/deps/imagesim-9b40ee9d1955fafa.d: crates/imagesim/src/lib.rs crates/imagesim/src/bitmap.rs crates/imagesim/src/hash.rs crates/imagesim/src/nsfw.rs crates/imagesim/src/ocr.rs crates/imagesim/src/spec.rs crates/imagesim/src/transform.rs crates/imagesim/src/validation.rs Cargo.toml

/root/repo/target/debug/deps/libimagesim-9b40ee9d1955fafa.rmeta: crates/imagesim/src/lib.rs crates/imagesim/src/bitmap.rs crates/imagesim/src/hash.rs crates/imagesim/src/nsfw.rs crates/imagesim/src/ocr.rs crates/imagesim/src/spec.rs crates/imagesim/src/transform.rs crates/imagesim/src/validation.rs Cargo.toml

crates/imagesim/src/lib.rs:
crates/imagesim/src/bitmap.rs:
crates/imagesim/src/hash.rs:
crates/imagesim/src/nsfw.rs:
crates/imagesim/src/ocr.rs:
crates/imagesim/src/spec.rs:
crates/imagesim/src/transform.rs:
crates/imagesim/src/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
