/root/repo/target/debug/deps/linsvm-e0b40cd9b3a65036.d: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs Cargo.toml

/root/repo/target/debug/deps/liblinsvm-e0b40cd9b3a65036.rmeta: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs Cargo.toml

crates/linsvm/src/lib.rs:
crates/linsvm/src/logreg.rs:
crates/linsvm/src/metrics.rs:
crates/linsvm/src/nbayes.rs:
crates/linsvm/src/sparse.rs:
crates/linsvm/src/split.rs:
crates/linsvm/src/svm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
