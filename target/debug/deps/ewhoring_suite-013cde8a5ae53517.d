/root/repo/target/debug/deps/ewhoring_suite-013cde8a5ae53517.d: src/suite.rs

/root/repo/target/debug/deps/libewhoring_suite-013cde8a5ae53517.rmeta: src/suite.rs

src/suite.rs:
