/root/repo/target/debug/deps/parking_lot-98717f2919ddcc7a.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-98717f2919ddcc7a.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
