/root/repo/target/debug/deps/websim-23daa059d9626204.d: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs

/root/repo/target/debug/deps/libwebsim-23daa059d9626204.rlib: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs

/root/repo/target/debug/deps/libwebsim-23daa059d9626204.rmeta: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs

crates/websim/src/lib.rs:
crates/websim/src/domains.rs:
crates/websim/src/sites.rs:
crates/websim/src/store.rs:
