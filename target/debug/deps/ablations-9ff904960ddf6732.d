/root/repo/target/debug/deps/ablations-9ff904960ddf6732.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-9ff904960ddf6732.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
