/root/repo/target/debug/deps/textkit-ba8683c4b36f0908.d: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs Cargo.toml

/root/repo/target/debug/deps/libtextkit-ba8683c4b36f0908.rmeta: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs Cargo.toml

crates/textkit/src/lib.rs:
crates/textkit/src/dtm.rs:
crates/textkit/src/hw.rs:
crates/textkit/src/lexicon.rs:
crates/textkit/src/tokenize.rs:
crates/textkit/src/url.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
