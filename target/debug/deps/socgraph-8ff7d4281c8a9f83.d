/root/repo/target/debug/deps/socgraph-8ff7d4281c8a9f83.d: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs

/root/repo/target/debug/deps/libsocgraph-8ff7d4281c8a9f83.rlib: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs

/root/repo/target/debug/deps/libsocgraph-8ff7d4281c8a9f83.rmeta: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs

crates/socgraph/src/lib.rs:
crates/socgraph/src/centrality.rs:
crates/socgraph/src/graph.rs:
crates/socgraph/src/hindex.rs:
crates/socgraph/src/pagerank.rs:
