/root/repo/target/debug/deps/bytes-68f59ea845a94ff4.d: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-68f59ea845a94ff4.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
