/root/repo/target/debug/deps/socgraph-7d47504e42a90c0c.d: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs

/root/repo/target/debug/deps/libsocgraph-7d47504e42a90c0c.rmeta: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs

crates/socgraph/src/lib.rs:
crates/socgraph/src/centrality.rs:
crates/socgraph/src/graph.rs:
crates/socgraph/src/hindex.rs:
crates/socgraph/src/pagerank.rs:
