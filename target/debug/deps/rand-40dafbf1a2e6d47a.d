/root/repo/target/debug/deps/rand-40dafbf1a2e6d47a.d: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-40dafbf1a2e6d47a.rlib: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-40dafbf1a2e6d47a.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
