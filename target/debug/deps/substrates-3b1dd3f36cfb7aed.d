/root/repo/target/debug/deps/substrates-3b1dd3f36cfb7aed.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-3b1dd3f36cfb7aed.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
