/root/repo/target/debug/deps/imagesim-6cd12b9c21de3dbf.d: crates/imagesim/src/lib.rs crates/imagesim/src/bitmap.rs crates/imagesim/src/hash.rs crates/imagesim/src/nsfw.rs crates/imagesim/src/ocr.rs crates/imagesim/src/spec.rs crates/imagesim/src/transform.rs crates/imagesim/src/validation.rs

/root/repo/target/debug/deps/imagesim-6cd12b9c21de3dbf: crates/imagesim/src/lib.rs crates/imagesim/src/bitmap.rs crates/imagesim/src/hash.rs crates/imagesim/src/nsfw.rs crates/imagesim/src/ocr.rs crates/imagesim/src/spec.rs crates/imagesim/src/transform.rs crates/imagesim/src/validation.rs

crates/imagesim/src/lib.rs:
crates/imagesim/src/bitmap.rs:
crates/imagesim/src/hash.rs:
crates/imagesim/src/nsfw.rs:
crates/imagesim/src/ocr.rs:
crates/imagesim/src/spec.rs:
crates/imagesim/src/transform.rs:
crates/imagesim/src/validation.rs:
