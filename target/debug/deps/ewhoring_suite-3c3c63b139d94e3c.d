/root/repo/target/debug/deps/ewhoring_suite-3c3c63b139d94e3c.d: src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libewhoring_suite-3c3c63b139d94e3c.rmeta: src/suite.rs Cargo.toml

src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
