/root/repo/target/debug/deps/builder_props-65be2596673afa07.d: crates/crimebb/tests/builder_props.rs

/root/repo/target/debug/deps/builder_props-65be2596673afa07: crates/crimebb/tests/builder_props.rs

crates/crimebb/tests/builder_props.rs:
