/root/repo/target/debug/deps/pipeline-4a91314f99d20549.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-4a91314f99d20549.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
