/root/repo/target/debug/deps/criterion-e93f20c2c5f566e6.d: .stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e93f20c2c5f566e6.rmeta: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
