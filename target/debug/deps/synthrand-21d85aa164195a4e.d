/root/repo/target/debug/deps/synthrand-21d85aa164195a4e.d: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs

/root/repo/target/debug/deps/synthrand-21d85aa164195a4e: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs

crates/synthrand/src/lib.rs:
crates/synthrand/src/dist.rs:
crates/synthrand/src/seed.rs:
crates/synthrand/src/time.rs:
crates/synthrand/src/weighted.rs:
crates/synthrand/src/zipf.rs:
