/root/repo/target/debug/deps/websim-1499f6ad2a281c34.d: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs

/root/repo/target/debug/deps/websim-1499f6ad2a281c34: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs

crates/websim/src/lib.rs:
crates/websim/src/domains.rs:
crates/websim/src/sites.rs:
crates/websim/src/store.rs:
