/root/repo/target/debug/deps/substrate_props-5e0e65ec5ab1170a.d: tests/substrate_props.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_props-5e0e65ec5ab1170a.rmeta: tests/substrate_props.rs Cargo.toml

tests/substrate_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
