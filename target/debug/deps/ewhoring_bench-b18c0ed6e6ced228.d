/root/repo/target/debug/deps/ewhoring_bench-b18c0ed6e6ced228.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libewhoring_bench-b18c0ed6e6ced228.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
