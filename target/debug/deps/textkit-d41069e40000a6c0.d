/root/repo/target/debug/deps/textkit-d41069e40000a6c0.d: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs

/root/repo/target/debug/deps/libtextkit-d41069e40000a6c0.rlib: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs

/root/repo/target/debug/deps/libtextkit-d41069e40000a6c0.rmeta: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs

crates/textkit/src/lib.rs:
crates/textkit/src/dtm.rs:
crates/textkit/src/hw.rs:
crates/textkit/src/lexicon.rs:
crates/textkit/src/tokenize.rs:
crates/textkit/src/url.rs:
