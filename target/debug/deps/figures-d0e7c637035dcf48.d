/root/repo/target/debug/deps/figures-d0e7c637035dcf48.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-d0e7c637035dcf48.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
