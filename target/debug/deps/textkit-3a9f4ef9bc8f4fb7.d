/root/repo/target/debug/deps/textkit-3a9f4ef9bc8f4fb7.d: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs

/root/repo/target/debug/deps/libtextkit-3a9f4ef9bc8f4fb7.rmeta: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs

crates/textkit/src/lib.rs:
crates/textkit/src/dtm.rs:
crates/textkit/src/hw.rs:
crates/textkit/src/lexicon.rs:
crates/textkit/src/tokenize.rs:
crates/textkit/src/url.rs:
