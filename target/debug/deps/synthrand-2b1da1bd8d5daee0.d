/root/repo/target/debug/deps/synthrand-2b1da1bd8d5daee0.d: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs

/root/repo/target/debug/deps/libsynthrand-2b1da1bd8d5daee0.rlib: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs

/root/repo/target/debug/deps/libsynthrand-2b1da1bd8d5daee0.rmeta: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs

crates/synthrand/src/lib.rs:
crates/synthrand/src/dist.rs:
crates/synthrand/src/seed.rs:
crates/synthrand/src/time.rs:
crates/synthrand/src/weighted.rs:
crates/synthrand/src/zipf.rs:
