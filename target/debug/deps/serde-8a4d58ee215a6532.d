/root/repo/target/debug/deps/serde-8a4d58ee215a6532.d: .stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-8a4d58ee215a6532.rlib: .stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-8a4d58ee215a6532.rmeta: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
