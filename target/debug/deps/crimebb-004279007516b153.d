/root/repo/target/debug/deps/crimebb-004279007516b153.d: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs

/root/repo/target/debug/deps/libcrimebb-004279007516b153.rmeta: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs

crates/crimebb/src/lib.rs:
crates/crimebb/src/corpus.rs:
crates/crimebb/src/export.rs:
crates/crimebb/src/ids.rs:
crates/crimebb/src/model.rs:
crates/crimebb/src/query.rs:
