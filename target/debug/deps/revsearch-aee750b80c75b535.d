/root/repo/target/debug/deps/revsearch-aee750b80c75b535.d: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs Cargo.toml

/root/repo/target/debug/deps/librevsearch-aee750b80c75b535.rmeta: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs Cargo.toml

crates/revsearch/src/lib.rs:
crates/revsearch/src/domaincls.rs:
crates/revsearch/src/index.rs:
crates/revsearch/src/wayback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
