/root/repo/target/debug/deps/ewhoring_bench-f4adcf3e249b2626.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libewhoring_bench-f4adcf3e249b2626.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
