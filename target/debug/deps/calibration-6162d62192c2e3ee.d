/root/repo/target/debug/deps/calibration-6162d62192c2e3ee.d: tests/calibration.rs

/root/repo/target/debug/deps/libcalibration-6162d62192c2e3ee.rmeta: tests/calibration.rs

tests/calibration.rs:
