/root/repo/target/debug/deps/safety-1354704a7dad84d6.d: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs

/root/repo/target/debug/deps/libsafety-1354704a7dad84d6.rmeta: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs

crates/safety/src/lib.rs:
crates/safety/src/gate.rs:
crates/safety/src/hashlist.rs:
crates/safety/src/report.rs:
