/root/repo/target/debug/deps/crossbeam-e308694dfced11f5.d: .stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-e308694dfced11f5.rmeta: .stubs/crossbeam/src/lib.rs

.stubs/crossbeam/src/lib.rs:
