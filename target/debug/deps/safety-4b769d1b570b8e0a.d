/root/repo/target/debug/deps/safety-4b769d1b570b8e0a.d: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs

/root/repo/target/debug/deps/safety-4b769d1b570b8e0a: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs

crates/safety/src/lib.rs:
crates/safety/src/gate.rs:
crates/safety/src/hashlist.rs:
crates/safety/src/report.rs:
