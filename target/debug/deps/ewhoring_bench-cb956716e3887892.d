/root/repo/target/debug/deps/ewhoring_bench-cb956716e3887892.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ewhoring_bench-cb956716e3887892: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
