/root/repo/target/debug/deps/linsvm-2df76bb9e52fc315.d: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs Cargo.toml

/root/repo/target/debug/deps/liblinsvm-2df76bb9e52fc315.rmeta: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs Cargo.toml

crates/linsvm/src/lib.rs:
crates/linsvm/src/logreg.rs:
crates/linsvm/src/metrics.rs:
crates/linsvm/src/nbayes.rs:
crates/linsvm/src/sparse.rs:
crates/linsvm/src/split.rs:
crates/linsvm/src/svm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
