/root/repo/target/debug/deps/ewhoring_bench-01958888cb5c5d9a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libewhoring_bench-01958888cb5c5d9a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
