/root/repo/target/debug/deps/pipeline-6415f4a962fdd229.d: crates/bench/benches/pipeline.rs

/root/repo/target/debug/deps/libpipeline-6415f4a962fdd229.rmeta: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
