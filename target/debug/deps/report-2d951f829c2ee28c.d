/root/repo/target/debug/deps/report-2d951f829c2ee28c.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-2d951f829c2ee28c: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
