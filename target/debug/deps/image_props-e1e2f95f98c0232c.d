/root/repo/target/debug/deps/image_props-e1e2f95f98c0232c.d: crates/imagesim/tests/image_props.rs

/root/repo/target/debug/deps/libimage_props-e1e2f95f98c0232c.rmeta: crates/imagesim/tests/image_props.rs

crates/imagesim/tests/image_props.rs:
