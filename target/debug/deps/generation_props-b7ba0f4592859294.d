/root/repo/target/debug/deps/generation_props-b7ba0f4592859294.d: crates/worldgen/tests/generation_props.rs

/root/repo/target/debug/deps/libgeneration_props-b7ba0f4592859294.rmeta: crates/worldgen/tests/generation_props.rs

crates/worldgen/tests/generation_props.rs:
