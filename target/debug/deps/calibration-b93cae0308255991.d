/root/repo/target/debug/deps/calibration-b93cae0308255991.d: tests/calibration.rs

/root/repo/target/debug/deps/calibration-b93cae0308255991: tests/calibration.rs

tests/calibration.rs:
