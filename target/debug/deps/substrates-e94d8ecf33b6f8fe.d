/root/repo/target/debug/deps/substrates-e94d8ecf33b6f8fe.d: crates/bench/benches/substrates.rs

/root/repo/target/debug/deps/libsubstrates-e94d8ecf33b6f8fe.rmeta: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:
