/root/repo/target/debug/deps/worldgen-1252c0e23da7a234.d: crates/worldgen/src/lib.rs crates/worldgen/src/actors.rs crates/worldgen/src/config.rs crates/worldgen/src/finance.rs crates/worldgen/src/fx.rs crates/worldgen/src/headings.rs crates/worldgen/src/packs.rs crates/worldgen/src/threads.rs crates/worldgen/src/truth.rs crates/worldgen/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libworldgen-1252c0e23da7a234.rmeta: crates/worldgen/src/lib.rs crates/worldgen/src/actors.rs crates/worldgen/src/config.rs crates/worldgen/src/finance.rs crates/worldgen/src/fx.rs crates/worldgen/src/headings.rs crates/worldgen/src/packs.rs crates/worldgen/src/threads.rs crates/worldgen/src/truth.rs crates/worldgen/src/world.rs Cargo.toml

crates/worldgen/src/lib.rs:
crates/worldgen/src/actors.rs:
crates/worldgen/src/config.rs:
crates/worldgen/src/finance.rs:
crates/worldgen/src/fx.rs:
crates/worldgen/src/headings.rs:
crates/worldgen/src/packs.rs:
crates/worldgen/src/threads.rs:
crates/worldgen/src/truth.rs:
crates/worldgen/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
