/root/repo/target/debug/deps/search_props-e3d71d31590a1535.d: crates/revsearch/tests/search_props.rs

/root/repo/target/debug/deps/libsearch_props-e3d71d31590a1535.rmeta: crates/revsearch/tests/search_props.rs

crates/revsearch/tests/search_props.rs:
