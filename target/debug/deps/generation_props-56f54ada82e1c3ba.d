/root/repo/target/debug/deps/generation_props-56f54ada82e1c3ba.d: crates/worldgen/tests/generation_props.rs

/root/repo/target/debug/deps/generation_props-56f54ada82e1c3ba: crates/worldgen/tests/generation_props.rs

crates/worldgen/tests/generation_props.rs:
