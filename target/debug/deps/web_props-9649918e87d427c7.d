/root/repo/target/debug/deps/web_props-9649918e87d427c7.d: crates/websim/tests/web_props.rs Cargo.toml

/root/repo/target/debug/deps/libweb_props-9649918e87d427c7.rmeta: crates/websim/tests/web_props.rs Cargo.toml

crates/websim/tests/web_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
