/root/repo/target/debug/deps/synthrand-ea158fdb7c971ee9.d: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libsynthrand-ea158fdb7c971ee9.rmeta: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs Cargo.toml

crates/synthrand/src/lib.rs:
crates/synthrand/src/dist.rs:
crates/synthrand/src/seed.rs:
crates/synthrand/src/time.rs:
crates/synthrand/src/weighted.rs:
crates/synthrand/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
