/root/repo/target/debug/deps/revsearch-a660f313cc79c8e6.d: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs

/root/repo/target/debug/deps/librevsearch-a660f313cc79c8e6.rmeta: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs

crates/revsearch/src/lib.rs:
crates/revsearch/src/domaincls.rs:
crates/revsearch/src/index.rs:
crates/revsearch/src/wayback.rs:
