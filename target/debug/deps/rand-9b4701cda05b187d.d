/root/repo/target/debug/deps/rand-9b4701cda05b187d.d: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-9b4701cda05b187d.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
