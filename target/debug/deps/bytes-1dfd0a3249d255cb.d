/root/repo/target/debug/deps/bytes-1dfd0a3249d255cb.d: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-1dfd0a3249d255cb.rlib: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-1dfd0a3249d255cb.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
