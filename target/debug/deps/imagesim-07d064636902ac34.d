/root/repo/target/debug/deps/imagesim-07d064636902ac34.d: crates/imagesim/src/lib.rs crates/imagesim/src/bitmap.rs crates/imagesim/src/hash.rs crates/imagesim/src/nsfw.rs crates/imagesim/src/ocr.rs crates/imagesim/src/spec.rs crates/imagesim/src/transform.rs crates/imagesim/src/validation.rs Cargo.toml

/root/repo/target/debug/deps/libimagesim-07d064636902ac34.rmeta: crates/imagesim/src/lib.rs crates/imagesim/src/bitmap.rs crates/imagesim/src/hash.rs crates/imagesim/src/nsfw.rs crates/imagesim/src/ocr.rs crates/imagesim/src/spec.rs crates/imagesim/src/transform.rs crates/imagesim/src/validation.rs Cargo.toml

crates/imagesim/src/lib.rs:
crates/imagesim/src/bitmap.rs:
crates/imagesim/src/hash.rs:
crates/imagesim/src/nsfw.rs:
crates/imagesim/src/ocr.rs:
crates/imagesim/src/spec.rs:
crates/imagesim/src/transform.rs:
crates/imagesim/src/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
