/root/repo/target/debug/deps/safety-18f6eb8d7ad85156.d: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libsafety-18f6eb8d7ad85156.rmeta: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs Cargo.toml

crates/safety/src/lib.rs:
crates/safety/src/gate.rs:
crates/safety/src/hashlist.rs:
crates/safety/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
