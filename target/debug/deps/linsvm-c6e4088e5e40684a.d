/root/repo/target/debug/deps/linsvm-c6e4088e5e40684a.d: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs

/root/repo/target/debug/deps/liblinsvm-c6e4088e5e40684a.rmeta: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs

crates/linsvm/src/lib.rs:
crates/linsvm/src/logreg.rs:
crates/linsvm/src/metrics.rs:
crates/linsvm/src/nbayes.rs:
crates/linsvm/src/sparse.rs:
crates/linsvm/src/split.rs:
crates/linsvm/src/svm.rs:
