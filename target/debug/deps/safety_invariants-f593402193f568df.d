/root/repo/target/debug/deps/safety_invariants-f593402193f568df.d: tests/safety_invariants.rs

/root/repo/target/debug/deps/safety_invariants-f593402193f568df: tests/safety_invariants.rs

tests/safety_invariants.rs:
