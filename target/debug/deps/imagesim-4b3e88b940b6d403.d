/root/repo/target/debug/deps/imagesim-4b3e88b940b6d403.d: crates/imagesim/src/lib.rs crates/imagesim/src/bitmap.rs crates/imagesim/src/hash.rs crates/imagesim/src/nsfw.rs crates/imagesim/src/ocr.rs crates/imagesim/src/spec.rs crates/imagesim/src/transform.rs crates/imagesim/src/validation.rs

/root/repo/target/debug/deps/libimagesim-4b3e88b940b6d403.rmeta: crates/imagesim/src/lib.rs crates/imagesim/src/bitmap.rs crates/imagesim/src/hash.rs crates/imagesim/src/nsfw.rs crates/imagesim/src/ocr.rs crates/imagesim/src/spec.rs crates/imagesim/src/transform.rs crates/imagesim/src/validation.rs

crates/imagesim/src/lib.rs:
crates/imagesim/src/bitmap.rs:
crates/imagesim/src/hash.rs:
crates/imagesim/src/nsfw.rs:
crates/imagesim/src/ocr.rs:
crates/imagesim/src/spec.rs:
crates/imagesim/src/transform.rs:
crates/imagesim/src/validation.rs:
