/root/repo/target/debug/deps/end_to_end-56e9d4ffc751465c.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-56e9d4ffc751465c.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
