/root/repo/target/debug/deps/parking_lot-f1b4f505c5c125f6.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-f1b4f505c5c125f6.rlib: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-f1b4f505c5c125f6.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
