/root/repo/target/debug/deps/image_props-da9ac970e25ead89.d: crates/imagesim/tests/image_props.rs

/root/repo/target/debug/deps/image_props-da9ac970e25ead89: crates/imagesim/tests/image_props.rs

crates/imagesim/tests/image_props.rs:
