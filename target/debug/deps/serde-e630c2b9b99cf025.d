/root/repo/target/debug/deps/serde-e630c2b9b99cf025.d: .stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e630c2b9b99cf025.rmeta: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
