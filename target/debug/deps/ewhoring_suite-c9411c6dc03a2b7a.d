/root/repo/target/debug/deps/ewhoring_suite-c9411c6dc03a2b7a.d: src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libewhoring_suite-c9411c6dc03a2b7a.rmeta: src/suite.rs Cargo.toml

src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
