/root/repo/target/debug/deps/safety-853bd2fc57226c06.d: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs

/root/repo/target/debug/deps/libsafety-853bd2fc57226c06.rlib: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs

/root/repo/target/debug/deps/libsafety-853bd2fc57226c06.rmeta: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs

crates/safety/src/lib.rs:
crates/safety/src/gate.rs:
crates/safety/src/hashlist.rs:
crates/safety/src/report.rs:
