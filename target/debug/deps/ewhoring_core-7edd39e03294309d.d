/root/repo/target/debug/deps/ewhoring_core-7edd39e03294309d.d: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/crawl.rs crates/core/src/extract.rs crates/core/src/features.rs crates/core/src/finance.rs crates/core/src/intervention.rs crates/core/src/nsfv.rs crates/core/src/pipeline/mod.rs crates/core/src/pipeline/ctx.rs crates/core/src/pipeline/stages/mod.rs crates/core/src/pipeline/stages/actors.rs crates/core/src/pipeline/stages/crawl.rs crates/core/src/pipeline/stages/extract.rs crates/core/src/pipeline/stages/finance.rs crates/core/src/pipeline/stages/measure.rs crates/core/src/pipeline/stages/nsfv.rs crates/core/src/pipeline/stages/provenance.rs crates/core/src/pipeline/stages/safety.rs crates/core/src/pipeline/stages/topcls.rs crates/core/src/provenance.rs crates/core/src/report.rs crates/core/src/safety_stage.rs crates/core/src/topcls.rs

/root/repo/target/debug/deps/libewhoring_core-7edd39e03294309d.rmeta: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/crawl.rs crates/core/src/extract.rs crates/core/src/features.rs crates/core/src/finance.rs crates/core/src/intervention.rs crates/core/src/nsfv.rs crates/core/src/pipeline/mod.rs crates/core/src/pipeline/ctx.rs crates/core/src/pipeline/stages/mod.rs crates/core/src/pipeline/stages/actors.rs crates/core/src/pipeline/stages/crawl.rs crates/core/src/pipeline/stages/extract.rs crates/core/src/pipeline/stages/finance.rs crates/core/src/pipeline/stages/measure.rs crates/core/src/pipeline/stages/nsfv.rs crates/core/src/pipeline/stages/provenance.rs crates/core/src/pipeline/stages/safety.rs crates/core/src/pipeline/stages/topcls.rs crates/core/src/provenance.rs crates/core/src/report.rs crates/core/src/safety_stage.rs crates/core/src/topcls.rs

crates/core/src/lib.rs:
crates/core/src/actors.rs:
crates/core/src/crawl.rs:
crates/core/src/extract.rs:
crates/core/src/features.rs:
crates/core/src/finance.rs:
crates/core/src/intervention.rs:
crates/core/src/nsfv.rs:
crates/core/src/pipeline/mod.rs:
crates/core/src/pipeline/ctx.rs:
crates/core/src/pipeline/stages/mod.rs:
crates/core/src/pipeline/stages/actors.rs:
crates/core/src/pipeline/stages/crawl.rs:
crates/core/src/pipeline/stages/extract.rs:
crates/core/src/pipeline/stages/finance.rs:
crates/core/src/pipeline/stages/measure.rs:
crates/core/src/pipeline/stages/nsfv.rs:
crates/core/src/pipeline/stages/provenance.rs:
crates/core/src/pipeline/stages/safety.rs:
crates/core/src/pipeline/stages/topcls.rs:
crates/core/src/provenance.rs:
crates/core/src/report.rs:
crates/core/src/safety_stage.rs:
crates/core/src/topcls.rs:
