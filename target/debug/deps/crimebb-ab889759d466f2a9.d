/root/repo/target/debug/deps/crimebb-ab889759d466f2a9.d: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs

/root/repo/target/debug/deps/libcrimebb-ab889759d466f2a9.rlib: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs

/root/repo/target/debug/deps/libcrimebb-ab889759d466f2a9.rmeta: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs

crates/crimebb/src/lib.rs:
crates/crimebb/src/corpus.rs:
crates/crimebb/src/export.rs:
crates/crimebb/src/ids.rs:
crates/crimebb/src/model.rs:
crates/crimebb/src/query.rs:
