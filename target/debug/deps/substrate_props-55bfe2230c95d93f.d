/root/repo/target/debug/deps/substrate_props-55bfe2230c95d93f.d: tests/substrate_props.rs

/root/repo/target/debug/deps/substrate_props-55bfe2230c95d93f: tests/substrate_props.rs

tests/substrate_props.rs:
