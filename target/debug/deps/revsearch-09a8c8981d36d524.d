/root/repo/target/debug/deps/revsearch-09a8c8981d36d524.d: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs Cargo.toml

/root/repo/target/debug/deps/librevsearch-09a8c8981d36d524.rmeta: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs Cargo.toml

crates/revsearch/src/lib.rs:
crates/revsearch/src/domaincls.rs:
crates/revsearch/src/index.rs:
crates/revsearch/src/wayback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
