/root/repo/target/debug/deps/degenerate_worlds-ab3a3f0539eb3b71.d: tests/degenerate_worlds.rs Cargo.toml

/root/repo/target/debug/deps/libdegenerate_worlds-ab3a3f0539eb3b71.rmeta: tests/degenerate_worlds.rs Cargo.toml

tests/degenerate_worlds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
