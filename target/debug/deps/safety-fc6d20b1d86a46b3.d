/root/repo/target/debug/deps/safety-fc6d20b1d86a46b3.d: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libsafety-fc6d20b1d86a46b3.rmeta: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs Cargo.toml

crates/safety/src/lib.rs:
crates/safety/src/gate.rs:
crates/safety/src/hashlist.rs:
crates/safety/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
