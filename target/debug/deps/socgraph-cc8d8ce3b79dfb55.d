/root/repo/target/debug/deps/socgraph-cc8d8ce3b79dfb55.d: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs

/root/repo/target/debug/deps/libsocgraph-cc8d8ce3b79dfb55.rmeta: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs

crates/socgraph/src/lib.rs:
crates/socgraph/src/centrality.rs:
crates/socgraph/src/graph.rs:
crates/socgraph/src/hindex.rs:
crates/socgraph/src/pagerank.rs:
