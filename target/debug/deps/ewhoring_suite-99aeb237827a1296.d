/root/repo/target/debug/deps/ewhoring_suite-99aeb237827a1296.d: src/suite.rs

/root/repo/target/debug/deps/ewhoring_suite-99aeb237827a1296: src/suite.rs

src/suite.rs:
