/root/repo/target/debug/deps/linsvm-493a1ac9d470e23b.d: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs

/root/repo/target/debug/deps/linsvm-493a1ac9d470e23b: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs

crates/linsvm/src/lib.rs:
crates/linsvm/src/logreg.rs:
crates/linsvm/src/metrics.rs:
crates/linsvm/src/nbayes.rs:
crates/linsvm/src/sparse.rs:
crates/linsvm/src/split.rs:
crates/linsvm/src/svm.rs:
