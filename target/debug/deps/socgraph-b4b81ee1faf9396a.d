/root/repo/target/debug/deps/socgraph-b4b81ee1faf9396a.d: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs

/root/repo/target/debug/deps/socgraph-b4b81ee1faf9396a: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs

crates/socgraph/src/lib.rs:
crates/socgraph/src/centrality.rs:
crates/socgraph/src/graph.rs:
crates/socgraph/src/hindex.rs:
crates/socgraph/src/pagerank.rs:
