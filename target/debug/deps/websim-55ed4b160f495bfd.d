/root/repo/target/debug/deps/websim-55ed4b160f495bfd.d: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs

/root/repo/target/debug/deps/libwebsim-55ed4b160f495bfd.rmeta: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs

crates/websim/src/lib.rs:
crates/websim/src/domains.rs:
crates/websim/src/sites.rs:
crates/websim/src/store.rs:
