/root/repo/target/debug/deps/determinism-5671f2436f3b3125.d: tests/determinism.rs

/root/repo/target/debug/deps/libdeterminism-5671f2436f3b3125.rmeta: tests/determinism.rs

tests/determinism.rs:
