/root/repo/target/debug/deps/ewhoring_suite-2e13cd454cf4ffeb.d: src/suite.rs

/root/repo/target/debug/deps/libewhoring_suite-2e13cd454cf4ffeb.rlib: src/suite.rs

/root/repo/target/debug/deps/libewhoring_suite-2e13cd454cf4ffeb.rmeta: src/suite.rs

src/suite.rs:
