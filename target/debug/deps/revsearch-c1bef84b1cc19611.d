/root/repo/target/debug/deps/revsearch-c1bef84b1cc19611.d: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs

/root/repo/target/debug/deps/revsearch-c1bef84b1cc19611: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs

crates/revsearch/src/lib.rs:
crates/revsearch/src/domaincls.rs:
crates/revsearch/src/index.rs:
crates/revsearch/src/wayback.rs:
