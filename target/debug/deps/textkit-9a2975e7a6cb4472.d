/root/repo/target/debug/deps/textkit-9a2975e7a6cb4472.d: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs

/root/repo/target/debug/deps/libtextkit-9a2975e7a6cb4472.rmeta: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs

crates/textkit/src/lib.rs:
crates/textkit/src/dtm.rs:
crates/textkit/src/hw.rs:
crates/textkit/src/lexicon.rs:
crates/textkit/src/tokenize.rs:
crates/textkit/src/url.rs:
