/root/repo/target/debug/deps/linsvm-5aa68e07f83246fe.d: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs

/root/repo/target/debug/deps/liblinsvm-5aa68e07f83246fe.rmeta: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs

crates/linsvm/src/lib.rs:
crates/linsvm/src/logreg.rs:
crates/linsvm/src/metrics.rs:
crates/linsvm/src/nbayes.rs:
crates/linsvm/src/sparse.rs:
crates/linsvm/src/split.rs:
crates/linsvm/src/svm.rs:
