/root/repo/target/debug/deps/crimebb-ab64daf735687ef3.d: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs Cargo.toml

/root/repo/target/debug/deps/libcrimebb-ab64daf735687ef3.rmeta: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs Cargo.toml

crates/crimebb/src/lib.rs:
crates/crimebb/src/corpus.rs:
crates/crimebb/src/export.rs:
crates/crimebb/src/ids.rs:
crates/crimebb/src/model.rs:
crates/crimebb/src/query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
