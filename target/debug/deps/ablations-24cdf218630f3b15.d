/root/repo/target/debug/deps/ablations-24cdf218630f3b15.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-24cdf218630f3b15.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
