/root/repo/target/debug/deps/revsearch-7819705f6f4b78bc.d: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs

/root/repo/target/debug/deps/librevsearch-7819705f6f4b78bc.rlib: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs

/root/repo/target/debug/deps/librevsearch-7819705f6f4b78bc.rmeta: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs

crates/revsearch/src/lib.rs:
crates/revsearch/src/domaincls.rs:
crates/revsearch/src/index.rs:
crates/revsearch/src/wayback.rs:
