/root/repo/target/debug/deps/world_invariants-ccf94ee0a1128c60.d: tests/world_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libworld_invariants-ccf94ee0a1128c60.rmeta: tests/world_invariants.rs Cargo.toml

tests/world_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
