/root/repo/target/debug/deps/report-ab1eca3654121987.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/libreport-ab1eca3654121987.rmeta: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
