/root/repo/target/debug/deps/proptest-5f70c0ff9a2ee0d4.d: .stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-5f70c0ff9a2ee0d4.rmeta: .stubs/proptest/src/lib.rs

.stubs/proptest/src/lib.rs:
