/root/repo/target/debug/deps/safety_invariants-a834a973d46d997a.d: tests/safety_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libsafety_invariants-a834a973d46d997a.rmeta: tests/safety_invariants.rs Cargo.toml

tests/safety_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
