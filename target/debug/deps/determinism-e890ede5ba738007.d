/root/repo/target/debug/deps/determinism-e890ede5ba738007.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-e890ede5ba738007.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
