/root/repo/target/debug/deps/builder_props-d57775b3b371c01a.d: crates/crimebb/tests/builder_props.rs Cargo.toml

/root/repo/target/debug/deps/libbuilder_props-d57775b3b371c01a.rmeta: crates/crimebb/tests/builder_props.rs Cargo.toml

crates/crimebb/tests/builder_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
