/root/repo/target/debug/deps/serde_derive-ae18352ff88ef51e.d: .stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-ae18352ff88ef51e.so: .stubs/serde_derive/src/lib.rs

.stubs/serde_derive/src/lib.rs:
