/root/repo/target/debug/deps/serde_json-59aabde20ec93329.d: .stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-59aabde20ec93329.rmeta: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
