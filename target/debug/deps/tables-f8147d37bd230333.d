/root/repo/target/debug/deps/tables-f8147d37bd230333.d: crates/bench/benches/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-f8147d37bd230333.rmeta: crates/bench/benches/tables.rs Cargo.toml

crates/bench/benches/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
