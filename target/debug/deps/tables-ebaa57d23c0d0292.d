/root/repo/target/debug/deps/tables-ebaa57d23c0d0292.d: crates/bench/benches/tables.rs

/root/repo/target/debug/deps/libtables-ebaa57d23c0d0292.rmeta: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
