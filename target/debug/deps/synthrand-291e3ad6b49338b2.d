/root/repo/target/debug/deps/synthrand-291e3ad6b49338b2.d: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libsynthrand-291e3ad6b49338b2.rmeta: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs Cargo.toml

crates/synthrand/src/lib.rs:
crates/synthrand/src/dist.rs:
crates/synthrand/src/seed.rs:
crates/synthrand/src/time.rs:
crates/synthrand/src/weighted.rs:
crates/synthrand/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
