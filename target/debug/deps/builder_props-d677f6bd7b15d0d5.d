/root/repo/target/debug/deps/builder_props-d677f6bd7b15d0d5.d: crates/crimebb/tests/builder_props.rs

/root/repo/target/debug/deps/libbuilder_props-d677f6bd7b15d0d5.rmeta: crates/crimebb/tests/builder_props.rs

crates/crimebb/tests/builder_props.rs:
