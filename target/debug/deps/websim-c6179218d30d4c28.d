/root/repo/target/debug/deps/websim-c6179218d30d4c28.d: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libwebsim-c6179218d30d4c28.rmeta: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs Cargo.toml

crates/websim/src/lib.rs:
crates/websim/src/domains.rs:
crates/websim/src/sites.rs:
crates/websim/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
