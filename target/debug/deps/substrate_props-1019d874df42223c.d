/root/repo/target/debug/deps/substrate_props-1019d874df42223c.d: tests/substrate_props.rs

/root/repo/target/debug/deps/libsubstrate_props-1019d874df42223c.rmeta: tests/substrate_props.rs

tests/substrate_props.rs:
