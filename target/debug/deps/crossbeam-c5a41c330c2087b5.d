/root/repo/target/debug/deps/crossbeam-c5a41c330c2087b5.d: .stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-c5a41c330c2087b5.rlib: .stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-c5a41c330c2087b5.rmeta: .stubs/crossbeam/src/lib.rs

.stubs/crossbeam/src/lib.rs:
