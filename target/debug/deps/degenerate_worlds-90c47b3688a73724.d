/root/repo/target/debug/deps/degenerate_worlds-90c47b3688a73724.d: tests/degenerate_worlds.rs

/root/repo/target/debug/deps/libdegenerate_worlds-90c47b3688a73724.rmeta: tests/degenerate_worlds.rs

tests/degenerate_worlds.rs:
