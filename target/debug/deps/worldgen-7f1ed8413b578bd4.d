/root/repo/target/debug/deps/worldgen-7f1ed8413b578bd4.d: crates/worldgen/src/lib.rs crates/worldgen/src/actors.rs crates/worldgen/src/config.rs crates/worldgen/src/finance.rs crates/worldgen/src/fx.rs crates/worldgen/src/headings.rs crates/worldgen/src/packs.rs crates/worldgen/src/threads.rs crates/worldgen/src/truth.rs crates/worldgen/src/world.rs

/root/repo/target/debug/deps/libworldgen-7f1ed8413b578bd4.rmeta: crates/worldgen/src/lib.rs crates/worldgen/src/actors.rs crates/worldgen/src/config.rs crates/worldgen/src/finance.rs crates/worldgen/src/fx.rs crates/worldgen/src/headings.rs crates/worldgen/src/packs.rs crates/worldgen/src/threads.rs crates/worldgen/src/truth.rs crates/worldgen/src/world.rs

crates/worldgen/src/lib.rs:
crates/worldgen/src/actors.rs:
crates/worldgen/src/config.rs:
crates/worldgen/src/finance.rs:
crates/worldgen/src/fx.rs:
crates/worldgen/src/headings.rs:
crates/worldgen/src/packs.rs:
crates/worldgen/src/threads.rs:
crates/worldgen/src/truth.rs:
crates/worldgen/src/world.rs:
