/root/repo/target/debug/deps/report-0f9a8f2b1ae4dbfe.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/libreport-0f9a8f2b1ae4dbfe.rmeta: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
