/root/repo/target/debug/deps/web_props-8eb54ed5fc67c871.d: crates/websim/tests/web_props.rs

/root/repo/target/debug/deps/libweb_props-8eb54ed5fc67c871.rmeta: crates/websim/tests/web_props.rs

crates/websim/tests/web_props.rs:
