/root/repo/target/debug/deps/websim-06f67c68a5777593.d: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs

/root/repo/target/debug/deps/libwebsim-06f67c68a5777593.rmeta: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs

crates/websim/src/lib.rs:
crates/websim/src/domains.rs:
crates/websim/src/sites.rs:
crates/websim/src/store.rs:
