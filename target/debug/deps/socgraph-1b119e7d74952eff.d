/root/repo/target/debug/deps/socgraph-1b119e7d74952eff.d: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs Cargo.toml

/root/repo/target/debug/deps/libsocgraph-1b119e7d74952eff.rmeta: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs Cargo.toml

crates/socgraph/src/lib.rs:
crates/socgraph/src/centrality.rs:
crates/socgraph/src/graph.rs:
crates/socgraph/src/hindex.rs:
crates/socgraph/src/pagerank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
