/root/repo/target/debug/deps/synthrand-a94800bb2d70e55d.d: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs

/root/repo/target/debug/deps/libsynthrand-a94800bb2d70e55d.rmeta: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs

crates/synthrand/src/lib.rs:
crates/synthrand/src/dist.rs:
crates/synthrand/src/seed.rs:
crates/synthrand/src/time.rs:
crates/synthrand/src/weighted.rs:
crates/synthrand/src/zipf.rs:
