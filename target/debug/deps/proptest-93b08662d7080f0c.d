/root/repo/target/debug/deps/proptest-93b08662d7080f0c.d: .stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-93b08662d7080f0c.rlib: .stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-93b08662d7080f0c.rmeta: .stubs/proptest/src/lib.rs

.stubs/proptest/src/lib.rs:
