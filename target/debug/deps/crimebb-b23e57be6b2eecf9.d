/root/repo/target/debug/deps/crimebb-b23e57be6b2eecf9.d: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs

/root/repo/target/debug/deps/crimebb-b23e57be6b2eecf9: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs

crates/crimebb/src/lib.rs:
crates/crimebb/src/corpus.rs:
crates/crimebb/src/export.rs:
crates/crimebb/src/ids.rs:
crates/crimebb/src/model.rs:
crates/crimebb/src/query.rs:
