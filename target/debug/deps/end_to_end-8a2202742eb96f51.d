/root/repo/target/debug/deps/end_to_end-8a2202742eb96f51.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8a2202742eb96f51: tests/end_to_end.rs

tests/end_to_end.rs:
