/root/repo/target/debug/deps/safety_invariants-98b93f1f8da17583.d: tests/safety_invariants.rs

/root/repo/target/debug/deps/libsafety_invariants-98b93f1f8da17583.rmeta: tests/safety_invariants.rs

tests/safety_invariants.rs:
