/root/repo/target/debug/deps/textkit-2e622f296e83aeff.d: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs

/root/repo/target/debug/deps/textkit-2e622f296e83aeff: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs

crates/textkit/src/lib.rs:
crates/textkit/src/dtm.rs:
crates/textkit/src/hw.rs:
crates/textkit/src/lexicon.rs:
crates/textkit/src/tokenize.rs:
crates/textkit/src/url.rs:
