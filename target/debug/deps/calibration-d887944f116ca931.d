/root/repo/target/debug/deps/calibration-d887944f116ca931.d: tests/calibration.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration-d887944f116ca931.rmeta: tests/calibration.rs Cargo.toml

tests/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
