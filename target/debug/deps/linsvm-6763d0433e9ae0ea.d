/root/repo/target/debug/deps/linsvm-6763d0433e9ae0ea.d: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs

/root/repo/target/debug/deps/liblinsvm-6763d0433e9ae0ea.rlib: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs

/root/repo/target/debug/deps/liblinsvm-6763d0433e9ae0ea.rmeta: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs

crates/linsvm/src/lib.rs:
crates/linsvm/src/logreg.rs:
crates/linsvm/src/metrics.rs:
crates/linsvm/src/nbayes.rs:
crates/linsvm/src/sparse.rs:
crates/linsvm/src/split.rs:
crates/linsvm/src/svm.rs:
