/root/repo/target/debug/deps/world_invariants-6119bc81e0c0d6a8.d: tests/world_invariants.rs

/root/repo/target/debug/deps/world_invariants-6119bc81e0c0d6a8: tests/world_invariants.rs

tests/world_invariants.rs:
