/root/repo/target/debug/deps/ewhoring_suite-e87d44b96df89d4b.d: src/suite.rs

/root/repo/target/debug/deps/libewhoring_suite-e87d44b96df89d4b.rmeta: src/suite.rs

src/suite.rs:
