/root/repo/target/debug/deps/revsearch-30387af9631aeb82.d: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs

/root/repo/target/debug/deps/librevsearch-30387af9631aeb82.rmeta: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs

crates/revsearch/src/lib.rs:
crates/revsearch/src/domaincls.rs:
crates/revsearch/src/index.rs:
crates/revsearch/src/wayback.rs:
