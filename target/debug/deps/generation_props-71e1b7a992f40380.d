/root/repo/target/debug/deps/generation_props-71e1b7a992f40380.d: crates/worldgen/tests/generation_props.rs Cargo.toml

/root/repo/target/debug/deps/libgeneration_props-71e1b7a992f40380.rmeta: crates/worldgen/tests/generation_props.rs Cargo.toml

crates/worldgen/tests/generation_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
