/root/repo/target/debug/deps/websim-13f39c3a3bb090cc.d: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libwebsim-13f39c3a3bb090cc.rmeta: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs Cargo.toml

crates/websim/src/lib.rs:
crates/websim/src/domains.rs:
crates/websim/src/sites.rs:
crates/websim/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
