/root/repo/target/debug/deps/search_props-1131207b30f16330.d: crates/revsearch/tests/search_props.rs

/root/repo/target/debug/deps/search_props-1131207b30f16330: crates/revsearch/tests/search_props.rs

crates/revsearch/tests/search_props.rs:
