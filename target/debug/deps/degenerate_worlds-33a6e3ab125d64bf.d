/root/repo/target/debug/deps/degenerate_worlds-33a6e3ab125d64bf.d: tests/degenerate_worlds.rs

/root/repo/target/debug/deps/degenerate_worlds-33a6e3ab125d64bf: tests/degenerate_worlds.rs

tests/degenerate_worlds.rs:
