/root/repo/target/debug/deps/search_props-85c19eafff854cec.d: crates/revsearch/tests/search_props.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_props-85c19eafff854cec.rmeta: crates/revsearch/tests/search_props.rs Cargo.toml

crates/revsearch/tests/search_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
