/root/repo/target/debug/deps/figures-1ffc4b6d23a6a44f.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/libfigures-1ffc4b6d23a6a44f.rmeta: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
