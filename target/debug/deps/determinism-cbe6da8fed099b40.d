/root/repo/target/debug/deps/determinism-cbe6da8fed099b40.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-cbe6da8fed099b40: tests/determinism.rs

tests/determinism.rs:
