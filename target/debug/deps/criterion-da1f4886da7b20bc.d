/root/repo/target/debug/deps/criterion-da1f4886da7b20bc.d: .stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-da1f4886da7b20bc.rlib: .stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-da1f4886da7b20bc.rmeta: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
