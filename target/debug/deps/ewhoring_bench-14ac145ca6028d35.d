/root/repo/target/debug/deps/ewhoring_bench-14ac145ca6028d35.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libewhoring_bench-14ac145ca6028d35.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libewhoring_bench-14ac145ca6028d35.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
