/root/repo/target/debug/deps/ewhoring_bench-80902922d7471353.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libewhoring_bench-80902922d7471353.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
