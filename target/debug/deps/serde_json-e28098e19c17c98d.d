/root/repo/target/debug/deps/serde_json-e28098e19c17c98d.d: .stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-e28098e19c17c98d.rlib: .stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-e28098e19c17c98d.rmeta: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
