/root/repo/target/release/examples/quickstart-453c00c7f3c6f214.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-453c00c7f3c6f214: examples/quickstart.rs

examples/quickstart.rs:
