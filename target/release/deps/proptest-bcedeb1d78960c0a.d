/root/repo/target/release/deps/proptest-bcedeb1d78960c0a.d: .stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-bcedeb1d78960c0a.rlib: .stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-bcedeb1d78960c0a.rmeta: .stubs/proptest/src/lib.rs

.stubs/proptest/src/lib.rs:
