/root/repo/target/release/deps/revsearch-3116bf9111df65c9.d: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs

/root/repo/target/release/deps/librevsearch-3116bf9111df65c9.rlib: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs

/root/repo/target/release/deps/librevsearch-3116bf9111df65c9.rmeta: crates/revsearch/src/lib.rs crates/revsearch/src/domaincls.rs crates/revsearch/src/index.rs crates/revsearch/src/wayback.rs

crates/revsearch/src/lib.rs:
crates/revsearch/src/domaincls.rs:
crates/revsearch/src/index.rs:
crates/revsearch/src/wayback.rs:
