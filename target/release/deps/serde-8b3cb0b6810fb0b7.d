/root/repo/target/release/deps/serde-8b3cb0b6810fb0b7.d: .stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-8b3cb0b6810fb0b7.rlib: .stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-8b3cb0b6810fb0b7.rmeta: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
