/root/repo/target/release/deps/imagesim-4c9234c73af1a956.d: crates/imagesim/src/lib.rs crates/imagesim/src/bitmap.rs crates/imagesim/src/hash.rs crates/imagesim/src/nsfw.rs crates/imagesim/src/ocr.rs crates/imagesim/src/spec.rs crates/imagesim/src/transform.rs crates/imagesim/src/validation.rs

/root/repo/target/release/deps/libimagesim-4c9234c73af1a956.rlib: crates/imagesim/src/lib.rs crates/imagesim/src/bitmap.rs crates/imagesim/src/hash.rs crates/imagesim/src/nsfw.rs crates/imagesim/src/ocr.rs crates/imagesim/src/spec.rs crates/imagesim/src/transform.rs crates/imagesim/src/validation.rs

/root/repo/target/release/deps/libimagesim-4c9234c73af1a956.rmeta: crates/imagesim/src/lib.rs crates/imagesim/src/bitmap.rs crates/imagesim/src/hash.rs crates/imagesim/src/nsfw.rs crates/imagesim/src/ocr.rs crates/imagesim/src/spec.rs crates/imagesim/src/transform.rs crates/imagesim/src/validation.rs

crates/imagesim/src/lib.rs:
crates/imagesim/src/bitmap.rs:
crates/imagesim/src/hash.rs:
crates/imagesim/src/nsfw.rs:
crates/imagesim/src/ocr.rs:
crates/imagesim/src/spec.rs:
crates/imagesim/src/transform.rs:
crates/imagesim/src/validation.rs:
