/root/repo/target/release/deps/serde_json-150fd20c95450b18.d: .stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-150fd20c95450b18.rlib: .stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-150fd20c95450b18.rmeta: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
