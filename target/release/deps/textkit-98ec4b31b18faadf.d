/root/repo/target/release/deps/textkit-98ec4b31b18faadf.d: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs

/root/repo/target/release/deps/libtextkit-98ec4b31b18faadf.rlib: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs

/root/repo/target/release/deps/libtextkit-98ec4b31b18faadf.rmeta: crates/textkit/src/lib.rs crates/textkit/src/dtm.rs crates/textkit/src/hw.rs crates/textkit/src/lexicon.rs crates/textkit/src/tokenize.rs crates/textkit/src/url.rs

crates/textkit/src/lib.rs:
crates/textkit/src/dtm.rs:
crates/textkit/src/hw.rs:
crates/textkit/src/lexicon.rs:
crates/textkit/src/tokenize.rs:
crates/textkit/src/url.rs:
