/root/repo/target/release/deps/crossbeam-449827b2aa3b1ea4.d: .stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-449827b2aa3b1ea4.rlib: .stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-449827b2aa3b1ea4.rmeta: .stubs/crossbeam/src/lib.rs

.stubs/crossbeam/src/lib.rs:
