/root/repo/target/release/deps/criterion-8865d429d9e999f3.d: .stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-8865d429d9e999f3.rlib: .stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-8865d429d9e999f3.rmeta: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
