/root/repo/target/release/deps/bytes-3227313b2bb93694.d: .stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-3227313b2bb93694.rlib: .stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-3227313b2bb93694.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
