/root/repo/target/release/deps/linsvm-e2a4473bf8a0054e.d: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs

/root/repo/target/release/deps/liblinsvm-e2a4473bf8a0054e.rlib: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs

/root/repo/target/release/deps/liblinsvm-e2a4473bf8a0054e.rmeta: crates/linsvm/src/lib.rs crates/linsvm/src/logreg.rs crates/linsvm/src/metrics.rs crates/linsvm/src/nbayes.rs crates/linsvm/src/sparse.rs crates/linsvm/src/split.rs crates/linsvm/src/svm.rs

crates/linsvm/src/lib.rs:
crates/linsvm/src/logreg.rs:
crates/linsvm/src/metrics.rs:
crates/linsvm/src/nbayes.rs:
crates/linsvm/src/sparse.rs:
crates/linsvm/src/split.rs:
crates/linsvm/src/svm.rs:
