/root/repo/target/release/deps/ewhoring_bench-dfad4e10ee98c215.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libewhoring_bench-dfad4e10ee98c215.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libewhoring_bench-dfad4e10ee98c215.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
