/root/repo/target/release/deps/parking_lot-d3615d322dec4ab4.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-d3615d322dec4ab4.rlib: .stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-d3615d322dec4ab4.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
