/root/repo/target/release/deps/websim-fa48c5e007d37823.d: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs

/root/repo/target/release/deps/libwebsim-fa48c5e007d37823.rlib: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs

/root/repo/target/release/deps/libwebsim-fa48c5e007d37823.rmeta: crates/websim/src/lib.rs crates/websim/src/domains.rs crates/websim/src/sites.rs crates/websim/src/store.rs

crates/websim/src/lib.rs:
crates/websim/src/domains.rs:
crates/websim/src/sites.rs:
crates/websim/src/store.rs:
