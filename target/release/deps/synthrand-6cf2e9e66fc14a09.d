/root/repo/target/release/deps/synthrand-6cf2e9e66fc14a09.d: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs

/root/repo/target/release/deps/libsynthrand-6cf2e9e66fc14a09.rlib: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs

/root/repo/target/release/deps/libsynthrand-6cf2e9e66fc14a09.rmeta: crates/synthrand/src/lib.rs crates/synthrand/src/dist.rs crates/synthrand/src/seed.rs crates/synthrand/src/time.rs crates/synthrand/src/weighted.rs crates/synthrand/src/zipf.rs

crates/synthrand/src/lib.rs:
crates/synthrand/src/dist.rs:
crates/synthrand/src/seed.rs:
crates/synthrand/src/time.rs:
crates/synthrand/src/weighted.rs:
crates/synthrand/src/zipf.rs:
