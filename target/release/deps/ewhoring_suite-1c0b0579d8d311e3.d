/root/repo/target/release/deps/ewhoring_suite-1c0b0579d8d311e3.d: src/suite.rs

/root/repo/target/release/deps/libewhoring_suite-1c0b0579d8d311e3.rlib: src/suite.rs

/root/repo/target/release/deps/libewhoring_suite-1c0b0579d8d311e3.rmeta: src/suite.rs

src/suite.rs:
