/root/repo/target/release/deps/rand-c534e38e6786c3fc.d: .stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-c534e38e6786c3fc.rlib: .stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-c534e38e6786c3fc.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
