/root/repo/target/release/deps/crimebb-bbf5a8b036d30b2f.d: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs

/root/repo/target/release/deps/libcrimebb-bbf5a8b036d30b2f.rlib: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs

/root/repo/target/release/deps/libcrimebb-bbf5a8b036d30b2f.rmeta: crates/crimebb/src/lib.rs crates/crimebb/src/corpus.rs crates/crimebb/src/export.rs crates/crimebb/src/ids.rs crates/crimebb/src/model.rs crates/crimebb/src/query.rs

crates/crimebb/src/lib.rs:
crates/crimebb/src/corpus.rs:
crates/crimebb/src/export.rs:
crates/crimebb/src/ids.rs:
crates/crimebb/src/model.rs:
crates/crimebb/src/query.rs:
