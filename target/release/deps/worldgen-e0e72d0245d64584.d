/root/repo/target/release/deps/worldgen-e0e72d0245d64584.d: crates/worldgen/src/lib.rs crates/worldgen/src/actors.rs crates/worldgen/src/config.rs crates/worldgen/src/finance.rs crates/worldgen/src/fx.rs crates/worldgen/src/headings.rs crates/worldgen/src/packs.rs crates/worldgen/src/threads.rs crates/worldgen/src/truth.rs crates/worldgen/src/world.rs

/root/repo/target/release/deps/libworldgen-e0e72d0245d64584.rlib: crates/worldgen/src/lib.rs crates/worldgen/src/actors.rs crates/worldgen/src/config.rs crates/worldgen/src/finance.rs crates/worldgen/src/fx.rs crates/worldgen/src/headings.rs crates/worldgen/src/packs.rs crates/worldgen/src/threads.rs crates/worldgen/src/truth.rs crates/worldgen/src/world.rs

/root/repo/target/release/deps/libworldgen-e0e72d0245d64584.rmeta: crates/worldgen/src/lib.rs crates/worldgen/src/actors.rs crates/worldgen/src/config.rs crates/worldgen/src/finance.rs crates/worldgen/src/fx.rs crates/worldgen/src/headings.rs crates/worldgen/src/packs.rs crates/worldgen/src/threads.rs crates/worldgen/src/truth.rs crates/worldgen/src/world.rs

crates/worldgen/src/lib.rs:
crates/worldgen/src/actors.rs:
crates/worldgen/src/config.rs:
crates/worldgen/src/finance.rs:
crates/worldgen/src/fx.rs:
crates/worldgen/src/headings.rs:
crates/worldgen/src/packs.rs:
crates/worldgen/src/threads.rs:
crates/worldgen/src/truth.rs:
crates/worldgen/src/world.rs:
