/root/repo/target/release/deps/serde_derive-2a14af4f91d15e77.d: .stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-2a14af4f91d15e77.so: .stubs/serde_derive/src/lib.rs

.stubs/serde_derive/src/lib.rs:
