/root/repo/target/release/deps/safety-5e0edac4777a7892.d: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs

/root/repo/target/release/deps/libsafety-5e0edac4777a7892.rlib: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs

/root/repo/target/release/deps/libsafety-5e0edac4777a7892.rmeta: crates/safety/src/lib.rs crates/safety/src/gate.rs crates/safety/src/hashlist.rs crates/safety/src/report.rs

crates/safety/src/lib.rs:
crates/safety/src/gate.rs:
crates/safety/src/hashlist.rs:
crates/safety/src/report.rs:
