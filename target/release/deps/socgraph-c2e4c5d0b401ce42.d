/root/repo/target/release/deps/socgraph-c2e4c5d0b401ce42.d: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs

/root/repo/target/release/deps/libsocgraph-c2e4c5d0b401ce42.rlib: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs

/root/repo/target/release/deps/libsocgraph-c2e4c5d0b401ce42.rmeta: crates/socgraph/src/lib.rs crates/socgraph/src/centrality.rs crates/socgraph/src/graph.rs crates/socgraph/src/hindex.rs crates/socgraph/src/pagerank.rs

crates/socgraph/src/lib.rs:
crates/socgraph/src/centrality.rs:
crates/socgraph/src/graph.rs:
crates/socgraph/src/hindex.rs:
crates/socgraph/src/pagerank.rs:
