/root/repo/target/release/deps/report-cd3dcce1faa89a88.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-cd3dcce1faa89a88: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
