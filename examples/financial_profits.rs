//! The §5 analyses: proof-of-earnings harvesting (with safety and NSFV
//! filtering), USD conversion at date-correct rates, and the Currency
//! Exchange board (Table 7).
//!
//! ```text
//! cargo run --release --example financial_profits
//! ```

use ewhoring_core::extract::extract_ewhoring_threads;
use ewhoring_core::finance::{analyse_currency_exchange, analyse_earnings, harvest_earnings};
use ewhoring_core::report::quantiles;
use safety::SafetyGate;

fn main() {
    let world = ewhoring_suite::demo_world(555);
    let threads = extract_ewhoring_threads(&world.corpus).all_threads();
    let gate = SafetyGate::new(world.hashlist.clone());

    let harvest = harvest_earnings(&world, &gate, &threads);
    println!(
        "harvest: {} earnings threads → {} posts with links → {} unique URLs",
        harvest.earnings_threads, harvest.posts_with_links, harvest.unique_urls
    );
    println!(
        "downloads: {} ok, {} NSFV-filtered, {} analysed ({} proofs / {} not-proof)",
        harvest.downloaded,
        harvest.filtered_nsfv,
        harvest.analysed,
        harvest.proofs.len(),
        harvest.not_proof
    );

    let e = analyse_earnings(&harvest);
    println!(
        "\n{} actors reported US${:.0} total (mean US${:.0}, max US${:.0})",
        e.actors, e.total_usd, e.mean_per_actor, e.max_per_actor
    );
    println!(
        "avg itemised transaction: US${:.2} across {} detailed proofs",
        e.avg_transaction_usd, e.detailed_proofs
    );
    println!("platform mix: {:?}", e.platform_counts);

    let usd: Vec<f64> = e.per_actor.iter().map(|&(u, _)| u).collect();
    let q = quantiles(&usd, &[0.25, 0.5, 0.75, 0.9]);
    println!(
        "Figure 2: per-actor earnings quantiles 25/50/75/90% = {:?}",
        q.iter().map(|v| v.round()).collect::<Vec<_>>()
    );

    let ce = analyse_currency_exchange(&world.corpus, world.hackforums, &threads);
    println!(
        "\nTable 7: {} CE threads by {} committed actors",
        ce.threads, ce.actors
    );
    println!("  offered: {:?}", ce.offered);
    println!("  wanted:  {:?}", ce.wanted);
    println!("  (the shape to look for: BTC most wanted, AGC offered ≫ wanted)");
}
