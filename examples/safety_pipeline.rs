//! The §4.3 safety workflow in isolation: robust-hash screening of every
//! download against a known-material list, immediate report-and-delete,
//! and IWF-style aggregation of actioned URLs.
//!
//! The key design property demonstrated here: a flagged image's pixels are
//! dropped at the gate — downstream code receives only a case id, so the
//! researcher-exposure invariant holds *by construction*.
//!
//! ```text
//! cargo run --release --example safety_pipeline
//! ```

use ewhoring_core::crawl::crawl_tops;
use ewhoring_core::nsfv::ImageMeasures;
use ewhoring_core::safety_stage::screen_downloads;
use safety::SafetyGate;
use worldgen::ThreadRole;

fn main() {
    let world = ewhoring_suite::demo_world(31337);
    println!(
        "hash list: {} known entries; {} images planted in shared packs",
        world.hashlist.len(),
        world.truth.csam_specs.len()
    );

    // Crawl the ground-truth TOPs (the classifier is demonstrated in the
    // quickstart; here we exercise the safety path).
    let mut tops: Vec<_> = world
        .truth
        .thread_roles
        .iter()
        .filter(|&(_, &r)| r == ThreadRole::Top)
        .map(|(&t, _)| t)
        .collect();
    tops.sort_unstable();
    let crawl = crawl_tops(&world.corpus, &world.catalog, &world.web, &tops);

    // Measure and screen every pack image.
    let mut items = Vec::new();
    for p in &crawl.packs {
        for img in &p.images {
            items.push((
                ImageMeasures::of(&img.render()),
                p.link.url.to_https(),
                p.link.thread,
            ));
        }
    }
    println!("screening {} downloaded images …", items.len());

    let gate = SafetyGate::new(world.hashlist.clone());
    let result = screen_downloads(
        &gate,
        &world.index,
        &world.origins,
        &items,
        world.config.dataset_end(),
    );

    println!(
        "flagged {} downloads across {} threads; every one reported before deletion",
        result.flagged.len(),
        result.flagged_threads.len()
    );
    let s = &result.summary;
    println!(
        "IWF summary: {} cases, {} reports, {} actioned URLs",
        s.matched_cases, s.total_reports, s.actioned_urls
    );
    for (sev, n) in &s.by_severity {
        println!("  severity {sev:?}: {n} URLs");
    }
    for (region, n) in &s.by_region {
        println!("  hosted in {}: {n} URLs", region.label());
    }
    for (ty, n) in &s.by_site_type {
        println!("  site type {}: {n} URLs", ty.label());
    }

    let repliers = world.corpus.actors_in_threads(&result.flagged_threads);
    println!(
        "{} actors participated in flagged threads (exposure lower bound)",
        repliers.len()
    );
}
