//! The §6 analyses: actor cohorts (Table 8), the reply/quote social graph,
//! key-actor selection along five indicators (Tables 9/10), and interest
//! evolution (Figure 5).
//!
//! ```text
//! cargo run --release --example actor_analysis
//! ```

use ewhoring_core::actors::{
    actor_metrics, cohort_table, interaction_graph, interest_evolution, popularity,
    select_key_actors, KeyActorInputs,
};
use ewhoring_core::extract::extract_ewhoring_threads;
use socgraph::eigenvector_centrality;
use std::collections::HashMap;

fn main() {
    let world = ewhoring_suite::demo_world(909);
    let threads = extract_ewhoring_threads(&world.corpus).all_threads();

    let metrics = actor_metrics(&world.corpus, &threads);
    println!("{} actors posted in eWhoring threads", metrics.len());
    for row in cohort_table(&metrics) {
        println!(
            "  >= {:>4} posts: {:>6} actors, avg {:>6.1} posts, {:>4.1}% eWhoring, {:>5.0}d before, {:>5.0}d after",
            row.min_posts, row.actors, row.avg_posts, row.pct_ewhoring, row.days_before, row.days_after
        );
    }

    let graph = interaction_graph(&world.corpus, &threads);
    println!(
        "\nsocial graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    let centrality = eigenvector_centrality(&graph, 200);
    let top = centrality
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "most influential actor: {} (centrality {:.3})",
        world.corpus.actors()[top.0].name,
        top.1
    );

    // Key actors need the measured per-actor quantities.
    let pop = popularity(&world.corpus, &threads);
    let mut packs_by_actor = HashMap::new();
    for rec in &world.truth.packs {
        *packs_by_actor.entry(rec.actor).or_insert(0) += 1;
    }
    let earnings = world.truth.earnings_by_actor.clone();
    let ce_by_actor = HashMap::new(); // see the pipeline for the full version
    let inputs = KeyActorInputs {
        metrics: &metrics,
        packs_by_actor: &packs_by_actor,
        earnings_by_actor: &earnings,
        popularity: &pop,
        graph: &graph,
        ce_by_actor: &ce_by_actor,
    };
    let key = select_key_actors(&inputs, 12, 1);
    println!(
        "\n{} key actors selected across 5 indicators:",
        key.all.len()
    );
    for (group, members) in &key.groups {
        println!("  {:<2}: {} members", group.label(), members.len());
    }
    for &(a, b, n) in key.intersections.iter().filter(|&&(.., n)| n > 0) {
        println!("  overlap {} ∩ {} = {n}", a.label(), b.label());
    }

    let evo = interest_evolution(&world.corpus, &metrics, &key.all);
    println!("\nFigure 5 — interests before → during → after eWhoring:");
    for (cat, b, d, a) in &evo.shares {
        println!("  {cat:<18} {b:>5.1}% → {d:>5.1}% → {a:>5.1}%");
    }
}
