//! Dataset release: the paper publishes its code and part of the
//! processed data ("to make our work reproducible … we release our code
//! and part of the processed data publicly"). This example produces the
//! equivalent artefacts from a generated world:
//!
//! * the forum corpus as streaming JSONL (`corpus.jsonl`),
//! * the full pipeline report as JSON (`report.json`),
//! * a couple of synthetic "images" as PPM files, to make the point that
//!   the imagery is abstract rasters and nothing else.
//!
//! ```text
//! cargo run --release --example dataset_release -- /tmp/ewhoring-release
//! ```

use std::fs;
use std::io::BufWriter;
use std::path::PathBuf;

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/ewhoring-release".into())
        .into();
    fs::create_dir_all(&dir).expect("create output dir");

    let world = ewhoring_suite::demo_world(2019);

    // 1. Corpus as JSONL, then verify it round-trips.
    let corpus_path = dir.join("corpus.jsonl");
    {
        let file = fs::File::create(&corpus_path).expect("create corpus.jsonl");
        let mut out = BufWriter::new(file);
        let lines = crimebb::write_jsonl(&world.corpus, &mut out).expect("write corpus");
        println!("wrote {lines} JSONL records to {}", corpus_path.display());
    }
    {
        let file = fs::File::open(&corpus_path).expect("reopen corpus.jsonl");
        let back = crimebb::read_jsonl(std::io::BufReader::new(file)).expect("reload corpus");
        assert_eq!(back.posts().len(), world.corpus.posts().len());
        println!(
            "reloaded and verified: {} posts, {} threads, {} actors",
            back.posts().len(),
            back.threads().len(),
            back.actors().len()
        );
    }

    // 2. The measurement report as JSON.
    let report = ewhoring_suite::demo_pipeline(&world);
    let report_path = dir.join("report.json");
    fs::write(
        &report_path,
        serde_json::to_string_pretty(&report).expect("serialise report"),
    )
    .expect("write report.json");
    println!("wrote pipeline report to {}", report_path.display());

    // 3. Sample synthetic "images" as PPMs — visibly abstract rasters.
    let samples = [
        (
            "model_photo.ppm",
            imagesim::ImageSpec::model_photo(imagesim::ImageClass::ModelNude, 7, 3),
        ),
        (
            "payment_screenshot.ppm",
            imagesim::ImageSpec::of(
                imagesim::ImageClass::PaymentScreenshot(imagesim::PaymentPlatform::PayPal),
                3,
            ),
        ),
        (
            "landscape.ppm",
            imagesim::ImageSpec::of(imagesim::ImageClass::Landscape, 11),
        ),
    ];
    for (name, spec) in samples {
        let path = dir.join(name);
        fs::write(&path, spec.render().to_ppm()).expect("write ppm");
        println!("wrote {}", path.display());
    }

    println!(
        "\nrelease bundle complete in {} — everything regenerates from seed {:#x}",
        dir.display(),
        world.config.seed
    );
}
