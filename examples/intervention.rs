//! Extension (§8 future work): simulate the shared hash-blacklist
//! intervention the paper recommends — "blacklists with hashes of known
//! images used for eWhoring … could be created and shared among
//! stakeholders".
//!
//! ```text
//! cargo run --release --example intervention
//! ```

use ewhoring_core::crawl::crawl_tops;
use ewhoring_core::intervention::{deployment_sweep, simulate_blacklist};
use ewhoring_core::nsfv::ImageMeasures;
use worldgen::ThreadRole;

fn main() {
    let world = ewhoring_suite::demo_world(808);

    // Crawl every pack the pipeline can reach.
    let mut tops: Vec<_> = world
        .truth
        .thread_roles
        .iter()
        .filter(|&(_, &r)| r == ThreadRole::Top)
        .map(|(&t, _)| t)
        .collect();
    tops.sort_unstable();
    let crawl = crawl_tops(&world.corpus, &world.catalog, &world.web, &tops);
    let owned: Vec<(ewhoring_core::crawl::PackDownload, Vec<ImageMeasures>)> = crawl
        .packs
        .into_iter()
        .map(|p| {
            let m: Vec<ImageMeasures> = p
                .images
                .iter()
                .take(30)
                .map(|img| ImageMeasures::of(&img.render()))
                .collect();
            (p, m)
        })
        .collect();
    let packs: Vec<(&ewhoring_core::crawl::PackDownload, &[ImageMeasures])> =
        owned.iter().map(|(p, m)| (p, m.as_slice())).collect();
    println!(
        "{} packs crawled; replaying the blacklist intervention…\n",
        packs.len()
    );

    // Sweep deployment dates across the posting timeline.
    let mut dates: Vec<synthrand::Day> = packs.iter().map(|(p, _)| p.link.posted).collect();
    dates.sort_unstable();
    let sweep_dates: Vec<synthrand::Day> = (1..=4).map(|i| dates[dates.len() * i / 5]).collect();
    println!("deployment date   image-block rate   pack-disruption rate");
    for (date, block, disrupt) in deployment_sweep(&packs, &sweep_dates) {
        println!(
            "  {date}        {:>5.1}%             {:>5.1}%",
            100.0 * block,
            100.0 * disrupt
        );
    }

    // Detail at the midpoint.
    let mid = dates[dates.len() / 2];
    let o = simulate_blacklist(&packs, mid);
    println!(
        "\nat {}: list of {} hashes; {}/{} later packs disrupted, {} untouched",
        o.deployed, o.blacklist_size, o.disrupted_packs, o.later_packs, o.untouched_packs
    );
    println!(
        "evasion floor: mirrored/self-made material keeps {:.0}% of later packs \
         fully out of reach — the limit the paper's discussion anticipates",
        100.0 * o.untouched_packs as f64 / o.later_packs.max(1) as f64
    );

    // Second §8 lever: payment-platform screening of high-velocity
    // accounts.
    use ewhoring_core::extract::extract_ewhoring_threads;
    use ewhoring_core::finance::harvest_earnings;
    use ewhoring_core::intervention::screen_payment_accounts;
    let threads = extract_ewhoring_threads(&world.corpus).all_threads();
    let gate = safety::SafetyGate::new(world.hashlist.clone());
    let harvest = harvest_earnings(&world, &gate, &threads);
    for min_tx in [5u32, 10, 20] {
        let s = screen_payment_accounts(&harvest.proofs, min_tx);
        println!(
            "payment screening (≥{min_tx} tx/proof): flags {}/{} actors covering {:.0}% of revenue",
            s.flagged_actors,
            s.flagged_actors + s.unflagged_actors,
            100.0 * s.usd_coverage()
        );
    }
}
