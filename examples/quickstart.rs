//! Quickstart: generate a synthetic underground-forum world and run the
//! complete measurement pipeline of *Measuring eWhoring* (IMC 2019).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ewhoring_core::report;

fn main() {
    // A seeded world: ten forums, a simulated web of image hosts and cloud
    // storage, a reverse-image-search index, and planted ground truth.
    let world = ewhoring_suite::demo_world(4242);
    println!(
        "world: {} forums, {} threads, {} posts, {} actors, {} hosted objects",
        world.corpus.forums().len(),
        world.corpus.threads().len(),
        world.corpus.posts().len(),
        world.corpus.actors().len(),
        world.web.len(),
    );

    // Run all eight pipeline stages (extraction → TOP classifier → crawl →
    // safety → NSFV → provenance → finance → actors).
    let r = ewhoring_suite::demo_pipeline(&world);

    println!("\n--- headline numbers ---");
    println!(
        "eWhoring threads extracted: {}",
        r.forums.iter().map(|f| f.threads).sum::<usize>()
    );
    println!(
        "TOP classifier: P={:.2} R={:.2} F1={:.2}",
        r.topcls.hybrid_metrics.precision,
        r.topcls.hybrid_metrics.recall,
        r.topcls.hybrid_metrics.f1
    );
    println!(
        "downloads: {} previews, {} packs ({} images)",
        r.funnel.preview_downloads, r.funnel.packs_downloaded, r.funnel.pack_images
    );
    println!(
        "hash-list matches: {} (reported and deleted before analysis)",
        r.safety.stage.summary.matched_cases
    );
    println!(
        "reverse search: packs {:.0}% matched, previews {:.0}% matched",
        100.0 * r.provenance.packs.match_rate(),
        100.0 * r.provenance.previews.match_rate()
    );
    println!(
        "reported earnings: US${:.0} across {} actors",
        r.earnings.total_usd, r.earnings.actors
    );

    println!("\n--- Table 1 ---\n{}", report::table1(&r));
    println!("{}", report::table8(&r));
}
