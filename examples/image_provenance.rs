//! The §4 image pipeline in isolation: classify TOPs, crawl their links,
//! screen downloads, classify SFV/NSFV, and trace image provenance through
//! reverse search and domain classification.
//!
//! ```text
//! cargo run --release --example image_provenance
//! ```

use ewhoring_core::crawl::crawl_tops;
use ewhoring_core::extract::extract_ewhoring_threads;
use ewhoring_core::nsfv::ImageMeasures;
use ewhoring_core::provenance::{analyse_provenance, sample_pack_images, PackForAnalysis};
use ewhoring_core::topcls::classify_tops;
use safety::{HostingRegion, SafetyGate, ScreenOutcome, SiteType};

fn main() {
    let world = ewhoring_suite::demo_world(77);

    // Stage 1+2: find eWhoring threads, then the ones offering packs.
    let threads = extract_ewhoring_threads(&world.corpus).all_threads();
    let mut rng = synthrand::rng_from_seed(1);
    let (_, tops) = classify_tops(
        &mut rng,
        &world.corpus,
        &world.catalog,
        &world.truth,
        &threads,
        1,
    );
    println!(
        "{} eWhoring threads; {} classified as offering packs (P={:.2} R={:.2})",
        threads.len(),
        tops.detected.len(),
        tops.hybrid_metrics.precision,
        tops.hybrid_metrics.recall
    );

    // Stage 3: snowball the hosting whitelist and crawl.
    let crawl = crawl_tops(&world.corpus, &world.catalog, &world.web, &tops.detected);
    println!(
        "crawl: {} whitelisted hosts, {} previews, {} packs, {} dead links, {} registration-walled",
        crawl.whitelist.len(),
        crawl.previews.len(),
        crawl.packs.len(),
        crawl.dead_links,
        crawl.registration_blocked
    );

    // Stage 4+5: measure pixels once; screen, then split SFV/NSFV.
    let gate = SafetyGate::new(world.hashlist.clone());
    let today = world.config.dataset_end();
    let mut previews_nsfv = Vec::new();
    let mut banners = 0;
    for d in &crawl.previews {
        let m = ImageMeasures::of(&d.image.render());
        let screened = gate.screen(
            &m.hash,
            &d.link.url.to_https(),
            today,
            HostingRegion::NorthAmerica,
            SiteType::ImageSharing,
        );
        if matches!(screened, ScreenOutcome::ReportedAndDeleted { .. }) {
            continue; // never analysed further
        }
        if d.is_banner {
            banners += 1;
        }
        if !m.is_sfv() {
            previews_nsfv.push((m, d.link.posted));
        }
    }
    println!(
        "previews: {} NSFV (model imagery), {} removal banners classified SFV",
        previews_nsfv.len(),
        banners
    );

    // Stage 6: reverse-search three samples per pack plus every NSFV
    // preview; classify the provenance domains.
    let mut packs = Vec::new();
    let mut authors = Vec::new();
    for p in &crawl.packs {
        let images: Vec<ImageMeasures> = p
            .images
            .iter()
            .map(|img| ImageMeasures::of(&img.render()))
            .collect();
        let sampled = sample_pack_images(&images);
        packs.push(PackForAnalysis {
            thread: p.link.thread,
            posted: p.link.posted,
            images: sampled,
        });
        authors.push(world.corpus.thread(p.link.thread).author);
    }
    let prov = analyse_provenance(
        &world.index,
        &world.wayback,
        &world.origins,
        &packs,
        &authors,
        &previews_nsfv,
    );
    println!(
        "reverse search: packs {}/{} matched (ratio {:.1}), previews {}/{} (ratio {:.1})",
        prov.packs.matched,
        prov.packs.total,
        prov.packs.ratio,
        prov.previews.matched,
        prov.previews.total,
        prov.previews.ratio
    );
    println!(
        "zero-match packs: {}/{}; distinct provenance domains: {}",
        prov.zero_match_packs, prov.analysed_packs, prov.distinct_domains
    );
    for table in &prov.domain_tags {
        let top: Vec<String> = table
            .tags
            .iter()
            .take(4)
            .map(|(t, c)| format!("{t} ({c})"))
            .collect();
        println!("  {} top tags: {}", table.classifier, top.join(", "));
    }
}
