# Development workflow shortcuts. `make verify` is the full pre-merge
# gate: formatting, lints-as-errors, release build, and the test suite
# (the tier-1 check from ROADMAP.md).
#
# Everything runs `--offline --locked`: the workspace builds entirely
# from the vendored `.stubs/` crates (see `[patch.crates-io]` in
# Cargo.toml), so a registry-resolution regression — a dependency that
# silently needs the network, or a stale Cargo.lock — fails the gate
# immediately instead of surfacing on the next offline machine.

CARGO ?= cargo
OFFLINE = --offline --locked

.PHONY: verify fmt-check clippy build test

verify: fmt-check clippy build test

fmt-check:
	$(CARGO) fmt --all -- --check

clippy:
	$(CARGO) clippy $(OFFLINE) --workspace -- -D warnings

build:
	$(CARGO) build $(OFFLINE) --release

test:
	$(CARGO) test $(OFFLINE) -q
