# Development workflow shortcuts. `make verify` is the full pre-merge
# gate: formatting, lints-as-errors, release build, and the test suite
# (the tier-1 check from ROADMAP.md).
#
# Everything runs `--offline --locked`: the workspace builds entirely
# from the vendored `.stubs/` crates (see `[patch.crates-io]` in
# Cargo.toml), so a registry-resolution regression — a dependency that
# silently needs the network, or a stale Cargo.lock — fails the gate
# immediately instead of surfacing on the next offline machine.

CARGO ?= cargo
OFFLINE = --offline --locked

.PHONY: verify fmt-check clippy build test bench-build bench bench-gate smoke-bench-gate bench-serve bench-epoch smoke-epoch smoke-resume smoke-serve bench-shard smoke-shard clean-journal

verify: fmt-check clippy build test bench-build smoke-resume smoke-serve smoke-bench-gate smoke-epoch smoke-shard

fmt-check:
	$(CARGO) fmt --all -- --check

clippy:
	$(CARGO) clippy $(OFFLINE) --workspace -- -D warnings

# `--workspace` so `target/release/report` (ewhoring-bench is not the
# root package) is current for the smoke targets that execute it.
build:
	$(CARGO) build $(OFFLINE) --release --workspace

test:
	$(CARGO) test $(OFFLINE) -q

# The criterion benches must at least compile, even where running them
# would take too long — catches bench-only API drift.
bench-build:
	$(CARGO) bench $(OFFLINE) --no-run

# Machine-readable per-stage baseline: workers=1 vs workers=4 over a
# small world, written to BENCH_pipeline.json (see README for the
# schema). Scale is kept low so the target stays minutes-not-hours on a
# laptop; raise it for publishable numbers.
bench:
	$(CARGO) run $(OFFLINE) --release -p ewhoring-bench --bin report -- \
		bench --scale 0.05 --workers 4 --out BENCH_pipeline.json

# Perf gate for the fused measure kernel: rerun the bench and exit
# nonzero if `measure_images` items/sec at workers=1 falls below the
# committed floor in BENCH_floor.txt. `bench-gate` reruns the full
# BENCH_pipeline.json configuration; `smoke-bench-gate` is the fast
# small-scale tripwire wired into `make verify`.
bench-gate:
	mkdir -p .journals
	$(CARGO) run $(OFFLINE) --release -p ewhoring-bench --bin report -- \
		bench --scale 0.05 --workers 4 --out .journals/bench-gate.json \
		--gate-floor $$(awk '$$1=="full"{print $$2}' BENCH_floor.txt)

smoke-bench-gate:
	mkdir -p .journals
	$(CARGO) run $(OFFLINE) --release -p ewhoring-bench --bin report -- \
		bench --scale 0.02 --workers 2 --out .journals/bench-gate-smoke.json \
		--gate-floor $$(awk '$$1=="smoke"{print $$2}' BENCH_floor.txt)

# Service-mode baseline: start a server on an ephemeral port, fire the
# seeded hot/cold mix from 4 client threads, and write requests/sec,
# cache-hit ratio, and p50/p95 latency to BENCH_serve.json.
bench-serve: build
	rm -rf .journals/bench-serve && mkdir -p .journals/bench-serve
	./target/release/report serve --addr 127.0.0.1:0 --pool 4 \
		--journal-dir .journals/bench-serve/journal \
		--port-file .journals/bench-serve/port 2> .journals/bench-serve/serve.log & \
	server=$$!; \
	for i in $$(seq 1 100); do [ -s .journals/bench-serve/port ] && break; sleep 0.1; done; \
	./target/release/report loadgen --addr "$$(cat .journals/bench-serve/port)" \
		--clients 4 --requests 25 --hot-ratio 0.8 --scale 0.02 --cold-keys 3 \
		--out BENCH_serve.json --shutdown || { kill $$server 2> /dev/null; exit 1; }; \
	wait $$server
	rm -rf .journals/bench-serve

# Epoch-advance baseline: advance the epoch engine through 6 epochs,
# timing each warm delta against a full recompute of the same prefix,
# and gate on the final-epoch delta being at least the committed
# multiple of a full recompute (the `epoch` row of BENCH_floor.txt).
bench-epoch:
	$(CARGO) run $(OFFLINE) --release -p ewhoring-bench --bin report -- \
		bench epoch --scale 0.05 --workers 4 --epochs 20 --out BENCH_epoch.json \
		--gate-floor $$(awk '$$1=="epoch"{print $$2}' BENCH_floor.txt) \
		--flat-ceiling $$(awk '$$1=="epoch-flat"{print $$2}' BENCH_floor.txt)

# Epoch smoke test wired into `make verify`: a small-scale incremental
# run must produce a byte-identical snapshot to the one-shot batch run
# of the same streamed spec (warm advance ≡ fresh recompute), and the
# final-epoch delta must clear the smoke floor.
smoke-epoch: build
	rm -rf .journals/smoke-epoch && mkdir -p .journals/smoke-epoch
	./target/release/report 0.02 0xE70C --epochs 3 --incremental \
		--journal-dir .journals/smoke-epoch/journal \
		--snapshot-json .journals/smoke-epoch/incremental.json > /dev/null
	./target/release/report 0.02 0xE70C --epochs 3 \
		--snapshot-json .journals/smoke-epoch/full.json > /dev/null
	cmp .journals/smoke-epoch/incremental.json .journals/smoke-epoch/full.json
	./target/release/report bench epoch --scale 0.02 --workers 2 --epochs 3 \
		--out .journals/smoke-epoch/bench.json \
		--gate-floor $$(awk '$$1=="epoch-smoke"{print $$2}' BENCH_floor.txt)
	grep -q '"stage_us"' .journals/smoke-epoch/bench.json
	grep -Eq '"top_classifier": [1-9]' .journals/smoke-epoch/bench.json
	grep -Eq '"actors": [1-9]' .journals/smoke-epoch/bench.json
	grep -Eq '"finance": [1-9]' .journals/smoke-epoch/bench.json
	rm -rf .journals/smoke-epoch

# Supervised-sharding baseline: one unsharded run, one sharded run over
# the same world, a hard gate on snapshot equality (merge determinism),
# and BENCH_shard.json with the wall-clock ratio plus the supervision
# counters. The floor is the `shard` row of BENCH_floor.txt: sharded
# throughput must stay above that fraction of the unsharded driver's.
bench-shard:
	$(CARGO) run $(OFFLINE) --release -p ewhoring-bench --bin report -- \
		bench shard --scale 0.05 --workers 4 --shards 5 --out BENCH_shard.json \
		--gate-floor $$(awk '$$1=="shard"{print $$2}' BENCH_floor.txt)

# Sharding smoke test wired into `make verify`: a sharded CLI run must
# produce a byte-identical snapshot to the unsharded run of the same
# (scale, seed), and a run with a poisoned shard (every attempt fails)
# must still complete, reporting the quarantined shard through the
# supervision counters instead of crashing.
smoke-shard: build
	rm -rf .journals/smoke-shard && mkdir -p .journals/smoke-shard
	./target/release/report 0.02 0x5AD --shards 3 \
		--snapshot-json .journals/smoke-shard/sharded.json > /dev/null
	./target/release/report 0.02 0x5AD \
		--snapshot-json .journals/smoke-shard/unsharded.json > /dev/null
	cmp .journals/smoke-shard/sharded.json .journals/smoke-shard/unsharded.json
	./target/release/report 0.02 0x5AD --shards 3 \
		--poison-shard 1 --poison-severity 1.0 \
		> /dev/null 2> .journals/smoke-shard/poisoned.log
	grep -q '1 quarantined' .journals/smoke-shard/poisoned.log
	grep -q 'quarantine: ' .journals/smoke-shard/poisoned.log
	rm -rf .journals/smoke-shard

# Kill-and-resume smoke test over the checkpoint journal: run the first
# four stages with a journal (simulated crash at the stage boundary),
# resume the run from the journal, and require the resumed report's
# determinism snapshot to match a fresh uninterrupted run byte-for-byte.
smoke-resume:
	rm -rf .journals/smoke
	$(CARGO) run $(OFFLINE) --release -p ewhoring-bench --bin report -- \
		0.02 --journal-dir .journals/smoke --stop-after 4 > /dev/null
	$(CARGO) run $(OFFLINE) --release -p ewhoring-bench --bin report -- \
		0.02 --journal-dir .journals/smoke --resume \
		--snapshot-json .journals/smoke/resumed.json > /dev/null
	$(CARGO) run $(OFFLINE) --release -p ewhoring-bench --bin report -- \
		0.02 --snapshot-json .journals/smoke/fresh.json > /dev/null
	cmp .journals/smoke/resumed.json .journals/smoke/fresh.json
	rm -rf .journals/smoke

# Service-mode smoke test: start a server on an ephemeral port, issue
# `run` + `report` + `shutdown` over the wire, and require the
# wire-delivered snapshot to be byte-identical to a batch
# `--snapshot-json` run of the same (scale, seed) — the batch/service
# equivalence the RunSpec layer guarantees.
smoke-serve: build
	rm -rf .journals/smoke-serve && mkdir -p .journals/smoke-serve
	./target/release/report serve --addr 127.0.0.1:0 --pool 2 \
		--journal-dir .journals/smoke-serve/journal \
		--port-file .journals/smoke-serve/port 2> .journals/smoke-serve/serve.log & \
	server=$$!; \
	for i in $$(seq 1 100); do [ -s .journals/smoke-serve/port ] && break; sleep 0.1; done; \
	./target/release/report loadgen --addr "$$(cat .journals/smoke-serve/port)" \
		--clients 1 --requests 1 --hot-ratio 1.0 --scale 0.02 --seed 0xBEEF \
		--snapshot-out .journals/smoke-serve/wire.json --shutdown 2> /dev/null \
		|| { kill $$server 2> /dev/null; exit 1; }; \
	wait $$server
	./target/release/report 0.02 0xBEEF \
		--snapshot-json .journals/smoke-serve/batch.json > /dev/null 2> /dev/null
	cmp .journals/smoke-serve/wire.json .journals/smoke-serve/batch.json
	rm -rf .journals/smoke-serve

clean-journal:
	rm -rf .journals
