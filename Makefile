# Development workflow shortcuts. `make verify` is the full pre-merge
# gate: formatting, lints-as-errors, release build, and the test suite
# (the tier-1 check from ROADMAP.md).
#
# Everything runs `--offline --locked`: the workspace builds entirely
# from the vendored `.stubs/` crates (see `[patch.crates-io]` in
# Cargo.toml), so a registry-resolution regression — a dependency that
# silently needs the network, or a stale Cargo.lock — fails the gate
# immediately instead of surfacing on the next offline machine.

CARGO ?= cargo
OFFLINE = --offline --locked

.PHONY: verify fmt-check clippy build test bench-build bench smoke-resume clean-journal

verify: fmt-check clippy build test bench-build smoke-resume

fmt-check:
	$(CARGO) fmt --all -- --check

clippy:
	$(CARGO) clippy $(OFFLINE) --workspace -- -D warnings

build:
	$(CARGO) build $(OFFLINE) --release

test:
	$(CARGO) test $(OFFLINE) -q

# The criterion benches must at least compile, even where running them
# would take too long — catches bench-only API drift.
bench-build:
	$(CARGO) bench $(OFFLINE) --no-run

# Machine-readable per-stage baseline: workers=1 vs workers=4 over a
# small world, written to BENCH_pipeline.json (see README for the
# schema). Scale is kept low so the target stays minutes-not-hours on a
# laptop; raise it for publishable numbers.
bench:
	$(CARGO) run $(OFFLINE) --release -p ewhoring-bench --bin report -- \
		0.05 --workers 4 --bench-json BENCH_pipeline.json > /dev/null

# Kill-and-resume smoke test over the checkpoint journal: run the first
# four stages with a journal (simulated crash at the stage boundary),
# resume the run from the journal, and require the resumed report's
# determinism snapshot to match a fresh uninterrupted run byte-for-byte.
smoke-resume:
	rm -rf .journals/smoke
	$(CARGO) run $(OFFLINE) --release -p ewhoring-bench --bin report -- \
		0.02 --journal-dir .journals/smoke --stop-after 4 > /dev/null
	$(CARGO) run $(OFFLINE) --release -p ewhoring-bench --bin report -- \
		0.02 --journal-dir .journals/smoke --resume \
		--snapshot-json .journals/smoke/resumed.json > /dev/null
	$(CARGO) run $(OFFLINE) --release -p ewhoring-bench --bin report -- \
		0.02 --snapshot-json .journals/smoke/fresh.json > /dev/null
	cmp .journals/smoke/resumed.json .journals/smoke/fresh.json
	rm -rf .journals/smoke

clean-journal:
	rm -rf .journals
