# Development workflow shortcuts. `make verify` is the full pre-merge
# gate: formatting, lints-as-errors, release build, and the test suite
# (the tier-1 check from ROADMAP.md).

CARGO ?= cargo

.PHONY: verify fmt-check clippy build test

verify: fmt-check clippy build test

fmt-check:
	$(CARGO) fmt --all -- --check

clippy:
	$(CARGO) clippy --workspace -- -D warnings

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q
