//! Streaming JSONL export/import.
//!
//! The whole-corpus JSON blob ([`Corpus::to_json`]) is convenient for
//! small worlds but monolithic at paper scale (~3M posts). This module
//! streams the corpus as JSON-Lines — one entity per line, prefixed
//! records in dependency order — which is also how large forum datasets
//! are actually released and consumed.
//!
//! Format: each line is `{"kind": "...", ...entity}` with kinds
//! `forum | board | actor | thread | post`. Lines appear in dependency
//! order (forums before their boards, threads before their posts), so a
//! reader can rebuild through [`CorpusBuilder`] in one pass.

use crate::corpus::{Corpus, CorpusBuilder};
use crate::model::{Actor, Board, Forum, Post, Thread};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One JSONL record.
#[derive(Debug, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum Record {
    Forum(Forum),
    Board(Board),
    Actor(Actor),
    Thread(Thread),
    Post(Post),
}

/// Streams the corpus to `out` as JSONL. Returns the number of lines
/// written.
pub fn write_jsonl<W: Write>(corpus: &Corpus, out: &mut W) -> std::io::Result<usize> {
    let mut lines = 0;
    let emit = |record: &Record, out: &mut W| -> std::io::Result<()> {
        let json = serde_json::to_string(record).map_err(std::io::Error::other)?;
        out.write_all(json.as_bytes())?;
        out.write_all(b"\n")?;
        Ok(())
    };
    for f in corpus.forums() {
        emit(&Record::Forum(f.clone()), out)?;
        lines += 1;
    }
    for b in corpus.boards() {
        emit(&Record::Board(b.clone()), out)?;
        lines += 1;
    }
    for a in corpus.actors() {
        emit(&Record::Actor(a.clone()), out)?;
        lines += 1;
    }
    for t in corpus.threads() {
        emit(&Record::Thread(t.clone()), out)?;
        lines += 1;
    }
    // Posts in global id order == builder insertion order, which satisfies
    // the per-thread chronology the builder asserts.
    for p in corpus.posts() {
        emit(&Record::Post(p.clone()), out)?;
        lines += 1;
    }
    Ok(lines)
}

/// Errors from [`read_jsonl`].
#[derive(Debug)]
pub enum ImportError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// Records arrived out of dependency order (e.g. a post whose thread
    /// id does not match the rebuild sequence).
    Inconsistent {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "io: {e}"),
            ImportError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ImportError::Inconsistent { line, message } => {
                write!(f, "inconsistent record at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ImportError {}

/// Rebuilds a corpus from JSONL. Ids are re-minted by the builder and
/// checked against the recorded ones, so a reordered or truncated stream
/// is rejected rather than silently mis-wired.
pub fn read_jsonl<R: BufRead>(input: R) -> Result<Corpus, ImportError> {
    let mut builder = CorpusBuilder::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.map_err(ImportError::Io)?;
        if line.trim().is_empty() {
            continue;
        }
        let record: Record = serde_json::from_str(&line).map_err(|e| ImportError::Parse {
            line: i + 1,
            message: e.to_string(),
        })?;
        let check = |ok: bool, what: &str| -> Result<(), ImportError> {
            if ok {
                Ok(())
            } else {
                Err(ImportError::Inconsistent {
                    line: i + 1,
                    message: what.to_string(),
                })
            }
        };
        match record {
            Record::Forum(f) => {
                let id = builder.add_forum(f.name);
                check(id == f.id, "forum id mismatch")?;
            }
            Record::Board(b) => {
                let id = builder.add_board(b.forum, b.name, b.category);
                check(id == b.id, "board id mismatch")?;
            }
            Record::Actor(a) => {
                let id = builder.add_actor(a.forum, a.name, a.registered);
                check(id == a.id, "actor id mismatch")?;
            }
            Record::Thread(t) => {
                let id = builder.add_thread(t.board, t.author, t.heading, t.created);
                check(id == t.id, "thread id mismatch")?;
            }
            Record::Post(p) => {
                let id = builder.add_post(p.thread, p.author, p.date, p.body, p.quotes);
                check(id == p.id, "post id mismatch")?;
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BoardCategory;
    use synthrand::Day;

    fn sample() -> Corpus {
        let mut b = CorpusBuilder::new();
        let f = b.add_forum("HF");
        let board = b.add_board(f, "eWhoring", BoardCategory::EWhoring);
        let a = b.add_actor(f, "alice", Day::from_ymd(2012, 1, 1));
        let c = b.add_actor(f, "bob", Day::from_ymd(2013, 1, 1));
        let t = b.add_thread(board, a, "pack inside", Day::from_ymd(2014, 2, 2));
        let p = b.add_post(
            t,
            a,
            Day::from_ymd(2014, 2, 2),
            "link: https://x.com/1",
            None,
        );
        b.add_post(t, c, Day::from_ymd(2014, 2, 3), "thanks", Some(p));
        b.build()
    }

    #[test]
    fn jsonl_roundtrip_preserves_everything() {
        let corpus = sample();
        let mut buf = Vec::new();
        let lines = write_jsonl(&corpus, &mut buf).unwrap();
        assert_eq!(lines, 1 + 1 + 2 + 1 + 2);
        let back = read_jsonl(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(back.posts().len(), corpus.posts().len());
        assert_eq!(back.threads()[0].heading, "pack inside");
        assert_eq!(back.posts()[1].quotes, corpus.posts()[1].quotes);
        assert_eq!(back.actor(back.posts()[1].author).name, "bob");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let corpus = sample();
        let mut buf = Vec::new();
        write_jsonl(&corpus, &mut buf).unwrap();
        let with_blanks = format!("\n{}\n\n", String::from_utf8(buf).unwrap().trim_end());
        let back = read_jsonl(std::io::Cursor::new(with_blanks.as_bytes())).unwrap();
        assert_eq!(back.posts().len(), corpus.posts().len());
    }

    #[test]
    fn garbage_line_is_a_parse_error_with_position() {
        let corpus = sample();
        let mut buf = Vec::new();
        write_jsonl(&corpus, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.insert_str(0, "not json\n");
        match read_jsonl(std::io::Cursor::new(text.as_bytes())) {
            Err(ImportError::Parse { line: 1, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reordered_stream_is_rejected() {
        let corpus = sample();
        let mut buf = Vec::new();
        write_jsonl(&corpus, &mut buf).unwrap();
        let mut lines: Vec<String> = String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        lines.swap(2, 3); // actor alice ↔ actor bob: ids no longer match
        let text = lines.join("\n");
        assert!(read_jsonl(std::io::Cursor::new(text.as_bytes())).is_err());
    }

    #[test]
    fn generated_world_roundtrips() {
        // A real (tiny) generated corpus survives the trip.
        let world = worldgen_free_corpus();
        let mut buf = Vec::new();
        write_jsonl(&world, &mut buf).unwrap();
        let back = read_jsonl(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(back.posts().len(), world.posts().len());
        assert_eq!(back.actors().len(), world.actors().len());
    }

    /// A moderately sized corpus without depending on worldgen (which
    /// would be a dependency cycle): many threads and posts via the
    /// builder.
    fn worldgen_free_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        let f = b.add_forum("F");
        let board = b.add_board(f, "B", BoardCategory::Gaming);
        let actors: Vec<_> = (0..25)
            .map(|i| b.add_actor(f, format!("u{i}"), Day::from_ymd(2010, 1, 1)))
            .collect();
        let mut day = Day::from_ymd(2012, 1, 1);
        for t in 0..40 {
            let thread = b.add_thread(board, actors[t % 25], format!("t{t}"), day);
            let mut quote = None;
            for p in 0..(t % 7 + 1) {
                let id = b.add_post(
                    thread,
                    actors[(t + p) % 25],
                    day,
                    format!("post {p}"),
                    quote,
                );
                quote = Some(id);
                day = day.plus_days(1);
            }
        }
        b.build()
    }
}
