//! Underground-forum corpus substrate (CrimeBB analogue).
//!
//! The paper's measurements run over CrimeBB \[27\], a corpus scraped from 15
//! underground forums and distributed by the Cambridge Cybercrime Centre.
//! That data is access-gated, so this crate provides the equivalent
//! *structure*: a typed forum → board → thread → post model with authors,
//! timestamps, quote links, and the query operations the pipeline needs
//! (heading search, board filters, per-actor activity, date spans).
//!
//! The corpus itself is filled in by the `worldgen` crate; this crate is
//! deliberately generator-agnostic so real scraped data could be loaded into
//! the same model.
//!
//! Design notes:
//! * integer newtype ids ([`ids`]) index into dense `Vec`s — the corpus is
//!   append-only and immutable once built, matching a scraped snapshot;
//! * secondary indices (posts-by-thread, threads-by-board, posts-by-actor)
//!   are built once at [`CorpusBuilder::build`] time so queries are O(hits);
//! * the whole corpus serialises to JSON, mirroring the paper's public
//!   release of processed data.

pub mod corpus;
pub mod export;
pub mod ids;
pub mod model;
pub mod query;

pub use corpus::{Corpus, CorpusBuilder};
pub use export::{read_jsonl, write_jsonl, ImportError};
pub use ids::{ActorId, BoardId, ForumId, PostId, ThreadId};
pub use model::{Actor, Board, BoardCategory, Forum, Post, Thread};
pub use synthrand::Day;
