//! Typed integer ids for corpus entities.
//!
//! Newtypes prevent cross-wiring (passing a thread id where a post id is
//! expected) at zero runtime cost; the wrapped `u32` is a dense index into
//! the corpus's entity vectors.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index this id wraps.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

define_id!(
    /// A forum (e.g. the Hackforums analogue).
    ForumId
);
define_id!(
    /// A board within a forum (e.g. the dedicated eWhoring section).
    BoardId
);
define_id!(
    /// A conversation thread.
    ThreadId
);
define_id!(
    /// A single post within a thread.
    PostId
);
define_id!(
    /// A forum member ("actor" in the paper's terminology).
    ActorId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = ThreadId(1);
        let b = ThreadId(2);
        assert!(a < b);
        let set: HashSet<ThreadId> = [a, b, ThreadId(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(PostId(7).to_string(), "PostId#7");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(ActorId(5).index(), 5);
    }
}
