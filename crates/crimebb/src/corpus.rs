//! The append-only corpus store and its builder. Entities never change
//! or disappear once added, so a corpus at time T is a strict prefix of
//! the same corpus at any later time — the property the epoch feed
//! (streaming ingestion) relies on.

use crate::ids::{ActorId, BoardId, ForumId, PostId, ThreadId};
use crate::model::{Actor, Board, BoardCategory, Forum, Post, Thread};
use serde::{Deserialize, Serialize};
use synthrand::Day;

/// An immutable forum corpus with dense entity storage and secondary
/// indices for the pipeline's access patterns.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    pub(crate) forums: Vec<Forum>,
    pub(crate) boards: Vec<Board>,
    pub(crate) threads: Vec<Thread>,
    pub(crate) posts: Vec<Post>,
    pub(crate) actors: Vec<Actor>,
    /// Post ids per thread, in posting order.
    pub(crate) posts_by_thread: Vec<Vec<PostId>>,
    /// Thread ids per board.
    pub(crate) threads_by_board: Vec<Vec<ThreadId>>,
    /// Post ids per actor, in posting order.
    pub(crate) posts_by_actor: Vec<Vec<PostId>>,
}

impl Corpus {
    /// All forums.
    pub fn forums(&self) -> &[Forum] {
        &self.forums
    }

    /// All boards.
    pub fn boards(&self) -> &[Board] {
        &self.boards
    }

    /// All threads.
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// All posts.
    pub fn posts(&self) -> &[Post] {
        &self.posts
    }

    /// All actors.
    pub fn actors(&self) -> &[Actor] {
        &self.actors
    }

    /// Entity lookups by id. Panics on out-of-range ids: corpus ids are
    /// only ever minted by the builder, so a bad id is a logic error.
    pub fn forum(&self, id: ForumId) -> &Forum {
        &self.forums[id.index()]
    }

    /// Board by id.
    pub fn board(&self, id: BoardId) -> &Board {
        &self.boards[id.index()]
    }

    /// Thread by id.
    pub fn thread(&self, id: ThreadId) -> &Thread {
        &self.threads[id.index()]
    }

    /// Post by id.
    pub fn post(&self, id: PostId) -> &Post {
        &self.posts[id.index()]
    }

    /// Actor by id.
    pub fn actor(&self, id: ActorId) -> &Actor {
        &self.actors[id.index()]
    }

    /// Posts of a thread, in posting order (the first is the initial post).
    pub fn posts_in_thread(&self, id: ThreadId) -> &[PostId] {
        &self.posts_by_thread[id.index()]
    }

    /// The initial post of a thread, if the thread has any posts.
    pub fn first_post(&self, id: ThreadId) -> Option<&Post> {
        self.posts_in_thread(id).first().map(|&p| self.post(p))
    }

    /// Number of replies (posts beyond the initial one).
    pub fn reply_count(&self, id: ThreadId) -> usize {
        self.posts_in_thread(id).len().saturating_sub(1)
    }

    /// Threads of a board.
    pub fn threads_in_board(&self, id: BoardId) -> &[ThreadId] {
        &self.threads_by_board[id.index()]
    }

    /// Posts of an actor, in posting order.
    pub fn posts_by(&self, id: ActorId) -> &[PostId] {
        &self.posts_by_actor[id.index()]
    }

    /// The forum a thread belongs to.
    pub fn forum_of_thread(&self, id: ThreadId) -> ForumId {
        self.board(self.thread(id).board).forum
    }

    /// Boards of `forum` in `category`.
    pub fn boards_in_category(
        &self,
        forum: ForumId,
        category: BoardCategory,
    ) -> impl Iterator<Item = &Board> + '_ {
        self.forum(forum)
            .boards
            .iter()
            .map(|&b| self.board(b))
            .filter(move |b| b.category == category)
    }

    /// Date of the earliest and latest post, if any posts exist.
    pub fn date_span(&self) -> Option<(Day, Day)> {
        let mut it = self.posts.iter().map(|p| p.date);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for d in it {
            lo = lo.min(d);
            hi = hi.max(d);
        }
        Some((lo, hi))
    }

    /// Appends a thread (without its initial post; add that with
    /// [`Corpus::append_post`]) and returns its id. This is the streaming
    /// ingestion primitive: a corpus only ever grows, so epoch replay can
    /// extend an existing corpus in place instead of rebuilding it.
    pub fn append_thread(
        &mut self,
        board: BoardId,
        author: ActorId,
        heading: impl Into<String>,
        created: Day,
    ) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(Thread {
            id,
            board,
            author,
            heading: heading.into(),
            created,
        });
        self.threads_by_board[board.index()].push(id);
        self.posts_by_thread.push(Vec::new());
        id
    }

    /// Appends a post to `thread` and returns its id. Posts must be
    /// appended in chronological order within a thread, and a quote may
    /// only reference an already-appended post (debug builds assert both).
    pub fn append_post(
        &mut self,
        thread: ThreadId,
        author: ActorId,
        date: Day,
        body: impl Into<String>,
        quotes: Option<PostId>,
    ) -> PostId {
        let id = PostId(self.posts.len() as u32);
        if let Some(q) = quotes {
            debug_assert!(q.index() < self.posts.len(), "quote of future post");
        }
        debug_assert!(
            self.posts_by_thread[thread.index()]
                .last()
                .is_none_or(|&p| self.posts[p.index()].date <= date),
            "posts must be appended in chronological order"
        );
        self.posts.push(Post {
            id,
            thread,
            author,
            date,
            body: body.into(),
            quotes,
        });
        self.posts_by_thread[thread.index()].push(id);
        self.posts_by_actor[author.index()].push(id);
        id
    }

    /// Serialises to JSON (mirrors the paper's public data release).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Loads a corpus from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Corpus> {
        serde_json::from_str(json)
    }
}

/// Append-only builder producing a [`Corpus`] with consistent indices.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    corpus: Corpus,
}

impl CorpusBuilder {
    /// Creates an empty builder.
    pub fn new() -> CorpusBuilder {
        CorpusBuilder::default()
    }

    /// Adds a forum and returns its id.
    pub fn add_forum(&mut self, name: impl Into<String>) -> ForumId {
        let id = ForumId(self.corpus.forums.len() as u32);
        self.corpus.forums.push(Forum {
            id,
            name: name.into(),
            boards: Vec::new(),
        });
        id
    }

    /// Adds a board to `forum` and returns its id.
    pub fn add_board(
        &mut self,
        forum: ForumId,
        name: impl Into<String>,
        category: BoardCategory,
    ) -> BoardId {
        let id = BoardId(self.corpus.boards.len() as u32);
        self.corpus.boards.push(Board {
            id,
            forum,
            name: name.into(),
            category,
        });
        self.corpus.forums[forum.index()].boards.push(id);
        self.corpus.threads_by_board.push(Vec::new());
        id
    }

    /// Adds an actor on `forum` and returns their id.
    pub fn add_actor(
        &mut self,
        forum: ForumId,
        name: impl Into<String>,
        registered: Day,
    ) -> ActorId {
        let id = ActorId(self.corpus.actors.len() as u32);
        self.corpus.actors.push(Actor {
            id,
            forum,
            name: name.into(),
            registered,
        });
        self.corpus.posts_by_actor.push(Vec::new());
        id
    }

    /// Adds a thread (without its initial post; add that with
    /// [`CorpusBuilder::add_post`]) and returns its id.
    pub fn add_thread(
        &mut self,
        board: BoardId,
        author: ActorId,
        heading: impl Into<String>,
        created: Day,
    ) -> ThreadId {
        self.corpus.append_thread(board, author, heading, created)
    }

    /// Adds a post to `thread` and returns its id. Posts must be appended
    /// in chronological order within a thread (the generator guarantees
    /// this; debug builds assert it).
    pub fn add_post(
        &mut self,
        thread: ThreadId,
        author: ActorId,
        date: Day,
        body: impl Into<String>,
        quotes: Option<PostId>,
    ) -> PostId {
        self.corpus.append_post(thread, author, date, body, quotes)
    }

    /// Number of posts added so far.
    pub fn post_count(&self) -> usize {
        self.corpus.posts.len()
    }

    /// Posts already added to `thread`, in order (generators need this to
    /// wire quotes when revisiting a thread).
    pub fn posts_in(&self, thread: ThreadId) -> &[PostId] {
        &self.corpus.posts_by_thread[thread.index()]
    }

    /// Finalises the corpus.
    pub fn build(self) -> Corpus {
        self.corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Corpus {
        let mut b = CorpusBuilder::new();
        let f = b.add_forum("TestForum");
        let board = b.add_board(f, "eWhoring", BoardCategory::EWhoring);
        let gaming = b.add_board(f, "Gaming", BoardCategory::Gaming);
        let a1 = b.add_actor(f, "alice", Day::from_ymd(2012, 1, 1));
        let a2 = b.add_actor(f, "bob", Day::from_ymd(2013, 2, 2));
        let t = b.add_thread(board, a1, "selling pack", Day::from_ymd(2014, 3, 3));
        let p0 = b.add_post(
            t,
            a1,
            Day::from_ymd(2014, 3, 3),
            "pack at https://x.com/1",
            None,
        );
        b.add_post(t, a2, Day::from_ymd(2014, 3, 4), "thanks!", Some(p0));
        let t2 = b.add_thread(gaming, a2, "minecraft server", Day::from_ymd(2014, 5, 1));
        b.add_post(t2, a2, Day::from_ymd(2014, 5, 1), "join up", None);
        b.build()
    }

    #[test]
    fn builder_wires_indices() {
        let c = tiny();
        assert_eq!(c.forums().len(), 1);
        assert_eq!(c.boards().len(), 2);
        assert_eq!(c.threads().len(), 2);
        assert_eq!(c.posts().len(), 3);
        let t = c.threads()[0].id;
        assert_eq!(c.posts_in_thread(t).len(), 2);
        assert_eq!(c.reply_count(t), 1);
        assert_eq!(c.first_post(t).unwrap().body, "pack at https://x.com/1");
    }

    #[test]
    fn actor_post_index() {
        let c = tiny();
        let bob = c.actors()[1].id;
        assert_eq!(c.posts_by(bob).len(), 2);
    }

    #[test]
    fn board_category_filter() {
        let c = tiny();
        let f = c.forums()[0].id;
        let ew: Vec<_> = c.boards_in_category(f, BoardCategory::EWhoring).collect();
        assert_eq!(ew.len(), 1);
        assert_eq!(ew[0].name, "eWhoring");
    }

    #[test]
    fn quotes_link_posts() {
        let c = tiny();
        let reply = &c.posts()[1];
        assert_eq!(reply.quotes, Some(c.posts()[0].id));
    }

    #[test]
    fn date_span_covers_posts() {
        let c = tiny();
        let (lo, hi) = c.date_span().unwrap();
        assert_eq!(lo, Day::from_ymd(2014, 3, 3));
        assert_eq!(hi, Day::from_ymd(2014, 5, 1));
    }

    #[test]
    fn empty_corpus_has_no_span() {
        assert!(Corpus::default().date_span().is_none());
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let c = tiny();
        let json = c.to_json().unwrap();
        let back = Corpus::from_json(&json).unwrap();
        assert_eq!(back.posts().len(), c.posts().len());
        assert_eq!(
            back.posts_in_thread(back.threads()[0].id),
            c.posts_in_thread(c.threads()[0].id)
        );
    }

    #[test]
    fn forum_of_thread_resolves_through_board() {
        let c = tiny();
        assert_eq!(c.forum_of_thread(c.threads()[0].id), c.forums()[0].id);
    }
}
