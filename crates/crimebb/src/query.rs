//! Query operations used by the measurement pipeline (paper §3, §5, §6).

use crate::corpus::Corpus;
use crate::ids::{ActorId, ForumId, ThreadId};
use crate::model::BoardCategory;
use std::collections::HashMap;
use synthrand::Day;

impl Corpus {
    /// Threads whose lower-cased heading satisfies `pred`.
    ///
    /// This is the §3 extraction primitive: "we searched for two specific
    /// keywords … in the headings of all the threads" (comparison in
    /// lowercase).
    pub fn threads_where_heading(&self, pred: impl Fn(&str) -> bool) -> Vec<ThreadId> {
        self.threads
            .iter()
            .filter(|t| pred(&t.heading))
            .map(|t| t.id)
            .collect()
    }

    /// All threads in boards of `category` on `forum` (e.g. "all the
    /// threads from the specific board dedicated to eWhoring in
    /// Hackforums").
    pub fn threads_in_category(&self, forum: ForumId, category: BoardCategory) -> Vec<ThreadId> {
        self.boards_in_category(forum, category)
            .flat_map(|b| self.threads_in_board(b.id).iter().copied())
            .collect()
    }

    /// Distinct actors who posted in any of `threads`.
    pub fn actors_in_threads(&self, threads: &[ThreadId]) -> Vec<ActorId> {
        let mut seen = vec![false; self.actors.len()];
        let mut out = Vec::new();
        for &t in threads {
            for &p in self.posts_in_thread(t) {
                let a = self.post(p).author;
                if !seen[a.index()] {
                    seen[a.index()] = true;
                    out.push(a);
                }
            }
        }
        out
    }

    /// Total posts across `threads`.
    pub fn post_count_in(&self, threads: &[ThreadId]) -> usize {
        threads.iter().map(|&t| self.posts_in_thread(t).len()).sum()
    }

    /// Earliest post date across `threads`, if any.
    pub fn earliest_post_in(&self, threads: &[ThreadId]) -> Option<Day> {
        threads
            .iter()
            .filter_map(|&t| self.first_post(t))
            .map(|p| p.date)
            .min()
    }

    /// Per-actor count of posts within `threads` (the paper's
    /// "posts made in eWhoring-related conversations").
    pub fn posts_per_actor_in(&self, threads: &[ThreadId]) -> HashMap<ActorId, usize> {
        let mut counts = HashMap::new();
        for &t in threads {
            for &p in self.posts_in_thread(t) {
                *counts.entry(self.post(p).author).or_insert(0) += 1;
            }
        }
        counts
    }

    /// First and last date an actor posted within `threads`, if they did.
    pub fn actor_span_in(&self, actor: ActorId, threads: &[ThreadId]) -> Option<(Day, Day)> {
        let set: std::collections::HashSet<ThreadId> = threads.iter().copied().collect();
        self.actor_span_in_set(actor, &set)
    }

    /// [`Corpus::actor_span_in`] against a prebuilt thread set. Callers
    /// that query many actors over the same thread list (actor metrics,
    /// currency-exchange gates) build the set once instead of paying a
    /// fresh `HashSet` allocation per actor.
    pub fn actor_span_in_set(
        &self,
        actor: ActorId,
        set: &std::collections::HashSet<ThreadId>,
    ) -> Option<(Day, Day)> {
        let mut lo: Option<Day> = None;
        let mut hi: Option<Day> = None;
        for &p in self.posts_by(actor) {
            let post = self.post(p);
            if set.contains(&post.thread) {
                lo = Some(lo.map_or(post.date, |d: Day| d.min(post.date)));
                hi = Some(hi.map_or(post.date, |d: Day| d.max(post.date)));
            }
        }
        lo.zip(hi)
    }

    /// An actor's first and last posting date anywhere on the forum.
    ///
    /// Posts are stored in per-thread insertion order, which is not
    /// globally chronological, so the span is computed over all dates.
    pub fn actor_activity_span(&self, actor: ActorId) -> Option<(Day, Day)> {
        let mut dates = self.posts_by(actor).iter().map(|&p| self.post(p).date);
        let first = dates.next()?;
        let (lo, hi) = dates.fold((first, first), |(lo, hi), d| (lo.min(d), hi.max(d)));
        Some((lo, hi))
    }

    /// Per-category post counts for an actor, optionally restricted to a
    /// date window (used for before/during/after interest profiles,
    /// Figure 5).
    pub fn actor_interests(
        &self,
        actor: ActorId,
        window: Option<(Day, Day)>,
    ) -> HashMap<BoardCategory, usize> {
        let mut counts = HashMap::new();
        for &p in self.posts_by(actor) {
            let post = self.post(p);
            if let Some((lo, hi)) = window {
                if post.date < lo || post.date > hi {
                    continue;
                }
            }
            let cat = self.board(self.thread(post.thread).board).category;
            *counts.entry(cat).or_insert(0) += 1;
        }
        counts
    }

    /// Threads started by `actor` within `board_category` on their forum,
    /// created on or after `from` (used for the Currency Exchange analysis,
    /// which only counts threads "made after the actors started in
    /// eWhoring").
    pub fn threads_started_by(
        &self,
        actor: ActorId,
        category: BoardCategory,
        from: Option<Day>,
    ) -> Vec<ThreadId> {
        let forum = self.actor(actor).forum;
        self.threads_in_category(forum, category)
            .into_iter()
            .filter(|&t| {
                let th = self.thread(t);
                th.author == actor && from.is_none_or(|d| th.created >= d)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::corpus::CorpusBuilder;
    use crate::model::BoardCategory;
    use synthrand::Day;

    fn corpus() -> crate::Corpus {
        let mut b = CorpusBuilder::new();
        let f = b.add_forum("HF");
        let ew = b.add_board(f, "eWhoring", BoardCategory::EWhoring);
        let ce = b.add_board(f, "Currency Exchange", BoardCategory::CurrencyExchange);
        let gm = b.add_board(f, "Gaming", BoardCategory::Gaming);
        let a1 = b.add_actor(f, "a1", Day::from_ymd(2012, 1, 1));
        let a2 = b.add_actor(f, "a2", Day::from_ymd(2012, 1, 1));

        // a1 posts in gaming first, then starts eWhoring, then CE.
        let g = b.add_thread(gm, a1, "best fps 2013", Day::from_ymd(2013, 1, 1));
        b.add_post(g, a1, Day::from_ymd(2013, 1, 1), "cs!", None);
        let t1 = b.add_thread(ew, a1, "eWhoring pack giveaway", Day::from_ymd(2014, 1, 1));
        let p = b.add_post(t1, a1, Day::from_ymd(2014, 1, 1), "enjoy", None);
        b.add_post(t1, a2, Day::from_ymd(2014, 1, 2), "thanks", Some(p));
        let c1 = b.add_thread(ce, a1, "[H] AGC [W] BTC", Day::from_ymd(2014, 6, 1));
        b.add_post(c1, a1, Day::from_ymd(2014, 6, 1), "rates inside", None);
        let c0 = b.add_thread(ce, a1, "[H] PP [W] BTC", Day::from_ymd(2013, 6, 1));
        b.add_post(c0, a1, Day::from_ymd(2013, 6, 1), "old trade", None);
        b.build()
    }

    #[test]
    fn heading_search_is_callback_driven() {
        let c = corpus();
        let hits = c.threads_where_heading(|h| h.to_lowercase().contains("ewhor"));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn category_threads_and_actors() {
        let c = corpus();
        let f = c.forums()[0].id;
        let ew = c.threads_in_category(f, BoardCategory::EWhoring);
        assert_eq!(ew.len(), 1);
        let actors = c.actors_in_threads(&ew);
        assert_eq!(actors.len(), 2);
        assert_eq!(c.post_count_in(&ew), 2);
    }

    #[test]
    fn actor_spans() {
        let c = corpus();
        let a1 = c.actors()[0].id;
        let (first, last) = c.actor_activity_span(a1).unwrap();
        assert_eq!(first, Day::from_ymd(2013, 1, 1));
        assert_eq!(last, Day::from_ymd(2014, 6, 1));
        let f = c.forums()[0].id;
        let ew = c.threads_in_category(f, BoardCategory::EWhoring);
        let (lo, hi) = c.actor_span_in(a1, &ew).unwrap();
        assert_eq!(lo, hi);
        assert_eq!(lo, Day::from_ymd(2014, 1, 1));
    }

    #[test]
    fn interests_with_window() {
        let c = corpus();
        let a1 = c.actors()[0].id;
        let all = c.actor_interests(a1, None);
        assert_eq!(all[&BoardCategory::Gaming], 1);
        assert_eq!(all[&BoardCategory::CurrencyExchange], 2);
        let before = c.actor_interests(
            a1,
            Some((Day::from_ymd(2000, 1, 1), Day::from_ymd(2013, 12, 31))),
        );
        assert_eq!(before.get(&BoardCategory::EWhoring), None);
        assert_eq!(before[&BoardCategory::Gaming], 1);
    }

    #[test]
    fn threads_started_by_respects_from_date() {
        let c = corpus();
        let a1 = c.actors()[0].id;
        let all = c.threads_started_by(a1, BoardCategory::CurrencyExchange, None);
        assert_eq!(all.len(), 2);
        let after = c.threads_started_by(
            a1,
            BoardCategory::CurrencyExchange,
            Some(Day::from_ymd(2014, 1, 1)),
        );
        assert_eq!(after.len(), 1);
    }

    #[test]
    fn posts_per_actor_counts() {
        let c = corpus();
        let f = c.forums()[0].id;
        let ew = c.threads_in_category(f, BoardCategory::EWhoring);
        let counts = c.posts_per_actor_in(&ew);
        assert_eq!(counts.len(), 2);
        assert!(counts.values().all(|&v| v == 1));
    }
}
