//! Corpus entity types.

use crate::ids::{ActorId, BoardId, ForumId, PostId, ThreadId};
use serde::{Deserialize, Serialize};
use synthrand::Day;

/// Hackforums-style board categories, used for the interest analysis of
/// paper §6 (Figure 5 tracks Gaming / Hacking / Market / Money / Coding /
/// Common interests) and for locating the special boards the pipeline
/// queries directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BoardCategory {
    /// The dedicated eWhoring section (Hackforums analogue only).
    EWhoring,
    /// The Currency Exchange board used to cash out (§5.1).
    CurrencyExchange,
    /// "Bragging Rights": earnings show-off threads (§5.1).
    BraggingRights,
    /// Gaming boards — a common entry interest (§6.3).
    Gaming,
    /// Hacking boards.
    Hacking,
    /// Programming/coding boards.
    Coding,
    /// Marketplace boards (buying/selling goods and services).
    Market,
    /// Money-making boards other than eWhoring.
    Money,
    /// Technology boards.
    Tech,
    /// Rules, announcements, entertainment ("Common" in Figure 5).
    Common,
    /// "The Lounge" — excluded from the §6.3 interest analysis.
    Lounge,
}

impl BoardCategory {
    /// All categories, in a stable rendering order.
    pub const ALL: &'static [BoardCategory] = &[
        BoardCategory::EWhoring,
        BoardCategory::CurrencyExchange,
        BoardCategory::BraggingRights,
        BoardCategory::Gaming,
        BoardCategory::Hacking,
        BoardCategory::Coding,
        BoardCategory::Market,
        BoardCategory::Money,
        BoardCategory::Tech,
        BoardCategory::Common,
        BoardCategory::Lounge,
    ];

    /// Human-readable label (Figure 5 axis labels).
    pub fn label(&self) -> &'static str {
        match self {
            BoardCategory::EWhoring => "eWhoring",
            BoardCategory::CurrencyExchange => "Currency Exchange",
            BoardCategory::BraggingRights => "Bragging Rights",
            BoardCategory::Gaming => "Gaming",
            BoardCategory::Hacking => "Hacking",
            BoardCategory::Coding => "Coding",
            BoardCategory::Market => "Market",
            BoardCategory::Money => "Money",
            BoardCategory::Tech => "Tech",
            BoardCategory::Common => "Common",
            BoardCategory::Lounge => "Lounge",
        }
    }
}

/// A forum (one of the 10 with eWhoring activity in the dataset).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Forum {
    /// Dense id.
    pub id: ForumId,
    /// Display name (e.g. "Hackforums").
    pub name: String,
    /// Boards belonging to this forum.
    pub boards: Vec<BoardId>,
}

/// A board within a forum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Board {
    /// Dense id.
    pub id: BoardId,
    /// Owning forum.
    pub forum: ForumId,
    /// Display name.
    pub name: String,
    /// Interest category.
    pub category: BoardCategory,
}

/// A conversation thread: an initial post plus replies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Thread {
    /// Dense id.
    pub id: ThreadId,
    /// Board the thread lives in.
    pub board: BoardId,
    /// The thread starter.
    pub author: ActorId,
    /// Heading — "summarises the topic of conversation" (§3); all heading
    /// queries match on this.
    pub heading: String,
    /// Creation date (date of the first post).
    pub created: Day,
}

/// A single post.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Post {
    /// Dense id.
    pub id: PostId,
    /// Thread this post belongs to.
    pub thread: ThreadId,
    /// Author.
    pub author: ActorId,
    /// Posting date.
    pub date: Day,
    /// Body text (template-generated in the synthetic corpus).
    pub body: String,
    /// Post explicitly quoted by this one, if any — drives the §6.1
    /// interaction graph ("A explicitly quotes a post made by B").
    pub quotes: Option<PostId>,
}

/// A forum member.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Actor {
    /// Dense id (corpus-global; each actor belongs to one forum).
    pub id: ActorId,
    /// Forum the account lives on.
    pub forum: ForumId,
    /// Nickname (synthetic).
    pub name: String,
    /// Registration date.
    pub registered: Day,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_categories_have_unique_labels() {
        use std::collections::HashSet;
        let labels: HashSet<&str> = BoardCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), BoardCategory::ALL.len());
    }

    #[test]
    fn entities_serialise_roundtrip() {
        let t = Thread {
            id: ThreadId(3),
            board: BoardId(1),
            author: ActorId(9),
            heading: "[TUT] ewhoring guide".into(),
            created: Day::from_ymd(2015, 6, 1),
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: Thread = serde_json::from_str(&json).unwrap();
        assert_eq!(back.heading, t.heading);
        assert_eq!(back.created, t.created);
    }
}
