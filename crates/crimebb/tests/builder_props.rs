//! Property tests: any build sequence leaves the corpus indices
//! consistent.

use crimebb::{BoardCategory, Corpus, CorpusBuilder};
use proptest::prelude::*;
use synthrand::Day;

/// A randomly-shaped corpus: `threads[t] = (board, n_posts)`.
fn build(n_boards: usize, n_actors: usize, threads: &[(usize, usize)]) -> Corpus {
    let mut b = CorpusBuilder::new();
    let forum = b.add_forum("F");
    let boards: Vec<_> = (0..n_boards)
        .map(|i| {
            b.add_board(
                forum,
                format!("board{i}"),
                if i % 2 == 0 {
                    BoardCategory::EWhoring
                } else {
                    BoardCategory::Gaming
                },
            )
        })
        .collect();
    let actors: Vec<_> = (0..n_actors)
        .map(|i| b.add_actor(forum, format!("a{i}"), Day::from_ymd(2010, 1, 1)))
        .collect();
    let mut day = Day::from_ymd(2012, 1, 1);
    for &(board, n_posts) in threads {
        let author = actors[board % actors.len()];
        let t = b.add_thread(boards[board % boards.len()], author, "t", day);
        let mut quote = None;
        for p in 0..n_posts {
            let who = actors[(board + p) % actors.len()];
            let id = b.add_post(t, who, day, "body", quote);
            quote = Some(id);
            day = day.plus_days(1);
        }
        day = day.plus_days(1);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indices_are_consistent(
        n_boards in 1usize..5,
        n_actors in 1usize..8,
        threads in prop::collection::vec((0usize..5, 1usize..6), 1..20),
    ) {
        let c = build(n_boards, n_actors, &threads);

        // Posts-by-thread covers every post exactly once.
        let mut seen = vec![false; c.posts().len()];
        for t in c.threads() {
            for &p in c.posts_in_thread(t.id) {
                prop_assert!(!seen[p.index()], "post in two threads");
                seen[p.index()] = true;
                prop_assert_eq!(c.post(p).thread, t.id);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));

        // Posts-by-actor covers every post exactly once too.
        let total: usize = c.actors().iter().map(|a| c.posts_by(a.id).len()).sum();
        prop_assert_eq!(total, c.posts().len());
        for a in c.actors() {
            for &p in c.posts_by(a.id) {
                prop_assert_eq!(c.post(p).author, a.id);
            }
        }

        // Threads-by-board covers every thread exactly once.
        let total_threads: usize = c
            .boards()
            .iter()
            .map(|b| c.threads_in_board(b.id).len())
            .sum();
        prop_assert_eq!(total_threads, c.threads().len());

        // Every thread has its initial post and reply_count = posts - 1.
        for t in c.threads() {
            prop_assert!(c.first_post(t.id).is_some());
            prop_assert_eq!(c.reply_count(t.id) + 1, c.posts_in_thread(t.id).len());
        }

        // Quotes point backwards within the same thread.
        for p in c.posts() {
            if let Some(q) = p.quotes {
                prop_assert!(q < p.id);
                prop_assert_eq!(c.post(q).thread, p.thread);
            }
        }

        // JSON round trip preserves the whole structure.
        let back = Corpus::from_json(&c.to_json().unwrap()).unwrap();
        prop_assert_eq!(back.posts().len(), c.posts().len());
        prop_assert_eq!(back.threads().len(), c.threads().len());
    }

    #[test]
    fn date_span_bounds_every_query(
        threads in prop::collection::vec((0usize..3, 1usize..5), 1..12),
    ) {
        let c = build(2, 3, &threads);
        let (lo, hi) = c.date_span().unwrap();
        for a in c.actors() {
            if let Some((first, last)) = c.actor_activity_span(a.id) {
                prop_assert!(first >= lo && last <= hi);
                prop_assert!(first <= last);
            }
        }
        let ew: Vec<_> = c
            .threads_in_category(c.forums()[0].id, BoardCategory::EWhoring);
        if let Some(earliest) = c.earliest_post_in(&ew) {
            prop_assert!(earliest >= lo);
        }
    }
}
