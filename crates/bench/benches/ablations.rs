//! Ablations of the design choices DESIGN.md calls out:
//!
//! * hybrid OR-combination vs its two halves (paper §4.1: the hybrid
//!   catches patterns either side misses);
//! * 3-samples-per-pack reverse search vs 1/5/exhaustive (the paper's
//!   cost cap);
//! * Algorithm 1 threshold sweep (the conservative operating point);
//! * Linear SVM vs logistic regression (the paper's model choice).
//!
//! Each bench also prints the quality numbers once so the trade-off, not
//! just the cost, is visible in the bench log.

use criterion::{criterion_group, criterion_main, Criterion};
use ewhoring_bench::small_world;
use ewhoring_core::extract::extract_ewhoring_threads;
use ewhoring_core::nsfv::{algorithm1_with_thresholds, ImageMeasures};
use ewhoring_core::topcls::{classify_tops, heuristic_is_top};
use imagesim::validation::{build_validation_set, ValidationLabel};
use linsvm::{
    LinearSvm, LogRegConfig, LogisticRegression, NaiveBayes, NaiveBayesConfig, SparseVec, SvmConfig,
};
use std::hint::black_box;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn bench_ablations(c: &mut Criterion) {
    let world = small_world();
    let threads = extract_ewhoring_threads(&world.corpus).all_threads();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    // --- hybrid vs halves ---
    let mut rng = synthrand::rng_from_seed(3);
    let (classifier, result) = classify_tops(
        &mut rng,
        &world.corpus,
        &world.catalog,
        &world.truth,
        &threads,
        1,
    );
    PRINT_ONCE.call_once(|| {
        eprintln!(
            "[ablation] hybrid F1 {:.3} | ML F1 {:.3} | heuristic F1 {:.3} | union {} = ml {} + heur {} - both {}",
            result.hybrid_metrics.f1,
            result.ml_metrics.f1,
            result.heuristic_metrics.f1,
            result.detected.len(),
            result.ml_count,
            result.heuristic_count,
            result.both_count,
        );
    });
    group.bench_function("topcls_ml_only_apply", |b| {
        b.iter(|| {
            threads
                .iter()
                .filter(|&&t| classifier.ml_is_top(&world.corpus, &world.catalog, t))
                .count()
        })
    });
    group.bench_function("topcls_heuristic_only_apply", |b| {
        b.iter(|| {
            threads
                .iter()
                .filter(|&&t| heuristic_is_top(&world.corpus, &world.catalog, t))
                .count()
        })
    });

    // --- pack sampling depth ---
    // Build per-pack measures once; compare match rates at depths 1/3/5/all.
    let crawl = ewhoring_core::crawl::crawl_tops(
        &world.corpus,
        &world.catalog,
        &world.web,
        &result.detected,
    );
    let pack_measures: Vec<(synthrand::Day, Vec<ImageMeasures>)> = crawl
        .packs
        .iter()
        .take(25)
        .map(|p| {
            (
                p.link.posted,
                p.images
                    .iter()
                    .take(24)
                    .map(|img| ImageMeasures::of(&img.render()))
                    .collect(),
            )
        })
        .collect();
    let match_rate = |depth: usize| -> (f64, usize) {
        let mut queried = 0usize;
        let mut matched_packs = 0usize;
        for (_, images) in &pack_measures {
            let mut sorted = images.clone();
            sorted.sort_by(|a, b| a.nsfw.partial_cmp(&b.nsfw).unwrap());
            let take: Vec<&ImageMeasures> = if depth == usize::MAX {
                sorted.iter().collect()
            } else {
                // Spread-depth sampling generalising low/median/high.
                (0..depth.min(sorted.len()))
                    .map(|i| &sorted[i * (sorted.len() - 1) / depth.max(1).min(sorted.len())])
                    .collect()
            };
            queried += take.len();
            if take.iter().any(|m| !world.index.query(&m.hash).is_empty()) {
                matched_packs += 1;
            }
        }
        (
            matched_packs as f64 / pack_measures.len().max(1) as f64,
            queried,
        )
    };
    PRINT_ONCE.call_once(|| {}); // keep Once used once only
    let (r1, q1) = match_rate(1);
    let (r3, q3) = match_rate(3);
    let (r5, q5) = match_rate(5);
    let (rall, qall) = match_rate(usize::MAX);
    eprintln!(
        "[ablation] pack-match rate by sampling depth: 1→{r1:.2} ({q1} queries), 3→{r3:.2} ({q3}), 5→{r5:.2} ({q5}), all→{rall:.2} ({qall})"
    );
    for (label, depth) in [("depth1", 1usize), ("depth3", 3), ("depth5", 5)] {
        group.bench_function(format!("pack_sampling_{label}"), |b| {
            b.iter(|| black_box(match_rate(depth)))
        });
    }

    // --- Algorithm 1 threshold sweep ---
    let validation = build_validation_set(0xA1);
    let measured: Vec<(ImageMeasures, ValidationLabel)> = validation
        .iter()
        .map(|v| (ImageMeasures::of(&v.spec.render()), v.label))
        .collect();
    let sweep = |fast_path: f64, cutoff: f64| -> (f64, f64) {
        let mut nude = (0usize, 0usize);
        let mut fp = (0usize, 0usize);
        for (m, label) in &measured {
            let nsfv = !algorithm1_with_thresholds(m.nsfw, m.ocr, fast_path, cutoff, 0.05, 10, 20);
            if *label == ValidationLabel::Nude {
                nude.1 += 1;
                if nsfv {
                    nude.0 += 1;
                }
            } else {
                fp.1 += 1;
                if nsfv {
                    fp.0 += 1;
                }
            }
        }
        (nude.0 as f64 / nude.1 as f64, fp.0 as f64 / fp.1 as f64)
    };
    for (fast_path, cutoff) in [
        (0.002, 0.3),
        (0.01, 0.3), // the paper's operating point
        (0.05, 0.3),
        (0.15, 0.3),
        (0.01, 0.85),
        (0.01, 0.97),
    ] {
        let (recall, fpr) = sweep(fast_path, cutoff);
        eprintln!(
            "[ablation] Algorithm 1 fast-path {fast_path} / cutoff {cutoff}: recall {recall:.3}, fp {fpr:.3}"
        );
    }
    group.bench_function("algorithm1_sweep", |b| {
        b.iter(|| black_box(sweep(0.01, 0.3)))
    });

    // --- SVM vs logistic regression ---
    let mut rng = synthrand::rng_from_seed(11);
    let rows: Vec<SparseVec> = (0..600)
        .map(|_| {
            use rand::Rng;
            SparseVec::from_pairs(vec![
                (0, rng.gen_range(0.0..1.0)),
                (1, rng.gen_range(0.0..1.0)),
            ])
        })
        .collect();
    let labels: Vec<bool> = rows.iter().map(|r| r.get(0) > r.get(1)).collect();
    let svm = LinearSvm::train(&rows, &labels, SvmConfig::default());
    let lr = LogisticRegression::train(&rows, &labels, LogRegConfig::default());
    let nb = NaiveBayes::train(&rows, &labels, NaiveBayesConfig::default());
    eprintln!(
        "[ablation] model choice on held-in data: SVM F1 {:.3} vs LogReg F1 {:.3} vs NaiveBayes F1 {:.3}",
        svm.evaluate(&rows, &labels).f1,
        lr.evaluate(&rows, &labels).f1,
        nb.evaluate(&rows, &labels).f1
    );
    group.bench_function("train_linear_svm", |b| {
        b.iter(|| black_box(LinearSvm::train(&rows, &labels, SvmConfig::default()).dim()))
    });
    group.bench_function("train_logreg", |b| {
        b.iter(|| {
            black_box(LogisticRegression::train(
                &rows,
                &labels,
                LogRegConfig::default(),
            ))
            .predict(&rows[0])
        })
    });
    group.bench_function("train_naive_bayes", |b| {
        b.iter(|| {
            black_box(NaiveBayes::train(
                &rows,
                &labels,
                NaiveBayesConfig::default(),
            ))
            .predict(&rows[0])
        })
    });

    // --- influence metric: eigenvector centrality vs PageRank ---
    // How stable is the §6.3 "influencing actors" selection under the
    // choice of influence measure?
    let graph = ewhoring_core::actors::interaction_graph(&world.corpus, &threads);
    let ev = socgraph::eigenvector_centrality(&graph, 200);
    let pr = socgraph::pagerank(&graph, 0.85, 200);
    let top_k = |scores: &[f64], k: usize| -> std::collections::HashSet<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
        idx.into_iter().take(k).collect()
    };
    let k = 25;
    let overlap = top_k(&ev, k).intersection(&top_k(&pr, k)).count();
    eprintln!(
        "[ablation] influence metric: top-{k} eigenvector vs PageRank overlap = {overlap}/{k}"
    );
    group.bench_function("influence_eigenvector", |b| {
        b.iter(|| black_box(socgraph::eigenvector_centrality(&graph, 100).len()))
    });
    group.bench_function("influence_pagerank", |b| {
        b.iter(|| black_box(socgraph::pagerank(&graph, 0.85, 100).len()))
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
