//! One benchmark per paper *figure*: regenerating the numeric series each
//! figure plots.

use criterion::{criterion_group, criterion_main, Criterion};
use ewhoring_bench::{small_report, small_world};
use ewhoring_core::actors::{actor_metrics, interest_evolution};
use ewhoring_core::extract::extract_ewhoring_threads;
use ewhoring_core::finance::{analyse_earnings, harvest_earnings};
use ewhoring_core::report::{self, quantiles};
use safety::SafetyGate;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let world = small_world();
    let r = small_report();
    let threads = extract_ewhoring_threads(&world.corpus).all_threads();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    // Figure 2: the §5.1 harvest (crawl + screen + NSFV + annotate) plus
    // per-actor aggregation and CDF quantiles.
    group.bench_function("fig2_earnings_harvest_and_cdf", |b| {
        b.iter(|| {
            let gate = SafetyGate::new(world.hashlist.clone());
            let h = harvest_earnings(world, &gate, &threads);
            let a = analyse_earnings(&h);
            let usd: Vec<f64> = a.per_actor.iter().map(|&(u, _)| u).collect();
            black_box(quantiles(&usd, &[0.25, 0.5, 0.75, 0.9, 0.99]))
        })
    });

    // Figure 3: monthly platform series from already harvested proofs.
    group.bench_function("fig3_platform_evolution", |b| {
        b.iter(|| black_box(report::fig3(r).len()))
    });

    // Figure 4: per-cohort CDF quantiles of actor metrics.
    group.bench_function("fig4_actor_cdfs", |b| {
        b.iter(|| {
            let m = actor_metrics(&world.corpus, &threads);
            let before: Vec<f64> = m.iter().map(|x| f64::from(x.days_before)).collect();
            black_box(quantiles(&before, &[0.5, 0.9]))
        })
    });

    // Figure 5: interest evolution over the key actors.
    group.bench_function("fig5_interest_evolution", |b| {
        let metrics = actor_metrics(&world.corpus, &threads);
        b.iter(|| {
            let evo = interest_evolution(&world.corpus, &metrics, &r.key_actors.all);
            black_box(evo.shares.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
