//! One benchmark per paper *table*: the cost of regenerating each from a
//! pre-built world. Criterion timings measure the pipeline stage that
//! produces the table; correctness lives in the test suites.

use criterion::{criterion_group, criterion_main, Criterion};
use ewhoring_bench::{bench_options, small_report, small_world};
use ewhoring_core::actors::{
    actor_metrics, cohort_table, group_profiles, interaction_graph, popularity, select_key_actors,
    KeyActorInputs,
};
use ewhoring_core::crawl::crawl_tops;
use ewhoring_core::extract::extract_ewhoring_threads;
use ewhoring_core::finance::analyse_currency_exchange;
use ewhoring_core::provenance::analyse_provenance;
use ewhoring_core::report;
use ewhoring_core::topcls::classify_tops;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let world = small_world();
    let threads = extract_ewhoring_threads(&world.corpus).all_threads();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);

    // Table 1: extraction over the whole corpus.
    group.bench_function("table1_extraction", |b| {
        b.iter(|| black_box(extract_ewhoring_threads(&world.corpus)).len())
    });

    // §4.1: annotate, train, evaluate, apply (drives the Table 1 TOPs
    // column).
    group.bench_function("table1_topcls_train_eval", |b| {
        b.iter(|| {
            let mut rng = synthrand::rng_from_seed(7);
            let (_, r) = classify_tops(
                &mut rng,
                &world.corpus,
                &world.catalog,
                &world.truth,
                &threads,
                1,
            );
            black_box(r.detected.len())
        })
    });

    // Tables 3/4: snowball + link extraction + crawl.
    let mut rng = synthrand::rng_from_seed(7);
    let (_, tops) = classify_tops(
        &mut rng,
        &world.corpus,
        &world.catalog,
        &world.truth,
        &threads,
        1,
    );
    group.bench_function("tables3_4_crawl", |b| {
        b.iter(|| {
            let r = crawl_tops(&world.corpus, &world.catalog, &world.web, &tops.detected);
            black_box(r.previews.len() + r.packs.len())
        })
    });

    // Table 5/6: reverse search + domain classification.
    let crawl = crawl_tops(&world.corpus, &world.catalog, &world.web, &tops.detected);
    let packs: Vec<ewhoring_core::provenance::PackForAnalysis> = crawl
        .packs
        .iter()
        .take(30)
        .map(|p| ewhoring_core::provenance::PackForAnalysis {
            thread: p.link.thread,
            posted: p.link.posted,
            images: p
                .images
                .iter()
                .take(9)
                .map(|img| ewhoring_core::nsfv::ImageMeasures::of(&img.render()))
                .collect(),
        })
        .collect();
    let authors: Vec<_> = crawl
        .packs
        .iter()
        .take(30)
        .map(|p| world.corpus.thread(p.link.thread).author)
        .collect();
    group.bench_function("tables5_6_reverse_search", |b| {
        b.iter(|| {
            let out = analyse_provenance(
                &world.index,
                &world.wayback,
                &world.origins,
                &packs,
                &authors,
                &[],
            );
            black_box(out.packs.matched)
        })
    });

    // Table 7: CE heading parse + aggregation.
    group.bench_function("table7_currency_exchange", |b| {
        b.iter(|| {
            let out = analyse_currency_exchange(&world.corpus, world.hackforums, &threads);
            black_box(out.threads)
        })
    });

    // Table 8: per-actor metrics + cohorts.
    group.bench_function("table8_cohorts", |b| {
        b.iter(|| {
            let m = actor_metrics(&world.corpus, &threads);
            black_box(cohort_table(&m).len())
        })
    });

    // Tables 9/10: graph + centrality + key actors + profiles.
    group.bench_function("tables9_10_key_actors", |b| {
        let metrics = actor_metrics(&world.corpus, &threads);
        let graph = interaction_graph(&world.corpus, &threads);
        let pop = popularity(&world.corpus, &threads);
        let packs_by_actor: HashMap<_, _> = HashMap::new();
        let earnings = world.truth.earnings_by_actor.clone();
        let ce: HashMap<_, _> = HashMap::new();
        b.iter(|| {
            let inputs = KeyActorInputs {
                metrics: &metrics,
                packs_by_actor: &packs_by_actor,
                earnings_by_actor: &earnings,
                popularity: &pop,
                graph: &graph,
                ce_by_actor: &ce,
            };
            let key = select_key_actors(&inputs, bench_options().k_key_actors, 1);
            black_box(group_profiles(&inputs, &key).len())
        })
    });

    // Rendering every table from a finished report (string assembly).
    let r = small_report();
    group.bench_function("render_all_tables", |b| {
        b.iter(|| {
            black_box(report::table1(r).len())
                + black_box(report::tables3_4(r).len())
                + black_box(report::table5(r).len())
                + black_box(report::table6(r).len())
                + black_box(report::table7(r).len())
                + black_box(report::table8(r).len())
                + black_box(report::table9(r).len())
                + black_box(report::table10(r).len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
