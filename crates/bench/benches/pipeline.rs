//! Whole-system benchmarks: world generation and the end-to-end pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use ewhoring_bench::{small_world, BENCH_SEED};
use ewhoring_core::pipeline::{measure_batch, Pipeline, PipelineOptions};
use std::hint::black_box;
use websim::{HostedObject, StoredImage};
use worldgen::{World, WorldConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    // Deterministic world generation (corpus + web + index + truth).
    group.bench_function("world_generation_2pct", |b| {
        b.iter(|| {
            let w = World::generate(WorldConfig::test_scale(BENCH_SEED));
            black_box(w.corpus.posts().len())
        })
    });

    // The full eight-stage pipeline over a pre-built world.
    let world = small_world();
    group.bench_function("pipeline_end_to_end_2pct", |b| {
        b.iter(|| {
            let r = Pipeline::new(PipelineOptions {
                k_key_actors: 10,
                ..PipelineOptions::default()
            })
            .run(world);
            black_box(r.funnel.unique_files)
        })
    });

    // Parallel image measurement (render + hash + NSFW + OCR), the only
    // pixel-touching stage.
    let images: Vec<StoredImage> = world
        .web
        .urls()
        .filter_map(|u| world.web.entry(u))
        .filter_map(|e| match &e.object {
            HostedObject::Pack { images } => Some(images.clone()),
            _ => None,
        })
        .flatten()
        .take(2_000)
        .collect();
    group.bench_function("measure_2000_images_parallel", |b| {
        b.iter(|| black_box(measure_batch(&images, 0).len()))
    });
    group.bench_function("measure_500_images_serial", |b| {
        b.iter(|| black_box(measure_batch(&images[..500.min(images.len())], 1).len()))
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
