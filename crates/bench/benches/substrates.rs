//! Micro-benchmarks of the substrate algorithms the pipeline is built on.

use criterion::{criterion_group, criterion_main, Criterion};
use ewhoring_bench::small_world;
use ewhoring_core::actors::interaction_graph;
use ewhoring_core::extract::extract_ewhoring_threads;
use imagesim::{nsfw_score, ocr_word_count, ImageClass, ImageSpec, RobustHash};
use linsvm::{LinearSvm, SparseVec, SvmConfig};
use socgraph::eigenvector_centrality;
use std::hint::black_box;
use synthrand::{rng_from_seed, LogNormal, Zipf};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);

    // Image rendering and the three per-image measurements.
    let spec = ImageSpec::model_photo(ImageClass::ModelNude, 42, 7);
    let bmp = spec.render();
    group.bench_function("render_model_photo", |b| {
        b.iter(|| black_box(spec.render().width()))
    });
    group.bench_function("robust_hash_256bit", |b| {
        b.iter(|| black_box(RobustHash::of(&bmp)))
    });
    group.bench_function("nsfw_score", |b| b.iter(|| black_box(nsfw_score(&bmp))));
    group.bench_function("ocr_word_count", |b| {
        let shot = ImageSpec::of(
            ImageClass::PaymentScreenshot(imagesim::PaymentPlatform::PayPal),
            3,
        )
        .render();
        b.iter(|| black_box(ocr_word_count(&shot)))
    });

    // Reverse-index query against the shared world's index.
    let world = small_world();
    let hash = RobustHash::of(&bmp);
    group.bench_function("reverse_index_query", |b| {
        b.iter(|| black_box(world.index.query(&hash).len()))
    });

    // Hash-list screening.
    group.bench_function("hashlist_match", |b| {
        b.iter(|| black_box(world.hashlist.match_hash(&hash).is_some()))
    });

    // Linear SVM training on a synthetic separable set.
    let mut rng = rng_from_seed(5);
    let rows: Vec<SparseVec> = (0..800)
        .map(|_| {
            use rand::Rng;
            SparseVec::from_pairs(vec![
                (0, rng.gen_range(0.0..1.0)),
                (1, rng.gen_range(0.0..1.0)),
                (rng.gen_range(2..200), 1.0),
            ])
        })
        .collect();
    let labels: Vec<bool> = rows.iter().map(|r| r.get(0) > r.get(1)).collect();
    group.bench_function("svm_train_800x200", |b| {
        b.iter(|| black_box(LinearSvm::train(&rows, &labels, SvmConfig::default()).dim()))
    });

    // Eigenvector centrality over the real interaction graph.
    let threads = extract_ewhoring_threads(&world.corpus).all_threads();
    let graph = interaction_graph(&world.corpus, &threads);
    group.bench_function("eigenvector_centrality", |b| {
        b.iter(|| black_box(eigenvector_centrality(&graph, 100).len()))
    });

    // Samplers.
    group.bench_function("zipf_sample_10k", |b| {
        let z = Zipf::new(10_000, 1.1);
        let mut rng = rng_from_seed(9);
        b.iter(|| black_box(z.sample(&mut rng)))
    });
    group.bench_function("lognormal_sample", |b| {
        let d = LogNormal::from_median(4.0, 1.5);
        let mut rng = rng_from_seed(10);
        b.iter(|| black_box(d.sample(&mut rng)))
    });

    // URL extraction over a typical TOP body.
    let body = "Fresh pack! Download: https://mediafire.com/f/abc123 \
                Preview: https://i.imgur.com/x1y2z3 Preview: https://gyazo.com/q9w8e7 enjoy";
    group.bench_function("url_extraction", |b| {
        b.iter(|| black_box(textkit::extract_urls(body).len()))
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
