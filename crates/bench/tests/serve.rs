//! End-to-end tests of the pipeline service over a real TCP socket:
//! the full request/response lifecycle, byte-identical wire-delivered
//! snapshots, and single-flight collapse of concurrent identical runs.

use ewhoring_bench::cli::ServeArgs;
use ewhoring_bench::proto::{Request, Response};
use ewhoring_bench::serve::Server;
use ewhoring_core::pipeline::{snapshot_json, stream_world, Pipeline, RunSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use worldgen::World;

fn tiny(seed: u64) -> RunSpec {
    RunSpec {
        scale: 0.01,
        seed,
        workers: 1,
        faults: 0.0,
        corruption: 0.0,
        epochs: 0,
        upto: 0,
        shards: 0,
    }
}

/// Binds an ephemeral-port server with `pool` workers and serves it on
/// a background thread until `shutdown`.
fn start_server(pool: usize) -> (Arc<Server>, std::thread::JoinHandle<()>, String) {
    let args = ServeArgs {
        addr: "127.0.0.1:0".to_string(),
        pool,
        journal_dir: None,
        port_file: None,
    };
    let server = Arc::new(Server::bind(&args).expect("bind ephemeral port"));
    let addr = server.local_addr().to_string();
    let background = Arc::clone(&server);
    let handle = std::thread::spawn(move || {
        background.run().expect("server runs until shutdown");
    });
    (server, handle, addr)
}

struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Wire {
    fn connect(addr: &str) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect to server");
        let writer = stream.try_clone().expect("clone stream");
        Wire {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send_line(&mut self, line: &str) -> Response {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .expect("send request");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        Response::parse(response.trim_end()).expect("parse response")
    }

    fn call(&mut self, request: &Request) -> Response {
        self.send_line(&request.encode())
    }
}

#[test]
fn full_lifecycle_over_the_wire_matches_the_batch_snapshot() {
    let (_server, handle, addr) = start_server(2);
    let spec = tiny(0xF00D);
    let mut wire = Wire::connect(&addr);

    // Unknown key before any run.
    let key = spec.run_key().expect("run key");
    let status = wire.call(&Request::Status(key.clone()));
    assert!(status.is_ok());
    assert_eq!(status.str_field("status"), Some("unknown"));
    let miss = wire.call(&Request::Report(key.clone()));
    assert!(!miss.is_ok());
    assert!(miss.error_text().unwrap_or_default().contains("unknown"));

    // Run: the response hands back the key, uncached on first sight.
    let run = wire.call(&Request::Run(spec));
    assert!(run.is_ok(), "{:?}", run.error_text());
    assert_eq!(run.str_field("run_key"), Some(key.as_str()));
    assert_eq!(run.bool_field("cached"), Some(false));

    // Status flips to ready; rerun is a cache hit.
    let status = wire.call(&Request::Status(key.clone()));
    assert_eq!(status.str_field("status"), Some("ready"));
    let rerun = wire.call(&Request::Run(spec));
    assert_eq!(rerun.bool_field("cached"), Some(true));

    // The wire-delivered snapshot is byte-identical to a batch run of
    // the same spec (the acceptance criterion behind `smoke-serve`).
    let report = wire.call(&Request::Report(key.clone()));
    assert!(report.is_ok(), "{:?}", report.error_text());
    let wire_snapshot = report.str_field("snapshot").expect("snapshot field");
    let world = World::generate(spec.world_config());
    let batch = Pipeline::new(spec.options()).run(&world);
    assert_eq!(
        wire_snapshot,
        snapshot_json(&batch).expect("batch snapshot")
    );

    // Health carries per-stage timings, quarantine, crawl counters.
    let health = wire.call(&Request::Health(key.clone()));
    assert!(health.is_ok());
    let payload = health.field("health").and_then(|v| v.as_object()).unwrap();
    let stages = payload.get("stages").and_then(|v| v.as_array()).unwrap();
    assert!(!stages.is_empty());
    assert!(payload.get("crawl").and_then(|v| v.as_object()).is_some());
    assert!(payload.get("quarantined_records").is_some());
    // Supervision counters ride along; all zero for an unsharded run.
    let supervision = payload
        .get("supervision")
        .and_then(|v| v.as_object())
        .expect("supervision object");
    for field in ["shards_run", "shards_restarted", "shards_quarantined"] {
        assert_eq!(
            supervision.get(field).and_then(serde::Value::as_u64),
            Some(0),
            "{field} of an unsharded run"
        );
    }

    // A malformed line is an error response, not a dropped connection.
    let bad = wire.send_line(r#"{"cmd":"fly"}"#);
    assert!(!bad.is_ok());
    assert!(bad.error_text().unwrap_or_default().contains("unknown cmd"));

    // Shutdown ends the server; the run thread joins.
    let down = wire.call(&Request::Shutdown);
    assert!(down.is_ok());
    handle.join().expect("server thread exits after shutdown");
}

/// The epoch-serving acceptance test: `advance` steps a streamed spec
/// one epoch per request, and the final wire-delivered snapshot is
/// byte-identical to a batch run of the same spec — the epoch
/// equivalence guarantee, observed through the service surface.
#[test]
fn advance_over_the_wire_matches_the_batch_stream_snapshot() {
    let (_server, handle, addr) = start_server(2);
    let spec = RunSpec {
        epochs: 2,
        ..tiny(0xABE)
    };
    let mut wire = Wire::connect(&addr);

    // `advance` on a batch spec is a described error, not a crash.
    let batch_spec = tiny(0xABE);
    let bad = wire.call(&Request::Advance(batch_spec));
    assert!(!bad.is_ok());
    assert!(bad.error_text().unwrap_or_default().contains("epochs"));

    // `upto: 0` means "one epoch further": two calls reach the final
    // epoch of 2.
    let first = wire.call(&Request::Advance(spec));
    assert!(first.is_ok(), "{:?}", first.error_text());
    assert_eq!(first.field("epoch").and_then(serde::Value::as_u64), Some(1));
    let second = wire.call(&Request::Advance(spec));
    assert!(second.is_ok(), "{:?}", second.error_text());
    assert_eq!(
        second.field("epoch").and_then(serde::Value::as_u64),
        Some(2)
    );
    let wire_snapshot = second.str_field("snapshot").expect("snapshot field");

    // Past the final epoch and rewinds are described errors.
    let past = wire.call(&Request::Advance(spec));
    assert!(!past.is_ok());
    assert!(past.error_text().unwrap_or_default().contains("final"));
    let rewind = wire.call(&Request::Advance(RunSpec { upto: 1, ..spec }));
    assert!(!rewind.is_ok());
    assert!(rewind.error_text().unwrap_or_default().contains("rewind"));

    // Ground truth: one batch invocation of the same streamed spec,
    // over the feed-normalized world the stream path runs on.
    let world = stream_world(
        World::generate(spec.world_config()),
        spec.options().stream.expect("streamed spec"),
    );
    let batch = Pipeline::new(spec.options()).run(&world);
    assert_eq!(
        wire_snapshot,
        snapshot_json(&batch).expect("batch snapshot")
    );

    wire.call(&Request::Shutdown);
    handle.join().expect("server thread exits");
}

/// A sharded `run` request routes through the supervised driver, shares
/// the unsharded spec's run key (shard count is execution topology),
/// and reports its supervision counters through `health`.
#[test]
fn sharded_run_over_the_wire_matches_and_reports_supervision() {
    let (_server, handle, addr) = start_server(2);
    let sharded = RunSpec {
        shards: 3,
        ..tiny(0xC0FFEE)
    };
    let mut wire = Wire::connect(&addr);

    let run = wire.call(&Request::Run(sharded));
    assert!(run.is_ok(), "{:?}", run.error_text());
    let key = run.str_field("run_key").expect("run key").to_string();
    assert_eq!(
        key,
        tiny(0xC0FFEE).run_key().expect("run key"),
        "shard count must not fork the run key"
    );

    // The wire snapshot equals a batch *unsharded* run byte-for-byte —
    // the merge coordinator's determinism contract over the service.
    let report = wire.call(&Request::Report(key.clone()));
    let wire_snapshot = report.str_field("snapshot").expect("snapshot field");
    let world = World::generate(sharded.world_config());
    let batch = Pipeline::new(tiny(0xC0FFEE).options()).run(&world);
    assert_eq!(
        wire_snapshot,
        snapshot_json(&batch).expect("batch snapshot")
    );

    let health = wire.call(&Request::Health(key));
    let payload = health.field("health").and_then(|v| v.as_object()).unwrap();
    let supervision = payload
        .get("supervision")
        .and_then(|v| v.as_object())
        .expect("supervision object");
    assert_eq!(
        supervision.get("shards_run").and_then(serde::Value::as_u64),
        Some(6),
        "3 shards through 2 supervised rounds (survey + tokenize)"
    );
    assert_eq!(
        supervision
            .get("shards_quarantined")
            .and_then(serde::Value::as_u64),
        Some(0)
    );

    wire.call(&Request::Shutdown);
    handle.join().expect("server thread exits");
}

#[test]
fn concurrent_identical_wire_requests_collapse_to_one_execution() {
    let (server, handle, addr) = start_server(4);
    let spec = tiny(0xD0D0);

    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || Wire::connect(&addr).call(&Request::Run(spec)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for response in &responses {
        assert!(response.is_ok(), "{:?}", response.error_text());
    }
    // Single-flight across the worker pool: the cache executed the
    // pipeline once; exactly one requester saw `cached: false`.
    assert_eq!(server.cache().computed_runs(), 1);
    assert_eq!(
        responses
            .iter()
            .filter(|r| r.bool_field("cached") == Some(false))
            .count(),
        1
    );

    Wire::connect(&addr).call(&Request::Shutdown);
    handle.join().expect("server thread exits");
}
