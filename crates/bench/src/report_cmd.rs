//! The batch `report` and `bench` subcommands (the binary's original
//! job): generate a world, run the pipeline once, print the paper
//! report, and optionally write JSON artifacts.

use crate::cli::{BenchArgs, ReportArgs};
use ewhoring_core::pipeline::{
    snapshot_json, stream_world, EpochEngine, Journal, Pipeline, PipelineOptions, PipelineReport,
    RunSpec, StageTiming, TimingSource,
};
use ewhoring_core::report::full_report;
use std::time::Instant;
use worldgen::World;

fn generate_world(spec: &RunSpec) -> World {
    let config = spec.world_config();
    eprintln!(
        "generating world: scale {}, seed {:#x} …",
        spec.scale, spec.seed
    );
    let t = Instant::now();
    let world = World::generate(config);
    eprintln!(
        "world ready in {:.1?}: {} posts, {} threads, {} actors, {} hosted objects, {} indexed images",
        t.elapsed(),
        world.corpus.posts().len(),
        world.corpus.threads().len(),
        world.corpus.actors().len(),
        world.web.len(),
        world.index.len(),
    );
    world
}

/// Runs one batch report invocation. Every runtime failure is a
/// rendered error string for the dispatcher to print and exit on.
pub fn main(args: &ReportArgs) -> Result<(), String> {
    let spec = args.spec;
    let world = generate_world(&spec);
    let options = PipelineOptions {
        poison: args.poison,
        ..spec.options()
    };
    let t = Instant::now();
    // Streamed specs (`--epochs K`) never stage-journal — that path is
    // batch-only — so they are routed first: either one fresh run
    // through the stream code, or (`--incremental`) warm epoch
    // advances on the engine, journal-checkpointed per epoch when
    // `--journal-dir` is given.
    let mut engine: Option<EpochEngine> = None;
    let mut world = Some(world);
    let report = if let Some(stream) = options.stream {
        if args.stop_after.is_some() {
            return Err(
                "`--stop-after` is batch-only (stage journaling does not apply to `--epochs` runs)"
                    .to_string(),
            );
        }
        if args.incremental {
            let held = world.take().expect("world generated above");
            let built = match &args.journal_dir {
                Some(dir) => {
                    EpochEngine::with_journal(held, spec.epochs, options, std::path::Path::new(dir))
                        .map_err(|e| format!("open epoch journal: {e}"))?
                }
                None => EpochEngine::new(held, spec.epochs, options),
            };
            let engine = engine.insert(built);
            let upto = spec.effective_upto();
            if engine.epoch() > 0 {
                eprintln!(
                    "resumed epoch engine at epoch {}/{}",
                    engine.epoch(),
                    engine.epochs()
                );
            }
            if engine.epoch() > upto {
                return Err(format!(
                    "journal is already at epoch {}, past the requested --upto {upto}",
                    engine.epoch()
                ));
            }
            let mut last = None;
            while engine.epoch() < upto {
                let t = Instant::now();
                let report = engine
                    .advance()
                    .map_err(|e| format!("advance to epoch {}: {e}", engine.epoch() + 1))?;
                eprintln!(
                    "epoch {}/{} advanced in {:.1?}",
                    engine.epoch(),
                    engine.epochs(),
                    t.elapsed()
                );
                last = Some(report);
            }
            match last {
                Some(report) => report,
                // Every requested epoch was already journaled: nothing
                // to advance, so recompute the report for printing.
                None => engine
                    .fresh_report()
                    .map_err(|e| format!("recompute resumed epoch: {e}"))?,
            }
        } else {
            // One fresh stream-mode run over the feed-normalized world —
            // the same ids and order the epoch engine sees, so this
            // output is byte-comparable with `--incremental` and serve
            // `advance` snapshots.
            let held = world.take().expect("world generated above");
            world = Some(stream_world(held, stream));
            Pipeline::new(options).run(world.as_ref().expect("stored above"))
        }
    } else if let Some(dir) = &args.journal_dir {
        let world = world.as_ref().expect("world generated above");
        let dir = std::path::Path::new(dir);
        if !args.resume {
            // A fresh (non-resume) run must never trust leftover
            // checkpoints for this run key.
            let journal = Journal::open(dir, &world.config, &options)
                .map_err(|e| format!("open checkpoint journal: {e}"))?;
            journal
                .clear()
                .map_err(|e| format!("clear checkpoint journal: {e}"))?;
        }
        let pipe = Pipeline::new(options);
        if let Some(n) = args.stop_after {
            // Simulated crash: run (and checkpoint) the first N stages,
            // then exit at the stage boundary without a report.
            let ctx = pipe
                .run_prefix_resumable(world, n, dir)
                .map_err(|e| format!("prefix run: {e}"))?;
            eprintln!(
                "stopped after {} stage(s); journal under {}",
                ctx.timings()
                    .iter()
                    .filter(|t| t.stage != "journal")
                    .count(),
                dir.display()
            );
            for t in ctx.timings() {
                eprintln!(
                    "  {:<16} {:>9.1} ms  {:>8} items  [{}]",
                    t.stage,
                    t.wall_us as f64 / 1_000.0,
                    t.items,
                    t.source.as_str()
                );
            }
            return Ok(());
        }
        pipe.run_resumable(world, dir)
            .map_err(|e| format!("resumable run: {e}"))?
    } else {
        Pipeline::new(options).run(world.as_ref().expect("world generated above"))
    };
    // The incremental path moved the world into the engine; every later
    // use borrows it back from whichever place owns it.
    let world: &World = match (&engine, &world) {
        (Some(engine), _) => engine.world(),
        (None, Some(world)) => world,
        (None, None) => unreachable!("world is only taken by the engine path"),
    };
    eprintln!("pipeline finished in {:.1?}", t.elapsed());
    for t in &report.timings {
        eprintln!(
            "  {:<16} {:>9.1} ms  {:>8} items  {:>12.0} items/s  [{}]",
            t.stage,
            t.wall_us as f64 / 1_000.0,
            t.items,
            items_per_sec(t),
            t.source.as_str()
        );
    }
    if spec.shards > 0 {
        let s = report.supervision;
        eprintln!(
            "  supervision: {} shard run(s), {} restarted, {} quarantined",
            s.shards_run, s.shards_restarted, s.shards_quarantined
        );
    }
    if !report.quarantine.is_empty() || !report.health.is_empty() {
        eprintln!(
            "  quarantine: {} record(s) quarantined, {} stage intervention(s) — see the pipeline-health section",
            report.quarantine.len(),
            report.health.len()
        );
    }
    let cs = &report.crawl_stats;
    eprintln!(
        "  crawl health: {} attempts, {} retries, {} breaker trips, {} unreachable, {:.1} s simulated wait",
        cs.attempts.total(),
        cs.retries.total(),
        cs.breaker_trips,
        report.crawl.unreachable_links,
        cs.wait_us.total() as f64 / 1_000_000.0
    );

    println!(
        "=== Measuring eWhoring — reproduction report (scale {}, seed {:#x}) ===\n",
        spec.scale, spec.seed
    );
    println!("{}", full_report(&report));

    if args.intervention {
        println!("{}", intervention_section(&report, spec.workers));
    }

    if let Some(path) = &args.json {
        let json =
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialise report: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write JSON report `{path}`: {e}"))?;
        eprintln!("raw report written to {path}");
    }

    if let Some(path) = &args.snapshot_json {
        // The determinism snapshot: the full report minus wall-clock
        // timings, so two runs (resumed vs uninterrupted, batch vs
        // wire, any worker count) can be compared byte-for-byte.
        let json = snapshot_json(&report).map_err(|e| format!("render snapshot: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write snapshot JSON `{path}`: {e}"))?;
        eprintln!("determinism snapshot written to {path}");
    }

    if let Some(path) = &args.bench_json {
        eprintln!("bench baseline: rerunning pipeline at workers=1 …");
        let t = Instant::now();
        let serial = Pipeline::new(PipelineOptions {
            workers: 1,
            ..options
        })
        .run(world);
        eprintln!("serial run finished in {:.1?}", t.elapsed());
        let json = bench_baseline_json(
            spec.scale,
            spec.seed,
            spec.workers,
            &serial.timings,
            &report.timings,
            report.quarantine.len(),
        );
        std::fs::write(path, json).map_err(|e| format!("write bench baseline `{path}`: {e}"))?;
        eprintln!("bench baseline written to {path}");
    }
    Ok(())
}

/// The `bench` subcommand: one parallel run, one workers=1 rerun, and
/// the machine-readable baseline — without the report printing the
/// batch path does.
pub fn bench_main(args: &BenchArgs) -> Result<(), String> {
    if args.epoch {
        return bench_epoch_main(args);
    }
    if args.shard {
        return bench_shard_main(args);
    }
    let spec = RunSpec {
        scale: args.scale,
        seed: args.seed,
        workers: args.workers,
        faults: 0.0,
        corruption: 0.0,
        epochs: 0,
        upto: 0,
        shards: 0,
    };
    let world = generate_world(&spec);
    let t = Instant::now();
    let parallel = Pipeline::new(spec.options()).run(&world);
    eprintln!(
        "parallel run (workers={}) finished in {:.1?}",
        args.workers,
        t.elapsed()
    );
    let t = Instant::now();
    let serial = Pipeline::new(PipelineOptions {
        workers: 1,
        ..spec.options()
    })
    .run(&world);
    eprintln!("serial run finished in {:.1?}", t.elapsed());
    let json = bench_baseline_json(
        spec.scale,
        spec.seed,
        spec.workers,
        &serial.timings,
        &parallel.timings,
        parallel.quarantine.len(),
    );
    std::fs::write(&args.out, json).map_err(|e| format!("write `{}`: {e}", args.out))?;
    eprintln!("bench baseline written to {}", args.out);
    if let Some(floor) = args.gate_floor {
        gate_measure_rate(&serial.timings, floor)?;
    }
    Ok(())
}

/// The `bench epoch` mode: advance the epoch engine through every
/// epoch, timing each warm advance against a fresh full recompute of
/// the same prefix, and write `BENCH_epoch.json`. The two reports are
/// byte-identical by the epoch-equivalence guarantee (CI-enforced in
/// `tests/determinism.rs`), so the comparison is strictly
/// like-for-like; the asserts here are a cheap re-check.
fn bench_epoch_main(args: &BenchArgs) -> Result<(), String> {
    use std::fmt::Write as _;

    let spec = RunSpec {
        scale: args.scale,
        seed: args.seed,
        workers: args.workers,
        faults: 0.0,
        corruption: 0.0,
        epochs: args.epochs,
        upto: 0,
        shards: 0,
    };
    let world = generate_world(&spec);
    let mut engine = EpochEngine::new(world, spec.epochs, spec.options());
    let mut rows = String::new();
    let mut final_speedup = 0.0;
    let mut advance_history: Vec<u128> = Vec::new();
    let mut threads_history: Vec<usize> = Vec::new();
    for e in 1..=spec.epochs {
        let t = Instant::now();
        let warm = engine
            .advance()
            .map_err(|err| format!("advance to epoch {e}: {err}"))?;
        let advance_us = t.elapsed().as_micros();
        advance_history.push(advance_us);
        let t = Instant::now();
        let fresh = engine
            .fresh_report()
            .map_err(|err| format!("full recompute at epoch {e}: {err}"))?;
        let full_us = t.elapsed().as_micros();
        let warm_snap = snapshot_json(&warm).map_err(|err| format!("render snapshot: {err}"))?;
        let fresh_snap = snapshot_json(&fresh).map_err(|err| format!("render snapshot: {err}"))?;
        if warm_snap != fresh_snap {
            return Err(format!(
                "epoch {e}: warm advance diverged from full recompute — equivalence violated"
            ));
        }
        let speedup = if advance_us > 0 {
            full_us as f64 / advance_us as f64
        } else {
            0.0
        };
        final_speedup = speedup;
        // The epoch's content delta, measured in eWhoring threads seen
        // to date (the extract stage's item count) — a deterministic
        // seeded quantity, so it normalizes wall clocks without adding
        // measurement noise of its own.
        let threads_seen = warm
            .timings
            .iter()
            .find(|t| t.stage == "extract")
            .map_or(0, |t| t.items);
        let new_threads = threads_seen.saturating_sub(threads_history.last().copied().unwrap_or(0));
        threads_history.push(threads_seen);
        // Per-stage wall clocks from the warm advance, so a regression
        // in any one stage's delta-fold is attributable from the JSON
        // alone.
        let mut stage_us = String::new();
        for (i, timing) in warm.timings.iter().enumerate() {
            let _ = write!(
                stage_us,
                "{}\"{}\": {}",
                if i > 0 { ", " } else { "" },
                timing.stage,
                timing.wall_us
            );
        }
        // Serialized carry footprint after this advance — the price of
        // flat-cost warm advances is state that grows with the corpus.
        // Reported, not gated (see BENCH_floor.txt note).
        let carry_bytes = serde_json::to_string(engine.carry())
            .map(|s| s.len())
            .map_err(|err| format!("serialize carry after epoch {e}: {err}"))?;
        eprintln!(
            "epoch {e}/{}: advance {:.1} ms, full recompute {:.1} ms, delta speedup {speedup:.2}x, carry {:.1} KiB",
            spec.epochs,
            advance_us as f64 / 1_000.0,
            full_us as f64 / 1_000.0,
            carry_bytes as f64 / 1024.0,
        );
        let _ = writeln!(
            rows,
            "    {{ \"epoch\": {e}, \"advance_us\": {advance_us}, \"full_us\": {full_us}, \"speedup\": {speedup:.2}, \"new_threads\": {new_threads}, \"carry_bytes\": {carry_bytes}, \"stage_us\": {{ {stage_us} }} }}{}",
            if e < spec.epochs { "," } else { "" }
        );
    }
    // Flatness: a warm advance's cost should track the epoch's content
    // delta, not the corpus. Raw wall-clock ratios between epochs are
    // meaningless here — the generated decade's activity ramps ~5x
    // from the first to the last slice — so each advance is normalized
    // by its epoch's new-thread count (a deterministic seeded quantity)
    // and the final epoch's per-thread cost is compared against the
    // median per-thread cost of the earlier warm advances. Both sides
    // of the ratio are wall clocks from the same run, so a loaded host
    // cancels out; only per-thread cost *growth* — the signature of a
    // fold regressing to an O(corpus) rescan — moves it. Epoch 1 is
    // excluded (cold build plus the pre-window backlog).
    let flatness = advance_flatness(&advance_history, &threads_history);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let note = if cores == 1 {
        "\n  \"note\": \"available_parallelism is 1; parallel stages ran effectively serial\","
    } else {
        ""
    };
    let flatness_json = flatness.map_or_else(|| "null".to_string(), |f| format!("{f:.2}"));
    let json = format!(
        "{{\n  \"scale\": {},\n  \"seed\": {},\n  \"workers\": {},\n  \"epochs\": {},\n  \"available_parallelism\": {cores},{note}\n  \"per_epoch\": [\n{rows}  ],\n  \"final_epoch_speedup\": {final_speedup:.2},\n  \"advance_flatness\": {flatness_json}\n}}\n",
        spec.scale, spec.seed, spec.workers, spec.epochs,
    );
    std::fs::write(&args.out, json).map_err(|e| format!("write `{}`: {e}", args.out))?;
    eprintln!("epoch bench written to {}", args.out);
    if let Some(floor) = args.gate_floor {
        if final_speedup < floor {
            return Err(format!(
                "bench gate FAILED: final-epoch delta ran {final_speedup:.2}x a full recompute, floor is {floor:.2}x"
            ));
        }
        eprintln!(
            "bench gate passed: final-epoch delta {final_speedup:.2}x a full recompute (floor {floor:.2}x)"
        );
    }
    if let Some(ceiling) = args.flat_ceiling {
        match flatness {
            None => eprintln!(
                "flatness gate skipped: needs at least 3 epochs with nonzero thread deltas, ran {}",
                advance_history.len()
            ),
            Some(flat) if flat > ceiling => {
                return Err(format!(
                    "flatness gate FAILED: the final advance cost {flat:.2}x the median per-new-thread cost of the earlier warm advances, ceiling is {ceiling:.2}x — a fold has regressed to corpus-bound work"
                ));
            }
            Some(flat) => eprintln!(
                "flatness gate passed: final advance per-new-thread cost {flat:.2}x the warm median (ceiling {ceiling:.2}x)"
            ),
        }
    }
    Ok(())
}

/// The `bench shard` mode: one unsharded run, one supervised sharded
/// run over the same world, a hard gate on snapshot equality (the merge
/// coordinator's byte-identity contract, also CI-enforced in
/// `tests/determinism.rs`), and `BENCH_shard.json` recording the
/// wall-clock ratio plus the supervision counters.
fn bench_shard_main(args: &BenchArgs) -> Result<(), String> {
    use std::fmt::Write as _;

    let spec = RunSpec {
        scale: args.scale,
        seed: args.seed,
        workers: args.workers,
        faults: 0.0,
        corruption: 0.0,
        epochs: 0,
        upto: 0,
        shards: 0,
    };
    let world = generate_world(&spec);
    let t = Instant::now();
    let unsharded = Pipeline::new(spec.options()).run(&world);
    let unsharded_us = t.elapsed().as_micros();
    eprintln!(
        "unsharded run finished in {:.1} ms",
        unsharded_us as f64 / 1_000.0
    );
    let t = Instant::now();
    let sharded = Pipeline::new(PipelineOptions {
        shards: args.shards,
        ..spec.options()
    })
    .run(&world);
    let sharded_us = t.elapsed().as_micros();
    eprintln!(
        "sharded run (shards={}) finished in {:.1} ms",
        args.shards,
        sharded_us as f64 / 1_000.0
    );
    let unsharded_snap = snapshot_json(&unsharded).map_err(|e| format!("render snapshot: {e}"))?;
    let sharded_snap = snapshot_json(&sharded).map_err(|e| format!("render snapshot: {e}"))?;
    if unsharded_snap != sharded_snap {
        return Err(format!(
            "sharded run (shards={}) diverged from the unsharded driver — merge determinism violated",
            args.shards
        ));
    }
    eprintln!("snapshots identical: sharded merge matches the unsharded driver byte-for-byte");
    // The gate ratio: sharded throughput relative to unsharded
    // (unsharded wall / sharded wall). 1.0 = free sharding; the floor
    // bounds the supervision overhead from below.
    let ratio = if sharded_us > 0 {
        unsharded_us as f64 / sharded_us as f64
    } else {
        0.0
    };
    let s = sharded.supervision;
    eprintln!(
        "supervision: {} shard run(s), {} restarted, {} quarantined",
        s.shards_run, s.shards_restarted, s.shards_quarantined
    );
    let stage_map = |timings: &[StageTiming]| {
        let mut out = String::new();
        for (i, t) in timings.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": {}",
                if i > 0 { ", " } else { "" },
                t.stage,
                t.wall_us
            );
        }
        out
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let note = if cores == 1 {
        "\n  \"note\": \"available_parallelism is 1; shard workers ran effectively serial, so the ratio measures supervision overhead, not scaling\","
    } else {
        ""
    };
    let json = format!(
        "{{\n  \"scale\": {},\n  \"seed\": {},\n  \"workers\": {},\n  \"shards\": {},\n  \"available_parallelism\": {cores},{note}\n  \"unsharded_us\": {unsharded_us},\n  \"sharded_us\": {sharded_us},\n  \"sharded_over_unsharded_ratio\": {ratio:.2},\n  \"snapshot_identical\": true,\n  \"supervision\": {{ \"shards_run\": {}, \"shards_restarted\": {}, \"shards_quarantined\": {} }},\n  \"unsharded_stage_us\": {{ {} }},\n  \"sharded_stage_us\": {{ {} }}\n}}\n",
        spec.scale,
        spec.seed,
        spec.workers,
        args.shards,
        s.shards_run,
        s.shards_restarted,
        s.shards_quarantined,
        stage_map(&unsharded.timings),
        stage_map(&sharded.timings),
    );
    std::fs::write(&args.out, json).map_err(|e| format!("write `{}`: {e}", args.out))?;
    eprintln!("shard bench written to {}", args.out);
    if let Some(floor) = args.gate_floor {
        if ratio < floor {
            return Err(format!(
                "bench gate FAILED: sharded run reached {ratio:.2}x the unsharded throughput, floor is {floor:.2}x"
            ));
        }
        eprintln!(
            "bench gate passed: sharded run at {ratio:.2}x the unsharded throughput (floor {floor:.2}x)"
        );
    }
    Ok(())
}

/// The per-content flatness ratio `bench epoch` gates on: the final
/// epoch's advance cost per new eWhoring thread, divided by the median
/// per-thread cost over the earlier warm epochs (2..final). Returns
/// `None` when fewer than two warm epochs have a nonzero thread delta
/// (nothing to compare). Thread deltas come from the seeded world, so
/// the denominator carries no timing noise, and both wall clocks are
/// from the same run, so background load cancels in the ratio.
fn advance_flatness(advance_us: &[u128], threads_seen: &[usize]) -> Option<f64> {
    let per_thread: Vec<f64> = (1..advance_us.len())
        .filter_map(|i| {
            let delta = threads_seen[i].checked_sub(threads_seen[i - 1])?;
            (delta > 0).then(|| advance_us[i] as f64 / delta as f64)
        })
        .collect();
    let (&last, earlier) = per_thread.split_last()?;
    if earlier.is_empty() {
        return None;
    }
    let mut sorted = earlier.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("per-thread costs are finite"));
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    (median > 0.0).then(|| last / median)
}

/// The `--gate-floor` check: the serial `measure_images` rate must reach
/// `floor` items/sec, or the bench exits nonzero. Guards the fused
/// kernel's speedup against regression in CI (`make bench-gate`).
fn gate_measure_rate(serial_timings: &[StageTiming], floor: f64) -> Result<(), String> {
    let rate = serial_timings
        .iter()
        .find(|t| t.stage == "measure_images" && t.source == TimingSource::Computed)
        .map(items_per_sec)
        .ok_or_else(|| {
            "bench gate: serial run has no computed measure_images timing".to_string()
        })?;
    if rate < floor {
        return Err(format!(
            "bench gate FAILED: measure_images ran {rate:.1} items/s at workers=1, floor is {floor:.1}"
        ));
    }
    eprintln!(
        "bench gate passed: measure_images {rate:.1} items/s at workers=1 (floor {floor:.1})"
    );
    Ok(())
}

/// Stages whose per-item loops run on the `core::par` layer; the
/// aggregate speedup is computed over these.
const PARALLEL_STAGES: [&str; 4] = ["top_classifier", "measure_images", "nsfv", "actors"];

/// Items-per-second for one timing entry.
fn items_per_sec(t: &StageTiming) -> f64 {
    if t.wall_us > 0 {
        t.items as f64 / (t.wall_us as f64 / 1_000_000.0)
    } else {
        0.0
    }
}

/// Aggregate items/sec over the parallel stages of one run. Only
/// computed stages count — a journal-loaded stage's wall clock measures
/// deserialization, not stage work, and would corrupt the speedup.
fn aggregate_items_per_sec(timings: &[StageTiming]) -> f64 {
    let (items, wall_us) = timings
        .iter()
        .filter(|t| {
            PARALLEL_STAGES.contains(&t.stage.as_str()) && t.source == TimingSource::Computed
        })
        .fold((0usize, 0u128), |(i, w), t| (i + t.items, w + t.wall_us));
    if wall_us > 0 {
        items as f64 / (wall_us as f64 / 1_000_000.0)
    } else {
        0.0
    }
}

/// Renders the machine-readable `BENCH_pipeline.json` baseline: per-stage
/// `wall_us`, `items`, `items_per_sec`, and `source` (computed vs
/// journal-loaded — a loaded stage's wall clock is I/O, not stage work,
/// and must never be read as a compute baseline) at workers=1 vs
/// workers=N, plus the aggregate speedup over [`PARALLEL_STAGES`] and the
/// run's quarantined-record count. Hand-assembled so the schema is
/// explicit in one place.
fn bench_baseline_json(
    scale: f64,
    seed: u64,
    workers: usize,
    serial: &[StageTiming],
    parallel: &[StageTiming],
    quarantined_records: usize,
) -> String {
    use std::fmt::Write as _;

    let run_json = |workers: usize, timings: &[StageTiming]| {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "    {{\n      \"workers\": {workers},\n      \"stages\": ["
        );
        for (i, t) in timings.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{ \"stage\": \"{}\", \"wall_us\": {}, \"items\": {}, \"items_per_sec\": {:.1}, \"source\": \"{}\" }}{}",
                t.stage,
                t.wall_us,
                t.items,
                items_per_sec(t),
                t.source.as_str(),
                if i + 1 < timings.len() { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "      ],\n      \"parallel_items_per_sec\": {:.1}\n    }}",
            aggregate_items_per_sec(timings)
        );
        out
    };

    let serial_agg = aggregate_items_per_sec(serial);
    let parallel_agg = aggregate_items_per_sec(parallel);
    let speedup = if serial_agg > 0.0 {
        parallel_agg / serial_agg
    } else {
        0.0
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // A one-core box cannot show worker scaling — annotate the baseline
    // so a reader doesn't mistake the flat speedup for a regression.
    let note = if cores == 1 {
        "\n  \"note\": \"available_parallelism is 1; workers are clamped and the speedup is expected to be ~1x\","
    } else {
        ""
    };
    format!(
        "{{\n  \"scale\": {scale},\n  \"seed\": {seed},\n  \"available_parallelism\": {cores},{note}\n  \"quarantined_records\": {quarantined_records},\n  \"parallel_stages\": [{}],\n  \"runs\": [\n{},\n{}\n  ],\n  \"aggregate_speedup\": {speedup:.2}\n}}\n",
        PARALLEL_STAGES
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", "),
        run_json(1, serial),
        run_json(workers, parallel),
    )
}

/// Runs the §8 countermeasure simulations against the already-crawled
/// material and renders them as a report section.
fn intervention_section(report: &PipelineReport, workers: usize) -> String {
    use ewhoring_core::intervention::{deployment_sweep, screen_payment_accounts};
    use ewhoring_core::nsfv::ImageMeasures;
    use ewhoring_core::pipeline::measure_batch;
    use std::fmt::Write as _;

    let mut out = String::from(
        "Extension (§8): intervention simulations
",
    );

    // Shared hash-blacklist over the crawled packs, measured on the same
    // parallel layer as the pipeline's measure stage.
    let owned: Vec<(&ewhoring_core::crawl::PackDownload, Vec<ImageMeasures>)> = report
        .crawl
        .packs
        .iter()
        .map(|p| {
            let sample = &p.images[..p.images.len().min(30)];
            (p, measure_batch(sample, workers))
        })
        .collect();
    let packs: Vec<(&ewhoring_core::crawl::PackDownload, &[ImageMeasures])> =
        owned.iter().map(|(p, m)| (*p, m.as_slice())).collect();
    if !packs.is_empty() {
        let mut dates: Vec<synthrand::Day> = packs.iter().map(|(p, _)| p.link.posted).collect();
        dates.sort_unstable();
        let sweep_dates: Vec<synthrand::Day> =
            (1..=4).map(|i| dates[dates.len() * i / 5]).collect();
        for (date, block, disrupt) in deployment_sweep(&packs, &sweep_dates) {
            let _ = writeln!(
                out,
                "  blacklist deployed {date}: blocks {:.1}% of later images, disrupts {:.1}% of later packs",
                100.0 * block,
                100.0 * disrupt
            );
        }
    }

    // Payment screening over the harvested proofs.
    for min_tx in [5u32, 10, 20] {
        let s = screen_payment_accounts(&report.harvest.proofs, min_tx);
        let _ = writeln!(
            out,
            "  payment screening (≥{min_tx} tx/proof): {}/{} actors flagged, {:.0}% of revenue covered",
            s.flagged_actors,
            s.flagged_actors + s.unflagged_actors,
            100.0 * s.usd_coverage()
        );
    }
    let _ = writeln!(out, "  (see examples/intervention.rs and DESIGN.md §7)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(wall_us: u128, items: usize, source: TimingSource) -> StageTiming {
        StageTiming {
            stage: "measure_images".to_string(),
            wall_us,
            items,
            source,
        }
    }

    #[test]
    fn bench_gate_compares_serial_measure_rate_to_the_floor() {
        // 5000 items over 1s = 5000 items/s.
        let t = vec![timing(1_000_000, 5000, TimingSource::Computed)];
        assert!(gate_measure_rate(&t, 4_000.0).is_ok());
        let e = gate_measure_rate(&t, 6_000.0).unwrap_err();
        assert!(e.contains("FAILED"), "{e}");
        assert!(e.contains("5000.0"), "{e}");
    }

    #[test]
    fn bench_gate_rejects_journal_loaded_timings() {
        // A journal-loaded row times deserialization, not stage work —
        // it must not satisfy the gate no matter how fast it looks.
        let t = vec![timing(1, 5000, TimingSource::Journal)];
        let e = gate_measure_rate(&t, 1.0).unwrap_err();
        assert!(e.contains("no computed measure_images"), "{e}");
    }

    /// A perfectly delta-bound engine holds per-thread cost constant
    /// even when the per-epoch content ramps; an O(corpus) regression
    /// inflates the final epoch's per-thread cost.
    #[test]
    fn advance_flatness_is_per_thread_not_wall_clock() {
        // 100us per new thread at every epoch, content ramping 5x:
        // wall clocks grow but the ratio stays 1.0.
        let adv = [5_000, 10_000, 20_000, 50_000];
        let seen = [50, 150, 350, 850];
        let flat = advance_flatness(&adv, &seen).expect("enough epochs");
        assert!((flat - 1.0).abs() < 1e-9, "flat engine measures {flat}");

        // The final advance rescans the corpus: per-thread cost jumps
        // 4x and the ratio reports it.
        let adv = [5_000, 10_000, 20_000, 200_000];
        let flat = advance_flatness(&adv, &seen).expect("enough epochs");
        assert!(flat > 3.9, "corpus-bound regression measures {flat}");

        // Too little history to compare: no ratio, gate skips.
        assert!(advance_flatness(&[5_000, 10_000, 20_000], &[50, 150, 350]).is_some());
        assert!(advance_flatness(&[5_000, 10_000], &[50, 150]).is_none());
        // A zero-delta epoch is dropped rather than dividing by zero.
        assert!(advance_flatness(&[5_000, 9_000], &[50, 50]).is_none());
    }
}
