//! Seeded load generator for the pipeline service (`report loadgen`).
//!
//! Fires a deterministic mix of *hot* requests (every client re-runs
//! one shared spec, so all but the first are cache hits) and *cold*
//! requests (distinct seeds, each a cache miss the first time) from `K`
//! client threads, one persistent connection per client. Which slots in
//! a client's request schedule are hot is decided by a splitmix64
//! stream over `(seed, client, slot)` — rerunning the same command line
//! replays the same schedule.
//!
//! Per-request wall-clock latency, the server-reported `cached` flags,
//! and total wall time are folded into a summary
//! ([`LoadSummary::render_json`]) conventionally written to
//! `BENCH_serve.json`: requests/sec, cache-hit ratio, and p50/p95/max
//! latency — the measured version of the "serves heavy traffic" claim.

use crate::cli::LoadGenArgs;
use crate::proto::{Request, Response};
use ewhoring_core::pipeline::RunSpec;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// splitmix64: the statelessly-seedable mixer used for the hot/cold
/// schedule, so client threads need no shared RNG.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The spec fired by request `slot` of `client`: the shared hot spec
/// with probability `hot_ratio`, otherwise one of `cold_keys` cold
/// specs (seeds derived from the base seed, disjoint from it).
fn spec_for(args: &LoadGenArgs, client: usize, slot: usize) -> RunSpec {
    let draw = mix64(args.seed ^ ((client as u64) << 32) ^ slot as u64);
    // A uniform draw in [0, 1): hot_ratio 1.0 is always hot, 0.0 never.
    let uniform = (draw >> 11) as f64 / (1u64 << 53) as f64;
    let hot = uniform < args.hot_ratio;
    let seed = if hot {
        args.seed
    } else {
        // Cold seeds rotate through a small pool so repeats within the
        // run still exercise the hit path at a known rate.
        args.seed
            .wrapping_add(1 + mix64(draw) % args.cold_keys.max(1) as u64)
    };
    RunSpec {
        scale: args.scale,
        seed,
        workers: args.workers,
        faults: 0.0,
        corruption: 0.0,
        epochs: 0,
        upto: 0,
        shards: 0,
    }
}

/// One client's request outcomes.
struct ClientLog {
    /// Per-request wall-clock, microseconds, request order.
    latencies_us: Vec<u128>,
    /// Server-reported cache hits.
    hits: usize,
    /// Responses with `ok:false` (counted, run continues).
    errors: usize,
}

/// A persistent wire connection with line-oriented request/response.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect `{addr}`: {e}"))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn call(&mut self, request: &Request) -> Result<Response, String> {
        let line = request.encode();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| format!("recv failed: {e}"))?;
        if response.is_empty() {
            return Err("server closed the connection".to_string());
        }
        Response::parse(response.trim_end())
    }
}

/// Runs one client's schedule. Infallible by design: every one of the
/// client's `args.requests` issued requests ends up accounted either as
/// a latency sample or as an error, so transport failures deflate the
/// summary instead of vanishing from it (or aborting the other
/// clients). A client that cannot connect, or whose connection dies
/// mid-run, charges all its unserved slots to `errors`.
fn run_client(args: &LoadGenArgs, client: usize) -> ClientLog {
    let mut log = ClientLog {
        latencies_us: Vec::with_capacity(args.requests),
        hits: 0,
        errors: 0,
    };
    let mut conn = match Client::connect(&args.addr) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("loadgen client {client}: {e}");
            log.errors = args.requests;
            return log;
        }
    };
    for slot in 0..args.requests {
        let spec = spec_for(args, client, slot);
        let t = Instant::now();
        let response = match conn.call(&Request::Run(spec)) {
            Ok(response) => response,
            Err(e) => {
                eprintln!("loadgen client {client}: request {slot}: {e}");
                log.errors += args.requests - slot;
                return log;
            }
        };
        log.latencies_us.push(t.elapsed().as_micros());
        if response.is_ok() {
            if response.bool_field("cached") == Some(true) {
                log.hits += 1;
            }
        } else {
            log.errors += 1;
        }
    }
    log
}

/// The aggregated result of one loadgen run.
pub struct LoadSummary {
    /// Client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Total requests *issued* (`clients × requests_per_client`) —
    /// errored requests stay in this denominator, so error-heavy runs
    /// report deflated throughput and hit ratios rather than inflated
    /// ones.
    pub total_requests: usize,
    /// Responses served from cache.
    pub cache_hits: usize,
    /// `ok:false` responses.
    pub errors: usize,
    /// Whole-run wall clock, microseconds.
    pub wall_us: u128,
    /// Sorted per-request latencies, microseconds.
    pub latencies_us: Vec<u128>,
    /// Target hot fraction the schedule was drawn with.
    pub hot_ratio: f64,
    /// Scale of every spec.
    pub scale: f64,
}

impl LoadSummary {
    /// Requests per second over the whole run.
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.total_requests as f64 / (self.wall_us as f64 / 1_000_000.0)
    }

    /// Cache-hit ratio over all responses.
    pub fn hit_ratio(&self) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.total_requests as f64
    }

    /// The `q`-quantile latency (nearest-rank) in microseconds.
    pub fn latency_quantile_us(&self, q: f64) -> u128 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((self.latencies_us.len() as f64 * q).ceil() as usize)
            .clamp(1, self.latencies_us.len());
        self.latencies_us[rank - 1]
    }

    /// Renders the `BENCH_serve.json` document. Hand-assembled so the
    /// schema is explicit in one place, like `BENCH_pipeline.json`.
    pub fn render_json(&self) -> String {
        format!(
            "{{\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \"total_requests\": {},\n  \
             \"scale\": {},\n  \"hot_ratio_target\": {},\n  \"wall_us\": {},\n  \
             \"requests_per_sec\": {:.2},\n  \"cache_hits\": {},\n  \"cache_hit_ratio\": {:.4},\n  \
             \"errors\": {},\n  \"latency_us\": {{ \"p50\": {}, \"p95\": {}, \"max\": {} }}\n}}\n",
            self.clients,
            self.requests_per_client,
            self.total_requests,
            self.scale,
            self.hot_ratio,
            self.wall_us,
            self.requests_per_sec(),
            self.cache_hits,
            self.hit_ratio(),
            self.errors,
            self.latency_quantile_us(0.50),
            self.latency_quantile_us(0.95),
            self.latencies_us.last().copied().unwrap_or(0),
        )
    }
}

/// Fires the configured mix and aggregates the outcome. Every issued
/// request is accounted: a panicked client thread counts as all-errors,
/// like a client that never connected.
pub fn run(args: &LoadGenArgs) -> Result<LoadSummary, String> {
    let t = Instant::now();
    let logs: Vec<ClientLog> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|client| scope.spawn(move || run_client(args, client)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    eprintln!("loadgen: client thread panicked");
                    ClientLog {
                        latencies_us: Vec::new(),
                        hits: 0,
                        errors: args.requests,
                    }
                })
            })
            .collect()
    });
    let wall_us = t.elapsed().as_micros();
    let mut latencies_us = Vec::with_capacity(args.clients * args.requests);
    let mut cache_hits = 0;
    let mut errors = 0;
    for log in logs {
        latencies_us.extend(log.latencies_us);
        cache_hits += log.hits;
        errors += log.errors;
    }
    latencies_us.sort_unstable();
    Ok(LoadSummary {
        clients: args.clients,
        requests_per_client: args.requests,
        total_requests: args.clients * args.requests,
        cache_hits,
        errors,
        wall_us,
        latencies_us,
        hot_ratio: args.hot_ratio,
        scale: args.scale,
    })
}

/// Fetches the hot spec's snapshot over the wire (running it first if
/// needed) — the bytes `--snapshot-json` would write for the same spec.
pub fn fetch_snapshot(args: &LoadGenArgs) -> Result<String, String> {
    let spec = RunSpec {
        scale: args.scale,
        seed: args.seed,
        workers: args.workers,
        faults: 0.0,
        corruption: 0.0,
        epochs: 0,
        upto: 0,
        shards: 0,
    };
    let mut conn = Client::connect(&args.addr)?;
    let run = conn.call(&Request::Run(spec))?;
    if !run.is_ok() {
        return Err(format!(
            "run request failed: {}",
            run.error_text().unwrap_or("unknown error")
        ));
    }
    let key = run
        .str_field("run_key")
        .ok_or_else(|| "run response lacks run_key".to_string())?
        .to_string();
    let report = conn.call(&Request::Report(key))?;
    match report.str_field("snapshot") {
        Some(snapshot) if report.is_ok() => Ok(snapshot.to_string()),
        _ => Err(format!(
            "report request failed: {}",
            report.error_text().unwrap_or("unknown error")
        )),
    }
}

/// The `loadgen` subcommand: run the mix, write the summary, optionally
/// fetch a snapshot and shut the server down.
pub fn main(args: &LoadGenArgs) -> Result<(), String> {
    let summary = if args.requests > 0 {
        let summary = run(args)?;
        eprintln!(
            "loadgen: {} requests over {} client(s) in {:.2}s — {:.1} req/s, {:.1}% cache hits, p50 {}us p95 {}us",
            summary.total_requests,
            summary.clients,
            summary.wall_us as f64 / 1_000_000.0,
            summary.requests_per_sec(),
            100.0 * summary.hit_ratio(),
            summary.latency_quantile_us(0.50),
            summary.latency_quantile_us(0.95),
        );
        Some(summary)
    } else {
        None
    };
    if let (Some(summary), Some(path)) = (&summary, &args.out) {
        std::fs::write(path, summary.render_json())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("load summary written to {path}");
    }
    if let Some(path) = &args.snapshot_out {
        let snapshot = fetch_snapshot(args)?;
        std::fs::write(path, snapshot).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wire snapshot written to {path}");
    }
    if args.shutdown {
        let mut conn = Client::connect(&args.addr)?;
        conn.call(&Request::Shutdown)?;
        eprintln!("server asked to shut down");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args() -> LoadGenArgs {
        LoadGenArgs {
            addr: "127.0.0.1:1".into(),
            ..LoadGenArgs::default()
        }
    }

    #[test]
    fn schedule_is_deterministic_and_respects_extremes() {
        let a = args();
        for client in 0..3 {
            for slot in 0..10 {
                assert_eq!(spec_for(&a, client, slot), spec_for(&a, client, slot));
            }
        }
        let all_hot = LoadGenArgs {
            hot_ratio: 1.0,
            ..args()
        };
        let all_cold = LoadGenArgs {
            hot_ratio: 0.0,
            ..args()
        };
        for slot in 0..20 {
            assert_eq!(spec_for(&all_hot, 0, slot).seed, all_hot.seed);
            assert_ne!(spec_for(&all_cold, 0, slot).seed, all_cold.seed);
        }
    }

    #[test]
    fn cold_seeds_stay_inside_the_pool() {
        let a = LoadGenArgs {
            hot_ratio: 0.0,
            cold_keys: 3,
            ..args()
        };
        for client in 0..4 {
            for slot in 0..25 {
                let seed = spec_for(&a, client, slot).seed;
                assert!((1..=3).contains(&seed.wrapping_sub(a.seed)));
            }
        }
    }

    /// The accounting regression: requests a client could not complete
    /// must stay in `total_requests` (and thus deflate the hit ratio),
    /// not silently shrink the denominator. A fake server answers each
    /// client's first request and then drops the connection.
    #[test]
    fn failing_clients_keep_issued_requests_in_the_denominator() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let mut stream = stream;
                stream
                    .write_all(b"{\"ok\":true,\"cached\":true}\n")
                    .unwrap();
                // Dropping the stream here kills the connection before
                // the client's remaining requests.
            }
        });

        let a = LoadGenArgs {
            addr,
            clients: 2,
            requests: 3,
            ..LoadGenArgs::default()
        };
        let summary = run(&a).unwrap();
        server.join().unwrap();

        assert_eq!(summary.total_requests, 6, "2 clients x 3 issued");
        assert_eq!(summary.latencies_us.len(), 2, "one served per client");
        assert_eq!(summary.cache_hits, 2);
        assert_eq!(summary.errors, 4, "2 unserved slots per client");
        let ratio = summary.hit_ratio();
        assert!((ratio - 2.0 / 6.0).abs() < 1e-12, "hit ratio {ratio}");
    }

    /// A client that cannot connect at all still accounts every slot.
    #[test]
    fn unreachable_server_counts_every_issued_request_as_error() {
        // Bind then drop to get a port that refuses connections.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let a = LoadGenArgs {
            addr,
            clients: 3,
            requests: 5,
            ..LoadGenArgs::default()
        };
        let summary = run(&a).unwrap();
        assert_eq!(summary.total_requests, 15);
        assert_eq!(summary.errors, 15);
        assert!(summary.latencies_us.is_empty());
        assert_eq!(summary.hit_ratio(), 0.0);
        assert_eq!(summary.latency_quantile_us(0.95), 0);
    }

    #[test]
    fn summary_math_is_sane() {
        let summary = LoadSummary {
            clients: 2,
            requests_per_client: 2,
            total_requests: 4,
            cache_hits: 3,
            errors: 0,
            wall_us: 2_000_000,
            latencies_us: vec![10, 20, 30, 40],
            hot_ratio: 0.75,
            scale: 0.02,
        };
        assert_eq!(summary.requests_per_sec(), 2.0);
        assert_eq!(summary.hit_ratio(), 0.75);
        assert_eq!(summary.latency_quantile_us(0.50), 20);
        assert_eq!(summary.latency_quantile_us(0.95), 40);
        let json = summary.render_json();
        assert!(json.contains("\"requests_per_sec\": 2.00"), "{json}");
        assert!(json.contains("\"p50\": 20"), "{json}");
    }
}
