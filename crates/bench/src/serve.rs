//! The long-running pipeline service (`report serve`).
//!
//! A [`Server`] binds a `TcpListener` and serves the [`crate::proto`]
//! protocol from a bounded worker-thread pool: the acceptor pushes
//! connections into a bounded channel, `pool` workers drain it, and
//! each worker speaks request/response lines over its connection until
//! the client hangs up. The pool bound is the backpressure story — at
//! most `pool` pipelines execute concurrently, and a full backlog
//! blocks the acceptor instead of queueing unbounded work.
//!
//! All result state lives in one shared [`RunCache`]: identical `run`
//! requests collapse into a single pipeline execution (single-flight),
//! repeat requests are served from memory, and — when `--journal-dir`
//! is given — from the on-disk stage journal across server restarts,
//! shared with batch runs pointed at the same directory.
//!
//! `shutdown` finishes the requesting connection, stops the acceptor,
//! lets in-flight connections drain, and returns from [`Server::run`].

use crate::cli::ServeArgs;
use crate::proto::{Request, Response};
use ewhoring_core::pipeline::{
    snapshot_json, EpochEngine, PipelineReport, RunCache, RunSpec, RunStatus,
};
use serde::Value;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use worldgen::World;

/// A bound pipeline service, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    cache: Arc<RunCache>,
    /// Live epoch engines for `advance` requests, keyed by the
    /// upto-normalized run key (so every `upto` of one streamed run
    /// shares one engine). The map lock is held across an advance,
    /// which serializes engine work — the engines *are* mutable shared
    /// state, and an interleaved advance on one engine would be a bug,
    /// not a throughput win.
    engines: Mutex<HashMap<String, EpochEngine>>,
    /// Mirrors the cache's journal root so resumed engines pick their
    /// checkpoints up from the same directory batch runs write to.
    journal_dir: Option<String>,
    pool: usize,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `args.addr` (port `0` = ephemeral) and prepares the result
    /// cache; no requests are served until [`Server::run`].
    pub fn bind(args: &ServeArgs) -> Result<Server, String> {
        let listener = TcpListener::bind(&args.addr)
            .map_err(|e| format!("cannot bind `{}`: {e}", args.addr))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("bound address unavailable: {e}"))?;
        let cache = match &args.journal_dir {
            Some(dir) => RunCache::with_journal(dir),
            None => RunCache::in_memory(),
        };
        Ok(Server {
            listener,
            local_addr,
            cache: Arc::new(cache),
            engines: Mutex::new(HashMap::new()),
            journal_dir: args.journal_dir.clone(),
            pool: args.pool.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound — the resolved port when the caller
    /// asked for an ephemeral one.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared result cache (exposed for tests and stats).
    pub fn cache(&self) -> &Arc<RunCache> {
        &self.cache
    }

    /// Serves until a `shutdown` request arrives: accepts connections,
    /// hands them to the worker pool, then drains in-flight work.
    pub fn run(&self) -> Result<(), String> {
        // Bounded backlog: one slot of headroom per worker keeps the
        // acceptor responsive without unbounded queueing.
        let (tx, rx) = sync_channel::<TcpStream>(self.pool);
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..self.pool {
                scope.spawn(|| self.worker(&rx));
            }
            self.accept_loop(&tx);
            drop(tx);
        });
        Ok(())
    }

    fn accept_loop(&self, tx: &SyncSender<TcpStream>) {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(returned)) => {
                    // Backlog full: block the acceptor on this one —
                    // that *is* the backpressure — unless shutdown won
                    // the race while we waited.
                    stream = returned;
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
    }

    fn worker(&self, rx: &Mutex<Receiver<TcpStream>>) {
        loop {
            // Hold the dequeue lock only to receive; handling runs
            // unlocked so workers serve connections concurrently.
            let stream = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                Ok(stream) => stream,
                Err(_) => return,
            };
            let _ = self.handle_connection(stream);
        }
    }

    /// One connection: request lines in, response lines out, until EOF
    /// or a `shutdown` request.
    fn handle_connection(&self, stream: TcpStream) -> std::io::Result<()> {
        let mut writer = stream.try_clone()?;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (response, stop) = self.handle_line(&line);
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            if stop {
                self.initiate_shutdown();
                return Ok(());
            }
        }
        Ok(())
    }

    /// Dispatches one request line; the flag says "stop serving after
    /// responding" (a `shutdown` request).
    fn handle_line(&self, line: &str) -> (String, bool) {
        match Request::decode(line) {
            Err(e) => (Response::error(e), false),
            Ok(Request::Shutdown) => (Response::ok(vec![("cmd", str_val("shutdown"))]), true),
            Ok(Request::Run(spec)) => {
                let t = Instant::now();
                let response = match self.cache.get_or_compute(&spec) {
                    Ok(run) => Response::ok(vec![
                        ("cmd", str_val("run")),
                        ("run_key", str_val(&run.run_key)),
                        ("cached", Value::Bool(!run.fresh)),
                        ("wall_us", Value::UInt(t.elapsed().as_micros())),
                    ]),
                    Err(e) => Response::error(format!("run failed: {e}")),
                };
                (response, false)
            }
            Ok(Request::Advance(spec)) => (self.advance_response(&spec), false),
            Ok(Request::Status(key)) => {
                let status = self.cache.status(&key);
                (
                    Response::ok(vec![
                        ("cmd", str_val("status")),
                        ("run_key", str_val(&key)),
                        ("status", str_val(status.as_str())),
                    ]),
                    false,
                )
            }
            Ok(Request::Report(key)) => (self.report_response(&key), false),
            Ok(Request::Health(key)) => (self.health_response(&key), false),
        }
    }

    /// One `advance` request: look up (or lazily build) the epoch
    /// engine for the spec's upto-normalized run key, advance it to the
    /// requested epoch, and embed the post-advance determinism snapshot
    /// — the exact bytes a batch run of the same spec would write.
    fn advance_response(&self, spec: &RunSpec) -> String {
        if spec.epochs == 0 {
            return Response::error("advance needs `epochs` > 0 (a streamed spec)");
        }
        if spec.upto > spec.epochs {
            return Response::error(format!("upto {} exceeds epochs {}", spec.upto, spec.epochs));
        }
        // All `upto` values of one streamed run share one engine; key
        // by the full-run spec so clients need not agree on `upto`.
        let engine_spec = RunSpec { upto: 0, ..*spec };
        let key = match engine_spec.run_key() {
            Ok(key) => key,
            Err(e) => return Response::error(format!("bad spec: {e}")),
        };
        let t = Instant::now();
        let mut engines = self.engines.lock().unwrap_or_else(|e| e.into_inner());
        let engine = match engines.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(slot) => slot.into_mut(),
            std::collections::hash_map::Entry::Vacant(slot) => {
                let world = World::generate(engine_spec.world_config());
                let engine = match &self.journal_dir {
                    Some(dir) => {
                        // Journal-backed: resume from the newest epoch
                        // checkpoint this directory holds for the spec.
                        match EpochEngine::with_journal(
                            world,
                            spec.epochs,
                            engine_spec.options(),
                            Path::new(dir),
                        ) {
                            Ok(engine) => engine,
                            Err(e) => return Response::error(format!("engine init failed: {e}")),
                        }
                    }
                    None => EpochEngine::new(world, spec.epochs, engine_spec.options()),
                };
                slot.insert(engine)
            }
        };
        let target = if spec.upto == 0 {
            engine.epoch() + 1
        } else {
            spec.upto
        };
        if target > engine.epochs() {
            return Response::error(format!(
                "already at final epoch {} of {}",
                engine.epoch(),
                engine.epochs()
            ));
        }
        if target <= engine.epoch() {
            return Response::error(format!(
                "cannot rewind: engine is at epoch {}, requested {target}",
                engine.epoch()
            ));
        }
        let report = match engine.advance_to(target) {
            Ok(Some(report)) => report,
            Ok(None) => return Response::error("advance produced no report".to_string()),
            Err(e) => return Response::error(format!("advance failed: {e}")),
        };
        match snapshot_json(&report) {
            Ok(snapshot) => Response::ok(vec![
                ("cmd", str_val("advance")),
                ("run_key", str_val(&key)),
                ("epoch", Value::UInt(engine.epoch() as u128)),
                ("epochs", Value::UInt(engine.epochs() as u128)),
                ("snapshot", str_val(&snapshot)),
                ("wall_us", Value::UInt(t.elapsed().as_micros())),
            ]),
            Err(e) => Response::error(format!("snapshot failed: {e}")),
        }
    }

    fn report_response(&self, key: &str) -> String {
        match self.cache.get(key) {
            Some(report) => match snapshot_json(&report) {
                Ok(snapshot) => Response::ok(vec![
                    ("cmd", str_val("report")),
                    ("run_key", str_val(key)),
                    ("snapshot", str_val(&snapshot)),
                ]),
                Err(e) => Response::error(format!("snapshot failed: {e}")),
            },
            None => Response::error(not_ready(self.cache.status(key), key)),
        }
    }

    fn health_response(&self, key: &str) -> String {
        match self.cache.get(key) {
            Some(report) => Response::ok(vec![
                ("cmd", str_val("health")),
                ("run_key", str_val(key)),
                ("health", health_value(&report)),
            ]),
            None => Response::error(not_ready(self.cache.status(key), key)),
        }
    }

    /// Flips the shutdown flag and unblocks the acceptor with a
    /// loopback connection so `run` can return.
    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
    }
}

fn str_val(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn not_ready(status: RunStatus, key: &str) -> String {
    match status {
        RunStatus::Running => format!("run `{key}` is still computing"),
        RunStatus::Failed => format!("run `{key}` failed; re-issue `run` for the error"),
        _ => format!("unknown run key `{key}` (issue a `run` first)"),
    }
}

/// The `health` payload: per-stage timings, quarantine and stage-health
/// counts, and the crawler's health counters — the service-mode view of
/// the report's pipeline-health section.
fn health_value(report: &PipelineReport) -> Value {
    let stages: Vec<Value> = report
        .timings
        .iter()
        .map(|t| {
            let mut row = serde::Map::new();
            row.insert("stage", str_val(&t.stage));
            row.insert("wall_us", Value::UInt(t.wall_us));
            row.insert("items", Value::UInt(t.items as u128));
            row.insert("source", str_val(t.source.as_str()));
            Value::Object(row)
        })
        .collect();
    let events: Vec<Value> = report
        .health
        .iter()
        .map(|h| {
            let mut row = serde::Map::new();
            row.insert("stage", str_val(&h.stage));
            row.insert(
                "status",
                str_val(match h.status {
                    ewhoring_core::pipeline::StageStatus::Recovered => "recovered",
                    ewhoring_core::pipeline::StageStatus::Degraded => "degraded",
                }),
            );
            row.insert("detail", str_val(&h.detail));
            Value::Object(row)
        })
        .collect();
    let mut crawl = serde::Map::new();
    let cs = &report.crawl_stats;
    crawl.insert("attempts", Value::UInt(cs.attempts.total() as u128));
    crawl.insert("retries", Value::UInt(cs.retries.total() as u128));
    crawl.insert("breaker_trips", Value::UInt(cs.breaker_trips as u128));
    crawl.insert(
        "unreachable_links",
        Value::UInt(report.crawl.unreachable_links as u128),
    );
    crawl.insert("wait_us", Value::UInt(cs.wait_us.total() as u128));
    // The supervision counters: all zero for unsharded runs, the
    // run/restart/quarantine tallies for supervised sharded runs.
    let mut supervision = serde::Map::new();
    let s = &report.supervision;
    supervision.insert("shards_run", Value::UInt(s.shards_run as u128));
    supervision.insert("shards_restarted", Value::UInt(s.shards_restarted as u128));
    supervision.insert(
        "shards_quarantined",
        Value::UInt(s.shards_quarantined as u128),
    );
    let mut map = serde::Map::new();
    map.insert("stages", Value::Array(stages));
    map.insert(
        "quarantined_records",
        Value::UInt(report.quarantine.len() as u128),
    );
    map.insert("stage_events", Value::Array(events));
    map.insert("crawl", Value::Object(crawl));
    map.insert("supervision", Value::Object(supervision));
    Value::Object(map)
}

/// The `serve` subcommand: bind, announce, serve until shutdown.
pub fn main(args: &ServeArgs) -> Result<(), String> {
    let server = Server::bind(args)?;
    let addr = server.local_addr();
    if let Some(path) = &args.port_file {
        // Scripts that asked for port 0 read the resolved address here.
        std::fs::write(path, format!("{addr}"))
            .map_err(|e| format!("cannot write port file `{path}`: {e}"))?;
    }
    eprintln!(
        "serving on {addr} (pool {}, journal {})",
        args.pool,
        args.journal_dir.as_deref().unwrap_or("none")
    );
    server.run()
}
