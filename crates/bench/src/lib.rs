//! Shared fixtures for the benchmark suite, plus the `report` binary's
//! implementation layers: the subcommand CLI ([`cli`]), the batch path
//! ([`report_cmd`]), the pipeline service ([`serve`]) with its wire
//! protocol ([`proto`]), and the load generator ([`loadgen`]).
//!
//! Worlds are expensive to generate, so benches share lazily-built
//! fixtures at two scales: `small` (quick iteration benches) and `bench`
//! (the ~10% world used for table/figure regeneration).

pub mod cli;
pub mod loadgen;
pub mod proto;
pub mod report_cmd;
pub mod serve;

use ewhoring_core::pipeline::{Pipeline, PipelineOptions, PipelineReport};
use std::sync::OnceLock;
use worldgen::{World, WorldConfig};

/// Seed shared by all benchmark fixtures.
pub const BENCH_SEED: u64 = 0xBE7C;

/// A small world (~2% scale) for per-stage micro benches.
pub fn small_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test_scale(BENCH_SEED)))
}

/// The ~10% world used for table/figure regeneration benches.
pub fn bench_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::bench_scale(BENCH_SEED)))
}

/// A pipeline report over [`small_world`], shared by figure benches.
pub fn small_report() -> &'static PipelineReport {
    static REPORT: OnceLock<PipelineReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        Pipeline::new(PipelineOptions {
            k_key_actors: 10,
            ..PipelineOptions::default()
        })
        .run(small_world())
    })
}

/// Pipeline options used across benches.
pub fn bench_options() -> PipelineOptions {
    PipelineOptions {
        k_key_actors: 25,
        ..PipelineOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert!(!small_world().corpus.posts().is_empty());
        assert!(!small_report().forums.is_empty());
    }
}
