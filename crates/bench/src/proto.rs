//! The line-delimited JSON wire protocol spoken by `serve`.
//!
//! One request per line, one response line per request, over a plain
//! TCP stream — friendly enough to drive from `nc`:
//!
//! ```text
//! {"cmd":"run","scale":0.02,"seed":123,"workers":2}
//! {"cmd":"advance","scale":0.02,"seed":123,"epochs":4}
//! {"cmd":"status","run_key":"f3a1…"}
//! {"cmd":"report","run_key":"f3a1…"}
//! {"cmd":"health","run_key":"f3a1…"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Every response carries `"ok"`; failures carry `"error"` instead of
//! payload fields. The `report` response embeds the determinism
//! snapshot (the exact bytes `--snapshot-json` writes) as one JSON
//! string field, so a wire client can recover a byte-identical file.
//!
//! Encoding and decoding are hand-rolled over the JSON [`Value`] tree
//! rather than derived, so a malformed request degrades into a precise
//! one-line error response instead of a serde stack trace.

use ewhoring_core::pipeline::RunSpec;
use serde::Value;

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute (or serve from cache) the run described by the spec.
    Run(RunSpec),
    /// Advance the epoch engine for a streaming spec (`epochs > 0`) and
    /// return the post-advance snapshot. `upto: 0` means "one epoch
    /// further than wherever the engine is".
    Advance(RunSpec),
    /// Lifecycle of a run key: unknown / running / ready / failed.
    Status(String),
    /// The determinism snapshot of a finished run.
    Report(String),
    /// Per-stage timings, quarantine and crawl health of a finished run.
    Health(String),
    /// Drain and stop the server.
    Shutdown,
}

impl Request {
    /// Renders the request as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut map = serde::Map::new();
        match self {
            Request::Run(spec) | Request::Advance(spec) => {
                let cmd = match self {
                    Request::Run(_) => "run",
                    _ => "advance",
                };
                map.insert("cmd", Value::Str(cmd.into()));
                map.insert("scale", Value::Float(spec.scale));
                map.insert("seed", Value::UInt(spec.seed.into()));
                map.insert("workers", Value::UInt(spec.workers as u128));
                map.insert("faults", Value::Float(spec.faults));
                map.insert("corruption", Value::Float(spec.corruption));
                map.insert("epochs", Value::UInt(spec.epochs as u128));
                map.insert("upto", Value::UInt(spec.upto as u128));
                map.insert("shards", Value::UInt(spec.shards as u128));
            }
            Request::Status(key) | Request::Report(key) | Request::Health(key) => {
                let cmd = match self {
                    Request::Status(_) => "status",
                    Request::Report(_) => "report",
                    _ => "health",
                };
                map.insert("cmd", Value::Str(cmd.into()));
                map.insert("run_key", Value::Str(key.clone()));
            }
            Request::Shutdown => {
                map.insert("cmd", Value::Str("shutdown".into()));
            }
        }
        serde::render(&Value::Object(map))
    }

    /// Parses one wire line. Unknown commands, missing fields, and
    /// mistyped values are all descriptive errors.
    pub fn decode(line: &str) -> Result<Request, String> {
        let value = serde::parse(line).map_err(|e| format!("request is not JSON: {}", e.0))?;
        let map = value
            .as_object()
            .ok_or_else(|| "request must be a JSON object".to_string())?;
        let cmd = map
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or_else(|| "request needs a string `cmd` field".to_string())?;
        match cmd {
            "run" => Ok(Request::Run(decode_spec(map)?)),
            "advance" => Ok(Request::Advance(decode_spec(map)?)),
            "status" => Ok(Request::Status(run_key_field(map)?)),
            "report" => Ok(Request::Report(run_key_field(map)?)),
            "health" => Ok(Request::Health(run_key_field(map)?)),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown cmd `{other}` (expected run/advance/status/report/health/shutdown)"
            )),
        }
    }
}

fn run_key_field(map: &serde::Map) -> Result<String, String> {
    map.get("run_key")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| "request needs a string `run_key` field".to_string())
}

/// Reads one optional numeric field, defaulting when absent.
fn f64_field(map: &serde::Map, name: &str, default: f64) -> Result<f64, String> {
    match map.get(name) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("field `{name}` must be a number")),
    }
}

fn u64_field(map: &serde::Map, name: &str, default: u64) -> Result<u64, String> {
    match map.get(name) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field `{name}` must be a non-negative integer")),
    }
}

/// Decodes a run spec from a `run` request; every field is optional and
/// defaults match the batch CLI's defaults.
fn decode_spec(map: &serde::Map) -> Result<RunSpec, String> {
    let defaults = RunSpec::default();
    Ok(RunSpec {
        scale: f64_field(map, "scale", defaults.scale)?,
        seed: u64_field(map, "seed", defaults.seed)?,
        workers: u64_field(map, "workers", defaults.workers as u64)? as usize,
        faults: f64_field(map, "faults", defaults.faults)?,
        corruption: f64_field(map, "corruption", defaults.corruption)?,
        epochs: u64_field(map, "epochs", defaults.epochs as u64)? as u32,
        upto: u64_field(map, "upto", defaults.upto as u64)? as u32,
        shards: u64_field(map, "shards", defaults.shards as u64)? as usize,
    })
}

/// A parsed response line, with typed accessors over the raw tree.
#[derive(Debug, Clone)]
pub struct Response(pub Value);

impl Response {
    /// Builds a success response from `(field, value)` pairs; `ok` is
    /// always set.
    pub fn ok(fields: Vec<(&str, Value)>) -> String {
        let mut map = serde::Map::new();
        map.insert("ok", Value::Bool(true));
        for (k, v) in fields {
            map.insert(k, v);
        }
        serde::render(&Value::Object(map))
    }

    /// Builds an error response line.
    pub fn error(msg: impl Into<String>) -> String {
        let mut map = serde::Map::new();
        map.insert("ok", Value::Bool(false));
        map.insert("error", Value::Str(msg.into()));
        serde::render(&Value::Object(map))
    }

    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        serde::parse(line)
            .map(Response)
            .map_err(|e| format!("response is not JSON: {}", e.0))
    }

    /// Whether the server reported success.
    pub fn is_ok(&self) -> bool {
        self.field("ok").and_then(|v| match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        }) == Some(true)
    }

    /// Raw field access.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.0.as_object().and_then(|m| m.get(name))
    }

    /// String field access.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        self.field(name).and_then(Value::as_str)
    }

    /// Bool field access.
    pub fn bool_field(&self, name: &str) -> Option<bool> {
        self.field(name).and_then(|v| match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        })
    }

    /// The `error` text of a failed response, if any.
    pub fn error_text(&self) -> Option<&str> {
        self.str_field("error")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_round_trips_with_all_knobs() {
        let spec = RunSpec {
            scale: 0.02,
            seed: 0xDEAD_BEEF,
            workers: 2,
            faults: 0.5,
            corruption: 0.25,
            epochs: 4,
            upto: 3,
            shards: 2,
        };
        let line = Request::Run(spec).encode();
        assert_eq!(Request::decode(&line), Ok(Request::Run(spec)));
    }

    #[test]
    fn advance_request_round_trips() {
        let spec = RunSpec {
            scale: 0.02,
            seed: 7,
            epochs: 3,
            ..RunSpec::default()
        };
        let line = Request::Advance(spec).encode();
        assert_eq!(Request::decode(&line), Ok(Request::Advance(spec)));
    }

    #[test]
    fn run_request_fields_default_like_the_batch_cli() {
        let req = Request::decode(r#"{"cmd":"run","scale":0.1}"#).expect("decodes");
        let Request::Run(spec) = req else {
            panic!("expected Run");
        };
        let d = RunSpec::default();
        assert_eq!(spec.scale, 0.1);
        assert_eq!(
            (spec.seed, spec.workers, spec.faults, spec.corruption),
            (d.seed, d.workers, d.faults, d.corruption)
        );
        assert_eq!((spec.epochs, spec.upto), (0, 0), "batch by default");
        assert_eq!(spec.shards, 0, "unsharded by default");
    }

    #[test]
    fn keyed_requests_round_trip() {
        for req in [
            Request::Status("abc123".into()),
            Request::Report("abc123".into()),
            Request::Health("abc123".into()),
            Request::Shutdown,
        ] {
            assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn malformed_requests_are_described_not_ignored() {
        assert!(Request::decode("not json").is_err());
        assert!(Request::decode(r#"{"cmd":"fly"}"#)
            .unwrap_err()
            .contains("unknown cmd"));
        assert!(Request::decode(r#"{"cmd":"status"}"#)
            .unwrap_err()
            .contains("run_key"));
        assert!(Request::decode(r#"{"cmd":"run","scale":"big"}"#)
            .unwrap_err()
            .contains("scale"));
    }

    #[test]
    fn responses_round_trip_including_embedded_snapshots() {
        // A snapshot payload is multi-line pretty JSON; it must survive
        // the one-line wire encoding byte-for-byte.
        let snapshot = "{\n  \"a\": 1,\n  \"b\": \"x\\\"y\"\n}\n";
        let line = Response::ok(vec![
            ("run_key", Value::Str("k".into())),
            ("snapshot", Value::Str(snapshot.into())),
        ]);
        assert!(!line.contains('\n'));
        let parsed = Response::parse(&line).expect("parses");
        assert!(parsed.is_ok());
        assert_eq!(parsed.str_field("snapshot"), Some(snapshot));

        let err = Response::parse(&Response::error("boom")).expect("parses");
        assert!(!err.is_ok());
        assert_eq!(err.error_text(), Some("boom"));
    }
}
