//! Subcommand parser for the `report` binary.
//!
//! The binary grew from a one-shot batch tool into a pipeline service,
//! and the CLI grew with it: a [`Command`] enum with `report` / `serve`
//! / `loadgen` / `bench` variants (shape modeled on elodin's
//! `Build/Run/Plan/Bench` clap enum, hand-implemented over
//! `std::env::args` because the offline stub workspace carries no
//! clap). `report.rs` itself is a thin dispatcher over the parsed
//! [`Command`].
//!
//! Unlike the old hand-rolled flag loop, parsing is *strict*: an
//! unknown flag (`--workes`), a malformed numeric value, a flag missing
//! its argument, or a surplus positional is a [`CliError`] that the
//! dispatcher renders with the usage text and a nonzero exit code —
//! nothing is silently swallowed.
//!
//! Invocations whose first argument is not a subcommand name parse as
//! the legacy batch form (`report -- 0.3 0xSEED --flags…`), so every
//! pre-service script keeps working.

use ewhoring_core::pipeline::{RunSpec, ShardPoison};
use std::fmt;

/// A rejected command line: what was wrong, in one line. The dispatcher
/// prints it with [`usage`] and exits nonzero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error: {}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// The usage text printed on `help` and on every [`CliError`].
pub fn usage() -> &'static str {
    "usage: report [SUBCOMMAND] [OPTIONS]

subcommands:
  report   (default)  one batch pipeline run, report to stdout
           [scale] [seed] [--workers N] [--faults S] [--corruption S]
           [--epochs K] [--upto E] [--incremental]
           [--shards N] [--poison-shard K] [--poison-panics M] [--poison-severity S]
           [--json PATH] [--snapshot-json PATH] [--bench-json PATH]
           [--journal-dir PATH] [--resume] [--stop-after N] [--intervention]
  serve    long-running pipeline service (line-delimited JSON over TCP)
           [--addr HOST:PORT] [--pool N] [--journal-dir PATH] [--port-file PATH]
  loadgen  fire a seeded hot/cold request mix at a running server
           --addr HOST:PORT [--clients K] [--requests N] [--hot-ratio R]
           [--scale S] [--seed SEED] [--cold-keys N] [--workers N]
           [--out PATH] [--snapshot-out PATH] [--shutdown]
  bench    workers=1 vs workers=N baseline, written as BENCH_pipeline.json
           [--scale S] [--seed SEED] [--workers N] [--out PATH]
           [--gate-floor ITEMS_PER_SEC]
  bench epoch
           epoch-advance delta vs full recompute, written as BENCH_epoch.json
           [--scale S] [--seed SEED] [--workers N] [--epochs K] [--out PATH]
           [--gate-floor FINAL_EPOCH_SPEEDUP] [--flat-ceiling RATIO]
  bench shard
           supervised sharded run vs the unsharded driver, written as
           BENCH_shard.json; fails hard if their snapshots differ
           [--scale S] [--seed SEED] [--workers N] [--shards N] [--out PATH]
           [--gate-floor SHARDED_OVER_UNSHARDED_RATIO]
  help     this text"
}

/// Batch-run arguments (the legacy surface of the binary).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportArgs {
    /// The run itself: scale/seed/workers/faults/corruption.
    pub spec: RunSpec,
    /// `--json`: dump the raw `PipelineReport`.
    pub json: Option<String>,
    /// `--bench-json`: also rerun at workers=1 and write the baseline.
    pub bench_json: Option<String>,
    /// `--snapshot-json`: write the determinism snapshot.
    pub snapshot_json: Option<String>,
    /// `--journal-dir`: checkpoint every stage under this directory.
    pub journal_dir: Option<String>,
    /// `--resume`: trust the journaled prefix instead of clearing it.
    pub resume: bool,
    /// `--stop-after N`: exit after N stages (simulated crash).
    pub stop_after: Option<usize>,
    /// `--intervention`: append the §8 countermeasure simulations.
    pub intervention: bool,
    /// `--incremental`: drive a streamed spec (`--epochs K`) through the
    /// epoch engine, one warm advance per epoch, instead of one full
    /// stream-mode recompute.
    pub incremental: bool,
    /// `--poison-shard K` (+ `--poison-panics` / `--poison-severity`):
    /// inject a calibrated fault into shard `K` of a sharded run, to
    /// exercise the restart and quarantine paths from the CLI.
    pub poison: Option<ShardPoison>,
}

/// `serve` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Bind address; port `0` asks the OS for an ephemeral port.
    pub addr: String,
    /// Worker-thread pool size (concurrent connections served).
    pub pool: usize,
    /// Journal root backing the result cache (`None` = memory only).
    pub journal_dir: Option<String>,
    /// File to write the actually-bound `host:port` to (for scripts
    /// that asked for an ephemeral port).
    pub port_file: Option<String>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:4119".to_string(),
            pool: 4,
            journal_dir: None,
            port_file: None,
        }
    }
}

/// `loadgen` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenArgs {
    /// Server to fire at.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Fraction of requests aimed at the single hot (cache-hit) spec.
    pub hot_ratio: f64,
    /// Scale of every generated spec.
    pub scale: f64,
    /// Base seed: the hot spec uses it verbatim, cold specs derive from
    /// it; also seeds the hot/cold mix shuffle.
    pub seed: u64,
    /// Distinct cold (cache-miss) seeds to rotate through.
    pub cold_keys: usize,
    /// Workers requested per run.
    pub workers: usize,
    /// Where to write the latency/throughput summary
    /// (`BENCH_serve.json`).
    pub out: Option<String>,
    /// Fetch the hot spec's report over the wire and write its snapshot
    /// here (the smoke test `cmp`s it against a batch run).
    pub snapshot_out: Option<String>,
    /// Send `shutdown` after the run.
    pub shutdown: bool,
}

impl Default for LoadGenArgs {
    fn default() -> Self {
        LoadGenArgs {
            addr: String::new(),
            clients: 4,
            requests: 25,
            hot_ratio: 0.8,
            scale: 0.02,
            seed: 0xE400_2019,
            cold_keys: 3,
            workers: 1,
            out: None,
            snapshot_out: None,
            shutdown: false,
        }
    }
}

/// `bench` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Scale of the benched world.
    pub scale: f64,
    /// World seed.
    pub seed: u64,
    /// The parallel worker count compared against workers=1.
    pub workers: usize,
    /// Output path for the baseline JSON.
    pub out: String,
    /// Performance gate. In the worker-scaling mode: fail unless the
    /// serial (workers=1) `measure_images` rate reaches this many
    /// items/sec. In `bench epoch` mode: fail unless the final-epoch
    /// warm advance is at least this many times faster than the full
    /// recompute. The committed floors live in `BENCH_floor.txt`.
    pub gate_floor: Option<f64>,
    /// `--flat-ceiling R` (epoch mode): fail unless the final warm
    /// advance's cost per new eWhoring thread is at most `R` times the
    /// median per-thread cost of the earlier warm advances. Guards the
    /// O(epoch delta) property itself: a fold that silently regresses
    /// to re-scanning the corpus inflates the final epoch's per-thread
    /// cost by the corpus/delta factor and trips this even while the
    /// speedup floor still passes. Committed ceiling: `epoch-flat` in
    /// `BENCH_floor.txt`.
    pub flat_ceiling: Option<f64>,
    /// `bench epoch`: measure warm epoch advances against fresh full
    /// recomputes instead of the worker-scaling baseline.
    pub epoch: bool,
    /// `--epochs K` (epoch mode): how many slices to advance through.
    pub epochs: u32,
    /// `bench shard`: measure the supervised sharded driver against
    /// the unsharded run (and hard-gate on snapshot equality).
    pub shard: bool,
    /// `--shards N` (shard mode): shard count for the sharded leg.
    pub shards: usize,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 0.05,
            seed: 0xE400_2019,
            workers: 4,
            out: "BENCH_pipeline.json".to_string(),
            gate_floor: None,
            flat_ceiling: None,
            epoch: false,
            epochs: 6,
            shard: false,
            shards: 5,
        }
    }
}

/// One parsed invocation of the binary.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Batch run (the default when no subcommand is named).
    Report(ReportArgs),
    /// Long-running service.
    Serve(ServeArgs),
    /// Load-generator client.
    LoadGen(LoadGenArgs),
    /// Worker-scaling baseline.
    Bench(BenchArgs),
    /// Print usage and exit 0.
    Help,
}

impl Command {
    /// Parses a full argument list (without the program name). Every
    /// malformed input is a [`CliError`]; nothing is ignored.
    pub fn parse(args: &[String]) -> Result<Command, CliError> {
        match args.first().map(String::as_str) {
            Some("report") => Ok(Command::Report(parse_report(&args[1..])?)),
            Some("serve") => Ok(Command::Serve(parse_serve(&args[1..])?)),
            Some("loadgen") => Ok(Command::LoadGen(parse_loadgen(&args[1..])?)),
            Some("bench") => Ok(Command::Bench(parse_bench(&args[1..])?)),
            Some("help" | "--help" | "-h") => Ok(Command::Help),
            // Legacy batch form: `report -- 0.3 0xSEED --flags…`.
            _ => Ok(Command::Report(parse_report(args)?)),
        }
    }
}

/// Pulls the value after `flag`, or errors naming the flag.
fn take_value<'a>(
    flag: &str,
    it: &mut std::slice::Iter<'a, String>,
) -> Result<&'a String, CliError> {
    match it.next() {
        Some(v) => Ok(v),
        None => err(format!("`{flag}` requires a value")),
    }
}

/// Parses `raw` as `T` for `flag`, or errors with both.
fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, CliError> {
    raw.parse()
        .map_err(|_| CliError(format!("`{flag}` got malformed value `{raw}`")))
}

/// Seeds accept decimal or `0x`-prefixed hex.
fn parse_seed(flag: &str, raw: &str) -> Result<u64, CliError> {
    if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
            .map_err(|_| CliError(format!("`{flag}` got malformed hex seed `{raw}`")))
    } else {
        parse_num(flag, raw)
    }
}

fn parse_report(args: &[String]) -> Result<ReportArgs, CliError> {
    let mut out = ReportArgs::default();
    let mut positional = 0;
    let mut poison_shard: Option<u32> = None;
    let mut poison_panics: u32 = 1;
    let mut poison_severity: f64 = 0.0;
    let mut poison_tuning = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => out.json = Some(take_value(arg, &mut it)?.clone()),
            "--bench-json" => out.bench_json = Some(take_value(arg, &mut it)?.clone()),
            "--snapshot-json" => out.snapshot_json = Some(take_value(arg, &mut it)?.clone()),
            "--journal-dir" => out.journal_dir = Some(take_value(arg, &mut it)?.clone()),
            "--resume" => out.resume = true,
            "--stop-after" => out.stop_after = Some(parse_num(arg, take_value(arg, &mut it)?)?),
            "--workers" => out.spec.workers = parse_num(arg, take_value(arg, &mut it)?)?,
            "--intervention" => out.intervention = true,
            "--faults" => out.spec.faults = parse_num(arg, take_value(arg, &mut it)?)?,
            "--corruption" => out.spec.corruption = parse_num(arg, take_value(arg, &mut it)?)?,
            "--epochs" => out.spec.epochs = parse_num(arg, take_value(arg, &mut it)?)?,
            "--upto" => out.spec.upto = parse_num(arg, take_value(arg, &mut it)?)?,
            "--incremental" => out.incremental = true,
            "--shards" => out.spec.shards = parse_num(arg, take_value(arg, &mut it)?)?,
            "--poison-shard" => poison_shard = Some(parse_num(arg, take_value(arg, &mut it)?)?),
            "--poison-panics" => {
                poison_panics = parse_num(arg, take_value(arg, &mut it)?)?;
                poison_tuning = true;
            }
            "--poison-severity" => {
                poison_severity = parse_num(arg, take_value(arg, &mut it)?)?;
                poison_tuning = true;
            }
            flag if flag.starts_with('-') => return err(format!("unknown flag `{flag}`")),
            _ => {
                match positional {
                    0 => out.spec.scale = parse_num("scale", arg)?,
                    1 => out.spec.seed = parse_seed("seed", arg)?,
                    _ => return err(format!("unexpected extra positional `{arg}`")),
                }
                positional += 1;
            }
        }
    }
    if out.incremental && out.spec.epochs == 0 {
        return err("`--incremental` requires `--epochs K`");
    }
    if out.spec.upto > 0 && out.spec.epochs == 0 {
        return err("`--upto` requires `--epochs K`");
    }
    if out.spec.shards > 0 && out.spec.epochs > 0 {
        return err("`--shards` is batch-only; it cannot be combined with `--epochs`");
    }
    if out.spec.shards > 0 && out.journal_dir.is_some() {
        return err("`--shards` cannot be combined with `--journal-dir` (sharded runs recompute)");
    }
    match poison_shard {
        Some(shard) => {
            if out.spec.shards == 0 {
                return err("`--poison-shard` requires `--shards N`");
            }
            if shard as usize >= out.spec.shards {
                return err(format!(
                    "`--poison-shard {shard}` is out of range for `--shards {}`",
                    out.spec.shards
                ));
            }
            out.poison = Some(ShardPoison {
                shard,
                panics: poison_panics,
                severity: poison_severity,
            });
        }
        None if poison_tuning => {
            return err("`--poison-panics`/`--poison-severity` require `--poison-shard K`");
        }
        None => {}
    }
    Ok(out)
}

fn parse_serve(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut out = ServeArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.addr = take_value(arg, &mut it)?.clone(),
            "--pool" => {
                out.pool = parse_num(arg, take_value(arg, &mut it)?)?;
                if out.pool == 0 {
                    return err("`--pool` must be at least 1");
                }
            }
            "--journal-dir" => out.journal_dir = Some(take_value(arg, &mut it)?.clone()),
            "--port-file" => out.port_file = Some(take_value(arg, &mut it)?.clone()),
            other => return err(format!("unknown serve argument `{other}`")),
        }
    }
    Ok(out)
}

fn parse_loadgen(args: &[String]) -> Result<LoadGenArgs, CliError> {
    let mut out = LoadGenArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.addr = take_value(arg, &mut it)?.clone(),
            "--clients" => out.clients = parse_num(arg, take_value(arg, &mut it)?)?,
            "--requests" => out.requests = parse_num(arg, take_value(arg, &mut it)?)?,
            "--hot-ratio" => {
                out.hot_ratio = parse_num(arg, take_value(arg, &mut it)?)?;
                if !(0.0..=1.0).contains(&out.hot_ratio) {
                    return err("`--hot-ratio` must be within [0, 1]");
                }
            }
            "--scale" => out.scale = parse_num(arg, take_value(arg, &mut it)?)?,
            "--seed" => out.seed = parse_seed(arg, take_value(arg, &mut it)?)?,
            "--cold-keys" => {
                out.cold_keys = parse_num(arg, take_value(arg, &mut it)?)?;
                if out.cold_keys == 0 {
                    return err("`--cold-keys` must be at least 1");
                }
            }
            "--workers" => out.workers = parse_num(arg, take_value(arg, &mut it)?)?,
            "--out" => out.out = Some(take_value(arg, &mut it)?.clone()),
            "--snapshot-out" => out.snapshot_out = Some(take_value(arg, &mut it)?.clone()),
            "--shutdown" => out.shutdown = true,
            other => return err(format!("unknown loadgen argument `{other}`")),
        }
    }
    if out.addr.is_empty() {
        return err("loadgen requires `--addr HOST:PORT`");
    }
    if out.clients == 0 {
        return err("`--clients` must be at least 1");
    }
    Ok(out)
}

fn parse_bench(args: &[String]) -> Result<BenchArgs, CliError> {
    let mut out = BenchArgs::default();
    // `bench epoch` switches modes (and the default output path) before
    // the flag loop so `--out` can still override it.
    let mut args = args;
    if args.first().map(String::as_str) == Some("epoch") {
        out.epoch = true;
        out.out = "BENCH_epoch.json".to_string();
        args = &args[1..];
    } else if args.first().map(String::as_str) == Some("shard") {
        out.shard = true;
        out.out = "BENCH_shard.json".to_string();
        args = &args[1..];
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => out.scale = parse_num(arg, take_value(arg, &mut it)?)?,
            "--seed" => out.seed = parse_seed(arg, take_value(arg, &mut it)?)?,
            "--workers" => out.workers = parse_num(arg, take_value(arg, &mut it)?)?,
            "--out" => out.out = take_value(arg, &mut it)?.clone(),
            "--gate-floor" => out.gate_floor = Some(parse_num(arg, take_value(arg, &mut it)?)?),
            "--flat-ceiling" if out.epoch => {
                out.flat_ceiling = Some(parse_num(arg, take_value(arg, &mut it)?)?);
            }
            "--epochs" if out.epoch => {
                out.epochs = parse_num(arg, take_value(arg, &mut it)?)?;
                if out.epochs == 0 {
                    return err("`--epochs` must be at least 1");
                }
            }
            "--shards" if out.shard => {
                out.shards = parse_num(arg, take_value(arg, &mut it)?)?;
                if out.shards == 0 {
                    return err("`--shards` must be at least 1");
                }
            }
            other => return err(format!("unknown bench argument `{other}`")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn legacy_batch_form_still_parses() {
        let cmd = Command::parse(&args(&[
            "0.02",
            "0xDEADBEEF",
            "--workers",
            "2",
            "--snapshot-json",
            "snap.json",
        ]))
        .expect("legacy form parses");
        let Command::Report(report) = cmd else {
            panic!("expected Report, got {cmd:?}");
        };
        assert_eq!(report.spec.scale, 0.02);
        assert_eq!(report.spec.seed, 0xDEAD_BEEF);
        assert_eq!(report.spec.workers, 2);
        assert_eq!(report.snapshot_json.as_deref(), Some("snap.json"));
    }

    /// The regression the refactor exists for: the old loop treated a
    /// typo'd flag as a positional and silently mis-parsed the line.
    #[test]
    fn misspelled_flag_is_a_usage_error() {
        let e = Command::parse(&args(&["--workes", "4"])).unwrap_err();
        assert!(e.0.contains("unknown flag `--workes`"), "{e}");
    }

    #[test]
    fn malformed_faults_value_is_a_usage_error() {
        let e = Command::parse(&args(&["--faults", "calibrated"])).unwrap_err();
        assert!(
            e.0.contains("--faults") && e.0.contains("calibrated"),
            "{e}"
        );
    }

    #[test]
    fn flag_missing_its_value_is_a_usage_error() {
        let e = Command::parse(&args(&["--workers"])).unwrap_err();
        assert!(e.0.contains("requires a value"), "{e}");
    }

    #[test]
    fn surplus_positionals_are_rejected() {
        let e = Command::parse(&args(&["0.3", "7", "9"])).unwrap_err();
        assert!(e.0.contains("extra positional"), "{e}");
    }

    #[test]
    fn serve_and_loadgen_forms_parse() {
        let cmd = Command::parse(&args(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--pool",
            "8",
            "--journal-dir",
            ".journals/svc",
        ]))
        .expect("serve parses");
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                addr: "127.0.0.1:0".into(),
                pool: 8,
                journal_dir: Some(".journals/svc".into()),
                port_file: None,
            })
        );

        let cmd = Command::parse(&args(&[
            "loadgen",
            "--addr",
            "127.0.0.1:4119",
            "--clients",
            "2",
            "--requests",
            "10",
            "--hot-ratio",
            "0.5",
            "--shutdown",
        ]))
        .expect("loadgen parses");
        let Command::LoadGen(lg) = cmd else {
            panic!("expected LoadGen");
        };
        assert_eq!((lg.clients, lg.requests), (2, 10));
        assert!(lg.shutdown);
    }

    #[test]
    fn loadgen_without_addr_is_rejected() {
        let e = Command::parse(&args(&["loadgen", "--clients", "2"])).unwrap_err();
        assert!(e.0.contains("--addr"), "{e}");
    }

    #[test]
    fn bench_subcommand_parses_with_defaults() {
        let cmd = Command::parse(&args(&["bench", "--scale", "0.05"])).expect("bench parses");
        let Command::Bench(b) = cmd else {
            panic!("expected Bench");
        };
        assert_eq!(b.scale, 0.05);
        assert_eq!(b.out, "BENCH_pipeline.json");
    }

    #[test]
    fn epoch_flags_parse_and_are_validated() {
        let cmd = Command::parse(&args(&[
            "0.02",
            "7",
            "--epochs",
            "4",
            "--upto",
            "2",
            "--incremental",
        ]))
        .expect("streamed report form parses");
        let Command::Report(report) = cmd else {
            panic!("expected Report");
        };
        assert_eq!((report.spec.epochs, report.spec.upto), (4, 2));
        assert!(report.incremental);

        let e = Command::parse(&args(&["--incremental"])).unwrap_err();
        assert!(e.0.contains("--epochs"), "{e}");
        let e = Command::parse(&args(&["--upto", "2"])).unwrap_err();
        assert!(e.0.contains("--epochs"), "{e}");
    }

    #[test]
    fn bench_epoch_mode_parses() {
        let cmd = Command::parse(&args(&[
            "bench",
            "epoch",
            "--scale",
            "0.05",
            "--epochs",
            "3",
            "--gate-floor",
            "3.0",
            "--flat-ceiling",
            "1.5",
        ]))
        .expect("bench epoch parses");
        let Command::Bench(b) = cmd else {
            panic!("expected Bench");
        };
        assert!(b.epoch);
        assert_eq!(b.epochs, 3);
        assert_eq!(b.out, "BENCH_epoch.json", "epoch mode default output");
        assert_eq!(b.gate_floor, Some(3.0));
        assert_eq!(b.flat_ceiling, Some(1.5));

        // `--epochs` and `--flat-ceiling` belong to epoch mode only.
        let e = Command::parse(&args(&["bench", "--epochs", "3"])).unwrap_err();
        assert!(e.0.contains("unknown bench argument"), "{e}");
        let e = Command::parse(&args(&["bench", "--flat-ceiling", "1.5"])).unwrap_err();
        assert!(e.0.contains("unknown bench argument"), "{e}");
    }

    #[test]
    fn shard_flags_parse_and_are_validated() {
        let cmd = Command::parse(&args(&[
            "0.02",
            "7",
            "--shards",
            "5",
            "--poison-shard",
            "2",
            "--poison-panics",
            "3",
            "--poison-severity",
            "1.0",
        ]))
        .expect("sharded report form parses");
        let Command::Report(report) = cmd else {
            panic!("expected Report");
        };
        assert_eq!(report.spec.shards, 5);
        let poison = report.poison.expect("poison parsed");
        assert_eq!((poison.shard, poison.panics), (2, 3));
        assert_eq!(poison.severity, 1.0);

        let e = Command::parse(&args(&["--poison-shard", "0"])).unwrap_err();
        assert!(e.0.contains("--shards"), "{e}");
        let e = Command::parse(&args(&["--poison-panics", "2"])).unwrap_err();
        assert!(e.0.contains("--poison-shard"), "{e}");
        let e = Command::parse(&args(&["--shards", "2", "--poison-shard", "2"])).unwrap_err();
        assert!(e.0.contains("out of range"), "{e}");
        let e = Command::parse(&args(&["--shards", "2", "--epochs", "3"])).unwrap_err();
        assert!(e.0.contains("batch-only"), "{e}");
        let e = Command::parse(&args(&["--shards", "2", "--journal-dir", ".j"])).unwrap_err();
        assert!(e.0.contains("journal-dir"), "{e}");
    }

    #[test]
    fn bench_shard_mode_parses() {
        let cmd = Command::parse(&args(&[
            "bench",
            "shard",
            "--scale",
            "0.05",
            "--shards",
            "3",
            "--gate-floor",
            "0.25",
        ]))
        .expect("bench shard parses");
        let Command::Bench(b) = cmd else {
            panic!("expected Bench");
        };
        assert!(b.shard);
        assert_eq!(b.shards, 3);
        assert_eq!(b.out, "BENCH_shard.json", "shard mode default output");
        assert_eq!(b.gate_floor, Some(0.25));

        // `--shards` belongs to shard mode only.
        let e = Command::parse(&args(&["bench", "--shards", "3"])).unwrap_err();
        assert!(e.0.contains("unknown bench argument"), "{e}");
    }

    #[test]
    fn help_is_not_an_error() {
        assert_eq!(Command::parse(&args(&["help"])), Ok(Command::Help));
        assert_eq!(Command::parse(&args(&["--help"])), Ok(Command::Help));
    }
}
