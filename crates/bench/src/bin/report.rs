//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p ewhoring-bench --bin report -- [scale] [seed] [--json PATH] [--intervention] [--faults SEVERITY]
//! ```
//!
//! `scale` defaults to 0.3 (≈30% of the paper's corpus — same shapes, a
//! third of the wall clock); use `1.0` for full paper scale. The text
//! report prints to stdout; `--json` additionally dumps the raw
//! `PipelineReport`; `--intervention` appends the §8 countermeasure
//! simulations (shared hash-blacklist + payment screening); `--faults`
//! enables transient-fault injection in the crawl stage (`1.0` =
//! calibrated per-site rates; the retry/breaker health counters land in
//! the crawler-health section next to the stage timings).

use ewhoring_core::pipeline::{Pipeline, PipelineOptions};
use ewhoring_core::report::full_report;
use std::time::Instant;
use worldgen::{World, WorldConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.3f64;
    let mut seed = 0xE400_2019u64;
    let mut json_path: Option<String> = None;
    let mut with_intervention = false;
    let mut fault_severity = 0.0f64;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            json_path = it.next().cloned();
            continue;
        }
        if arg == "--intervention" {
            with_intervention = true;
            continue;
        }
        if arg == "--faults" {
            fault_severity = it
                .next()
                .expect("--faults takes a severity")
                .parse()
                .expect("fault severity must be a float");
            continue;
        }
        match positional {
            0 => scale = arg.parse().expect("scale must be a float"),
            1 => seed = parse_seed(arg),
            _ => {}
        }
        positional += 1;
    }

    let config = WorldConfig {
        seed,
        scale,
        origin_domains: ((5_917.0 * scale.sqrt()) as u32).max(200),
        csam_images: ((36.0 * scale).round() as u32).max(4),
        with_side_boards: true,
    };
    eprintln!("generating world: scale {scale}, seed {seed:#x} …");
    let t = Instant::now();
    let world = World::generate(config);
    eprintln!(
        "world ready in {:.1?}: {} posts, {} threads, {} actors, {} hosted objects, {} indexed images",
        t.elapsed(),
        world.corpus.posts().len(),
        world.corpus.threads().len(),
        world.corpus.actors().len(),
        world.web.len(),
        world.index.len(),
    );

    let k = ((50.0 * scale).round() as usize).clamp(8, 50);
    let t = Instant::now();
    let report = Pipeline::new(PipelineOptions {
        k_key_actors: k,
        fault_severity,
        ..PipelineOptions::default()
    })
    .run(&world);
    eprintln!("pipeline finished in {:.1?}", t.elapsed());
    for t in &report.timings {
        let per_sec = if t.wall_us > 0 {
            t.items as f64 / (t.wall_us as f64 / 1_000_000.0)
        } else {
            0.0
        };
        eprintln!(
            "  {:<16} {:>9.1} ms  {:>8} items  {:>12.0} items/s",
            t.stage,
            t.wall_us as f64 / 1_000.0,
            t.items,
            per_sec
        );
    }
    let cs = &report.crawl_stats;
    eprintln!(
        "  crawl health: {} attempts, {} retries, {} breaker trips, {} unreachable, {:.1} s simulated wait",
        cs.attempts.total(),
        cs.retries.total(),
        cs.breaker_trips,
        report.crawl.unreachable_links,
        cs.wait_us.total() as f64 / 1_000_000.0
    );

    println!("=== Measuring eWhoring — reproduction report (scale {scale}, seed {seed:#x}) ===\n");
    println!("{}", full_report(&report));

    if with_intervention {
        println!("{}", intervention_section(&report));
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&report).expect("serialise report");
        std::fs::write(&path, json).expect("write JSON report");
        eprintln!("raw report written to {path}");
    }
}

/// Runs the §8 countermeasure simulations against the already-crawled
/// material and renders them as a report section.
fn intervention_section(report: &ewhoring_core::pipeline::PipelineReport) -> String {
    use ewhoring_core::intervention::{deployment_sweep, screen_payment_accounts};
    use ewhoring_core::nsfv::ImageMeasures;
    use std::fmt::Write as _;

    let mut out = String::from(
        "Extension (§8): intervention simulations
",
    );

    // Shared hash-blacklist over the crawled packs.
    let owned: Vec<(&ewhoring_core::crawl::PackDownload, Vec<ImageMeasures>)> = report
        .crawl
        .packs
        .iter()
        .map(|p| {
            let measures = p
                .images
                .iter()
                .take(30)
                .map(|img| ImageMeasures::of(&img.render()))
                .collect();
            (p, measures)
        })
        .collect();
    let packs: Vec<(&ewhoring_core::crawl::PackDownload, &[ImageMeasures])> =
        owned.iter().map(|(p, m)| (*p, m.as_slice())).collect();
    if !packs.is_empty() {
        let mut dates: Vec<synthrand::Day> = packs.iter().map(|(p, _)| p.link.posted).collect();
        dates.sort_unstable();
        let sweep_dates: Vec<synthrand::Day> =
            (1..=4).map(|i| dates[dates.len() * i / 5]).collect();
        for (date, block, disrupt) in deployment_sweep(&packs, &sweep_dates) {
            let _ = writeln!(
                out,
                "  blacklist deployed {date}: blocks {:.1}% of later images, disrupts {:.1}% of later packs",
                100.0 * block,
                100.0 * disrupt
            );
        }
    }

    // Payment screening over the harvested proofs.
    for min_tx in [5u32, 10, 20] {
        let s = screen_payment_accounts(&report.harvest.proofs, min_tx);
        let _ = writeln!(
            out,
            "  payment screening (≥{min_tx} tx/proof): {}/{} actors flagged, {:.0}% of revenue covered",
            s.flagged_actors,
            s.flagged_actors + s.unflagged_actors,
            100.0 * s.usd_coverage()
        );
    }
    let _ = writeln!(out, "  (see examples/intervention.rs and DESIGN.md §7)");
    out
}

fn parse_seed(arg: &str) -> u64 {
    if let Some(hex) = arg.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("hex seed")
    } else {
        arg.parse().expect("seed must be an integer")
    }
}
