//! The pipeline binary: batch reports, the long-running service, the
//! load generator, and the worker-scaling bench, behind one subcommand
//! CLI.
//!
//! ```text
//! report [report] [scale] [seed] [--workers N] [--faults S] [--corruption S]
//!                 [--json PATH] [--snapshot-json PATH] [--bench-json PATH]
//!                 [--journal-dir PATH] [--resume] [--stop-after N] [--intervention]
//! report serve   [--addr HOST:PORT] [--pool N] [--journal-dir PATH] [--port-file PATH]
//! report loadgen --addr HOST:PORT [--clients K] [--requests N] [--hot-ratio R] …
//! report bench   [--scale S] [--seed SEED] [--workers N] [--out PATH]
//! ```
//!
//! Batch mode: `scale` defaults to 0.3 (≈30% of the paper's corpus —
//! same shapes, a third of the wall clock); use `1.0` for full paper
//! scale. `--workers` sets the thread count for the data-parallel
//! stages (defaults to 4 because the report is byte-identical for any
//! worker count — see `tests/determinism.rs` — so the default favors
//! throughput; `0` uses every available core, which on a single-core
//! host is the same as 1). See `ewhoring_bench::cli` for the full flag
//! reference and `ewhoring_bench::proto` for the wire protocol `serve`
//! speaks.
//!
//! This file is only the dispatcher: parsing lives in
//! `ewhoring_bench::cli`, the batch/bench paths in
//! `ewhoring_bench::report_cmd`, the service in
//! `ewhoring_bench::serve`, and the load generator in
//! `ewhoring_bench::loadgen`. A malformed command line (unknown flag,
//! bad numeric value, missing argument) prints the error plus usage and
//! exits 2; a runtime failure prints the error and exits 1.

use ewhoring_bench::cli::{usage, Command};
use ewhoring_bench::{loadgen, report_cmd, serve};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match Command::parse(&args) {
        Ok(command) => command,
        Err(e) => {
            eprintln!("{e}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    let outcome = match &command {
        Command::Help => {
            println!("{}", usage());
            Ok(())
        }
        Command::Report(args) => report_cmd::main(args),
        Command::Bench(args) => report_cmd::bench_main(args),
        Command::Serve(args) => serve::main(args),
        Command::LoadGen(args) => loadgen::main(args),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
