//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p ewhoring-bench --bin report -- [scale] [seed] [--json PATH] [--workers N] [--bench-json PATH] [--intervention] [--faults SEVERITY] [--corruption SEVERITY] [--journal-dir PATH] [--resume] [--stop-after N] [--snapshot-json PATH]
//! ```
//!
//! `scale` defaults to 0.3 (≈30% of the paper's corpus — same shapes, a
//! third of the wall clock); use `1.0` for full paper scale. The text
//! report prints to stdout; `--json` additionally dumps the raw
//! `PipelineReport`; `--workers` sets the thread count for the
//! data-parallel stages (default 4; 0 = all cores — the report itself is
//! byte-identical either way); `--bench-json` reruns the pipeline at
//! `workers = 1` and writes a machine-readable baseline (per-stage
//! `wall_us`, `items`, `items_per_sec`, and `source` — computed vs
//! journal-loaded — at workers=1 vs workers=N, plus the aggregate
//! speedup over the parallel stages and the run's quarantined-record
//! count) to PATH — conventionally `BENCH_pipeline.json`;
//! `--intervention` appends the §8 countermeasure simulations (shared
//! hash-blacklist + payment screening); `--faults` enables
//! transient-fault injection in the crawl stage (`1.0` = calibrated
//! per-site rates); `--corruption` enables input-corruption injection
//! (`1.0` = calibrated per-kind rates; corrupt records land in the
//! quarantine ledger and the pipeline-health report section, never a
//! panic).
//!
//! Checkpointing: `--journal-dir PATH` journals every completed stage
//! under `PATH/run-<key>` (the key hashes the world config + pipeline
//! options, so unrelated runs never collide). By default the run dir is
//! cleared first; `--resume` keeps it and loads the journaled prefix
//! instead of recomputing it — the final report is byte-identical to an
//! uninterrupted run. `--stop-after N` exits after N stages (simulating
//! a crash at a stage boundary) without printing a report.
//! `--snapshot-json PATH` writes the report minus wall-clock timings —
//! the determinism snapshot two runs can be `cmp`'d on.

use ewhoring_core::pipeline::{Journal, Pipeline, PipelineOptions, StageTiming, TimingSource};
use ewhoring_core::report::full_report;
use std::time::Instant;
use worldgen::{World, WorldConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.3f64;
    let mut seed = 0xE400_2019u64;
    let mut json_path: Option<String> = None;
    let mut bench_json_path: Option<String> = None;
    let mut snapshot_json_path: Option<String> = None;
    let mut journal_dir: Option<String> = None;
    let mut resume = false;
    let mut stop_after: Option<usize> = None;
    let mut workers = 4usize;
    let mut with_intervention = false;
    let mut fault_severity = 0.0f64;
    let mut corruption_severity = 0.0f64;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            json_path = it.next().cloned();
            continue;
        }
        if arg == "--bench-json" {
            bench_json_path = it.next().cloned();
            continue;
        }
        if arg == "--snapshot-json" {
            snapshot_json_path = it.next().cloned();
            continue;
        }
        if arg == "--journal-dir" {
            journal_dir = it.next().cloned();
            continue;
        }
        if arg == "--resume" {
            resume = true;
            continue;
        }
        if arg == "--stop-after" {
            stop_after = Some(
                it.next()
                    .expect("--stop-after takes a stage count")
                    .parse()
                    .expect("stage count must be an integer"),
            );
            continue;
        }
        if arg == "--workers" {
            workers = it
                .next()
                .expect("--workers takes a count")
                .parse()
                .expect("worker count must be an integer");
            continue;
        }
        if arg == "--intervention" {
            with_intervention = true;
            continue;
        }
        if arg == "--faults" {
            fault_severity = it
                .next()
                .expect("--faults takes a severity")
                .parse()
                .expect("fault severity must be a float");
            continue;
        }
        if arg == "--corruption" {
            corruption_severity = it
                .next()
                .expect("--corruption takes a severity")
                .parse()
                .expect("corruption severity must be a float");
            continue;
        }
        match positional {
            0 => scale = arg.parse().expect("scale must be a float"),
            1 => seed = parse_seed(arg),
            _ => {}
        }
        positional += 1;
    }

    let config = WorldConfig {
        seed,
        scale,
        origin_domains: ((5_917.0 * scale.sqrt()) as u32).max(200),
        csam_images: ((36.0 * scale).round() as u32).max(4),
        with_side_boards: true,
    };
    eprintln!("generating world: scale {scale}, seed {seed:#x} …");
    let t = Instant::now();
    let world = World::generate(config);
    eprintln!(
        "world ready in {:.1?}: {} posts, {} threads, {} actors, {} hosted objects, {} indexed images",
        t.elapsed(),
        world.corpus.posts().len(),
        world.corpus.threads().len(),
        world.corpus.actors().len(),
        world.web.len(),
        world.index.len(),
    );

    let k = ((50.0 * scale).round() as usize).clamp(8, 50);
    let options = PipelineOptions {
        k_key_actors: k,
        workers,
        fault_severity,
        corruption_severity,
        ..PipelineOptions::default()
    };
    let t = Instant::now();
    let report = if let Some(dir) = &journal_dir {
        let dir = std::path::Path::new(dir);
        if !resume {
            // A fresh (non-resume) run must never trust leftover
            // checkpoints for this run key.
            let journal =
                Journal::open(dir, &world.config, &options).expect("open checkpoint journal");
            journal.clear().expect("clear checkpoint journal");
        }
        let pipe = Pipeline::new(options);
        if let Some(n) = stop_after {
            // Simulated crash: run (and checkpoint) the first N stages,
            // then exit at the stage boundary without a report.
            let ctx = pipe
                .run_prefix_resumable(&world, n, dir)
                .expect("prefix run");
            eprintln!(
                "stopped after {} stage(s); journal under {}",
                ctx.timings()
                    .iter()
                    .filter(|t| t.stage != "journal")
                    .count(),
                dir.display()
            );
            for t in ctx.timings() {
                eprintln!(
                    "  {:<16} {:>9.1} ms  {:>8} items  [{}]",
                    t.stage,
                    t.wall_us as f64 / 1_000.0,
                    t.items,
                    t.source.as_str()
                );
            }
            return;
        }
        pipe.run_resumable(&world, dir).expect("resumable run")
    } else {
        Pipeline::new(options).run(&world)
    };
    eprintln!("pipeline finished in {:.1?}", t.elapsed());
    for t in &report.timings {
        let per_sec = if t.wall_us > 0 {
            t.items as f64 / (t.wall_us as f64 / 1_000_000.0)
        } else {
            0.0
        };
        eprintln!(
            "  {:<16} {:>9.1} ms  {:>8} items  {:>12.0} items/s  [{}]",
            t.stage,
            t.wall_us as f64 / 1_000.0,
            t.items,
            per_sec,
            t.source.as_str()
        );
    }
    if !report.quarantine.is_empty() || !report.health.is_empty() {
        eprintln!(
            "  quarantine: {} record(s) quarantined, {} stage intervention(s) — see the pipeline-health section",
            report.quarantine.len(),
            report.health.len()
        );
    }
    let cs = &report.crawl_stats;
    eprintln!(
        "  crawl health: {} attempts, {} retries, {} breaker trips, {} unreachable, {:.1} s simulated wait",
        cs.attempts.total(),
        cs.retries.total(),
        cs.breaker_trips,
        report.crawl.unreachable_links,
        cs.wait_us.total() as f64 / 1_000_000.0
    );

    println!("=== Measuring eWhoring — reproduction report (scale {scale}, seed {seed:#x}) ===\n");
    println!("{}", full_report(&report));

    if with_intervention {
        println!("{}", intervention_section(&report, workers));
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&report).expect("serialise report");
        std::fs::write(&path, json).expect("write JSON report");
        eprintln!("raw report written to {path}");
    }

    if let Some(path) = snapshot_json_path {
        // The determinism snapshot: the full report minus wall-clock
        // timings, so two runs (resumed vs uninterrupted, any worker
        // count) can be compared byte-for-byte.
        let mut value = serde_json::to_value(&report).expect("serialise report");
        if let Some(obj) = value.as_object_mut() {
            obj.remove("timings");
        }
        let json = serde_json::to_string_pretty(&value).expect("render snapshot");
        std::fs::write(&path, json).expect("write snapshot JSON");
        eprintln!("determinism snapshot written to {path}");
    }

    if let Some(path) = bench_json_path {
        eprintln!("bench baseline: rerunning pipeline at workers=1 …");
        let t = Instant::now();
        let serial = Pipeline::new(PipelineOptions {
            workers: 1,
            ..options
        })
        .run(&world);
        eprintln!("serial run finished in {:.1?}", t.elapsed());
        let json = bench_baseline_json(
            scale,
            seed,
            workers,
            &serial.timings,
            &report.timings,
            report.quarantine.len(),
        );
        std::fs::write(&path, json).expect("write bench baseline");
        eprintln!("bench baseline written to {path}");
    }
}

/// Stages whose per-item loops run on the `core::par` layer; the
/// aggregate speedup is computed over these.
const PARALLEL_STAGES: [&str; 4] = ["top_classifier", "measure_images", "nsfv", "actors"];

/// Items-per-second for one timing entry.
fn items_per_sec(t: &StageTiming) -> f64 {
    if t.wall_us > 0 {
        t.items as f64 / (t.wall_us as f64 / 1_000_000.0)
    } else {
        0.0
    }
}

/// Aggregate items/sec over the parallel stages of one run. Only
/// computed stages count — a journal-loaded stage's wall clock measures
/// deserialization, not stage work, and would corrupt the speedup.
fn aggregate_items_per_sec(timings: &[StageTiming]) -> f64 {
    let (items, wall_us) = timings
        .iter()
        .filter(|t| {
            PARALLEL_STAGES.contains(&t.stage.as_str()) && t.source == TimingSource::Computed
        })
        .fold((0usize, 0u128), |(i, w), t| (i + t.items, w + t.wall_us));
    if wall_us > 0 {
        items as f64 / (wall_us as f64 / 1_000_000.0)
    } else {
        0.0
    }
}

/// Renders the machine-readable `BENCH_pipeline.json` baseline: per-stage
/// `wall_us`, `items`, `items_per_sec`, and `source` (computed vs
/// journal-loaded — a loaded stage's wall clock is I/O, not stage work,
/// and must never be read as a compute baseline) at workers=1 vs
/// workers=N, plus the aggregate speedup over [`PARALLEL_STAGES`] and the
/// run's quarantined-record count. Hand-assembled so the schema is
/// explicit in one place.
fn bench_baseline_json(
    scale: f64,
    seed: u64,
    workers: usize,
    serial: &[StageTiming],
    parallel: &[StageTiming],
    quarantined_records: usize,
) -> String {
    use std::fmt::Write as _;

    let run_json = |workers: usize, timings: &[StageTiming]| {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "    {{\n      \"workers\": {workers},\n      \"stages\": ["
        );
        for (i, t) in timings.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{ \"stage\": \"{}\", \"wall_us\": {}, \"items\": {}, \"items_per_sec\": {:.1}, \"source\": \"{}\" }}{}",
                t.stage,
                t.wall_us,
                t.items,
                items_per_sec(t),
                t.source.as_str(),
                if i + 1 < timings.len() { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "      ],\n      \"parallel_items_per_sec\": {:.1}\n    }}",
            aggregate_items_per_sec(timings)
        );
        out
    };

    let serial_agg = aggregate_items_per_sec(serial);
    let parallel_agg = aggregate_items_per_sec(parallel);
    let speedup = if serial_agg > 0.0 {
        parallel_agg / serial_agg
    } else {
        0.0
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    format!(
        "{{\n  \"scale\": {scale},\n  \"seed\": {seed},\n  \"available_parallelism\": {cores},\n  \"quarantined_records\": {quarantined_records},\n  \"parallel_stages\": [{}],\n  \"runs\": [\n{},\n{}\n  ],\n  \"aggregate_speedup\": {speedup:.2}\n}}\n",
        PARALLEL_STAGES
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", "),
        run_json(1, serial),
        run_json(workers, parallel),
    )
}

/// Runs the §8 countermeasure simulations against the already-crawled
/// material and renders them as a report section.
fn intervention_section(
    report: &ewhoring_core::pipeline::PipelineReport,
    workers: usize,
) -> String {
    use ewhoring_core::intervention::{deployment_sweep, screen_payment_accounts};
    use ewhoring_core::nsfv::ImageMeasures;
    use ewhoring_core::pipeline::measure_batch;
    use std::fmt::Write as _;

    let mut out = String::from(
        "Extension (§8): intervention simulations
",
    );

    // Shared hash-blacklist over the crawled packs, measured on the same
    // parallel layer as the pipeline's measure stage.
    let owned: Vec<(&ewhoring_core::crawl::PackDownload, Vec<ImageMeasures>)> = report
        .crawl
        .packs
        .iter()
        .map(|p| {
            let sample = &p.images[..p.images.len().min(30)];
            (p, measure_batch(sample, workers))
        })
        .collect();
    let packs: Vec<(&ewhoring_core::crawl::PackDownload, &[ImageMeasures])> =
        owned.iter().map(|(p, m)| (*p, m.as_slice())).collect();
    if !packs.is_empty() {
        let mut dates: Vec<synthrand::Day> = packs.iter().map(|(p, _)| p.link.posted).collect();
        dates.sort_unstable();
        let sweep_dates: Vec<synthrand::Day> =
            (1..=4).map(|i| dates[dates.len() * i / 5]).collect();
        for (date, block, disrupt) in deployment_sweep(&packs, &sweep_dates) {
            let _ = writeln!(
                out,
                "  blacklist deployed {date}: blocks {:.1}% of later images, disrupts {:.1}% of later packs",
                100.0 * block,
                100.0 * disrupt
            );
        }
    }

    // Payment screening over the harvested proofs.
    for min_tx in [5u32, 10, 20] {
        let s = screen_payment_accounts(&report.harvest.proofs, min_tx);
        let _ = writeln!(
            out,
            "  payment screening (≥{min_tx} tx/proof): {}/{} actors flagged, {:.0}% of revenue covered",
            s.flagged_actors,
            s.flagged_actors + s.unflagged_actors,
            100.0 * s.usd_coverage()
        );
    }
    let _ = writeln!(out, "  (see examples/intervention.rs and DESIGN.md §7)");
    out
}

fn parse_seed(arg: &str) -> u64 {
    if let Some(hex) = arg.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("hex seed")
    } else {
        arg.parse().expect("seed must be an integer")
    }
}
