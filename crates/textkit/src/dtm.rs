//! Document-term matrix and TF-IDF weighting (paper §4.1).
//!
//! The TOP classifier's NLP features are word counts over thread headings
//! and posts, TF-IDF transformed. [`Vocabulary`] is built on the training
//! corpus; unseen test-time terms are ignored (standard information-
//! retrieval practice and what a frozen document-term matrix implies).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A term index assigning dense ids to vocabulary words.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    index: HashMap<String, usize>,
    terms: Vec<String>,
}

impl Vocabulary {
    /// Builds a vocabulary from tokenised documents, keeping terms that
    /// appear in at least `min_df` documents (use 1 to keep everything).
    pub fn build<'a, I, D>(docs: I, min_df: usize) -> Vocabulary
    where
        I: IntoIterator<Item = D>,
        D: IntoIterator<Item = &'a String>,
    {
        let mut df: HashMap<String, usize> = HashMap::new();
        for doc in docs {
            let mut seen: Vec<&String> = doc.into_iter().collect();
            seen.sort_unstable();
            seen.dedup();
            for t in seen {
                *df.entry(t.clone()).or_insert(0) += 1;
            }
        }
        let mut kept: Vec<String> = df
            .into_iter()
            .filter(|&(_, c)| c >= min_df.max(1))
            .map(|(t, _)| t)
            .collect();
        kept.sort_unstable(); // deterministic term ids
        let index = kept
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Vocabulary { index, terms: kept }
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Dense id of `term`, if in vocabulary.
    pub fn id(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// Term for a dense id.
    pub fn term(&self, id: usize) -> &str {
        &self.terms[id]
    }

    /// Unions previously-unseen terms from `docs` into the vocabulary
    /// and returns how many were added. Existing term ids are untouched;
    /// new terms are appended after them in sorted order, so a
    /// vocabulary grown batch by batch assigns the *same* ids no matter
    /// where the batch boundaries fall — the delta-update primitive of
    /// the epoch pipeline. Deltas carry no `min_df` filter: every new
    /// term of the batch enters (a streaming index cannot know a term's
    /// final document frequency up front).
    pub fn extend<'a, I, D>(&mut self, docs: I) -> usize
    where
        I: IntoIterator<Item = D>,
        D: IntoIterator<Item = &'a String>,
    {
        let mut fresh: Vec<&String> = docs
            .into_iter()
            .flatten()
            .filter(|t| !self.index.contains_key(*t))
            .collect();
        fresh.sort_unstable();
        fresh.dedup();
        let added = fresh.len();
        for t in fresh {
            let id = self.terms.len();
            self.terms.push(t.clone());
            self.index.insert(t.clone(), id);
        }
        added
    }

    /// Sparse term counts of one tokenised document, sorted by term id.
    pub fn count(&self, tokens: &[String]) -> Vec<(usize, f64)> {
        let mut counts: HashMap<usize, f64> = HashMap::new();
        for t in tokens {
            if let Some(id) = self.id(t) {
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let mut v: Vec<(usize, f64)> = counts.into_iter().collect();
        v.sort_unstable_by_key(|&(id, _)| id);
        v
    }
}

/// A sparse document-term matrix: per document, sorted `(term_id, count)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DocTermMatrix {
    /// Row-major sparse rows.
    pub rows: Vec<Vec<(usize, f64)>>,
    /// Number of columns (vocabulary size).
    pub n_terms: usize,
}

impl DocTermMatrix {
    /// Counts every document through `vocab`.
    pub fn from_docs(vocab: &Vocabulary, docs: &[Vec<String>]) -> DocTermMatrix {
        Self::from_docs_par(vocab, docs, 1)
    }

    /// [`Self::from_docs`] across `workers` threads (0 = all cores). Rows
    /// come back in document order, so the matrix is identical to the
    /// serial build for any worker count.
    pub fn from_docs_par(
        vocab: &Vocabulary,
        docs: &[Vec<String>],
        workers: usize,
    ) -> DocTermMatrix {
        DocTermMatrix {
            rows: parkit::par_map(docs, workers, |d| vocab.count(d)),
            n_terms: vocab.len(),
        }
    }

    /// Number of documents.
    pub fn n_docs(&self) -> usize {
        self.rows.len()
    }

    /// Appends counted rows for `docs` (new documents only) and widens
    /// the matrix to `vocab`'s current size. Counting a document against
    /// the vocabulary *as of its own batch* equals counting it against
    /// any later vocabulary grown via [`Vocabulary::extend`] — term ids
    /// are append-stable and a document's terms always enter with their
    /// own batch — so a matrix grown epoch by epoch is identical to a
    /// from-scratch build over the full corpus with the final vocabulary.
    pub fn append_docs(&mut self, vocab: &Vocabulary, docs: &[Vec<String>]) {
        self.append_docs_par(vocab, docs, 1);
    }

    /// [`Self::append_docs`] across `workers` threads (0 = all cores);
    /// rows land in document order at every worker count.
    pub fn append_docs_par(&mut self, vocab: &Vocabulary, docs: &[Vec<String>], workers: usize) {
        self.rows
            .extend(parkit::par_map(docs, workers, |d| vocab.count(d)));
        self.n_terms = vocab.len();
    }

    /// Folds this matrix's rows (from `from_row` on) into running
    /// document-frequency counts, widening `df` to the current term
    /// count. With `from_row` tracking how many rows were already
    /// folded, an epoch advance pays O(new rows + vocab) instead of
    /// re-scanning the whole matrix.
    pub fn accumulate_df(&self, df: &mut Vec<usize>, from_row: usize) {
        df.resize(self.n_terms, 0);
        for row in &self.rows[from_row..] {
            for &(id, _) in row {
                df[id] += 1;
            }
        }
    }
}

/// TF-IDF weights fitted on a training matrix.
///
/// Uses the smoothed IDF `ln((1 + N) / (1 + df)) + 1` and L2-normalises each
/// transformed row, matching the scikit-learn convention the paper's
/// released pipeline relies on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfIdf {
    idf: Vec<f64>,
}

impl TfIdf {
    /// Fits IDF weights from a document-term matrix.
    pub fn fit(dtm: &DocTermMatrix) -> TfIdf {
        Self::fit_par(dtm, 1)
    }

    /// [`Self::fit`] across `workers` threads (0 = all cores). Each worker
    /// accumulates document frequencies over a chunk of rows; the partial
    /// counts are summed element-wise, so the result is identical to the
    /// serial fit for any worker count (integer addition commutes).
    pub fn fit_par(dtm: &DocTermMatrix, workers: usize) -> TfIdf {
        let n = dtm.n_docs() as f64;
        let partials = parkit::par_map_chunks(&dtm.rows, workers, |rows| {
            let mut df = vec![0usize; dtm.n_terms];
            for row in rows {
                for &(id, _) in row {
                    df[id] += 1;
                }
            }
            df
        });
        let mut df = vec![0usize; dtm.n_terms];
        for partial in partials {
            for (total, d) in df.iter_mut().zip(partial) {
                *total += d;
            }
        }
        let idf = df
            .into_iter()
            .map(|d| ((1.0 + n) / (1.0 + d as f64)).ln() + 1.0)
            .collect();
        TfIdf { idf }
    }

    /// Fits IDF weights directly from document-frequency counts — the
    /// incremental refit path: carry `df` across epochs (see
    /// [`DocTermMatrix::accumulate_df`]) and rebuild the weights in
    /// O(vocab). Bitwise-identical to [`TfIdf::fit`] on a matrix with
    /// the same `df` and document count, because the weight of a term is
    /// a pure function of `(df, n_docs)`.
    pub fn fit_from_df(df: &[usize], n_docs: usize) -> TfIdf {
        let n = n_docs as f64;
        TfIdf {
            idf: df
                .iter()
                .map(|&d| ((1.0 + n) / (1.0 + d as f64)).ln() + 1.0)
                .collect(),
        }
    }

    /// Number of terms this transformer covers.
    pub fn n_terms(&self) -> usize {
        self.idf.len()
    }

    /// Transforms one sparse count row into an L2-normalised TF-IDF row.
    pub fn transform_row(&self, row: &[(usize, f64)]) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = row
            .iter()
            .map(|&(id, tf)| (id, tf * self.idf[id]))
            .collect();
        let norm: f64 = out.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, v) in &mut out {
                *v /= norm;
            }
        }
        out
    }

    /// Transforms a whole matrix.
    pub fn transform(&self, dtm: &DocTermMatrix) -> Vec<Vec<(usize, f64)>> {
        self.transform_par(dtm, 1)
    }

    /// [`Self::transform`] across `workers` threads (0 = all cores), rows
    /// in document order.
    pub fn transform_par(&self, dtm: &DocTermMatrix, workers: usize) -> Vec<Vec<(usize, f64)>> {
        parkit::par_map(&dtm.rows, workers, |r| self.transform_row(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize_with_stopwords;

    fn docs() -> Vec<Vec<String>> {
        vec![
            tokenize_with_stopwords("selling unsaturated pack pics pics"),
            tokenize_with_stopwords("looking for a pack please"),
            tokenize_with_stopwords("tutorial how to start ewhoring"),
        ]
    }

    #[test]
    fn vocabulary_assigns_stable_sorted_ids() {
        let d = docs();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let mut terms: Vec<&str> = (0..v.len()).map(|i| v.term(i)).collect();
        let mut sorted = terms.clone();
        sorted.sort_unstable();
        assert_eq!(terms, sorted);
        assert!(v.id("pack").is_some());
        terms.dedup();
        assert_eq!(terms.len(), v.len());
    }

    #[test]
    fn min_df_filters_rare_terms() {
        let d = docs();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 2);
        assert!(v.id("pack").is_some(), "'pack' appears in 2 docs");
        assert!(v.id("tutorial").is_none(), "'tutorial' appears once");
    }

    #[test]
    fn counting_handles_repeats_and_oov() {
        let d = docs();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let row = v.count(&tokenize_with_stopwords("pics pics pics zzzznovel"));
        assert_eq!(row.len(), 1);
        assert_eq!(row[0], (v.id("pics").unwrap(), 3.0));
    }

    #[test]
    fn tfidf_downweights_common_terms() {
        let d = docs();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let dtm = DocTermMatrix::from_docs(&v, &d);
        let tfidf = TfIdf::fit(&dtm);
        // 'pack' (df=2) must get a smaller IDF than 'tutorial' (df=1).
        let pack = v.id("pack").unwrap();
        let tut = v.id("tutorial").unwrap();
        assert!(tfidf.idf[pack] < tfidf.idf[tut]);
    }

    #[test]
    fn transformed_rows_are_unit_norm() {
        let d = docs();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let dtm = DocTermMatrix::from_docs(&v, &d);
        let tfidf = TfIdf::fit(&dtm);
        for row in tfidf.transform(&dtm) {
            let norm: f64 = row.iter().map(|&(_, x)| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
        }
    }

    /// The worker-count invariance contract: build, fit, and transform
    /// must produce identical output for any worker count, on a corpus
    /// large enough to engage the parallel path.
    #[test]
    fn parallel_build_fit_transform_match_serial() {
        let d: Vec<Vec<String>> = (0..300)
            .map(|i| {
                let kind = if i % 2 == 0 { "selling" } else { "tutorial" };
                tokenize_with_stopwords(&format!("pack pics doc{} {kind}", i % 17))
            })
            .collect();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let dtm = DocTermMatrix::from_docs(&v, &d);
        let tfidf = TfIdf::fit(&dtm);
        let rows = tfidf.transform(&dtm);
        for workers in [2, 3, 7] {
            let dtm_p = DocTermMatrix::from_docs_par(&v, &d, workers);
            assert_eq!(dtm.rows, dtm_p.rows, "workers={workers}");
            let fit_p = TfIdf::fit_par(&dtm_p, workers);
            assert_eq!(tfidf.idf, fit_p.idf, "workers={workers}");
            assert_eq!(rows, tfidf.transform_par(&dtm_p, workers));
        }
    }

    /// The delta-update contract: growing vocab + matrix + df batch by
    /// batch is bitwise-identical to a from-scratch build over the full
    /// corpus with the same (chain-built) vocabulary — regardless of
    /// where the batch boundaries fall.
    #[test]
    fn incremental_chain_matches_from_scratch_build() {
        let all: Vec<Vec<String>> = (0..240)
            .map(|i| {
                tokenize_with_stopwords(&format!(
                    "pack pics epoch{} common selling doc{}",
                    i / 80, // terms that first appear mid-stream
                    i % 23
                ))
            })
            .collect();
        for boundaries in [vec![80, 160, 240], vec![1, 239, 240], vec![240]] {
            let mut vocab = Vocabulary::default();
            let mut dtm = DocTermMatrix::default();
            let mut df: Vec<usize> = Vec::new();
            let mut done = 0;
            for &end in &boundaries {
                let batch = &all[done..end];
                vocab.extend(batch.iter().map(|d| d.iter()));
                let folded = dtm.n_docs();
                dtm.append_docs_par(&vocab, batch, 3);
                dtm.accumulate_df(&mut df, folded);
                done = end;
            }
            let scratch = DocTermMatrix::from_docs(&vocab, &all);
            assert_eq!(dtm.rows, scratch.rows, "boundaries {boundaries:?}");
            assert_eq!(dtm.n_terms, scratch.n_terms);
            let incremental = TfIdf::fit_from_df(&df, dtm.n_docs());
            let full = TfIdf::fit(&scratch);
            assert_eq!(incremental.idf, full.idf, "boundaries {boundaries:?}");
        }
    }

    #[test]
    fn extend_keeps_existing_ids_stable() {
        let d = docs();
        let mut v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let before: Vec<(String, usize)> =
            (0..v.len()).map(|i| (v.term(i).to_string(), i)).collect();
        let batch = vec![tokenize_with_stopwords("pack zebra aardvark")];
        let added = v.extend(batch.iter().map(|x| x.iter()));
        assert_eq!(added, 2, "'pack' is already known");
        for (term, id) in before {
            assert_eq!(v.id(&term), Some(id), "old id moved for {term}");
        }
        // New terms append after the old block, sorted within the batch.
        assert!(v.id("aardvark").unwrap() < v.id("zebra").unwrap());
        assert!(v.id("aardvark").unwrap() >= v.len() - 2);
        // Extending with only known terms is a no-op.
        assert_eq!(v.extend(batch.iter().map(|x| x.iter())), 0);
    }

    #[test]
    fn empty_row_transforms_to_empty() {
        let d = docs();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let dtm = DocTermMatrix::from_docs(&v, &d);
        let tfidf = TfIdf::fit(&dtm);
        assert!(tfidf.transform_row(&[]).is_empty());
    }
}
