//! Document-term matrix and TF-IDF weighting (paper §4.1).
//!
//! The TOP classifier's NLP features are word counts over thread headings
//! and posts, TF-IDF transformed. [`Vocabulary`] is built on the training
//! corpus; unseen test-time terms are ignored (standard information-
//! retrieval practice and what a frozen document-term matrix implies).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A term index assigning dense ids to vocabulary words.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    index: HashMap<String, usize>,
    terms: Vec<String>,
}

impl Vocabulary {
    /// Builds a vocabulary from tokenised documents, keeping terms that
    /// appear in at least `min_df` documents (use 1 to keep everything).
    pub fn build<'a, I, D>(docs: I, min_df: usize) -> Vocabulary
    where
        I: IntoIterator<Item = D>,
        D: IntoIterator<Item = &'a String>,
    {
        let mut df: HashMap<String, usize> = HashMap::new();
        for doc in docs {
            let mut seen: Vec<&String> = doc.into_iter().collect();
            seen.sort_unstable();
            seen.dedup();
            for t in seen {
                *df.entry(t.clone()).or_insert(0) += 1;
            }
        }
        let mut kept: Vec<String> = df
            .into_iter()
            .filter(|&(_, c)| c >= min_df.max(1))
            .map(|(t, _)| t)
            .collect();
        kept.sort_unstable(); // deterministic term ids
        let index = kept
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Vocabulary { index, terms: kept }
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Dense id of `term`, if in vocabulary.
    pub fn id(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// Term for a dense id.
    pub fn term(&self, id: usize) -> &str {
        &self.terms[id]
    }

    /// Sparse term counts of one tokenised document, sorted by term id.
    pub fn count(&self, tokens: &[String]) -> Vec<(usize, f64)> {
        let mut counts: HashMap<usize, f64> = HashMap::new();
        for t in tokens {
            if let Some(id) = self.id(t) {
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let mut v: Vec<(usize, f64)> = counts.into_iter().collect();
        v.sort_unstable_by_key(|&(id, _)| id);
        v
    }
}

/// A sparse document-term matrix: per document, sorted `(term_id, count)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DocTermMatrix {
    /// Row-major sparse rows.
    pub rows: Vec<Vec<(usize, f64)>>,
    /// Number of columns (vocabulary size).
    pub n_terms: usize,
}

impl DocTermMatrix {
    /// Counts every document through `vocab`.
    pub fn from_docs(vocab: &Vocabulary, docs: &[Vec<String>]) -> DocTermMatrix {
        Self::from_docs_par(vocab, docs, 1)
    }

    /// [`Self::from_docs`] across `workers` threads (0 = all cores). Rows
    /// come back in document order, so the matrix is identical to the
    /// serial build for any worker count.
    pub fn from_docs_par(
        vocab: &Vocabulary,
        docs: &[Vec<String>],
        workers: usize,
    ) -> DocTermMatrix {
        DocTermMatrix {
            rows: parkit::par_map(docs, workers, |d| vocab.count(d)),
            n_terms: vocab.len(),
        }
    }

    /// Number of documents.
    pub fn n_docs(&self) -> usize {
        self.rows.len()
    }
}

/// TF-IDF weights fitted on a training matrix.
///
/// Uses the smoothed IDF `ln((1 + N) / (1 + df)) + 1` and L2-normalises each
/// transformed row, matching the scikit-learn convention the paper's
/// released pipeline relies on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfIdf {
    idf: Vec<f64>,
}

impl TfIdf {
    /// Fits IDF weights from a document-term matrix.
    pub fn fit(dtm: &DocTermMatrix) -> TfIdf {
        Self::fit_par(dtm, 1)
    }

    /// [`Self::fit`] across `workers` threads (0 = all cores). Each worker
    /// accumulates document frequencies over a chunk of rows; the partial
    /// counts are summed element-wise, so the result is identical to the
    /// serial fit for any worker count (integer addition commutes).
    pub fn fit_par(dtm: &DocTermMatrix, workers: usize) -> TfIdf {
        let n = dtm.n_docs() as f64;
        let partials = parkit::par_map_chunks(&dtm.rows, workers, |rows| {
            let mut df = vec![0usize; dtm.n_terms];
            for row in rows {
                for &(id, _) in row {
                    df[id] += 1;
                }
            }
            df
        });
        let mut df = vec![0usize; dtm.n_terms];
        for partial in partials {
            for (total, d) in df.iter_mut().zip(partial) {
                *total += d;
            }
        }
        let idf = df
            .into_iter()
            .map(|d| ((1.0 + n) / (1.0 + d as f64)).ln() + 1.0)
            .collect();
        TfIdf { idf }
    }

    /// Number of terms this transformer covers.
    pub fn n_terms(&self) -> usize {
        self.idf.len()
    }

    /// Transforms one sparse count row into an L2-normalised TF-IDF row.
    pub fn transform_row(&self, row: &[(usize, f64)]) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = row
            .iter()
            .map(|&(id, tf)| (id, tf * self.idf[id]))
            .collect();
        let norm: f64 = out.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, v) in &mut out {
                *v /= norm;
            }
        }
        out
    }

    /// Transforms a whole matrix.
    pub fn transform(&self, dtm: &DocTermMatrix) -> Vec<Vec<(usize, f64)>> {
        self.transform_par(dtm, 1)
    }

    /// [`Self::transform`] across `workers` threads (0 = all cores), rows
    /// in document order.
    pub fn transform_par(&self, dtm: &DocTermMatrix, workers: usize) -> Vec<Vec<(usize, f64)>> {
        parkit::par_map(&dtm.rows, workers, |r| self.transform_row(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize_with_stopwords;

    fn docs() -> Vec<Vec<String>> {
        vec![
            tokenize_with_stopwords("selling unsaturated pack pics pics"),
            tokenize_with_stopwords("looking for a pack please"),
            tokenize_with_stopwords("tutorial how to start ewhoring"),
        ]
    }

    #[test]
    fn vocabulary_assigns_stable_sorted_ids() {
        let d = docs();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let mut terms: Vec<&str> = (0..v.len()).map(|i| v.term(i)).collect();
        let mut sorted = terms.clone();
        sorted.sort_unstable();
        assert_eq!(terms, sorted);
        assert!(v.id("pack").is_some());
        terms.dedup();
        assert_eq!(terms.len(), v.len());
    }

    #[test]
    fn min_df_filters_rare_terms() {
        let d = docs();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 2);
        assert!(v.id("pack").is_some(), "'pack' appears in 2 docs");
        assert!(v.id("tutorial").is_none(), "'tutorial' appears once");
    }

    #[test]
    fn counting_handles_repeats_and_oov() {
        let d = docs();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let row = v.count(&tokenize_with_stopwords("pics pics pics zzzznovel"));
        assert_eq!(row.len(), 1);
        assert_eq!(row[0], (v.id("pics").unwrap(), 3.0));
    }

    #[test]
    fn tfidf_downweights_common_terms() {
        let d = docs();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let dtm = DocTermMatrix::from_docs(&v, &d);
        let tfidf = TfIdf::fit(&dtm);
        // 'pack' (df=2) must get a smaller IDF than 'tutorial' (df=1).
        let pack = v.id("pack").unwrap();
        let tut = v.id("tutorial").unwrap();
        assert!(tfidf.idf[pack] < tfidf.idf[tut]);
    }

    #[test]
    fn transformed_rows_are_unit_norm() {
        let d = docs();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let dtm = DocTermMatrix::from_docs(&v, &d);
        let tfidf = TfIdf::fit(&dtm);
        for row in tfidf.transform(&dtm) {
            let norm: f64 = row.iter().map(|&(_, x)| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
        }
    }

    /// The worker-count invariance contract: build, fit, and transform
    /// must produce identical output for any worker count, on a corpus
    /// large enough to engage the parallel path.
    #[test]
    fn parallel_build_fit_transform_match_serial() {
        let d: Vec<Vec<String>> = (0..300)
            .map(|i| {
                let kind = if i % 2 == 0 { "selling" } else { "tutorial" };
                tokenize_with_stopwords(&format!("pack pics doc{} {kind}", i % 17))
            })
            .collect();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let dtm = DocTermMatrix::from_docs(&v, &d);
        let tfidf = TfIdf::fit(&dtm);
        let rows = tfidf.transform(&dtm);
        for workers in [2, 3, 7] {
            let dtm_p = DocTermMatrix::from_docs_par(&v, &d, workers);
            assert_eq!(dtm.rows, dtm_p.rows, "workers={workers}");
            let fit_p = TfIdf::fit_par(&dtm_p, workers);
            assert_eq!(tfidf.idf, fit_p.idf, "workers={workers}");
            assert_eq!(rows, tfidf.transform_par(&dtm_p, workers));
        }
    }

    #[test]
    fn empty_row_transforms_to_empty() {
        let d = docs();
        let v = Vocabulary::build(d.iter().map(|x| x.iter()), 1);
        let dtm = DocTermMatrix::from_docs(&v, &d);
        let tfidf = TfIdf::fit(&dtm);
        assert!(tfidf.transform_row(&[]).is_empty());
    }
}
