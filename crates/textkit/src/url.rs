//! URL extraction from post bodies (paper §4.2).
//!
//! The paper extracts URLs from TOP contents with regular expressions and
//! matches their domains against a whitelist of image-sharing and
//! cloud-storage sites. This module provides the equivalent scanner: it
//! finds `http://` / `https://` spans, splits host from path, and exposes a
//! registered-domain helper so `i.imgur.com` groups under `imgur.com`.

use serde::{Deserialize, Serialize};

/// A parsed URL (scheme-less host + path), as extracted from forum text.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    /// Host, lower-cased (e.g. `i.imgur.com`).
    pub host: String,
    /// Path and query, possibly empty, without the leading host.
    pub path: String,
}

impl Url {
    /// Builds a URL from parts (used by generators).
    pub fn new(host: impl Into<String>, path: impl Into<String>) -> Url {
        Url {
            host: host.into().to_ascii_lowercase(),
            path: path.into(),
        }
    }

    /// The registered domain of the host (last two labels).
    pub fn domain(&self) -> String {
        registered_domain(&self.host)
    }

    /// Renders back to an `https://` string.
    pub fn to_https(&self) -> String {
        format!("https://{}{}", self.host, self.path)
    }
}

impl std::fmt::Display for Url {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.host, self.path)
    }
}

/// Characters allowed inside a URL span. Trailing punctuation that forum
/// prose commonly appends (`.`, `,`, `)`, `!`, `?`, quotes) is trimmed.
fn is_url_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || "-._~:/?#[]@!$&'()*+,;=%".contains(c)
}

/// Extracts every `http(s)://` URL from `text`, in order of appearance.
///
/// Hosts are lower-cased; invalid spans (no host) are skipped. Duplicate
/// URLs are preserved — the §4.2 link counts are per-link, not per-unique.
pub fn extract_urls(text: &str) -> Vec<Url> {
    let mut out = Vec::new();
    let lower = text.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if !lower.is_char_boundary(i) {
            i += 1;
            continue;
        }
        let rest = &lower[i..];
        let scheme_len = if rest.starts_with("https://") {
            8
        } else if rest.starts_with("http://") {
            7
        } else {
            i += 1;
            continue;
        };
        let start = i + scheme_len;
        let mut end = start;
        let orig = text; // keep original case for path
        while end < orig.len() {
            // Safe: URL characters are single-byte ASCII, so byte indexing
            // cannot split a UTF-8 sequence inside a URL span.
            let c = orig.as_bytes()[end] as char;
            if is_url_char(c) {
                end += 1;
            } else {
                break;
            }
        }
        let mut span = &orig[start..end];
        // Trim trailing prose punctuation.
        while let Some(last) = span.chars().last() {
            if ".,!?;:'\")]".contains(last) {
                span = &span[..span.len() - last.len_utf8()];
            } else {
                break;
            }
        }
        if let Some(url) = split_host_path(span) {
            out.push(url);
        }
        i = if end > i { end } else { i + 1 };
    }
    out
}

fn split_host_path(span: &str) -> Option<Url> {
    if span.is_empty() {
        return None;
    }
    let (host, path) = match span.find('/') {
        Some(pos) => (&span[..pos], &span[pos..]),
        None => (span, ""),
    };
    if host.is_empty() || !host.contains('.') {
        return None;
    }
    Some(Url::new(host, path))
}

/// The registered domain: the last two dot-separated labels of a host
/// (`i.imgur.com` → `imgur.com`). Hosts with fewer labels are returned
/// unchanged. Sufficient for the synthetic web, which uses no ccTLD
/// second-level registries.
pub fn registered_domain(host: &str) -> String {
    let labels: Vec<&str> = host.split('.').filter(|l| !l.is_empty()).collect();
    if labels.len() <= 2 {
        labels.join(".")
    } else {
        labels[labels.len() - 2..].join(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_simple_urls() {
        let urls = extract_urls("preview here https://imgur.com/aB3dE and more");
        assert_eq!(urls.len(), 1);
        assert_eq!(urls[0].host, "imgur.com");
        assert_eq!(urls[0].path, "/aB3dE");
    }

    #[test]
    fn preserves_path_case_and_lowers_host() {
        let urls = extract_urls("HTTP://MEGA.NZ/File/XyZ123");
        assert_eq!(urls[0].host, "mega.nz");
        assert_eq!(urls[0].path, "/File/XyZ123");
    }

    #[test]
    fn trims_trailing_prose_punctuation() {
        let urls = extract_urls("get it at https://mediafire.com/f/abc123.");
        assert_eq!(urls[0].path, "/f/abc123");
        let urls = extract_urls("(see https://gyazo.com/x9y8z7)");
        assert_eq!(urls[0].path, "/x9y8z7");
    }

    #[test]
    fn multiple_urls_in_order_with_duplicates() {
        let text = "https://a.com/1 then https://b.com/2 then https://a.com/1";
        let urls = extract_urls(text);
        assert_eq!(urls.len(), 3);
        assert_eq!(urls[0], urls[2]);
    }

    #[test]
    fn ignores_schemeless_and_hostless_spans() {
        assert!(extract_urls("visit imgur.com/abc").is_empty());
        assert!(extract_urls("https:// and http://").is_empty());
        assert!(extract_urls("http://nodots/path").is_empty());
    }

    #[test]
    fn registered_domain_groups_subdomains() {
        assert_eq!(registered_domain("i.imgur.com"), "imgur.com");
        assert_eq!(registered_domain("imgur.com"), "imgur.com");
        assert_eq!(registered_domain("a.b.c.example.net"), "example.net");
        assert_eq!(registered_domain("localhost"), "localhost");
    }

    #[test]
    fn display_and_https_roundtrip() {
        let u = Url::new("Imgur.com", "/x");
        assert_eq!(u.to_string(), "imgur.com/x");
        assert_eq!(u.to_https(), "https://imgur.com/x");
    }

    #[test]
    fn handles_url_at_end_of_text_and_unicode_context() {
        let urls = extract_urls("pack → https://mega.nz/f/q1w2e3");
        assert_eq!(urls.len(), 1);
        assert_eq!(urls[0].host, "mega.nz");
    }
}
