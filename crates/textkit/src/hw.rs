//! Currency Exchange heading parser (paper §5.1).
//!
//! "Most of the threads in this board use a de-facto standard format where
//! the currency offered follows the tag `[H]` and the currency wanted
//! follows the tag `[W]`." This module parses such headings, e.g.
//! `[H] $50 Amazon GC [W] BTC`, into offered/wanted currency pairs, and
//! classifies free-text currency mentions into the paper's categories
//! (PayPal, BTC, Amazon Gift Cards, unknown `?`, other).

use serde::{Deserialize, Serialize};

/// Payment instruments tracked by the paper's Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum Currency {
    /// PayPal balance.
    PayPal,
    /// Bitcoin.
    Btc,
    /// Amazon Gift Cards.
    AmazonGiftCard,
    /// A recognised but non-top-3 instrument (Skrill, Venmo, ETH, …).
    Other,
    /// Unparseable / unclassified (`?` in Table 7).
    Unknown,
}

impl Currency {
    /// Classifies a free-text currency segment.
    pub fn classify(segment: &str) -> Currency {
        let s = segment.to_ascii_lowercase();
        if s.trim().is_empty() {
            return Currency::Unknown;
        }
        let has = |needle: &str| s.contains(needle);
        if has("paypal") || has(" pp") || s.starts_with("pp") || has("[pp") {
            Currency::PayPal
        } else if has("btc") || has("bitcoin") {
            Currency::Btc
        } else if has("amazon")
            || has("agc")
            || (has("gift") && has("card"))
            || has(" gc")
            || s.ends_with("gc")
        {
            Currency::AmazonGiftCard
        } else if has("skrill")
            || has("venmo")
            || has("eth")
            || has("ltc")
            || has("cashapp")
            || has("steam")
            || has("psc")
            || has("wu ")
            || has("western union")
        {
            Currency::Other
        } else {
            Currency::Unknown
        }
    }

    /// Short label used in Table 7 rendering.
    pub fn label(&self) -> &'static str {
        match self {
            Currency::PayPal => "PayPal",
            Currency::Btc => "BTC",
            Currency::AmazonGiftCard => "AGC",
            Currency::Other => "others",
            Currency::Unknown => "?",
        }
    }
}

/// A parsed `[H] … [W] …` trade heading.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwTrade {
    /// Currency offered (follows `[H]`, "have").
    pub offered: Currency,
    /// Currency wanted (follows `[W]`, "want").
    pub wanted: Currency,
}

/// Finds a case-insensitive tag (`[h]`, `[w]`) and returns the byte offset
/// just past it.
fn find_tag(lower: &str, tag: &str) -> Option<usize> {
    lower.find(tag).map(|p| p + tag.len())
}

/// Parses a Currency Exchange heading in the `[H] X [W] Y` format.
///
/// Returns `None` when either tag is missing (the thread is then excluded
/// from Table 7's automatic classification, mirroring the paper). The
/// offered segment runs from `[H]` to `[W]` (or end), the wanted segment
/// from `[W]` to `[H]` (or end), so tag order does not matter.
pub fn parse_hw_heading(heading: &str) -> Option<HwTrade> {
    let lower = heading.to_ascii_lowercase();
    let h_end = find_tag(&lower, "[h]")?;
    let w_end = find_tag(&lower, "[w]")?;
    let h_start = h_end - 3;
    let w_start = w_end - 3;
    let offered_seg = if h_start < w_start {
        &heading[h_end..w_start]
    } else {
        &heading[h_end..]
    };
    let wanted_seg = if w_start < h_start {
        &heading[w_end..h_start]
    } else {
        &heading[w_end..]
    };
    Some(HwTrade {
        offered: Currency::classify(offered_seg),
        wanted: Currency::classify(wanted_seg),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_standard_format() {
        let t = parse_hw_heading("[H] $50 Amazon GC [W] BTC").unwrap();
        assert_eq!(t.offered, Currency::AmazonGiftCard);
        assert_eq!(t.wanted, Currency::Btc);
    }

    #[test]
    fn parses_reversed_tag_order() {
        let t = parse_hw_heading("[W] PayPal [H] Bitcoin 0.01").unwrap();
        assert_eq!(t.offered, Currency::Btc);
        assert_eq!(t.wanted, Currency::PayPal);
    }

    #[test]
    fn case_insensitive_tags() {
        let t = parse_hw_heading("[h] paypal [w] agc").unwrap();
        assert_eq!(t.offered, Currency::PayPal);
        assert_eq!(t.wanted, Currency::AmazonGiftCard);
    }

    #[test]
    fn missing_tags_yield_none() {
        assert!(parse_hw_heading("selling paypal for btc").is_none());
        assert!(parse_hw_heading("[H] paypal only").is_none());
        assert!(parse_hw_heading("[W] btc wanted").is_none());
    }

    #[test]
    fn unknown_currency_classified_as_question_mark() {
        let t = parse_hw_heading("[H] mystery tokens [W] BTC").unwrap();
        assert_eq!(t.offered, Currency::Unknown);
        assert_eq!(t.offered.label(), "?");
    }

    #[test]
    fn other_currencies_grouped() {
        assert_eq!(Currency::classify("skrill balance"), Currency::Other);
        assert_eq!(Currency::classify("venmo $20"), Currency::Other);
        assert_eq!(Currency::classify("0.5 ETH"), Currency::Other);
    }

    #[test]
    fn classify_variants() {
        assert_eq!(Currency::classify("PP balance"), Currency::PayPal);
        assert_eq!(
            Currency::classify("$25 amazon gift card"),
            Currency::AmazonGiftCard
        );
        assert_eq!(Currency::classify("30 gc"), Currency::AmazonGiftCard);
        assert_eq!(Currency::classify("bitcoin"), Currency::Btc);
        assert_eq!(Currency::classify(""), Currency::Unknown);
    }

    #[test]
    fn labels_match_table7() {
        assert_eq!(Currency::PayPal.label(), "PayPal");
        assert_eq!(Currency::Btc.label(), "BTC");
        assert_eq!(Currency::AmazonGiftCard.label(), "AGC");
        assert_eq!(Currency::Other.label(), "others");
        assert_eq!(Currency::Unknown.label(), "?");
    }
}
