//! Tokenisation following the paper's §4.1 preprocessing.
//!
//! "We strip punctuation, convert to lower case characters, ignore numbers
//! and exclude stop words." Tokens are maximal runs of ASCII letters;
//! anything else is a separator. Purely numeric runs are dropped; mixed
//! alphanumerics keep their letters (forum jargon like `wts`, `tut`, `hmu`
//! survives; `50$` does not become a token).

/// A compact English stop-word list (the usual SMART-style core), adequate
/// for TF-IDF feature extraction over short forum headings and posts.
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Returns true when `word` is in [`STOPWORDS`].
///
/// The list is sorted, so membership is a binary search.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Tokenises `text`: lower-cased maximal alphabetic runs, numbers ignored,
/// punctuation treated as separators. Stop words are *kept* (use
/// [`tokenize_with_stopwords`] to drop them).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_ascii_alphabetic() {
            cur.push(ch.to_ascii_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Tokenises and removes stop words — the exact §4.1 preprocessing.
pub fn tokenize_with_stopwords(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .collect()
}

/// Counts occurrences of `needle` as a case-insensitive substring of
/// `haystack`. Used for keyword heuristics that must match inside
/// bracket tags like `[TUT]` where tokenisation would lose context.
pub fn count_substring_ci(haystack: &str, needle: &str) -> usize {
    if needle.is_empty() {
        return 0;
    }
    let h = haystack.to_ascii_lowercase();
    let n = needle.to_ascii_lowercase();
    let mut count = 0;
    let mut start = 0;
    while let Some(pos) = h[start..].find(&n) {
        count += 1;
        start += pos + n.len();
    }
    count
}

/// Counts `ch` occurrences (e.g. question marks, a §4.1 feature).
pub fn count_char(text: &str, ch: char) -> usize {
    text.chars().filter(|&c| c == ch).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn lowercases_and_splits_on_punctuation() {
        assert_eq!(
            tokenize("Selling UNSATURATED pack!!! HMU"),
            vec!["selling", "unsaturated", "pack", "hmu"]
        );
    }

    #[test]
    fn numbers_are_ignored() {
        assert_eq!(tokenize("100 pics for $5"), vec!["pics", "for"]);
        assert_eq!(tokenize("pack2019"), vec!["pack"]);
    }

    #[test]
    fn stopwords_are_removed() {
        assert_eq!(
            tokenize_with_stopwords("I am selling a pack of the pics"),
            vec!["selling", "pack", "pics"]
        );
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("$$$ 123 ...").is_empty());
    }

    #[test]
    fn substring_count_is_case_insensitive_and_non_overlapping() {
        assert_eq!(count_substring_ci("[TUT] tut tutorial", "tut"), 3);
        assert_eq!(count_substring_ci("aaaa", "aa"), 2);
        assert_eq!(count_substring_ci("abc", ""), 0);
    }

    #[test]
    fn char_count() {
        assert_eq!(count_char("how to?? really?", '?'), 3);
    }

    #[test]
    fn is_stopword_agrees_with_list() {
        assert!(is_stopword("the"));
        assert!(!is_stopword("pack"));
    }
}
