//! The paper's keyword dictionaries (Table 2) and matching helpers.
//!
//! Table 2 defines five lexicons used throughout the methodology:
//!
//! | Purpose | Keywords |
//! |---|---|
//! | Extract eWhoring-related threads | `ewhor`, `e-whor` (substring, lowercase headings) |
//! | Classify Threads Offering Packs | `pack`, `packs`, …, `sexy` |
//! | Detect info-requesting posts | `[question]`, `[help]`, `need advice`, … |
//! | Detect tutorial threads | `tutorial`, `[tut]`, `howto`, … |
//! | Extract posts sharing earnings | `earn`, `profit`, `money`, `gain` |
//!
//! Matching is case-insensitive. Multi-word entries are matched as
//! substrings of the lower-cased text (they include punctuation like
//! `[tut]`, which tokenisation would destroy); single-word entries are
//! matched as whole tokens to avoid e.g. `set` matching inside `settings`.

use crate::tokenize::{count_substring_ci, tokenize};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// `ewhor` / `e-whor`: the heading keywords for extracting eWhoring threads.
pub const EWHORING_KEYWORDS: &[&str] = &["ewhor", "e-whor"];

/// TOP-classification keywords (paper Table 2, row 2).
pub const TOP_KEYWORDS: &[&str] = &[
    "pack",
    "packs",
    "package",
    "packages",
    "pics",
    "pictures",
    "videos",
    "vids",
    "video",
    "collection",
    "collections",
    "set",
    "sets",
    "repository",
    "repositories",
    "selling",
    "wts",
    "offering",
    "free",
    "unsaturated",
    "new",
    "giving",
    "compilation",
    "private",
    "girl",
    "girls",
    "sexy",
];

/// Info-requesting keywords (paper Table 2, row 3). Multi-word and
/// bracketed entries are substring-matched.
pub const REQUEST_KEYWORDS: &[&str] = &[
    "[question]",
    "[help]",
    "need advice",
    "need",
    "needed",
    "wtb",
    "want to buy",
    "req",
    "request",
    "question",
    "looking for",
    "give me advice",
    "quick question",
    "question for",
    "i wonder whether",
    "i wonder if",
    "im asking for",
    "general query",
    "general question",
    "i have a question",
    "i have a doubt",
    "help requested",
    "how to",
    "help please",
    "help with",
    "need help",
    "need a",
    "need some help",
    "help needed",
    "i want help",
    "help me",
    "seeking",
];

/// Tutorial keywords (paper Table 2, row 4).
pub const TUTORIAL_KEYWORDS: &[&str] = &[
    "tutorial",
    "[tut]",
    "howto",
    "how-to",
    "definite guide",
    "guide",
];

/// Earnings keywords (paper Table 2, row 5).
pub const EARNINGS_KEYWORDS: &[&str] = &["earn", "profit", "money", "gain"];

/// Additional §5.1 thread-heading cues for proof-of-earnings threads
/// ("you make" / "earn" in headings, e.g. "Post your earnings").
pub const EARNINGS_HEADING_PHRASES: &[&str] = &["you make", "earn"];

/// Trading-related terms used with `proof` in the §5.1 query.
pub const TRADING_KEYWORDS: &[&str] = &["selling", "wts", "offering", "buy", "price", "vouch"];

/// A compiled lexicon: single words matched as tokens, phrases as
/// substrings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lexicon {
    words: HashSet<String>,
    phrases: Vec<String>,
}

impl Lexicon {
    /// Compiles a keyword list, splitting entries into token-words and
    /// substring-phrases.
    pub fn new(keywords: &[&str]) -> Lexicon {
        let mut words = HashSet::new();
        let mut phrases = Vec::new();
        for &k in keywords {
            let lower = k.to_ascii_lowercase();
            let is_single_word = lower.chars().all(|c| c.is_ascii_alphabetic());
            if is_single_word {
                words.insert(lower);
            } else {
                phrases.push(lower);
            }
        }
        Lexicon { words, phrases }
    }

    /// The Table 2 TOP lexicon.
    pub fn top() -> Lexicon {
        Lexicon::new(TOP_KEYWORDS)
    }

    /// The Table 2 info-requesting lexicon.
    pub fn request() -> Lexicon {
        Lexicon::new(REQUEST_KEYWORDS)
    }

    /// The Table 2 tutorial lexicon.
    pub fn tutorial() -> Lexicon {
        Lexicon::new(TUTORIAL_KEYWORDS)
    }

    /// The Table 2 earnings lexicon.
    pub fn earnings() -> Lexicon {
        Lexicon::new(EARNINGS_KEYWORDS)
    }

    /// Counts lexicon hits in `text`: token matches for word entries plus
    /// substring matches for phrase entries.
    pub fn count_matches(&self, text: &str) -> usize {
        let token_hits = tokenize(text)
            .iter()
            .filter(|t| self.words.contains(t.as_str()))
            .count();
        let phrase_hits: usize = self
            .phrases
            .iter()
            .map(|p| count_substring_ci(text, p))
            .sum();
        token_hits + phrase_hits
    }

    /// True when `text` contains at least one lexicon entry.
    pub fn matches(&self, text: &str) -> bool {
        self.count_matches(text) > 0
    }
}

/// True when a thread heading is eWhoring-related per the paper's §3 query:
/// lower-cased heading contains `ewhor` or `e-whor` as a substring.
pub fn heading_is_ewhoring(heading: &str) -> bool {
    EWHORING_KEYWORDS
        .iter()
        .any(|k| count_substring_ci(heading, k) > 0)
}

/// True when a heading matches the §5.1 proof-of-earnings heading query
/// (`you make` or `earn` in the heading).
pub fn heading_is_earnings(heading: &str) -> bool {
    EARNINGS_HEADING_PHRASES
        .iter()
        .any(|k| count_substring_ci(heading, k) > 0)
}

/// True when post text matches the §5.1 `proof` + trading-term query.
pub fn post_is_proof_offer(text: &str) -> bool {
    if count_substring_ci(text, "proof") == 0 {
        return false;
    }
    let lex = Lexicon::new(TRADING_KEYWORDS);
    lex.matches(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewhoring_heading_query_matches_variants() {
        assert!(heading_is_ewhoring("My first eWhoring method"));
        assert!(heading_is_ewhoring("E-WHORING guide 2017"));
        assert!(heading_is_ewhoring("best ewhore pack")); // 'ewhor' prefix
        assert!(!heading_is_ewhoring("selling fifa coins"));
    }

    #[test]
    fn top_lexicon_counts_tokens_not_substrings() {
        let lex = Lexicon::top();
        // 'set' must not fire inside 'settings'.
        assert_eq!(lex.count_matches("change your settings"), 0);
        assert_eq!(lex.count_matches("new set of pics"), 3); // new, set, pics
    }

    #[test]
    fn request_lexicon_matches_bracket_tags_and_phrases() {
        let lex = Lexicon::request();
        assert!(lex.matches("[QUESTION] how do i start"));
        assert!(lex.matches("im looking for a mentor"));
        assert!(lex.matches("WTB fresh pack"));
        assert!(!lex.matches("selling my collection"));
    }

    #[test]
    fn tutorial_lexicon() {
        let lex = Lexicon::tutorial();
        assert!(lex.matches("[TUT] ewhoring for beginners"));
        assert!(lex.matches("the definite guide"));
        assert!(!lex.matches("pack preview inside"));
    }

    #[test]
    fn earnings_queries() {
        assert!(heading_is_earnings("How much do you make?"));
        assert!(heading_is_earnings("post your earnings")); // 'earn' substring
        assert!(!heading_is_earnings("pack giveaway"));
        assert!(post_is_proof_offer("selling method, proof inside"));
        assert!(!post_is_proof_offer("proof of concept")); // no trading term
        assert!(!post_is_proof_offer("selling method, no evidence"));
    }

    #[test]
    fn counts_accumulate_over_repeats() {
        let lex = Lexicon::earnings();
        assert_eq!(lex.count_matches("money money money"), 3);
    }

    #[test]
    fn empty_text_matches_nothing() {
        assert_eq!(Lexicon::top().count_matches(""), 0);
        assert!(!heading_is_ewhoring(""));
    }
}
