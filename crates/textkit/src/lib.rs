//! Text processing for underground-forum measurement.
//!
//! Implements exactly the text machinery the paper's pipeline needs:
//!
//! * [`tokenize()`](tokenize()) — the §4.1 preprocessing: strip punctuation, lower-case,
//!   ignore numbers, drop stop words;
//! * [`dtm`] — document-term matrix plus TF-IDF weighting ("we parse thread
//!   headings and posts into a document-term matrix to get word-counts …
//!   transformed using TF-IDF");
//! * [`lexicon`] — the keyword dictionaries of paper Table 2 (eWhoring
//!   thread extraction, TOP classification, info-requesting detection,
//!   tutorial detection, earnings extraction) plus trading terms;
//! * [`url`] — a URL scanner standing in for the paper's regular
//!   expressions ("Using regular expressions we extract URLs from the
//!   content of each extracted TOP");
//! * [`hw`] — the §5.1 parser for Currency Exchange headings in the
//!   de-facto `[H] offered [W] wanted` format.
//!
//! Everything here is deterministic, allocation-conscious, and free of
//! regex/NLP dependencies: the tokenizer and scanners are hand-rolled state
//! machines, which also makes their behaviour on forum jargon explicit and
//! testable.

pub mod dtm;
pub mod hw;
pub mod lexicon;
pub mod tokenize;
pub mod url;

pub use dtm::{DocTermMatrix, TfIdf, Vocabulary};
pub use hw::{parse_hw_heading, Currency, HwTrade};
pub use lexicon::{heading_is_earnings, heading_is_ewhoring, post_is_proof_offer, Lexicon};
pub use tokenize::{tokenize, tokenize_with_stopwords, STOPWORDS};
pub use url::{extract_urls, registered_domain, Url};
