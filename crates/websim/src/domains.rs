//! Origin-domain registry: the sites pack material is stolen from.
//!
//! The paper's reverse-image search resolved to 5 917 distinct domains whose
//! classifier tags were dominated by pornography/adult content, followed by
//! blogs, entertainment, shopping, forums, social networks, photo sharing,
//! and dating (Table 6). This module defines the *master* category taxonomy
//! (the ground truth a domain actually belongs to) and a registry generator
//! whose category mix is calibrated to that distribution. The three
//! commercial classifiers in `revsearch` then map master categories to
//! their own vocabularies, with per-classifier noise and `no_result` gaps,
//! reproducing Table 6's disagreement structure.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use synthrand::{Day, WeightedIndex};

/// Ground-truth category of an origin domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DomainCategory {
    /// Pornographic content sites.
    Porn,
    /// Softer adult content (nudity, provocative attire, lingerie).
    Adult,
    /// Social networks.
    SocialNetwork,
    /// Blogs and personal sites.
    Blog,
    /// Photo/media sharing services.
    PhotoSharing,
    /// Web forums and bulletin boards.
    Forum,
    /// Online shops.
    Shopping,
    /// News and media outlets.
    News,
    /// Dating sites.
    Dating,
    /// Entertainment and games.
    Entertainment,
    /// Generic business sites.
    Business,
    /// Parked or abandoned domains.
    Parked,
    /// Malicious/PUP-flagged sites.
    Malicious,
}

impl DomainCategory {
    /// All categories with their relative mass among reverse-search
    /// domains, calibrated to Table 6's aggregate shape (porn/adult
    /// majority, long tail elsewhere).
    pub const WEIGHTED: &'static [(DomainCategory, u64)] = &[
        (DomainCategory::Porn, 2100),
        (DomainCategory::Adult, 900),
        (DomainCategory::Blog, 700),
        (DomainCategory::Entertainment, 430),
        (DomainCategory::Forum, 300),
        (DomainCategory::Shopping, 290),
        (DomainCategory::News, 260),
        (DomainCategory::Business, 220),
        (DomainCategory::SocialNetwork, 170),
        (DomainCategory::PhotoSharing, 150),
        (DomainCategory::Dating, 130),
        (DomainCategory::Parked, 120),
        (DomainCategory::Malicious, 110),
    ];

    /// A short slug used in generated domain names.
    pub fn slug(self) -> &'static str {
        match self {
            DomainCategory::Porn => "tube",
            DomainCategory::Adult => "glam",
            DomainCategory::SocialNetwork => "social",
            DomainCategory::Blog => "blog",
            DomainCategory::PhotoSharing => "photo",
            DomainCategory::Forum => "board",
            DomainCategory::Shopping => "shop",
            DomainCategory::News => "news",
            DomainCategory::Dating => "date",
            DomainCategory::Entertainment => "fun",
            DomainCategory::Business => "corp",
            DomainCategory::Parked => "parked",
            DomainCategory::Malicious => "free-dl",
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            DomainCategory::Porn => "Pornography",
            DomainCategory::Adult => "Adult/Nudity",
            DomainCategory::SocialNetwork => "Social Networking",
            DomainCategory::Blog => "Blogs",
            DomainCategory::PhotoSharing => "Photo Sharing",
            DomainCategory::Forum => "Forums/Message boards",
            DomainCategory::Shopping => "Online Shopping",
            DomainCategory::News => "News/Media",
            DomainCategory::Dating => "Dating/Personals",
            DomainCategory::Entertainment => "Entertainment",
            DomainCategory::Business => "Business",
            DomainCategory::Parked => "Parked Domain",
            DomainCategory::Malicious => "Malicious Sites",
        }
    }
}

/// One origin domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OriginDomain {
    /// Registered domain name (synthetic).
    pub name: String,
    /// Ground-truth category.
    pub category: DomainCategory,
    /// Date the reverse-search crawler first indexed this domain — drives
    /// the §4.5 "seen before" analysis.
    pub first_crawled: Day,
}

/// The registry of origin domains.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OriginRegistry {
    domains: Vec<OriginDomain>,
}

impl OriginRegistry {
    /// Generates `n` origin domains with the Table 6 category mix; crawl
    /// dates are uniform in `[crawl_lo, crawl_hi]`.
    pub fn generate(rng: &mut StdRng, n: usize, crawl_lo: Day, crawl_hi: Day) -> OriginRegistry {
        let weights: Vec<u64> = DomainCategory::WEIGHTED.iter().map(|&(_, w)| w).collect();
        let sampler = WeightedIndex::from_counts(&weights);
        let mut domains = Vec::with_capacity(n);
        for i in 0..n {
            let (category, _) = DomainCategory::WEIGHTED[sampler.sample(rng)];
            let name = format!("{}{}.example", category.slug(), i);
            domains.push(OriginDomain {
                name,
                category,
                first_crawled: Day::sample_between(rng, crawl_lo, crawl_hi),
            });
        }
        OriginRegistry { domains }
    }

    /// All domains.
    pub fn domains(&self) -> &[OriginDomain] {
        &self.domains
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Domain by index.
    pub fn get(&self, i: usize) -> &OriginDomain {
        &self.domains[i]
    }

    /// Samples a domain index, biased by a mild popularity skew (porn
    /// aggregators host disproportionately many of the stolen images).
    pub fn sample_source(&self, rng: &mut StdRng) -> usize {
        assert!(!self.domains.is_empty(), "empty registry");
        // Mild Zipf-ish skew over indices without building a table:
        // quadratic transform of a uniform pushes mass to low indices.
        let u: f64 = rng.gen();
        let t = u * u;
        ((t * self.domains.len() as f64) as usize).min(self.domains.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthrand::rng_from_seed;

    fn registry(n: usize) -> OriginRegistry {
        let mut rng = rng_from_seed(4);
        OriginRegistry::generate(
            &mut rng,
            n,
            Day::from_ymd(2006, 1, 1),
            Day::from_ymd(2019, 3, 1),
        )
    }

    #[test]
    fn porn_is_the_dominant_category() {
        let reg = registry(5000);
        let porn = reg
            .domains()
            .iter()
            .filter(|d| d.category == DomainCategory::Porn)
            .count();
        let share = porn as f64 / reg.len() as f64;
        // Table 6 mass for porn-like tags ≈ 2100/5880 ≈ 36%.
        assert!((0.30..0.42).contains(&share), "porn share {share}");
    }

    #[test]
    fn every_category_appears_at_scale() {
        use std::collections::HashSet;
        let reg = registry(5000);
        let cats: HashSet<_> = reg.domains().iter().map(|d| d.category).collect();
        assert_eq!(cats.len(), DomainCategory::WEIGHTED.len());
    }

    #[test]
    fn names_are_unique_and_slugged() {
        use std::collections::HashSet;
        let reg = registry(1000);
        let names: HashSet<_> = reg.domains().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names.len(), 1000);
        assert!(reg.domains().iter().all(|d| d.name.ends_with(".example")));
    }

    #[test]
    fn crawl_dates_inside_window() {
        let reg = registry(500);
        let lo = Day::from_ymd(2006, 1, 1);
        let hi = Day::from_ymd(2019, 3, 1);
        assert!(reg
            .domains()
            .iter()
            .all(|d| d.first_crawled >= lo && d.first_crawled <= hi));
    }

    #[test]
    fn sampling_is_skewed_to_low_indices() {
        let reg = registry(1000);
        let mut rng = rng_from_seed(9);
        let n = 20_000;
        let low = (0..n).filter(|_| reg.sample_source(&mut rng) < 250).count();
        // Quadratic skew: P(index < 25%) = sqrt(0.25) = 50%.
        let share = low as f64 / n as f64;
        assert!((share - 0.5).abs() < 0.03, "low-quartile share {share}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = registry(100);
        let b = registry(100);
        assert!(a
            .domains()
            .iter()
            .zip(b.domains())
            .all(|(x, y)| x.name == y.name && x.category == y.category));
    }
}
