//! Hosting-site catalogue with paper-calibrated behaviour.
//!
//! Popularity weights are the link counts of paper Tables 3 and 4, so
//! sampling a host per generated link reproduces those tables. Behavioural
//! attributes come from §4.2's narrative: oron "a now defunct site", minus
//! likewise dead, Dropbox/Google Drive requiring registration ("where
//! crawling violates their Terms of Service"), and image-sharing sites
//! removing ToS-violating content.

use serde::{Deserialize, Serialize};
use synthrand::WeightedIndex;

/// What a site hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteKind {
    /// Hosts single images (pack previews, proof-of-earnings).
    ImageSharing,
    /// Hosts downloadable archives (the packs themselves).
    CloudStorage,
}

/// A hosting site and its crawler-relevant behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    /// Registered domain, e.g. `imgur.com`.
    pub domain: &'static str,
    /// What the site hosts.
    pub kind: SiteKind,
    /// Relative link popularity (Tables 3/4 counts).
    pub weight: u64,
    /// Site no longer exists; all fetches fail.
    pub defunct: bool,
    /// Content requires an account; the ethical crawler skips these.
    pub registration_wall: bool,
    /// Probability that any given link has rotted by crawl time.
    pub link_rot: f64,
    /// Probability that hosted content was removed for ToS violations
    /// (nudity/copyright) — fetch returns a removal banner for images.
    pub tos_removal: f64,
    /// Whether the domain is in the crawler's *seed* whitelist; sites
    /// outside it must be discovered by snowball sampling (§4.2).
    pub seed_whitelisted: bool,
}

/// The image-sharing sites of paper Table 3. "Others" (700 links) is
/// represented by seven generic domains sharing that mass.
pub const IMAGE_SHARING_SITES: &[Site] = &[
    site(
        "imgur.com",
        SiteKind::ImageSharing,
        3297,
        false,
        false,
        0.28,
        0.22,
        true,
    ),
    site(
        "gyazo.com",
        SiteKind::ImageSharing,
        1006,
        false,
        false,
        0.30,
        0.18,
        true,
    ),
    site(
        "imageshack.com",
        SiteKind::ImageSharing,
        679,
        false,
        false,
        0.35,
        0.20,
        true,
    ),
    site(
        "prnt.sc",
        SiteKind::ImageSharing,
        383,
        false,
        false,
        0.30,
        0.15,
        true,
    ),
    site(
        "photobucket.com",
        SiteKind::ImageSharing,
        311,
        false,
        false,
        0.40,
        0.25,
        true,
    ),
    site(
        "imagetwist.com",
        SiteKind::ImageSharing,
        105,
        false,
        false,
        0.35,
        0.20,
        false,
    ),
    site(
        "imagezilla.net",
        SiteKind::ImageSharing,
        97,
        false,
        false,
        0.35,
        0.20,
        false,
    ),
    site(
        "minus.com",
        SiteKind::ImageSharing,
        51,
        true,
        false,
        1.0,
        0.0,
        false,
    ),
    site(
        "postimage.io",
        SiteKind::ImageSharing,
        47,
        false,
        false,
        0.30,
        0.18,
        false,
    ),
    site(
        "imagebam.com",
        SiteKind::ImageSharing,
        44,
        false,
        false,
        0.35,
        0.20,
        false,
    ),
    site(
        "pixhost.example",
        SiteKind::ImageSharing,
        100,
        false,
        false,
        0.5,
        0.2,
        false,
    ),
    site(
        "imgbox.example",
        SiteKind::ImageSharing,
        100,
        false,
        false,
        0.5,
        0.2,
        false,
    ),
    site(
        "fastpic.example",
        SiteKind::ImageSharing,
        100,
        false,
        false,
        0.5,
        0.2,
        false,
    ),
    site(
        "picload.example",
        SiteKind::ImageSharing,
        100,
        false,
        false,
        0.5,
        0.2,
        false,
    ),
    site(
        "imghost.example",
        SiteKind::ImageSharing,
        100,
        false,
        false,
        0.5,
        0.2,
        false,
    ),
    site(
        "screencap.example",
        SiteKind::ImageSharing,
        100,
        false,
        false,
        0.5,
        0.2,
        false,
    ),
    site(
        "imageupload.example",
        SiteKind::ImageSharing,
        100,
        false,
        false,
        0.5,
        0.2,
        false,
    ),
];

/// The cloud-storage services of paper Table 4; "Others" (94 links) is
/// represented by four generic domains.
pub const CLOUD_STORAGE_SITES: &[Site] = &[
    site(
        "mediafire.com",
        SiteKind::CloudStorage,
        892,
        false,
        false,
        0.42,
        0.18,
        true,
    ),
    site(
        "mega.nz",
        SiteKind::CloudStorage,
        284,
        false,
        false,
        0.35,
        0.22,
        true,
    ),
    site(
        "dropbox.com",
        SiteKind::CloudStorage,
        130,
        false,
        true,
        0.30,
        0.10,
        true,
    ),
    site(
        "oron.com",
        SiteKind::CloudStorage,
        95,
        true,
        false,
        1.0,
        0.0,
        true,
    ),
    site(
        "depositfiles.com",
        SiteKind::CloudStorage,
        46,
        false,
        false,
        0.55,
        0.15,
        false,
    ),
    site(
        "filefactory.com",
        SiteKind::CloudStorage,
        37,
        false,
        false,
        0.55,
        0.15,
        false,
    ),
    site(
        "drive.google.com",
        SiteKind::CloudStorage,
        31,
        false,
        true,
        0.25,
        0.10,
        true,
    ),
    site(
        "ge.tt",
        SiteKind::CloudStorage,
        28,
        false,
        false,
        0.60,
        0.10,
        false,
    ),
    site(
        "zippyshare.com",
        SiteKind::CloudStorage,
        25,
        false,
        false,
        0.60,
        0.15,
        false,
    ),
    site(
        "filedropper.com",
        SiteKind::CloudStorage,
        24,
        false,
        false,
        0.60,
        0.15,
        false,
    ),
    site(
        "rapidgator.example",
        SiteKind::CloudStorage,
        24,
        false,
        false,
        0.7,
        0.1,
        false,
    ),
    site(
        "uploaded.example",
        SiteKind::CloudStorage,
        24,
        false,
        false,
        0.7,
        0.1,
        false,
    ),
    site(
        "filehost.example",
        SiteKind::CloudStorage,
        23,
        false,
        false,
        0.7,
        0.1,
        false,
    ),
    site(
        "sendspace.example",
        SiteKind::CloudStorage,
        23,
        false,
        false,
        0.7,
        0.1,
        false,
    ),
];

#[allow(clippy::too_many_arguments)] // table-row constructor mirroring the Site fields
const fn site(
    domain: &'static str,
    kind: SiteKind,
    weight: u64,
    defunct: bool,
    registration_wall: bool,
    link_rot: f64,
    tos_removal: f64,
    seed_whitelisted: bool,
) -> Site {
    Site {
        domain,
        kind,
        weight,
        defunct,
        registration_wall,
        link_rot,
        tos_removal,
        seed_whitelisted,
    }
}

/// The full site catalogue with popularity samplers.
#[derive(Debug, Clone)]
pub struct SiteCatalog {
    image_sampler: WeightedIndex,
    cloud_sampler: WeightedIndex,
}

impl Default for SiteCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl SiteCatalog {
    /// Builds the catalogue with Table 3/4 weights.
    pub fn new() -> SiteCatalog {
        SiteCatalog {
            image_sampler: WeightedIndex::from_counts(
                &IMAGE_SHARING_SITES
                    .iter()
                    .map(|s| s.weight)
                    .collect::<Vec<_>>(),
            ),
            cloud_sampler: WeightedIndex::from_counts(
                &CLOUD_STORAGE_SITES
                    .iter()
                    .map(|s| s.weight)
                    .collect::<Vec<_>>(),
            ),
        }
    }

    /// All sites of `kind`.
    pub fn sites(&self, kind: SiteKind) -> &'static [Site] {
        match kind {
            SiteKind::ImageSharing => IMAGE_SHARING_SITES,
            SiteKind::CloudStorage => CLOUD_STORAGE_SITES,
        }
    }

    /// Samples a site of `kind` by popularity.
    pub fn sample(&self, kind: SiteKind, rng: &mut rand::rngs::StdRng) -> &'static Site {
        match kind {
            SiteKind::ImageSharing => &IMAGE_SHARING_SITES[self.image_sampler.sample(rng)],
            SiteKind::CloudStorage => &CLOUD_STORAGE_SITES[self.cloud_sampler.sample(rng)],
        }
    }

    /// Looks a site up by domain. Matches the exact catalogue entry first,
    /// then falls back to comparing registered domains, so both
    /// `drive.google.com` and a URL reduced to `google.com` resolve to the
    /// Google Drive entry.
    pub fn lookup(&self, domain: &str) -> Option<&'static Site> {
        let sites = || IMAGE_SHARING_SITES.iter().chain(CLOUD_STORAGE_SITES);
        sites().find(|s| s.domain == domain).or_else(|| {
            let reg = textkit::registered_domain(domain);
            sites().find(|s| textkit::registered_domain(s.domain) == reg)
        })
    }

    /// The crawler's *seed* whitelist of known hosting domains; the rest
    /// must be found by snowball sampling.
    pub fn seed_whitelist(&self) -> Vec<&'static str> {
        IMAGE_SHARING_SITES
            .iter()
            .chain(CLOUD_STORAGE_SITES)
            .filter(|s| s.seed_whitelisted)
            .map(|s| s.domain)
            .collect()
    }

    /// All hosting domains (ground truth; used to verify snowball recall).
    pub fn all_domains(&self) -> Vec<&'static str> {
        IMAGE_SHARING_SITES
            .iter()
            .chain(CLOUD_STORAGE_SITES)
            .map(|s| s.domain)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthrand::rng_from_seed;

    #[test]
    fn weights_match_paper_rows() {
        // Paper Tables 3/4 state totals of 7 314 and 1 719, but their rows
        // (including the "Others" rows of 700 and 94) sum to 6 720 and
        // 1 686 — an internal inconsistency of the published tables. We
        // calibrate to the rows.
        let t3: u64 = IMAGE_SHARING_SITES.iter().map(|s| s.weight).sum();
        let t4: u64 = CLOUD_STORAGE_SITES.iter().map(|s| s.weight).sum();
        assert_eq!(t3, 6720);
        assert_eq!(t4, 1686);
    }

    #[test]
    fn imgur_and_mediafire_dominate() {
        let cat = SiteCatalog::new();
        let mut rng = rng_from_seed(1);
        let mut imgur = 0;
        let mut mediafire = 0;
        let n = 20_000;
        for _ in 0..n {
            if cat.sample(SiteKind::ImageSharing, &mut rng).domain == "imgur.com" {
                imgur += 1;
            }
            if cat.sample(SiteKind::CloudStorage, &mut rng).domain == "mediafire.com" {
                mediafire += 1;
            }
        }
        let imgur_share = imgur as f64 / n as f64;
        let mf_share = mediafire as f64 / n as f64;
        assert!(
            (imgur_share - 3297.0 / 6720.0).abs() < 0.02,
            "{imgur_share}"
        );
        assert!((mf_share - 892.0 / 1686.0).abs() < 0.02, "{mf_share}");
    }

    #[test]
    fn defunct_sites_are_marked() {
        let cat = SiteCatalog::new();
        assert!(cat.lookup("oron.com").unwrap().defunct);
        assert!(cat.lookup("minus.com").unwrap().defunct);
        assert!(!cat.lookup("imgur.com").unwrap().defunct);
    }

    #[test]
    fn registration_walls_match_paper() {
        let cat = SiteCatalog::new();
        assert!(cat.lookup("dropbox.com").unwrap().registration_wall);
        assert!(cat.lookup("drive.google.com").unwrap().registration_wall);
        assert!(!cat.lookup("mediafire.com").unwrap().registration_wall);
    }

    #[test]
    fn seed_whitelist_is_a_strict_subset() {
        let cat = SiteCatalog::new();
        let seed = cat.seed_whitelist();
        let all = cat.all_domains();
        assert!(seed.len() < all.len());
        assert!(seed.iter().all(|d| all.contains(d)));
        assert!(seed.contains(&"imgur.com"));
        assert!(!seed.contains(&"imagetwist.com"));
    }

    #[test]
    fn lookup_unknown_domain_is_none() {
        assert!(SiteCatalog::new().lookup("example.org").is_none());
    }

    #[test]
    fn domains_are_unique() {
        use std::collections::HashSet;
        let cat = SiteCatalog::new();
        let all = cat.all_domains();
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn probabilities_are_valid() {
        for s in IMAGE_SHARING_SITES.iter().chain(CLOUD_STORAGE_SITES) {
            assert!((0.0..=1.0).contains(&s.link_rot), "{}", s.domain);
            assert!((0.0..=1.0).contains(&s.tos_removal), "{}", s.domain);
        }
    }
}
