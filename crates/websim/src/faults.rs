//! Deterministic transient-fault injection over [`WebStore::fetch`].
//!
//! The paper's crawler (§4.2) runs against a hostile substrate: hosts
//! throttle crawlers, time out, serve 5xx under load, and cut pack
//! downloads off mid-stream. Those failures are *transient* — a retry can
//! succeed — unlike the permanent outcomes modelled by
//! [`FetchOutcome`] (rotted links, defunct sites, registration walls).
//!
//! A [`FaultPlan`] wraps the store: each fetch *attempt* either surfaces a
//! [`TransientFault`] or delivers the store's permanent outcome. Fault
//! decisions are pure functions of `(plan seed, url, attempt)` — no
//! internal state — so a crawl is byte-deterministic in the seed
//! regardless of the order links are visited in, and attempt `k + 1` for
//! a URL draws independently of attempt `k` (retries can succeed).
//!
//! Per-site fault rates derive from each [`Site`]'s behaviour profile
//! ([`FaultProfile::for_site`]): flaky hosts (high link rot) time out
//! more, popular hosts rate-limit crawlers, moderation-heavy hosts serve
//! more 5xx, and only cloud-storage archives can arrive truncated.
//! Latency is simulated (recorded, never slept) so tests stay fast.

use crate::sites::{Site, SiteCatalog, SiteKind};
use crate::store::{FetchOutcome, WebStore};
use serde::{Deserialize, Serialize};
use synthrand::splitmix64;
use textkit::Url;

/// A transient, retryable failure injected in front of a fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransientFault {
    /// The request timed out before any bytes arrived.
    Timeout,
    /// HTTP 429: the host is throttling the crawler.
    RateLimited,
    /// HTTP 5xx: the host fell over under load.
    ServerError,
    /// A pack archive cut off mid-download (length/checksum mismatch).
    TruncatedArchive,
}

/// One fetch attempt: a transient fault, or the store's permanent answer.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchAttempt {
    /// The host responded; this is the store's permanent outcome.
    Delivered(FetchOutcome),
    /// The attempt failed transiently; a retry may succeed.
    Fault(TransientFault),
}

/// Per-site transient-failure rates and simulated latency, derived from
/// the site's behaviour profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability an attempt times out.
    pub timeout: f64,
    /// Probability an attempt is rate-limited (HTTP 429).
    pub rate_limit: f64,
    /// Probability an attempt hits a server error (HTTP 5xx).
    pub server_error: f64,
    /// Probability a pack archive arrives truncated (cloud storage only).
    pub truncated_archive: f64,
    /// Mean service latency per attempt, µs (simulated, never slept).
    pub base_latency_us: u64,
    /// Uniform jitter added on top of the base latency, µs.
    pub jitter_latency_us: u64,
}

impl FaultProfile {
    /// Rates for an unknown host (not in the catalogue).
    pub fn unknown_host() -> FaultProfile {
        FaultProfile {
            timeout: 0.05,
            rate_limit: 0.02,
            server_error: 0.03,
            truncated_archive: 0.0,
            base_latency_us: 80_000,
            jitter_latency_us: 40_000,
        }
    }

    /// Derives the profile from a site's behaviour attributes:
    ///
    /// * link rot correlates with flaky hosting → more timeouts;
    /// * popular hosts (Tables 3/4 weight ≥ 500) throttle crawlers;
    /// * heavy ToS moderation correlates with load → more 5xx;
    /// * only cloud-storage archives can arrive truncated;
    /// * defunct sites fail *permanently* (the store 404s them), so they
    ///   draw no transient faults — retrying a dead site is pointless.
    pub fn for_site(site: Option<&Site>) -> FaultProfile {
        let Some(site) = site else {
            return FaultProfile::unknown_host();
        };
        if site.defunct {
            return FaultProfile {
                timeout: 0.0,
                rate_limit: 0.0,
                server_error: 0.0,
                truncated_archive: 0.0,
                base_latency_us: 5_000,
                jitter_latency_us: 0,
            };
        }
        let (base_latency_us, truncated_archive) = match site.kind {
            SiteKind::ImageSharing => (60_000, 0.0),
            // Archives are orders of magnitude larger: slower, and the
            // long transfer can be cut off mid-stream.
            SiteKind::CloudStorage => (250_000, 0.05),
        };
        FaultProfile {
            timeout: 0.02 + 0.10 * site.link_rot,
            rate_limit: if site.weight >= 500 { 0.06 } else { 0.02 },
            server_error: 0.02 + 0.08 * site.tos_removal,
            truncated_archive,
            base_latency_us,
            jitter_latency_us: base_latency_us / 2,
        }
    }
}

/// A seeded, deterministic fault-injection plan.
///
/// `severity` scales every per-site fault rate: `0.0` disables injection
/// entirely (every fetch delivers the store's outcome with zero simulated
/// latency — byte-identical to calling [`WebStore::fetch`] directly),
/// `1.0` is the calibrated rate, and large values force a total outage of
/// every non-defunct host (useful for degradation tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    severity: f64,
}

impl FaultPlan {
    /// A plan that never injects anything and simulates zero latency.
    pub fn disabled() -> FaultPlan {
        FaultPlan {
            seed: 0,
            severity: 0.0,
        }
    }

    /// A plan at calibrated severity `1.0`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan::with_severity(seed, 1.0)
    }

    /// A plan with an explicit severity multiplier (clamped to `>= 0`).
    pub fn with_severity(seed: u64, severity: f64) -> FaultPlan {
        FaultPlan {
            seed,
            severity: severity.max(0.0),
        }
    }

    /// True when the plan can inject faults or latency at all.
    pub fn is_enabled(&self) -> bool {
        self.severity > 0.0
    }

    /// The severity multiplier.
    pub fn severity(&self) -> f64 {
        self.severity
    }

    /// Deterministic 64-bit draw for `(url, attempt, salt)`.
    fn draw(&self, url: &Url, attempt: u32, salt: u64) -> u64 {
        let mut state = self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut acc = splitmix64(&mut state);
        for b in url.host.bytes().chain([b'/']).chain(url.path.bytes()) {
            state ^= u64::from(b).wrapping_mul(0x0100_0000_01B3);
            acc ^= splitmix64(&mut state);
        }
        state ^= u64::from(attempt).rotate_left(17);
        acc ^ splitmix64(&mut state)
    }

    /// Deterministic uniform draw in `[0, 1)` for `(url, attempt)`.
    fn unit(&self, url: &Url, attempt: u32) -> f64 {
        (self.draw(url, attempt, 0xFA01) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Simulated service latency of one attempt, µs. Zero when disabled.
    pub fn latency_us(&self, catalog: &SiteCatalog, url: &Url, attempt: u32) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let profile = FaultProfile::for_site(catalog.lookup(&url.domain()));
        let jitter = match profile.jitter_latency_us {
            0 => 0,
            j => self.draw(url, attempt, 0x1A7E) % j,
        };
        profile.base_latency_us + jitter
    }

    /// Deterministic backoff jitter in `[0, cap_us]` for a retry of `url`.
    pub fn backoff_jitter_us(&self, url: &Url, attempt: u32, cap_us: u64) -> u64 {
        if cap_us == 0 {
            return 0;
        }
        self.draw(url, attempt, 0xB0FF) % (cap_us + 1)
    }

    /// One fetch attempt against `web`: either an injected transient
    /// fault, or the store's permanent [`FetchOutcome`].
    pub fn fetch(
        &self,
        web: &WebStore,
        catalog: &SiteCatalog,
        url: &Url,
        attempt: u32,
    ) -> FetchAttempt {
        if self.is_enabled() {
            let profile = FaultProfile::for_site(catalog.lookup(&url.domain()));
            let u = self.unit(url, attempt);
            let mut cum = 0.0;
            for (rate, fault) in [
                (profile.timeout, TransientFault::Timeout),
                (profile.rate_limit, TransientFault::RateLimited),
                (profile.server_error, TransientFault::ServerError),
                (profile.truncated_archive, TransientFault::TruncatedArchive),
            ] {
                cum += rate * self.severity;
                if u < cum.min(1.0) {
                    return FetchAttempt::Fault(fault);
                }
            }
        }
        FetchAttempt::Delivered(web.fetch(catalog, url))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{HostedObject, LinkState, StoredImage};
    use imagesim::{ImageClass, ImageSpec};
    use synthrand::Day;

    fn image(variant: u64) -> StoredImage {
        StoredImage::pristine(ImageSpec::model_photo(ImageClass::ModelNude, 3, variant))
    }

    fn store_with(url: &Url) -> WebStore {
        let mut store = WebStore::new();
        store.host(
            url.clone(),
            HostedObject::Image(image(1)),
            Day::from_ymd(2015, 5, 5),
            LinkState::Live,
        );
        store
    }

    #[test]
    fn disabled_plan_is_transparent() {
        let catalog = SiteCatalog::new();
        let url = Url::new("imgur.com", "/abc");
        let store = store_with(&url);
        let plan = FaultPlan::disabled();
        for attempt in 0..50 {
            assert_eq!(
                plan.fetch(&store, &catalog, &url, attempt),
                FetchAttempt::Delivered(store.fetch(&catalog, &url))
            );
            assert_eq!(plan.latency_us(&catalog, &url, attempt), 0);
        }
    }

    #[test]
    fn decisions_are_deterministic_per_url_and_attempt() {
        let catalog = SiteCatalog::new();
        let url = Url::new("imgur.com", "/abc");
        let store = store_with(&url);
        let a = FaultPlan::new(7);
        let b = FaultPlan::new(7);
        for attempt in 0..200 {
            assert_eq!(
                a.fetch(&store, &catalog, &url, attempt),
                b.fetch(&store, &catalog, &url, attempt)
            );
            assert_eq!(
                a.latency_us(&catalog, &url, attempt),
                b.latency_us(&catalog, &url, attempt)
            );
        }
    }

    #[test]
    fn different_seeds_fault_differently() {
        let catalog = SiteCatalog::new();
        let store = WebStore::new();
        let a = FaultPlan::new(1);
        let b = FaultPlan::new(2);
        let differs = (0..500).any(|i| {
            let url = Url::new("imgur.com", format!("/p/{i}"));
            a.fetch(&store, &catalog, &url, 0) != b.fetch(&store, &catalog, &url, 0)
        });
        assert!(differs, "seeds 1 and 2 never diverged over 500 URLs");
    }

    #[test]
    fn calibrated_severity_faults_sometimes_and_retries_can_succeed() {
        let catalog = SiteCatalog::new();
        let url_base = "mediafire.com";
        let store = WebStore::new();
        let plan = FaultPlan::new(0xFA);
        let mut faults = 0;
        let mut recovered = 0;
        for i in 0..1000 {
            let url = Url::new(url_base, format!("/f/{i}"));
            if let FetchAttempt::Fault(_) = plan.fetch(&store, &catalog, &url, 0) {
                faults += 1;
                // Later attempts draw independently, so some succeed.
                if (1..8).any(|k| {
                    matches!(
                        plan.fetch(&store, &catalog, &url, k),
                        FetchAttempt::Delivered(_)
                    )
                }) {
                    recovered += 1;
                }
            }
        }
        assert!(faults > 30, "expected some faults, got {faults}");
        assert!(faults < 700, "expected mostly clean fetches, got {faults}");
        assert!(recovered > 0, "no faulted URL ever recovered on retry");
    }

    #[test]
    fn extreme_severity_is_a_total_outage_for_live_hosts() {
        let catalog = SiteCatalog::new();
        let url = Url::new("imgur.com", "/abc");
        let store = store_with(&url);
        let plan = FaultPlan::with_severity(3, 1e9);
        for attempt in 0..20 {
            assert!(matches!(
                plan.fetch(&store, &catalog, &url, attempt),
                FetchAttempt::Fault(_)
            ));
        }
    }

    #[test]
    fn defunct_sites_fail_permanently_not_transiently() {
        let catalog = SiteCatalog::new();
        let url = Url::new("oron.com", "/f/old");
        let store = store_with(&url);
        // Even at outage severity, a defunct host answers permanently.
        let plan = FaultPlan::with_severity(3, 1e9);
        assert_eq!(
            plan.fetch(&store, &catalog, &url, 0),
            FetchAttempt::Delivered(FetchOutcome::NotFound)
        );
    }

    #[test]
    fn truncated_archives_only_hit_cloud_storage() {
        for site in crate::sites::IMAGE_SHARING_SITES {
            assert_eq!(
                FaultProfile::for_site(Some(site)).truncated_archive,
                0.0,
                "{}",
                site.domain
            );
        }
        let mf = SiteCatalog::new().lookup("mediafire.com");
        assert!(FaultProfile::for_site(mf).truncated_archive > 0.0);
    }

    #[test]
    fn profile_rates_are_valid_probabilities() {
        let catalog = SiteCatalog::new();
        for domain in catalog.all_domains() {
            let p = FaultProfile::for_site(catalog.lookup(domain));
            for rate in [p.timeout, p.rate_limit, p.server_error, p.truncated_archive] {
                assert!((0.0..=1.0).contains(&rate), "{domain}: {rate}");
            }
            assert!(
                p.timeout + p.rate_limit + p.server_error + p.truncated_archive < 1.0,
                "{domain}: calibrated rates must leave room for success"
            );
        }
    }

    #[test]
    fn latency_tracks_payload_size() {
        let catalog = SiteCatalog::new();
        let plan = FaultPlan::new(9);
        let img = plan.latency_us(&catalog, &Url::new("imgur.com", "/a"), 0);
        let pack = plan.latency_us(&catalog, &Url::new("mediafire.com", "/f/a"), 0);
        assert!(
            pack > img,
            "archive fetch ({pack} µs) should outweigh image fetch ({img} µs)"
        );
    }

    #[test]
    fn backoff_jitter_is_bounded_and_deterministic() {
        let plan = FaultPlan::new(11);
        let url = Url::new("imgur.com", "/a");
        for attempt in 0..10 {
            let j = plan.backoff_jitter_us(&url, attempt, 1_000);
            assert!(j <= 1_000);
            assert_eq!(j, plan.backoff_jitter_us(&url, attempt, 1_000));
        }
        assert_eq!(plan.backoff_jitter_us(&url, 0, 0), 0);
    }
}
