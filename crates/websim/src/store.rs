//! The hosted-object store and crawler-visible fetch semantics.

use crate::sites::{Site, SiteCatalog, SiteKind};
use imagesim::{ImageClass, ImageSpec, Transform};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use synthrand::Day;
use textkit::Url;

/// An image as actually hosted: the original spec plus the modification the
/// uploader applied (watermarks, mirrors, …). Rendering applies the
/// transform, exactly like downloading the edited file.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoredImage {
    /// The underlying image.
    pub spec: ImageSpec,
    /// Modification baked into the hosted copy.
    pub transform: Transform,
}

impl StoredImage {
    /// An unmodified hosted copy.
    pub fn pristine(spec: ImageSpec) -> StoredImage {
        StoredImage {
            spec,
            transform: Transform::Identity,
        }
    }

    /// Renders the hosted bytes (spec render + transform).
    pub fn render(&self) -> imagesim::Bitmap {
        let mut scratch = RenderScratch::new();
        self.render_with(&mut scratch).clone()
    }

    /// Renders into a reusable arena: the spec renders into the arena's
    /// pristine canvas and the transform is applied in a separate one.
    /// Produces exactly the pixels [`StoredImage::render`] does, with
    /// zero allocations once the arena has warmed up — the shape hot
    /// loops measuring thousands of hosted images want.
    ///
    /// The arena remembers which spec its pristine canvas holds, so a
    /// caller measuring the same spec under several transforms (the
    /// duplication [`ImageSpec`] sharing creates in generated worlds)
    /// pays for the procedural render once and for each transform only
    /// the copy + in-place edit. `Transform::Identity` returns the
    /// pristine canvas directly without copying.
    pub fn render_with<'a>(&self, scratch: &'a mut RenderScratch) -> &'a imagesim::Bitmap {
        if scratch.pristine_of != Some(self.spec) {
            self.spec.render_into(&mut scratch.pristine);
            scratch.pristine_of = Some(self.spec);
        }
        if self.transform == Transform::Identity {
            return &scratch.pristine;
        }
        scratch.canvas.copy_from(&scratch.pristine);
        self.transform
            .apply_into(&mut scratch.canvas, &mut scratch.tmp);
        &scratch.canvas
    }
}

/// Reusable render arena for [`StoredImage::render_with`]: the pristine
/// spec render (cached across same-spec calls), the transformed canvas,
/// and the transform's crop/resample scratch. One per worker.
#[derive(Debug, Clone)]
pub struct RenderScratch {
    /// Untransformed render of `pristine_of`.
    pristine: imagesim::Bitmap,
    /// Which spec `pristine` currently holds, if any.
    pristine_of: Option<ImageSpec>,
    /// The transformed raster lives here after a non-identity call.
    canvas: imagesim::Bitmap,
    /// Transform scratch (`CropMargin` stages its crop here).
    tmp: imagesim::Bitmap,
}

impl Default for RenderScratch {
    fn default() -> RenderScratch {
        RenderScratch::new()
    }
}

impl RenderScratch {
    /// A minimal arena; the first render sizes it.
    pub fn new() -> RenderScratch {
        RenderScratch {
            pristine: imagesim::Bitmap::filled(1, 1, [0; 3]),
            pristine_of: None,
            canvas: imagesim::Bitmap::filled(1, 1, [0; 3]),
            tmp: imagesim::Bitmap::filled(1, 1, [0; 3]),
        }
    }
}

/// What a URL points at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HostedObject {
    /// A single image (preview or proof-of-earnings).
    Image(StoredImage),
    /// A pack archive: images plus the depicted model's id.
    Pack {
        /// Archive contents in order.
        images: Vec<StoredImage>,
    },
}

/// Lifecycle state of a hosted link at crawl time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkState {
    /// Fetchable.
    Live,
    /// Rotted (expired free-account lifetime, deleted by uploader, …).
    Dead,
    /// Removed for Terms-of-Service violations.
    TosRemoved,
}

/// One hosted entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostedEntry {
    /// The object behind the URL.
    pub object: HostedObject,
    /// Upload date (needed for §4.5 seen-before analysis).
    pub uploaded: Day,
    /// Lifecycle state.
    pub state: LinkState,
}

/// What a crawler sees when fetching a URL.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchOutcome {
    /// A live single image.
    Image(StoredImage),
    /// A live pack archive.
    Pack(Vec<StoredImage>),
    /// The host serves a removal banner *image* (image-sharing sites do
    /// this; it is downloaded and later classified SFV by the pipeline).
    RemovalBanner(StoredImage),
    /// HTTP-level failure: rotted link, defunct site, or unknown URL.
    NotFound,
    /// Content exists but sits behind a registration wall; the ethical
    /// crawler does not proceed (§4.2).
    RegistrationRequired,
}

/// URL → hosted entry, with site-aware fetch semantics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WebStore {
    entries: HashMap<Url, HostedEntry>,
}

impl WebStore {
    /// An empty store.
    pub fn new() -> WebStore {
        WebStore::default()
    }

    /// Hosts `object` at `url`. Returns the previous entry if overwritten.
    pub fn host(
        &mut self,
        url: Url,
        object: HostedObject,
        uploaded: Day,
        state: LinkState,
    ) -> Option<HostedEntry> {
        self.entries.insert(
            url,
            HostedEntry {
                object,
                uploaded,
                state,
            },
        )
    }

    /// Number of hosted entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is hosted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Direct entry access (for ground-truth evaluation).
    pub fn entry(&self, url: &Url) -> Option<&HostedEntry> {
        self.entries.get(url)
    }

    /// Fetches `url` as the crawler would, honouring site behaviour.
    pub fn fetch(&self, catalog: &SiteCatalog, url: &Url) -> FetchOutcome {
        let site: Option<&Site> = catalog.lookup(&url.domain());
        if let Some(site) = site {
            if site.defunct {
                return FetchOutcome::NotFound;
            }
            if site.registration_wall {
                return FetchOutcome::RegistrationRequired;
            }
        }
        let Some(entry) = self.entries.get(url) else {
            return FetchOutcome::NotFound;
        };
        match entry.state {
            LinkState::Dead => FetchOutcome::NotFound,
            LinkState::TosRemoved => match (&entry.object, site.map(|s| s.kind)) {
                // Image hosts serve a removal banner; cloud hosts 404.
                (HostedObject::Image(_), Some(SiteKind::ImageSharing) | None) => {
                    FetchOutcome::RemovalBanner(StoredImage::pristine(ImageSpec::of(
                        ImageClass::ErrorBanner,
                        url_banner_seed(url),
                    )))
                }
                _ => FetchOutcome::NotFound,
            },
            LinkState::Live => match &entry.object {
                HostedObject::Image(img) => FetchOutcome::Image(*img),
                HostedObject::Pack { images } => FetchOutcome::Pack(images.clone()),
            },
        }
    }

    /// Iterates all hosted URLs (ground truth / index building).
    pub fn urls(&self) -> impl Iterator<Item = &Url> {
        self.entries.keys()
    }

    /// Absorbs another store (used to combine stores populated by
    /// independent generators). Panics if any URL exists in both — the
    /// generators partition the URL space by path prefix.
    pub fn merge(&mut self, other: WebStore) {
        for (url, entry) in other.entries {
            let clash = self.entries.insert(url, entry);
            assert!(clash.is_none(), "URL hosted by two generators");
        }
    }
}

/// Deterministic banner variation per URL.
fn url_banner_seed(url: &Url) -> u64 {
    let mut h: u64 = 0x811C_9DC5;
    for b in url.host.bytes().chain(url.path.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagesim::ImageClass;

    fn day() -> Day {
        Day::from_ymd(2015, 5, 5)
    }

    fn image(variant: u64) -> StoredImage {
        StoredImage::pristine(ImageSpec::model_photo(ImageClass::ModelNude, 3, variant))
    }

    #[test]
    fn live_image_fetches() {
        let catalog = SiteCatalog::new();
        let mut store = WebStore::new();
        let url = Url::new("imgur.com", "/abc");
        store.host(
            url.clone(),
            HostedObject::Image(image(1)),
            day(),
            LinkState::Live,
        );
        assert!(matches!(
            store.fetch(&catalog, &url),
            FetchOutcome::Image(_)
        ));
    }

    #[test]
    fn live_pack_fetches_contents() {
        let catalog = SiteCatalog::new();
        let mut store = WebStore::new();
        let url = Url::new("mediafire.com", "/f/p1");
        store.host(
            url.clone(),
            HostedObject::Pack {
                images: vec![image(1), image(2)],
            },
            day(),
            LinkState::Live,
        );
        match store.fetch(&catalog, &url) {
            FetchOutcome::Pack(images) => assert_eq!(images.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dead_links_404() {
        let catalog = SiteCatalog::new();
        let mut store = WebStore::new();
        let url = Url::new("imgur.com", "/gone");
        store.host(
            url.clone(),
            HostedObject::Image(image(1)),
            day(),
            LinkState::Dead,
        );
        assert_eq!(store.fetch(&catalog, &url), FetchOutcome::NotFound);
    }

    #[test]
    fn unknown_url_404s() {
        let store = WebStore::new();
        assert_eq!(
            store.fetch(&SiteCatalog::new(), &Url::new("imgur.com", "/nope")),
            FetchOutcome::NotFound
        );
    }

    #[test]
    fn tos_removed_image_serves_banner() {
        let catalog = SiteCatalog::new();
        let mut store = WebStore::new();
        let url = Url::new("imgur.com", "/removed");
        store.host(
            url.clone(),
            HostedObject::Image(image(1)),
            day(),
            LinkState::TosRemoved,
        );
        match store.fetch(&catalog, &url) {
            FetchOutcome::RemovalBanner(img) => {
                assert_eq!(img.spec.class, ImageClass::ErrorBanner)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tos_removed_pack_404s() {
        let catalog = SiteCatalog::new();
        let mut store = WebStore::new();
        let url = Url::new("mediafire.com", "/f/removed");
        store.host(
            url.clone(),
            HostedObject::Pack {
                images: vec![image(1)],
            },
            day(),
            LinkState::TosRemoved,
        );
        assert_eq!(store.fetch(&catalog, &url), FetchOutcome::NotFound);
    }

    #[test]
    fn defunct_site_404s_even_when_hosted() {
        let catalog = SiteCatalog::new();
        let mut store = WebStore::new();
        let url = Url::new("oron.com", "/f/old");
        store.host(
            url.clone(),
            HostedObject::Image(image(1)),
            day(),
            LinkState::Live,
        );
        assert_eq!(store.fetch(&catalog, &url), FetchOutcome::NotFound);
    }

    #[test]
    fn registration_wall_blocks_crawl() {
        let catalog = SiteCatalog::new();
        let mut store = WebStore::new();
        let url = Url::new("dropbox.com", "/s/pack");
        store.host(
            url.clone(),
            HostedObject::Pack {
                images: vec![image(1)],
            },
            day(),
            LinkState::Live,
        );
        assert_eq!(
            store.fetch(&catalog, &url),
            FetchOutcome::RegistrationRequired
        );
    }

    #[test]
    fn subdomains_resolve_to_site_behaviour() {
        let catalog = SiteCatalog::new();
        let mut store = WebStore::new();
        let url = Url::new("i.imgur.com", "/direct");
        store.host(
            url.clone(),
            HostedObject::Image(image(2)),
            day(),
            LinkState::Live,
        );
        assert!(matches!(
            store.fetch(&catalog, &url),
            FetchOutcome::Image(_)
        ));
    }

    #[test]
    fn render_with_reused_arena_matches_render() {
        let mut scratch = RenderScratch::new();
        for (variant, transform) in [
            (1, Transform::Identity),
            (2, Transform::CropMargin { percent: 12 }),
            // Same spec back-to-back: the cached pristine render must
            // serve a fresh transform, then an identity, then another
            // transform, all bit-identically.
            (2, Transform::MirrorHorizontal),
            (2, Transform::Identity),
            (
                2,
                Transform::Noise {
                    amplitude: 6,
                    seed: 9,
                },
            ),
            (4, Transform::CropMargin { percent: 3 }),
            (4, Transform::Identity),
        ] {
            let img = StoredImage {
                spec: image(variant).spec,
                transform,
            };
            assert_eq!(
                img.render_with(&mut scratch),
                &img.render(),
                "{transform:?}"
            );
        }
    }

    #[test]
    fn stored_image_render_applies_transform() {
        let s = image(5);
        let mirrored = StoredImage {
            spec: s.spec,
            transform: Transform::MirrorHorizontal,
        };
        assert_ne!(s.render(), mirrored.render());
        assert_eq!(
            mirrored.render(),
            Transform::MirrorHorizontal.apply(&s.spec.render())
        );
    }
}
