//! Simulated web substrate.
//!
//! The paper's crawler pulls previews from image-sharing sites and packs
//! from cloud-storage services (§4.2, Tables 3 & 4), observing that "many
//! files and images had been deleted", that some sites are defunct (oron,
//! minus), that others wall content behind registration (Dropbox, Google
//! Drive — not crawled for ToS reasons), and that ToS-violating content is
//! replaced by removal banners. This crate models that world:
//!
//! * [`SiteCatalog`] — the hosting sites with paper-calibrated popularity
//!   weights and per-site behaviour (link rot, ToS takedowns, registration
//!   walls, defunct status);
//! * [`WebStore`] — URL → hosted object, with upload dates and link
//!   lifecycle; [`WebStore::fetch`] reproduces crawler-visible semantics;
//! * [`faults`] — seeded, deterministic transient-fault injection
//!   ([`FaultPlan`]) in front of the store: timeouts, 429s, 5xx, and
//!   truncated pack archives at per-site rates, plus simulated latency;
//! * [`domains`] — the registry of *origin* domains (porn sites, social
//!   networks, blogs, …) that pack material is stolen from, used by the
//!   reverse-search index and the §4.5 provenance analysis.
//!
//! The store is populated by `worldgen`; this crate defines structure and
//! semantics only.

pub mod domains;
pub mod faults;
pub mod sites;
pub mod store;

pub use domains::{DomainCategory, OriginDomain, OriginRegistry};
pub use faults::{FaultPlan, FaultProfile, FetchAttempt, TransientFault};
pub use sites::{Site, SiteCatalog, SiteKind};
pub use store::{FetchOutcome, HostedObject, LinkState, RenderScratch, StoredImage, WebStore};
