//! Property tests over the simulated web: fetch semantics are total and
//! consistent with site behaviour for arbitrary hosted content.

use imagesim::{ImageClass, ImageSpec};
use proptest::prelude::*;
use synthrand::Day;
use websim::{FetchOutcome, HostedObject, LinkState, SiteCatalog, SiteKind, StoredImage, WebStore};

fn any_state() -> impl Strategy<Value = LinkState> {
    prop_oneof![
        Just(LinkState::Live),
        Just(LinkState::Dead),
        Just(LinkState::TosRemoved),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever is hosted wherever, fetch never panics and the outcome is
    /// consistent with the site's behaviour flags and link state.
    #[test]
    fn fetch_semantics_are_consistent(
        site_idx in 0usize..30,
        is_pack in any::<bool>(),
        state in any_state(),
        path_seed in 0u64..1_000_000,
    ) {
        let catalog = SiteCatalog::new();
        let all: Vec<&str> = catalog.all_domains();
        let domain = all[site_idx % all.len()];
        let site = catalog.lookup(domain).unwrap();

        let mut store = WebStore::new();
        let url = textkit::Url::new(domain, format!("/p/{path_seed:x}"));
        let image = StoredImage::pristine(ImageSpec::of(ImageClass::Document, path_seed));
        let object = if is_pack {
            HostedObject::Pack { images: vec![image] }
        } else {
            HostedObject::Image(image)
        };
        store.host(url.clone(), object, Day::from_ymd(2015, 1, 1), state);

        let outcome = store.fetch(&catalog, &url);
        if site.defunct {
            prop_assert_eq!(outcome, FetchOutcome::NotFound);
        } else if site.registration_wall {
            prop_assert_eq!(outcome, FetchOutcome::RegistrationRequired);
        } else {
            match state {
                LinkState::Dead => prop_assert_eq!(outcome, FetchOutcome::NotFound),
                LinkState::TosRemoved => {
                    // Image-sharing sites serve a removal banner for
                    // single images; cloud hosts 404 everything.
                    if !is_pack && site.kind == SiteKind::ImageSharing {
                        prop_assert!(matches!(outcome, FetchOutcome::RemovalBanner(_)));
                    } else {
                        prop_assert_eq!(outcome, FetchOutcome::NotFound);
                    }
                }
                LinkState::Live => {
                    if is_pack {
                        prop_assert!(matches!(outcome, FetchOutcome::Pack(_)));
                    } else {
                        prop_assert!(matches!(outcome, FetchOutcome::Image(_)));
                    }
                }
            }
        }
    }

    /// Merging partitioned stores preserves every entry.
    #[test]
    fn merge_preserves_entries(n_a in 0usize..20, n_b in 0usize..20) {
        let mut a = WebStore::new();
        let mut b = WebStore::new();
        for i in 0..n_a {
            a.host(
                textkit::Url::new("imgur.com", format!("/a/{i}")),
                HostedObject::Image(StoredImage::pristine(ImageSpec::of(ImageClass::Meme, i as u64))),
                Day::from_ymd(2014, 1, 1),
                LinkState::Live,
            );
        }
        for i in 0..n_b {
            b.host(
                textkit::Url::new("imgur.com", format!("/b/{i}")),
                HostedObject::Image(StoredImage::pristine(ImageSpec::of(ImageClass::Meme, i as u64))),
                Day::from_ymd(2014, 1, 1),
                LinkState::Live,
            );
        }
        a.merge(b);
        prop_assert_eq!(a.len(), n_a + n_b);
    }
}
