//! The known-material hash list.

use crate::SAFETY_MATCH_THRESHOLD;
use imagesim::RobustHash;
use serde::{Deserialize, Serialize};

/// IWF severity grading of verified material (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Category A: penetrative sexual activity and the most severe classes.
    A,
    /// Category B: non-penetrative sexual activity.
    B,
    /// Category C: other indecent images.
    C,
}

/// One hash-list entry.
///
/// The paper distinguishes matches the IWF could *action* (age verified;
/// 61 URLs over two victims) from matches contributed by other
/// organisations that "were not actionable … since they were not able to
/// verify the age of the persons depicted". `verifiable` captures that.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HashListEntry {
    /// Robust hash of the known image.
    pub hash: RobustHash,
    /// Opaque victim/case identifier (groups entries of the same victim).
    pub case: u32,
    /// Whether the hotline can verify and action this entry.
    pub verifiable: bool,
    /// Severity grade, present only for verifiable entries.
    pub severity: Option<Severity>,
}

/// The hash list with threshold matching.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HashList {
    entries: Vec<HashListEntry>,
}

impl HashList {
    /// An empty list.
    pub fn new() -> HashList {
        HashList::default()
    }

    /// Adds an entry. Verifiable entries must carry a severity; the
    /// constructor enforces the invariant.
    pub fn add(&mut self, entry: HashListEntry) {
        assert_eq!(
            entry.verifiable,
            entry.severity.is_some(),
            "severity present iff verifiable"
        );
        self.entries.push(entry);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Matches `hash` against the list at the safety threshold, returning
    /// the closest entry if any qualifies.
    pub fn match_hash(&self, hash: &RobustHash) -> Option<&HashListEntry> {
        self.entries
            .iter()
            .map(|e| (hash.distance(&e.hash), e))
            .filter(|&(d, _)| d <= SAFETY_MATCH_THRESHOLD)
            .min_by_key(|&(d, _)| d)
            .map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagesim::{ImageClass, ImageSpec, Transform};

    fn spec(v: u64) -> ImageSpec {
        ImageSpec::model_photo(ImageClass::ModelNude, 77_000 + v as u32, v)
    }

    fn entry(v: u64, verifiable: bool) -> HashListEntry {
        HashListEntry {
            hash: RobustHash::of(&spec(v).render()),
            case: v as u32,
            verifiable,
            severity: verifiable.then_some(Severity::B),
        }
    }

    #[test]
    fn exact_match_is_found() {
        let mut list = HashList::new();
        list.add(entry(1, true));
        let hit = list.match_hash(&RobustHash::of(&spec(1).render()));
        assert!(hit.is_some());
        assert_eq!(hit.unwrap().case, 1);
    }

    #[test]
    fn recompressed_copy_still_matches() {
        let mut list = HashList::new();
        list.add(entry(2, false));
        let edited = Transform::Noise {
            amplitude: 3,
            seed: 4,
        }
        .apply(&spec(2).render());
        assert!(list.match_hash(&RobustHash::of(&edited)).is_some());
    }

    #[test]
    fn mirrored_copy_evades() {
        let mut list = HashList::new();
        list.add(entry(3, true));
        let mirrored = Transform::MirrorHorizontal.apply(&spec(3).render());
        assert!(list.match_hash(&RobustHash::of(&mirrored)).is_none());
    }

    #[test]
    fn unrelated_image_never_matches() {
        let mut list = HashList::new();
        for v in 0..30 {
            list.add(entry(v, v % 2 == 0));
        }
        let unrelated = ImageSpec::model_photo(ImageClass::ModelNude, 5, 999).render();
        assert!(list.match_hash(&RobustHash::of(&unrelated)).is_none());
    }

    #[test]
    fn closest_entry_wins() {
        let base = spec(4).render();
        let mut list = HashList::new();
        list.add(HashListEntry {
            hash: RobustHash::of(
                &Transform::Noise {
                    amplitude: 10,
                    seed: 1,
                }
                .apply(&base),
            ),
            case: 10,
            verifiable: false,
            severity: None,
        });
        list.add(HashListEntry {
            hash: RobustHash::of(&base),
            case: 20,
            verifiable: false,
            severity: None,
        });
        assert_eq!(list.match_hash(&RobustHash::of(&base)).unwrap().case, 20);
    }

    #[test]
    #[should_panic(expected = "severity present iff verifiable")]
    fn invariant_enforced() {
        let mut list = HashList::new();
        list.add(HashListEntry {
            hash: RobustHash::of(&spec(9).render()),
            case: 9,
            verifiable: true,
            severity: None,
        });
    }
}
