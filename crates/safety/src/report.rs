//! IWF-style aggregation of the report log (paper §4.3 results).

use crate::gate::ReportLog;
use crate::hashlist::Severity;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Hosting location buckets used in the paper's §4.3 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HostingRegion {
    /// United Kingdom (the IWF takes these down directly).
    Uk,
    /// USA and Canada.
    NorthAmerica,
    /// European countries other than the UK.
    OtherEurope,
    /// Everywhere else.
    Other,
}

impl HostingRegion {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            HostingRegion::Uk => "UK",
            HostingRegion::NorthAmerica => "North America",
            HostingRegion::OtherEurope => "Other Europe",
            HostingRegion::Other => "Other",
        }
    }
}

/// Site-type buckets from §4.3 ("26 image sharing sites, 9 forums, 3 blogs,
/// 2 social networks, 1 video channel, and 20 regular websites").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SiteType {
    /// Image-sharing sites.
    ImageSharing,
    /// Web forums.
    Forum,
    /// Blogs.
    Blog,
    /// Social networks.
    SocialNetwork,
    /// Video channels.
    VideoChannel,
    /// Everything else ("regular websites").
    Regular,
}

impl SiteType {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SiteType::ImageSharing => "image sharing",
            SiteType::Forum => "forum",
            SiteType::Blog => "blog",
            SiteType::SocialNetwork => "social network",
            SiteType::VideoChannel => "video channel",
            SiteType::Regular => "regular website",
        }
    }
}

/// The §4.3 aggregate over a report log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IwfSummary {
    /// Distinct matched hash-list cases (paper: 36 images matched).
    pub matched_cases: usize,
    /// Total reports filed (every URL of every match).
    pub total_reports: usize,
    /// URLs the hotline actioned (verifiable cases only; paper: 61).
    pub actioned_urls: usize,
    /// Actioned URLs by severity (paper: 20 A / 36 B / 5 C).
    pub by_severity: BTreeMap<Severity, usize>,
    /// Actioned URLs by hosting region (paper: 1 UK / 30 NA / 30 Europe).
    pub by_region: BTreeMap<HostingRegion, usize>,
    /// Actioned URLs by site type.
    pub by_site_type: BTreeMap<SiteType, usize>,
}

impl IwfSummary {
    /// Builds the summary from a report log.
    pub fn from_log(log: &ReportLog) -> IwfSummary {
        let items = log.items();
        let mut summary = IwfSummary {
            matched_cases: items.iter().map(|i| i.case).collect::<HashSet<_>>().len(),
            total_reports: items.len(),
            ..IwfSummary::default()
        };
        // Actioning is per distinct URL, as the IWF records locations.
        let mut seen_urls = HashSet::new();
        for item in items.iter().filter(|i| i.actioned) {
            if !seen_urls.insert(item.url.clone()) {
                continue;
            }
            summary.actioned_urls += 1;
            if let Some(sev) = item.severity {
                *summary.by_severity.entry(sev).or_insert(0) += 1;
            }
            *summary.by_region.entry(item.region).or_insert(0) += 1;
            *summary.by_site_type.entry(item.site_type).or_insert(0) += 1;
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::ReportedItem;
    use synthrand::Day;

    fn item(case: u32, url: &str, actioned: bool, sev: Option<Severity>) -> ReportedItem {
        ReportedItem {
            case,
            url: url.into(),
            reported_on: Day::from_ymd(2019, 2, 1),
            actioned,
            severity: sev,
            region: HostingRegion::NorthAmerica,
            site_type: SiteType::ImageSharing,
        }
    }

    #[test]
    fn summary_counts_cases_and_urls() {
        let log = ReportLog::new();
        log.record(item(1, "u1", true, Some(Severity::A)));
        log.record(item(1, "u2", true, Some(Severity::B)));
        log.record(item(2, "u3", false, None));
        let s = IwfSummary::from_log(&log);
        assert_eq!(s.matched_cases, 2);
        assert_eq!(s.total_reports, 3);
        assert_eq!(s.actioned_urls, 2);
        assert_eq!(s.by_severity[&Severity::A], 1);
        assert_eq!(s.by_severity[&Severity::B], 1);
    }

    #[test]
    fn duplicate_urls_actioned_once() {
        let log = ReportLog::new();
        log.record(item(1, "same", true, Some(Severity::C)));
        log.record(item(1, "same", true, Some(Severity::C)));
        let s = IwfSummary::from_log(&log);
        assert_eq!(s.actioned_urls, 1);
        assert_eq!(s.by_severity[&Severity::C], 1);
    }

    #[test]
    fn unactioned_reports_do_not_enter_breakdowns() {
        let log = ReportLog::new();
        log.record(item(3, "u", false, None));
        let s = IwfSummary::from_log(&log);
        assert_eq!(s.actioned_urls, 0);
        assert!(s.by_region.is_empty());
        assert_eq!(s.matched_cases, 1);
    }

    #[test]
    fn empty_log_summarises_to_zero() {
        let s = IwfSummary::from_log(&ReportLog::new());
        assert_eq!(s, IwfSummary::default());
    }
}
