//! Child-abuse-material screening workflow (PhotoDNA / IWF analogue).
//!
//! Paper §4.3: every downloaded image is hashed and matched "against a
//! database of known child abuse material" (PhotoDNA); matches are
//! "immediately reported to the IWF and deleted from our servers", and the
//! IWF then *actions* URLs it can verify, grading severity (A/B/C) and
//! recording hosting location and site type. The study found 36 matching
//! images and 61 actioned URLs.
//!
//! This crate reproduces the *workflow logic* over synthetic data:
//!
//! * [`HashList`] — robust-hash entries with verifiability metadata;
//! * [`SafetyGate`] — the screen-report-delete gate: a flagged image is
//!   recorded in the [`ReportLog`] and never returned to the caller, so
//!   downstream pipeline stages structurally cannot analyse it (the same
//!   property the paper's design enforces for researchers);
//! * [`IwfSummary`] — the §4.3 aggregate: actioned URLs by severity,
//!   hosting region, and site type.
//!
//! Matching uses a tighter Hamming threshold than reverse search: a false
//! positive here has real-world consequences, so the gate trades recall on
//! heavily edited copies (mirrors evade, as they do PhotoDNA in practice)
//! for near-zero false-positive probability.

pub mod gate;
pub mod hashlist;
pub mod report;

pub use gate::{ReportLog, ReportedItem, SafetyGate, ScreenOutcome};
pub use hashlist::{HashList, HashListEntry, Severity};
pub use report::{HostingRegion, IwfSummary, SiteType};

/// Hamming threshold for hashlist matching — far tighter than reverse
/// search's 18 (see crate docs): a light recompression still matches, but
/// the false-positive ball is kept small because a match has real-world
/// consequences.
pub const SAFETY_MATCH_THRESHOLD: u32 = 8;
