//! The screen-report-delete gate.

use crate::hashlist::{HashList, Severity};
use crate::report::{HostingRegion, SiteType};
use imagesim::RobustHash;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use synthrand::Day;

/// Outcome of screening one downloaded image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScreenOutcome {
    /// No hash-list match: the image may proceed to analysis.
    Clear,
    /// Matched: the image has been reported and deleted. The caller gets
    /// only the case id — never the image content.
    ReportedAndDeleted {
        /// Hash-list case id.
        case: u32,
    },
}

/// One reported item, as the hotline records it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportedItem {
    /// Hash-list case id.
    pub case: u32,
    /// URL the image was downloaded from (or located at via reverse
    /// search; the paper reported both).
    pub url: String,
    /// Report date.
    pub reported_on: Day,
    /// Whether the hotline could verify and action this URL.
    pub actioned: bool,
    /// Severity grade for actioned URLs.
    pub severity: Option<Severity>,
    /// Hosting location of the URL.
    pub region: HostingRegion,
    /// Kind of site hosting the URL.
    pub site_type: SiteType,
}

/// Append-only log of reports (thread-safe: the crawler screens downloads
/// from worker threads).
#[derive(Debug, Default)]
pub struct ReportLog {
    items: Mutex<Vec<ReportedItem>>,
}

impl ReportLog {
    /// An empty log.
    pub fn new() -> ReportLog {
        ReportLog::default()
    }

    /// Records a report.
    pub fn record(&self, item: ReportedItem) {
        self.items.lock().push(item);
    }

    /// Snapshot of all reports.
    pub fn items(&self) -> Vec<ReportedItem> {
        self.items.lock().clone()
    }

    /// Number of reports.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// True when no report was filed.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

/// The safety gate: hash list + report log.
#[derive(Debug)]
pub struct SafetyGate {
    hashlist: HashList,
    log: ReportLog,
}

impl SafetyGate {
    /// Creates a gate over `hashlist`.
    pub fn new(hashlist: HashList) -> SafetyGate {
        SafetyGate {
            hashlist,
            log: ReportLog::new(),
        }
    }

    /// Screens a downloaded image.
    ///
    /// On a match the item is reported (logged with the supplied hosting
    /// metadata) and the outcome carries no image data — deletion is
    /// enforced by construction because the gate only ever receives the
    /// hash, never retains the bitmap.
    pub fn screen(
        &self,
        hash: &RobustHash,
        url: &str,
        today: Day,
        region: HostingRegion,
        site_type: SiteType,
    ) -> ScreenOutcome {
        match self.hashlist.match_hash(hash) {
            None => ScreenOutcome::Clear,
            Some(entry) => {
                self.log.record(ReportedItem {
                    case: entry.case,
                    url: url.to_string(),
                    reported_on: today,
                    actioned: entry.verifiable,
                    severity: entry.severity,
                    region,
                    site_type,
                });
                ScreenOutcome::ReportedAndDeleted { case: entry.case }
            }
        }
    }

    /// The report log.
    pub fn log(&self) -> &ReportLog {
        &self.log
    }

    /// The hash list (for inspection/benchmarks).
    pub fn hashlist(&self) -> &HashList {
        &self.hashlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashlist::HashListEntry;
    use imagesim::{ImageClass, ImageSpec};

    fn spec(v: u64) -> ImageSpec {
        ImageSpec::model_photo(ImageClass::ModelNude, 88_000 + v as u32, v)
    }

    fn gate_with(entries: &[(u64, bool)]) -> SafetyGate {
        let mut list = HashList::new();
        for &(v, verifiable) in entries {
            list.add(HashListEntry {
                hash: RobustHash::of(&spec(v).render()),
                case: v as u32,
                verifiable,
                severity: verifiable.then_some(Severity::A),
            });
        }
        SafetyGate::new(list)
    }

    fn day() -> Day {
        Day::from_ymd(2019, 1, 10)
    }

    #[test]
    fn clear_images_pass_without_logging() {
        let gate = gate_with(&[(1, true)]);
        let clean = RobustHash::of(&spec(99).render());
        let out = gate.screen(
            &clean,
            "https://imgur.com/x",
            day(),
            HostingRegion::OtherEurope,
            SiteType::ImageSharing,
        );
        assert_eq!(out, ScreenOutcome::Clear);
        assert!(gate.log().is_empty());
    }

    #[test]
    fn matches_are_reported_and_withheld() {
        let gate = gate_with(&[(2, true)]);
        let hash = RobustHash::of(&spec(2).render());
        let out = gate.screen(
            &hash,
            "https://imgur.com/bad",
            day(),
            HostingRegion::Uk,
            SiteType::ImageSharing,
        );
        assert_eq!(out, ScreenOutcome::ReportedAndDeleted { case: 2 });
        let items = gate.log().items();
        assert_eq!(items.len(), 1);
        assert!(items[0].actioned);
        assert_eq!(items[0].severity, Some(Severity::A));
        assert_eq!(items[0].url, "https://imgur.com/bad");
    }

    #[test]
    fn unverifiable_matches_are_reported_but_not_actioned() {
        let gate = gate_with(&[(3, false)]);
        let hash = RobustHash::of(&spec(3).render());
        gate.screen(
            &hash,
            "u",
            day(),
            HostingRegion::NorthAmerica,
            SiteType::Forum,
        );
        let items = gate.log().items();
        assert!(!items[0].actioned);
        assert_eq!(items[0].severity, None);
    }

    #[test]
    fn same_case_reported_once_per_url() {
        let gate = gate_with(&[(4, true)]);
        let hash = RobustHash::of(&spec(4).render());
        for url in ["https://a.example/1", "https://b.example/2"] {
            gate.screen(
                &hash,
                url,
                day(),
                HostingRegion::OtherEurope,
                SiteType::Blog,
            );
        }
        // The paper reports per-URL: 36 images led to 61 actioned URLs.
        assert_eq!(gate.log().len(), 2);
    }

    #[test]
    fn gate_is_usable_across_threads() {
        use std::sync::Arc;
        let gate = Arc::new(gate_with(&[(5, true)]));
        let hash = RobustHash::of(&spec(5).render());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let g = Arc::clone(&gate);
                let h = hash;
                std::thread::spawn(move || {
                    g.screen(
                        &h,
                        &format!("https://t{i}.example/x"),
                        Day::from_ymd(2019, 1, 10),
                        HostingRegion::Uk,
                        SiteType::Regular,
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(gate.log().len(), 4);
    }
}
