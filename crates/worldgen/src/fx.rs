//! Historical exchange rates (synthetic but time-varying).
//!
//! §5.1 converts proof-of-earnings amounts to USD "using a historical
//! exchange rate list to get the corresponding rate when the transaction
//! was performed". This table provides monthly USD rates for the currencies
//! appearing in proofs. Fiat rates wander mildly around realistic levels;
//! BTC follows a stylised 2011–2019 trajectory (growth, the 2017 bubble,
//! the 2018 crash) so that date-sensitive conversion is actually exercised.

use serde::{Deserialize, Serialize};
use synthrand::Day;

/// Currencies appearing in proof-of-earnings images.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CurrencyCode {
    /// US dollar (identity rate).
    Usd,
    /// Pound sterling.
    Gbp,
    /// Euro.
    Eur,
    /// Bitcoin.
    Btc,
}

impl CurrencyCode {
    /// Display code.
    pub fn code(self) -> &'static str {
        match self {
            CurrencyCode::Usd => "USD",
            CurrencyCode::Gbp => "GBP",
            CurrencyCode::Eur => "EUR",
            CurrencyCode::Btc => "BTC",
        }
    }
}

/// Monthly USD-per-unit rate table, 2008-01 through 2019-12.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FxTable {
    /// month_index (year*12+month-1) of the first entry.
    first_month: i32,
    /// Rows: [GBP, EUR, BTC] USD rates per month.
    rows: Vec<[f64; 3]>,
}

impl Default for FxTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FxTable {
    /// Builds the 2008–2019 table.
    pub fn new() -> FxTable {
        let first_month = 2008 * 12; // January 2008
        let months = 12 * 12; // through December 2019
        let mut rows = Vec::with_capacity(months);
        for m in 0..months {
            let t = m as f64;
            // GBP: ~1.95 in 2008 sliding to ~1.30 by 2019 with a wobble.
            let gbp = 1.95 - 0.0045 * t + 0.06 * (t / 7.0).sin();
            // EUR: ~1.47 to ~1.12.
            let eur = 1.47 - 0.0024 * t + 0.05 * (t / 9.0).cos();
            // BTC (USD per BTC): worthless pre-2010, exponential growth,
            // 2017 bubble (month index ~119 = Dec 2017), 2018 crash.
            let btc = btc_rate(m as i32);
            rows.push([gbp, eur, btc]);
        }
        FxTable { first_month, rows }
    }

    /// USD value of `amount` units of `currency` on `date`.
    ///
    /// Dates outside the table clamp to its edges (the paper's dataset ends
    /// 2019-03, so clamping never distorts in-range data).
    pub fn to_usd(&self, amount: f64, currency: CurrencyCode, date: Day) -> f64 {
        match currency {
            CurrencyCode::Usd => amount,
            _ => {
                let idx = (date.month_index() - self.first_month)
                    .clamp(0, self.rows.len() as i32 - 1) as usize;
                let row = self.rows[idx];
                let rate = match currency {
                    CurrencyCode::Gbp => row[0],
                    CurrencyCode::Eur => row[1],
                    CurrencyCode::Btc => row[2],
                    CurrencyCode::Usd => unreachable!(),
                };
                amount * rate
            }
        }
    }
}

/// Stylised BTC/USD by month index since 2008-01.
fn btc_rate(m: i32) -> f64 {
    // Key points: ~$0.1 (2010), ~$13 (Jan 2013), ~$800 (Jan 2014),
    // ~$430 (Jan 2016), ~$14k (Jan 2018 peak), ~$3.8k (Jan 2019).
    let anchors: [(i32, f64); 8] = [
        (24, 0.01),      // 2010-01
        (48, 1.0),       // 2012-01
        (60, 13.0),      // 2013-01
        (72, 800.0),     // 2014-01
        (96, 430.0),     // 2016-01
        (119, 19_000.0), // 2017-12
        (132, 3_800.0),  // 2019-01
        (143, 7_200.0),  // 2019-12
    ];
    if m <= anchors[0].0 {
        return anchors[0].1;
    }
    for w in anchors.windows(2) {
        let (m0, v0) = w[0];
        let (m1, v1) = w[1];
        if m <= m1 {
            // Log-linear interpolation.
            let t = f64::from(m - m0) / f64::from(m1 - m0);
            return (v0.ln() + t * (v1.ln() - v0.ln())).exp();
        }
    }
    anchors[anchors.len() - 1].1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u32) -> Day {
        Day::from_ymd(y, m, 15)
    }

    #[test]
    fn usd_is_identity() {
        let fx = FxTable::new();
        assert_eq!(fx.to_usd(123.45, CurrencyCode::Usd, d(2015, 6)), 123.45);
    }

    #[test]
    fn gbp_is_worth_more_than_eur_throughout() {
        let fx = FxTable::new();
        for y in 2009..=2018 {
            let gbp = fx.to_usd(1.0, CurrencyCode::Gbp, d(y, 6));
            let eur = fx.to_usd(1.0, CurrencyCode::Eur, d(y, 6));
            assert!(gbp > eur, "{y}: GBP {gbp} vs EUR {eur}");
            assert!((1.0..2.2).contains(&gbp));
            assert!((0.9..1.7).contains(&eur));
        }
    }

    #[test]
    fn fiat_rates_decline_over_the_decade() {
        let fx = FxTable::new();
        assert!(
            fx.to_usd(1.0, CurrencyCode::Gbp, d(2008, 6))
                > fx.to_usd(1.0, CurrencyCode::Gbp, d(2018, 6))
        );
    }

    #[test]
    fn btc_trajectory_has_bubble_and_crash() {
        let fx = FxTable::new();
        let b2012 = fx.to_usd(1.0, CurrencyCode::Btc, d(2012, 1));
        let b2014 = fx.to_usd(1.0, CurrencyCode::Btc, d(2014, 1));
        let peak = fx.to_usd(1.0, CurrencyCode::Btc, d(2017, 12));
        let crash = fx.to_usd(1.0, CurrencyCode::Btc, d(2019, 1));
        assert!(b2012 < 5.0);
        assert!(b2014 > 300.0);
        assert!(peak > 10_000.0);
        assert!(crash < peak / 3.0);
    }

    #[test]
    fn out_of_range_dates_clamp() {
        let fx = FxTable::new();
        let early = fx.to_usd(1.0, CurrencyCode::Gbp, Day::from_ymd(2000, 1, 1));
        let first = fx.to_usd(1.0, CurrencyCode::Gbp, d(2008, 1));
        assert_eq!(early, first);
    }

    #[test]
    fn conversion_is_date_sensitive() {
        let fx = FxTable::new();
        let a = fx.to_usd(100.0, CurrencyCode::Btc, d(2013, 1));
        let b = fx.to_usd(100.0, CurrencyCode::Btc, d(2018, 1));
        assert!(b > a * 100.0);
    }
}
