//! Pack and preview fabrication: hosted web objects, the reverse-search
//! index, Wayback snapshots, and planted hash-list images.
//!
//! Calibration targets (paper §4.2/§4.3/§4.5):
//!
//! * linked TOPs carry ≈8.7 preview links and ≈2.2 pack links (Tables 3/4
//!   row sums over 774 linked TOPs);
//! * packs hold ≈89 images each (111 288 images / 1 255 packs) with heavy
//!   duplication across packs (53 948 unique of 117 076 files; 127 images
//!   in ≥20 packs);
//! * pack images match reverse search ≈74% of the time, previews ≈49%
//!   (previews are edited harder), with ≈75–80% of matched images seen
//!   online before the forum post;
//! * ≈16% of packs are zero-match (self-made or tool-mirrored), strongly
//!   concentrated in a few producer actors;
//! * a small number of pack images sit on the CSAM hash list (36 at paper
//!   scale), clustered in a few threads.

use crate::config::WorldConfig;
use crate::truth::PackKind;
use imagesim::{ImageClass, ImageSpec, RobustHash, Transform};
use rand::rngs::StdRng;
use rand::Rng;
use revsearch::{IndexedImage, ReverseIndex, Wayback};
use safety::{HashList, HashListEntry, Severity};
use synthrand::{Day, LogNormal};
use websim::{
    HostedObject, LinkState, OriginRegistry, Site, SiteCatalog, SiteKind, StoredImage, WebStore,
};

/// A source image as it exists "on the web": the pristine spec, where it
/// lives, when it came online, and on how many sites.
#[derive(Debug, Clone)]
pub struct SourceImage {
    /// The pristine image.
    pub spec: ImageSpec,
    /// Whether reverse search has indexed any copy of it.
    pub indexed: bool,
    /// Number of indexed copies (sites).
    pub n_sites: u32,
    /// Date the earliest copy was crawled.
    pub first_crawled: Day,
}

/// Content attached to one TOP's initial post.
#[derive(Debug, Clone)]
pub struct TopContent {
    /// Lines to embed in the post body (preview + pack URLs).
    pub url_lines: Vec<String>,
    /// Pack records to register once the thread id is known:
    /// `(url, model, kind, n_images)`.
    pub packs: Vec<(textkit::Url, u32, PackKind, u32)>,
    /// Whether this TOP contains planted hash-list material.
    pub has_csam: bool,
}

/// Fabricates packs, previews and their web presence.
pub struct PackFactory<'w> {
    catalog: &'w SiteCatalog,
    origins: &'w OriginRegistry,
    web: &'w mut WebStore,
    index: &'w mut ReverseIndex,
    wayback: &'w mut Wayback,
    hashlist: &'w mut HashList,
    /// Probability that a TOP carries open links at all (paper: 18.7%).
    pub p_linked: f64,
    /// Remaining hash-list images to plant.
    csam_budget: u32,
    /// Planted hash-list specs (recorded into ground truth by the caller).
    pub csam_specs: Vec<ImageSpec>,
    /// Next fresh model id.
    next_model: u32,
    /// Next hash-list case id.
    next_case: u32,
    /// Expected number of TOP calls over the whole build (drives the
    /// adaptive planting rate so the CSAM budget always exhausts).
    expected_tops: u32,
    /// TOP calls made so far.
    tops_made: u32,
    /// Shared pool of already-published source images (drives saturation).
    shared_pool: Vec<SourceImage>,
    /// Running counter for unique URL paths.
    url_counter: u64,
    /// Dataset end (crawl dates must not exceed it).
    end: Day,
}

/// Mean images per pack (111 288 / 1 255 ≈ 89).
const PACK_SIZE_MEAN: f64 = 89.0;

impl<'w> PackFactory<'w> {
    /// Creates the factory.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: &WorldConfig,
        expected_tops: u32,
        catalog: &'w SiteCatalog,
        origins: &'w OriginRegistry,
        web: &'w mut WebStore,
        index: &'w mut ReverseIndex,
        wayback: &'w mut Wayback,
        hashlist: &'w mut HashList,
    ) -> PackFactory<'w> {
        PackFactory {
            catalog,
            origins,
            web,
            index,
            wayback,
            hashlist,
            p_linked: 0.187,
            csam_budget: config.csam_images,
            csam_specs: Vec::new(),
            next_model: 1,
            next_case: 1,
            expected_tops: expected_tops.max(1),
            tops_made: 0,
            shared_pool: Vec::new(),
            url_counter: 0,
            end: config.dataset_end(),
        }
    }

    /// Number of hash-list images still unplanted.
    pub fn csam_remaining(&self) -> u32 {
        self.csam_budget
    }

    fn fresh_url(&mut self, rng: &mut StdRng, kind: SiteKind) -> (textkit::Url, &'static Site) {
        let site = self.catalog.sample(kind, rng);
        self.url_counter += 1;
        let path = match kind {
            SiteKind::ImageSharing => format!("/i/{:06x}", self.url_counter),
            SiteKind::CloudStorage => format!("/f/{:06x}", self.url_counter),
        };
        (textkit::Url::new(site.domain, path), site)
    }

    /// Publishes a fresh source image to the synthetic web: decides whether
    /// reverse search knows it, on how many sites, and when.
    ///
    /// `posted` is the forum date it will first be shared; `seen_before`
    /// controls whether its earliest crawl predates that.
    fn publish_source(
        &mut self,
        rng: &mut StdRng,
        spec: ImageSpec,
        posted: Day,
        force_unindexed: bool,
    ) -> SourceImage {
        // ~6% of stolen images come from corners of the web the index has
        // not crawled (private profiles etc.).
        let indexed = !force_unindexed && rng.gen_bool(0.94);
        if !indexed {
            return SourceImage {
                spec,
                indexed: false,
                n_sites: 0,
                first_crawled: posted,
            };
        }
        // Site count: log-normal with median 4 and σ=1.5 → mean ≈ 12
        // (Table 5 ratios of 12.7/17.3 matches per matched image), with a
        // tail reaching the paper's maxima (642 packs / 1 969 previews).
        let n_sites = (LogNormal::from_median(4.0, 1.5).sample(rng) as u32).clamp(1, 1_900);
        // The image came online before it was stolen; ~75-80% of matched
        // images have their earliest crawl before the forum post.
        let seen_before = rng.gen_bool(0.70);
        let first_crawled = if seen_before {
            Day(posted.0.saturating_sub(rng.gen_range(30..1500)))
        } else {
            // Crawled only after the forum post (TinEye lag).
            Day((posted.0 + rng.gen_range(10..700)).min(self.end.0))
        };
        let hash = RobustHash::of(&spec.render());
        for s in 0..n_sites {
            let domain_idx = self.origins.sample_source(rng) as u32;
            let domain = &self.origins.get(domain_idx as usize).name;
            let url = format!(
                "https://{domain}/p/{:x}-{s}",
                spec.variant ^ u64::from(spec.model) << 20
            );
            // Copies are crawled at or after the first crawl.
            let crawled = Day(
                (first_crawled.0 + if s == 0 { 0 } else { rng.gen_range(0..600) }).min(self.end.0),
            );
            self.index.add(IndexedImage {
                hash,
                domain: domain_idx,
                url: url.clone(),
                crawled,
            });
            // Wayback archives a subset of those URLs.
            if rng.gen_bool(0.4) {
                self.wayback
                    .record(&url, crawled.plus_days(rng.gen_range(0..90)));
            }
        }
        SourceImage {
            spec,
            indexed: true,
            n_sites,
            first_crawled,
        }
    }

    /// Draws the transform an uploader applies to a *pack* image.
    fn pack_transform(&self, rng: &mut StdRng, kind: PackKind) -> Transform {
        match kind {
            PackKind::MirroredAll => Transform::MirrorHorizontal,
            PackKind::SelfMade | PackKind::Standard | PackKind::Saturated => {
                match rng.gen_range(0..10) {
                    0..=4 => Transform::Identity,
                    5 | 6 => Transform::Noise {
                        amplitude: rng.gen_range(4..10),
                        seed: rng.gen(),
                    },
                    7 => Transform::Brightness(rng.gen_range(-20..20)),
                    8 => Transform::Watermark { seed: rng.gen() },
                    _ => Transform::MirrorHorizontal,
                }
            }
        }
    }

    /// Draws the (heavier) transform applied to a *preview* image. The
    /// paper finds previews match only 49% vs 74% for pack images because
    /// actors watermark/mirror the showcase copies.
    fn preview_transform(&self, rng: &mut StdRng, kind: PackKind) -> Transform {
        match kind {
            PackKind::MirroredAll => Transform::MirrorHorizontal,
            _ => match rng.gen_range(0..10) {
                0..=2 => Transform::Identity,
                3 | 4 => Transform::Watermark { seed: rng.gen() },
                5 => Transform::CropMargin {
                    percent: rng.gen_range(4..14),
                },
                6 => Transform::OcclusionBar { seed: rng.gen() },
                _ => Transform::MirrorHorizontal,
            },
        }
    }

    /// Builds the contents of one pack: mostly photos of one model,
    /// drawing from the shared pool for saturated material.
    fn build_pack_images(
        &mut self,
        rng: &mut StdRng,
        model: u32,
        kind: PackKind,
        posted: Day,
    ) -> (Vec<SourceImage>, Vec<StoredImage>) {
        let n = ((PACK_SIZE_MEAN * (0.3 + 1.4 * rng.gen::<f64>())) as u32).clamp(12, 260);
        let share_from_pool = match kind {
            PackKind::Saturated => 0.6,
            PackKind::Standard => 0.35,
            PackKind::SelfMade | PackKind::MirroredAll => 0.0,
        };
        let mut sources = Vec::with_capacity(n as usize);
        let mut stored = Vec::with_capacity(n as usize);
        for i in 0..n {
            let reuse = !self.shared_pool.is_empty() && rng.gen_bool(share_from_pool);
            let source = if reuse {
                // Popularity-biased reuse: earlier pool entries are the
                // most-shared material.
                let u: f64 = rng.gen();
                let idx = ((u * u * u) * self.shared_pool.len() as f64) as usize;
                self.shared_pool[idx.min(self.shared_pool.len() - 1)].clone()
            } else {
                let class = match i % 10 {
                    0..=2 => ImageClass::ModelDressed,
                    3..=6 => ImageClass::ModelNude,
                    _ => ImageClass::ModelSexual,
                };
                let spec = ImageSpec::model_photo(class, model, rng.gen());
                let src = self.publish_source(rng, spec, posted, kind == PackKind::SelfMade);
                self.shared_pool.push(src.clone());
                src
            };
            let transform = self.pack_transform(rng, kind);
            stored.push(StoredImage {
                spec: source.spec,
                transform,
            });
            sources.push(source);
        }
        (sources, stored)
    }

    /// Plants hash-list images into a pack's stored images, registering
    /// them with the hash list. Returns the planted specs.
    fn plant_csam(&mut self, rng: &mut StdRng, stored: &mut Vec<StoredImage>) -> Vec<ImageSpec> {
        if self.csam_budget == 0 {
            return Vec::new();
        }
        // One planted image per pack: the paper's 36 matches came from 36
        // different threads.
        let take = 1;
        let mut planted = Vec::new();
        for _ in 0..take {
            // Dedicated model-id space so planted images never collide
            // with ordinary material.
            let spec = ImageSpec::model_photo(
                ImageClass::ModelNude,
                9_000_000 + self.next_case,
                u64::from(self.next_case) * 7 + 3,
            );
            // Two verifiable cases exist (paper: a 17-year-old victim with
            // 60 URLs and one young child with 1); other entries are
            // non-actionable.
            let verifiable = !self.next_case.is_multiple_of(3);
            let severity = verifiable.then_some(match self.next_case % 5 {
                0 | 1 => Severity::A,
                4 => Severity::C,
                _ => Severity::B,
            });
            self.hashlist.add(HashListEntry {
                hash: RobustHash::of(&spec.render()),
                case: self.next_case,
                verifiable,
                severity,
            });
            // The planted copy is shared essentially unmodified (mirroring
            // would evade the list, which the measurement relies on not
            // happening for these counts).
            stored.push(StoredImage {
                spec,
                transform: Transform::Identity,
            });
            // Stolen material circulates: reverse search knows further
            // copies, which the pipeline reports alongside the download
            // URL. The paper's 61 actioned URLs were dominated by a single
            // victim (60 URLs), so web presence concentrates on case 1.
            let hash = RobustHash::of(&spec.render());
            let n_copies = if self.next_case == 1 {
                30 + rng.gen_range(0..12)
            } else {
                rng.gen_range(0..2u32)
            };
            for c in 0..n_copies {
                let domain_idx = self.origins.sample_source(rng) as u32;
                let domain = &self.origins.get(domain_idx as usize).name;
                self.index.add(revsearch::IndexedImage {
                    hash,
                    domain: domain_idx,
                    url: format!("https://{domain}/p/c{}-{c}", self.next_case),
                    crawled: Day(self.end.0.saturating_sub(rng.gen_range(100..1200))),
                });
            }
            planted.push(spec);
            self.next_case += 1;
            self.csam_budget -= 1;
        }
        planted
    }

    /// Link-state draw for a hosted object on `site`. Image hosts enforce
    /// their no-nudity terms aggressively (the paper found ~40% of preview
    /// downloads were removal banners or non-preview content); cloud hosts
    /// mostly lose links to rot.
    fn link_state(&self, rng: &mut StdRng, site: &Site) -> LinkState {
        let (tos_mul, rot_mul) = match site.kind {
            SiteKind::ImageSharing => (0.9, 0.45),
            SiteKind::CloudStorage => (0.45, 0.26),
        };
        if rng.gen_bool((site.tos_removal * tos_mul).min(1.0)) {
            LinkState::TosRemoved
        } else if rng.gen_bool((site.link_rot * rot_mul).min(1.0)) {
            LinkState::Dead
        } else {
            LinkState::Live
        }
    }

    /// Fabricates the web content for one TOP authored on `posted`.
    ///
    /// `zero_match_producer` marks authors who flip whole packs through
    /// mirroring tools (the paper's 47-zero-match-pack actor).
    pub fn make_top_content(
        &mut self,
        rng: &mut StdRng,
        posted: Day,
        zero_match_producer: bool,
        allow_csam: bool,
    ) -> TopContent {
        self.tops_made += 1;
        if !rng.gen_bool(self.p_linked) {
            // Reply-gated or paid TOP: no open links.
            return TopContent {
                url_lines: vec!["Reply to this thread to unlock the download link.".into()],
                packs: Vec::new(),
                has_csam: false,
            };
        }

        // The paper's most prolific zero-match actor had 47 of 100 packs
        // unmatched — producers flip *about half* their packs.
        let force_zero = zero_match_producer && rng.gen_bool(0.5);
        let kind = if force_zero {
            if rng.gen_bool(0.6) {
                PackKind::MirroredAll
            } else {
                PackKind::SelfMade
            }
        } else {
            match rng.gen_range(0..100) {
                0..=54 => PackKind::Standard,
                55..=89 => PackKind::Saturated,
                90..=94 => PackKind::MirroredAll,
                _ => PackKind::SelfMade,
            }
        };
        let model = self.next_model;
        self.next_model += 1;

        let (sources, mut stored) = self.build_pack_images(rng, model, kind, posted);
        // Adaptive planting: spread the hash-list budget over the expected
        // remaining linked TOPs, forcing p → 1 near the end so the budget
        // always exhausts when enough qualifying packs exist.
        let remaining_tops =
            f64::from(self.expected_tops.saturating_sub(self.tops_made - 1).max(1));
        let expected_linked_left = (remaining_tops * self.p_linked).max(1.0);
        let p_plant = (f64::from(self.csam_budget) * 1.6 / expected_linked_left).clamp(0.0, 1.0);
        let planted = if allow_csam
            && matches!(kind, PackKind::Standard | PackKind::Saturated)
            && self.csam_budget > 0
            && rng.gen_bool(p_plant)
        {
            self.plant_csam(rng, &mut stored)
        } else {
            Vec::new()
        };
        let has_csam = !planted.is_empty();
        self.csam_specs.extend(planted);

        let mut url_lines = Vec::new();
        let mut packs = Vec::new();

        // Pack links: 1–4 mirrors of the same archive on cloud hosts
        // (Tables 3/4: ≈2.2 cloud links per linked TOP).
        let n_pack_links = 1 + synthrand::skewed_count(rng, 0, 4);
        for _ in 0..n_pack_links {
            let (url, site) = self.fresh_url(rng, SiteKind::CloudStorage);
            let state = self.link_state(rng, site);
            self.web.host(
                url.clone(),
                HostedObject::Pack {
                    images: stored.clone(),
                },
                posted,
                state,
            );
            url_lines.push(format!("Download: {}", url.to_https()));
            packs.push((url, model, kind, stored.len() as u32));
        }

        // Preview links: ≈8.7 per linked TOP, hosted on image-sharing
        // sites, with heavier edits. Preview selection favours the pack's
        // most-shared source images.
        let n_previews = rng.gen_range(4..14usize);
        let mut by_popularity: Vec<&SourceImage> = sources.iter().collect();
        by_popularity.sort_by_key(|s| std::cmp::Reverse(s.n_sites));
        for _ in 0..n_previews {
            let (url, site) = self.fresh_url(rng, SiteKind::ImageSharing);
            let state = self.link_state(rng, site);
            // ~12% of "preview" links actually show a screenshot of the
            // pack's directory listing (§4.4 observes these among the
            // downloads that were not model previews).
            let stored = if rng.gen_bool(0.18) {
                self.url_counter += 1;
                StoredImage::pristine(ImageSpec::of(
                    ImageClass::DirectoryThumbnails,
                    self.url_counter,
                ))
            } else {
                // Mild popularity bias: previews come from the pack's
                // better-known images, but not exclusively the top few
                // (Table 5: preview ratio 17.3 vs pack ratio 12.7).
                let pick_from = (by_popularity.len() * 9 / 20).max(1);
                let src = by_popularity[rng.gen_range(0..pick_from)];
                StoredImage {
                    spec: src.spec,
                    transform: self.preview_transform(rng, kind),
                }
            };
            self.web
                .host(url.clone(), HostedObject::Image(stored), posted, state);
            url_lines.push(format!("Preview: {}", url.to_https()));
        }

        TopContent {
            url_lines,
            packs,
            has_csam,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthrand::rng_from_seed;

    struct Fixture {
        catalog: SiteCatalog,
        origins: OriginRegistry,
        web: WebStore,
        index: ReverseIndex,
        wayback: Wayback,
        hashlist: HashList,
        config: WorldConfig,
    }

    impl Fixture {
        fn new() -> Fixture {
            let mut rng = rng_from_seed(77);
            Fixture {
                catalog: SiteCatalog::new(),
                origins: OriginRegistry::generate(
                    &mut rng,
                    200,
                    Day::from_ymd(2006, 1, 1),
                    Day::from_ymd(2019, 3, 1),
                ),
                web: WebStore::new(),
                index: ReverseIndex::new(),
                wayback: Wayback::new(),
                hashlist: HashList::new(),
                config: WorldConfig {
                    csam_images: 4,
                    ..WorldConfig::test_scale(77)
                },
            }
        }
    }

    #[test]
    fn linked_tops_host_packs_and_previews() {
        let mut fx = Fixture::new();
        let mut factory = PackFactory::new(
            &fx.config,
            40,
            &fx.catalog,
            &fx.origins,
            &mut fx.web,
            &mut fx.index,
            &mut fx.wayback,
            &mut fx.hashlist,
        );
        factory.p_linked = 1.0; // force links for the test
        let mut rng = rng_from_seed(1);
        let content = factory.make_top_content(&mut rng, Day::from_ymd(2015, 5, 1), false, false);
        assert!(!content.packs.is_empty());
        assert!(content.url_lines.iter().any(|l| l.contains("Download:")));
        assert!(content.url_lines.iter().any(|l| l.contains("Preview:")));
        assert!(!fx.web.is_empty());
        assert!(!fx.index.is_empty());
    }

    #[test]
    fn unlinked_tops_gate_behind_replies() {
        let mut fx = Fixture::new();
        let mut factory = PackFactory::new(
            &fx.config,
            40,
            &fx.catalog,
            &fx.origins,
            &mut fx.web,
            &mut fx.index,
            &mut fx.wayback,
            &mut fx.hashlist,
        );
        factory.p_linked = 0.0;
        let mut rng = rng_from_seed(2);
        let content = factory.make_top_content(&mut rng, Day::from_ymd(2015, 5, 1), false, false);
        assert!(content.packs.is_empty());
        assert_eq!(content.url_lines.len(), 1);
        assert!(content.url_lines[0].contains("Reply"));
    }

    #[test]
    fn csam_planting_respects_budget_and_registers_hashes() {
        let mut fx = Fixture::new();
        let mut factory = PackFactory::new(
            &fx.config,
            40,
            &fx.catalog,
            &fx.origins,
            &mut fx.web,
            &mut fx.index,
            &mut fx.wayback,
            &mut fx.hashlist,
        );
        factory.p_linked = 1.0;
        let mut rng = rng_from_seed(3);
        let mut planted_total = 0;
        for i in 0..40 {
            let c = factory.make_top_content(
                &mut rng,
                Day::from_ymd(2016, 1, 1).plus_days(i),
                false,
                true,
            );
            if c.has_csam {
                planted_total += 1;
            }
        }
        assert_eq!(factory.csam_remaining(), 0);
        assert_eq!(factory.csam_specs.len(), 4);
        assert!(planted_total >= 1);
        assert_eq!(fx.hashlist.len(), 4);
    }

    #[test]
    fn zero_match_producers_flip_about_half_their_packs() {
        let mut fx = Fixture::new();
        let mut factory = PackFactory::new(
            &fx.config,
            40,
            &fx.catalog,
            &fx.origins,
            &mut fx.web,
            &mut fx.index,
            &mut fx.wayback,
            &mut fx.hashlist,
        );
        factory.p_linked = 1.0;
        let mut rng = rng_from_seed(4);
        let mut zero = 0;
        let mut total = 0;
        for i in 0..30 {
            let content = factory.make_top_content(
                &mut rng,
                Day::from_ymd(2016, 1, 1).plus_days(i),
                true,
                false,
            );
            for &(_, _, kind, _) in &content.packs {
                total += 1;
                if matches!(kind, PackKind::MirroredAll | PackKind::SelfMade) {
                    zero += 1;
                }
            }
        }
        // Producers flip ~50% (plus the base ~10% from the normal draw).
        let share = f64::from(zero) / f64::from(total);
        assert!((0.3..0.85).contains(&share), "zero-match share {share}");
    }

    #[test]
    fn index_and_wayback_dates_stay_in_range() {
        let mut fx = Fixture::new();
        let end = fx.config.dataset_end();
        let mut factory = PackFactory::new(
            &fx.config,
            40,
            &fx.catalog,
            &fx.origins,
            &mut fx.web,
            &mut fx.index,
            &mut fx.wayback,
            &mut fx.hashlist,
        );
        factory.p_linked = 1.0;
        let mut rng = rng_from_seed(5);
        for _ in 0..5 {
            factory.make_top_content(&mut rng, Day::from_ymd(2018, 12, 1), false, false);
        }
        for i in 0..fx.index.len() {
            assert!(fx.index.entry(i as u32).crawled <= end);
        }
    }

    #[test]
    fn pack_sizes_hover_around_paper_mean() {
        let mut fx = Fixture::new();
        let mut factory = PackFactory::new(
            &fx.config,
            40,
            &fx.catalog,
            &fx.origins,
            &mut fx.web,
            &mut fx.index,
            &mut fx.wayback,
            &mut fx.hashlist,
        );
        factory.p_linked = 1.0;
        let mut rng = rng_from_seed(6);
        let mut sizes = Vec::new();
        for _ in 0..40 {
            let c = factory.make_top_content(&mut rng, Day::from_ymd(2015, 1, 1), false, false);
            for (_, _, _, n) in c.packs {
                sizes.push(n as f64);
            }
        }
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        // 111 288 / 1 255 ≈ 89 images per pack.
        assert!((60.0..120.0).contains(&mean), "mean pack size {mean}");
    }
}
