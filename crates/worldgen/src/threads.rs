//! eWhoring thread generation.
//!
//! Every forum's eWhoring conversations are generated from per-actor
//! activity plans: each actor contributes dated posting events inside
//! their eWhoring window; events are globally time-ordered and dealt into
//! concurrently-open threads (a bounded pool of "open slots"), so thread
//! contents are chronological and thread lifetimes overlap realistically.
//! Thread roles (TOP / request / tutorial / earnings / discussion / trade)
//! are drawn from per-forum quotas calibrated to Table 1.

use crate::actors::ActorPlan;
use crate::config::{ForumProfile, WorldConfig};
use crate::finance::ProofFactory;
use crate::headings;
use crate::packs::PackFactory;
use crate::truth::{GroundTruth, PackRecord, ThreadRole};
use crimebb::{ActorId, BoardId, CorpusBuilder, PostId, ThreadId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;
use synthrand::{Day, LogNormal};

/// Inputs that stay fixed across one forum's generation.
pub struct ForumThreadGen<'a> {
    /// The forum's calibration profile.
    pub profile: &'a ForumProfile,
    /// World config (scale, seeds).
    pub config: &'a WorldConfig,
    /// Board that hosts the forum's eWhoring threads.
    pub board: BoardId,
    /// Actors of this forum with their activity plans.
    pub actors: &'a [(ActorId, ActorPlan)],
    /// Actors who post proof-of-earnings content.
    pub proof_posters: &'a HashSet<ActorId>,
    /// Actors whose packs are systematically zero-match.
    pub zero_match_producers: &'a HashSet<ActorId>,
    /// The pack-sharer pool, most-active first, with each sharer's
    /// eWhoring window. TOP authorship concentrates here (paper: 2 523
    /// actors offered packs; 63 shared ≥6; one shared ~100), but a sharer
    /// is only credited with a TOP dated inside their own window so the
    /// Table 8 before/after spans stay intact. Empty disables reassignment.
    pub sharer_pool: &'a [(ActorId, Day, Day)],
}

/// Mean eWhoring posts per actor across the whole dataset (Table 1 totals).
const GLOBAL_POSTS_PER_ACTOR: f64 = 626_784.0 / 72_982.0;

/// One open thread slot.
struct Slot {
    thread: ThreadId,
    role: ThreadRole,
    remaining: u32,
    post_ids: Vec<PostId>,
}

/// Generates all eWhoring threads and posts for one forum. Returns the
/// created thread ids.
pub fn generate_forum_threads(
    rng: &mut StdRng,
    builder: &mut CorpusBuilder,
    truth: &mut GroundTruth,
    packs: &mut PackFactory<'_>,
    proofs: &mut ProofFactory<'_>,
    input: &ForumThreadGen<'_>,
) -> Vec<ThreadId> {
    let events = build_events(rng, input);
    if events.is_empty() {
        return Vec::new();
    }
    let n_threads = input
        .config
        .scaled(input.profile.threads, 1)
        .min(events.len() as u32) as usize;
    let roles = role_sequence(rng, input, n_threads);
    let sizes = thread_sizes(rng, &roles, events.len());
    let sharer_zipf =
        (input.sharer_pool.len() > 1).then(|| synthrand::Zipf::new(input.sharer_pool.len(), 0.75));

    let mut created = Vec::with_capacity(n_threads);
    let pool = 48.min(n_threads.max(1));
    let mut slots: Vec<Option<Slot>> = (0..pool).map(|_| None).collect();
    let mut next_thread = 0usize;

    for (idx, &(day, actor)) in events.iter().enumerate() {
        let remaining_events = events.len() - idx;
        let threads_left = n_threads - next_thread;
        let must_open = threads_left >= remaining_events && threads_left > 0;
        let empty_slot = slots.iter().position(Option::is_none);

        let open_new = must_open || (next_thread < n_threads && empty_slot.is_some());
        if open_new {
            let slot_idx = empty_slot.unwrap_or_else(|| rng.gen_range(0..slots.len()));
            let role = roles[next_thread];
            // Pack offering concentrates in a sharer pool: one mega-sharer
            // plus a Zipf tail (paper §4.5/§6.3).
            let author = if role == ThreadRole::Top && !input.sharer_pool.is_empty() {
                let mut chosen = actor;
                for attempt in 0..6 {
                    let (candidate, lo, hi) = if attempt == 0 && rng.gen_bool(0.10) {
                        input.sharer_pool[0]
                    } else if let Some(z) = &sharer_zipf {
                        input.sharer_pool[z.sample_index(rng)]
                    } else {
                        break;
                    };
                    if day >= lo && day <= hi {
                        chosen = candidate;
                        break;
                    }
                }
                chosen
            } else {
                actor
            };
            let thread = open_thread(rng, builder, truth, packs, proofs, input, role, author, day);
            created.push(thread);
            slots[slot_idx] = Some(Slot {
                thread,
                role,
                remaining: sizes[next_thread].saturating_sub(1),
                post_ids: vec![builder_last_post(builder)],
            });
            next_thread += 1;
            continue;
        }

        // Reply into a random open slot.
        let occupied: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_some().then_some(i))
            .collect();
        if occupied.is_empty() {
            // All threads opened and all size budgets consumed but events
            // remain (rounding drift): reopen the most recent thread.
            let thread = *created.last().expect("at least one thread opened");
            let role = truth.role(thread).expect("role recorded at open");
            slots[0] = Some(Slot {
                thread,
                role,
                remaining: 4,
                post_ids: builder.posts_in(thread).to_vec(),
            });
        }
        let occupied: Vec<usize> = if occupied.is_empty() {
            vec![0]
        } else {
            occupied
        };
        let slot_idx = occupied[rng.gen_range(0..occupied.len())];
        let slot = slots[slot_idx].as_mut().expect("occupied");
        let quote =
            (rng.gen_bool(0.3)).then(|| slot.post_ids[rng.gen_range(0..slot.post_ids.len())]);
        let mut body = headings::reply_body(rng, slot.role == ThreadRole::Top).to_string();
        // Proof-of-earnings content arrives mostly as replies in earnings
        // threads ("users regularly post in response to these threads").
        if slot.role == ThreadRole::Earnings {
            if input.proof_posters.contains(&actor) && rng.gen_bool(0.7) {
                for line in proofs.make_proof_lines(rng, truth, actor, day, 6) {
                    body.push('\n');
                    body.push_str(&line);
                }
            } else if rng.gen_bool(0.04) {
                body.push('\n');
                body.push_str(&proofs.make_offtopic_line(rng, day));
            }
        }
        let has_proof = body.contains("Proof:");
        let post = builder.add_post(slot.thread, actor, day, body, quote);
        if has_proof {
            truth.proof_posts.push(post);
        }
        slot.post_ids.push(post);
        slot.remaining = slot.remaining.saturating_sub(1);
        if slot.remaining == 0 {
            slots[slot_idx] = None;
        }
    }
    created
}

fn builder_last_post(builder: &CorpusBuilder) -> PostId {
    PostId(builder.post_count() as u32 - 1)
}

/// Builds the forum's time-ordered (date, actor) posting events.
fn build_events(rng: &mut StdRng, input: &ForumThreadGen<'_>) -> Vec<(Day, ActorId)> {
    let factor =
        (f64::from(input.profile.posts) / f64::from(input.profile.actors)) / GLOBAL_POSTS_PER_ACTOR;
    let mut events = Vec::new();
    for &(actor, plan) in input.actors {
        let n = ((f64::from(plan.n_ewhoring) * factor).round() as u32).max(1);
        events.push((plan.first_ew, actor));
        if n >= 2 {
            events.push((plan.last_ew.max(plan.first_ew), actor));
            for _ in 2..n {
                events.push((
                    Day::sample_between(rng, plan.first_ew, plan.last_ew.max(plan.first_ew)),
                    actor,
                ));
            }
        }
    }
    events.sort_unstable_by_key(|&(d, a)| (d, a));
    events
}

/// Draws the role of every thread, respecting the forum's TOP quota.
fn role_sequence(
    rng: &mut StdRng,
    input: &ForumThreadGen<'_>,
    n_threads: usize,
) -> Vec<ThreadRole> {
    let min_tops = u32::from(input.profile.tops > 0);
    let n_tops = input
        .config
        .scaled(input.profile.tops, min_tops)
        .min(n_threads as u32) as usize;
    let trade_share = if input.profile.name == "OGUsers" {
        0.50
    } else {
        0.02
    };
    let mut roles = Vec::with_capacity(n_threads);
    roles.resize(n_tops, ThreadRole::Top);
    for _ in n_tops..n_threads {
        let u: f64 = rng.gen();
        let role = if u < trade_share {
            ThreadRole::Trade
        } else if u < trade_share + 0.26 {
            ThreadRole::Request
        } else if u < trade_share + 0.34 {
            ThreadRole::Tutorial
        } else if u < trade_share + 0.43 {
            ThreadRole::Earnings
        } else {
            ThreadRole::Discussion
        };
        roles.push(role);
    }
    roles.shuffle(rng);
    roles
}

/// Draws per-thread size targets summing ≈ the event budget. TOPs are
/// "typically popular threads with several replies", hence the boost.
fn thread_sizes(rng: &mut StdRng, roles: &[ThreadRole], n_events: usize) -> Vec<u32> {
    let dist = LogNormal::from_median(4.0, 1.1);
    let raw: Vec<f64> = roles
        .iter()
        .map(|r| {
            let base = dist.sample(rng);
            if *r == ThreadRole::Top {
                base * 2.6
            } else {
                base
            }
        })
        .collect();
    let total: f64 = raw.iter().sum();
    let budget = n_events.saturating_sub(roles.len()) as f64;
    raw.iter()
        .map(|&x| 1 + ((x / total) * budget).round() as u32)
        .collect()
}

/// Opens one thread: heading, role bookkeeping, initial post (with pack or
/// proof content where the role calls for it).
#[allow(clippy::too_many_arguments)]
fn open_thread(
    rng: &mut StdRng,
    builder: &mut CorpusBuilder,
    truth: &mut GroundTruth,
    packs: &mut PackFactory<'_>,
    proofs: &mut ProofFactory<'_>,
    input: &ForumThreadGen<'_>,
    role: ThreadRole,
    author: ActorId,
    day: Day,
) -> ThreadId {
    let force_kw = !input.profile.has_ewhoring_board;
    let heading = headings::heading(rng, role, force_kw);
    let thread = builder.add_thread(input.board, author, heading, day);
    truth.thread_roles.insert(thread, role);

    let mut url_lines = Vec::new();
    match role {
        ThreadRole::Top if !input.profile.tops_removed_by_mods => {
            let zero_match = input.zero_match_producers.contains(&author);
            let content = packs.make_top_content(rng, day, zero_match, true);
            for (url, model, kind, n_images) in content.packs {
                truth.packs.push(PackRecord {
                    thread,
                    actor: author,
                    url,
                    model,
                    kind,
                    n_images,
                    posted: day,
                });
            }
            if content.has_csam {
                truth.csam_threads.push(thread);
            }
            url_lines = content.url_lines;
            // Some pack sellers advertise with proof ("proof" + trading
            // terms — the §5.1 secondary query).
            if input.proof_posters.contains(&author) && rng.gen_bool(0.10) {
                url_lines.push("Selling mentoring too, proof of my earnings:".into());
                url_lines.extend(proofs.make_proof_lines(rng, truth, author, day, 1));
            }
        }
        ThreadRole::Earnings if input.proof_posters.contains(&author) && rng.gen_bool(0.7) => {
            url_lines = proofs.make_proof_lines(rng, truth, author, day, 3);
        }
        _ => {}
    }
    let body = headings::initial_body(rng, role, &url_lines);
    let has_proof = body.contains("Proof:");
    let post = builder.add_post(thread, author, day, body, None);
    if has_proof {
        truth.proof_posts.push(post);
    }
    thread
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fx::FxTable;
    use crimebb::BoardCategory;
    use synthrand::rng_from_seed;
    use websim::{OriginRegistry, SiteCatalog, WebStore};

    fn tiny_world_threads(seed: u64) -> (crimebb::Corpus, GroundTruth, Vec<ThreadId>, WorldConfig) {
        let config = WorldConfig::test_scale(seed);
        let mut rng = rng_from_seed(seed);
        let catalog = SiteCatalog::new();
        let origins = OriginRegistry::generate(
            &mut rng,
            100,
            Day::from_ymd(2006, 1, 1),
            Day::from_ymd(2019, 3, 1),
        );
        let fx = FxTable::new();
        let mut web = WebStore::new();
        let mut web2 = WebStore::new();
        let mut index = revsearch::ReverseIndex::new();
        let mut wayback = revsearch::Wayback::new();
        let mut hashlist = safety::HashList::new();
        let mut truth = GroundTruth::default();
        let mut builder = CorpusBuilder::new();

        let profile = &crate::config::FORUM_PROFILES[0]; // Hackforums
        let forum = builder.add_forum(profile.name);
        let board = builder.add_board(forum, "eWhoring", BoardCategory::EWhoring);
        let forum_first = Day::from_ymd(2008, 11, 1);
        let n_actors = config.scaled(profile.actors, 10);
        let mut actors = Vec::new();
        for i in 0..n_actors {
            let plan = ActorPlan::sample(
                &mut rng,
                Day::from_ymd(2005, 1, 1),
                forum_first,
                config.dataset_end(),
            );
            let a = builder.add_actor(forum, format!("hf_user{i}"), plan.registered);
            actors.push((a, plan));
        }
        let proof_posters: HashSet<ActorId> = actors
            .iter()
            .filter(|(_, p)| p.n_ewhoring >= 40)
            .map(|(a, _)| *a)
            .collect();
        let zero_match: HashSet<ActorId> = actors.iter().take(2).map(|(a, _)| *a).collect();

        let mut packs = PackFactory::new(
            &config,
            200,
            &catalog,
            &origins,
            &mut web,
            &mut index,
            &mut wayback,
            &mut hashlist,
        );
        let mut proofs = ProofFactory::new(&catalog, &mut web2, &fx);
        let sharer_pool: Vec<(ActorId, Day, Day)> = actors
            .iter()
            .take(30)
            .map(|(a, p)| (*a, p.first_ew, p.last_ew))
            .collect();
        let input = ForumThreadGen {
            profile,
            config: &config,
            board,
            actors: &actors,
            proof_posters: &proof_posters,
            zero_match_producers: &zero_match,
            sharer_pool: &sharer_pool,
        };
        let threads = generate_forum_threads(
            &mut rng,
            &mut builder,
            &mut truth,
            &mut packs,
            &mut proofs,
            &input,
        );
        (builder.build(), truth, threads, config)
    }

    #[test]
    fn thread_and_post_counts_scale_to_profile() {
        let (corpus, _, threads, config) = tiny_world_threads(31);
        let expected_threads = config.scaled(42_292, 1) as usize;
        assert_eq!(threads.len(), expected_threads);
        let posts = corpus.posts().len();
        let expected_posts = config.scaled(596_827, 1) as usize;
        let ratio = posts as f64 / expected_posts as f64;
        assert!(
            (0.75..1.35).contains(&ratio),
            "posts {posts} vs {expected_posts}"
        );
    }

    #[test]
    fn top_quota_is_met_exactly() {
        let (_, truth, _, config) = tiny_world_threads(32);
        assert_eq!(truth.top_count(), config.scaled(4_027, 1) as usize);
    }

    #[test]
    fn posts_within_threads_are_chronological() {
        let (corpus, _, threads, _) = tiny_world_threads(33);
        for &t in &threads {
            let posts = corpus.posts_in_thread(t);
            for w in posts.windows(2) {
                assert!(corpus.post(w[0]).date <= corpus.post(w[1]).date);
            }
        }
    }

    #[test]
    fn tops_have_more_replies_on_average() {
        let (corpus, truth, threads, _) = tiny_world_threads(34);
        let (mut top_sum, mut top_n, mut other_sum, mut other_n) = (0usize, 0usize, 0usize, 0usize);
        for &t in &threads {
            let replies = corpus.reply_count(t);
            if truth.is_top(t) {
                top_sum += replies;
                top_n += 1;
            } else {
                other_sum += replies;
                other_n += 1;
            }
        }
        let top_avg = top_sum as f64 / top_n.max(1) as f64;
        let other_avg = other_sum as f64 / other_n.max(1) as f64;
        assert!(
            top_avg > other_avg,
            "TOP avg {top_avg} vs other {other_avg}"
        );
    }

    #[test]
    fn some_tops_carry_links_and_packs_exist() {
        let (corpus, truth, threads, _) = tiny_world_threads(35);
        assert!(!truth.packs.is_empty());
        let linked_tops = threads
            .iter()
            .filter(|&&t| {
                truth.is_top(t)
                    && corpus
                        .first_post(t)
                        .is_some_and(|p| p.body.contains("https://"))
            })
            .count();
        let tops = truth.top_count();
        let share = linked_tops as f64 / tops as f64;
        // Paper: 18.7% of TOPs had extractable links.
        assert!((0.08..0.35).contains(&share), "linked share {share}");
    }

    #[test]
    fn proof_posts_are_recorded() {
        let (corpus, truth, _, _) = tiny_world_threads(36);
        assert!(!truth.proof_posts.is_empty());
        for &p in truth.proof_posts.iter().take(20) {
            assert!(corpus.post(p).body.contains("Proof:"));
        }
    }

    #[test]
    fn quotes_reference_same_thread() {
        let (corpus, _, threads, _) = tiny_world_threads(37);
        let mut quotes_seen = 0;
        for &t in &threads {
            for &p in corpus.posts_in_thread(t) {
                if let Some(q) = corpus.post(p).quotes {
                    quotes_seen += 1;
                    assert_eq!(corpus.post(q).thread, t, "quote crosses threads");
                }
            }
        }
        assert!(quotes_seen > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let (c1, _, _, _) = tiny_world_threads(38);
        let (c2, _, _, _) = tiny_world_threads(38);
        assert_eq!(c1.posts().len(), c2.posts().len());
        assert_eq!(c1.threads()[5].heading, c2.threads()[5].heading);
    }
}
