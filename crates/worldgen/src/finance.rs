//! Proof-of-earnings fabrication and Currency Exchange activity (paper §5).
//!
//! Calibration targets:
//!
//! * 661 actors post proofs totalling ≈US$511k (mean ≈US$774, maxima past
//!   US$20k); higher earners post more proof images (up to 46);
//! * platform mix over all proofs: AGC 934, PayPal 795, BTC 35, other ≈100,
//!   with PayPal dominant before ≈2016 and AGC after (Figure 3 crossover);
//! * ≈60% of proofs itemise transactions, averaging ≈US$41.90 each;
//! * the Currency Exchange board holds 9 066 threads by 686 actors with
//!   the Table 7 offered/wanted marginals (BTC the most wanted, AGC far
//!   more offered than wanted).

use crate::fx::{CurrencyCode, FxTable};
use crate::truth::{GroundTruth, ProofInfo};
use crimebb::ActorId;
use imagesim::{ImageClass, ImageSpec, PaymentPlatform};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use synthrand::{Day, LogNormal, WeightedIndex};
use websim::{HostedObject, LinkState, SiteCatalog, SiteKind, StoredImage, WebStore};

/// Per-actor earnings state.
#[derive(Debug, Clone)]
struct EarnerState {
    /// USD not yet shown in a posted proof.
    remaining_usd: f64,
    /// Proof images still to be posted.
    remaining_images: u32,
}

/// Fabricates proof-of-earnings posts and hosts their screenshots.
pub struct ProofFactory<'w> {
    catalog: &'w SiteCatalog,
    web: &'w mut WebStore,
    fx: &'w FxTable,
    earners: HashMap<ActorId, EarnerState>,
    url_counter: u64,
}

impl<'w> ProofFactory<'w> {
    /// Creates the factory.
    pub fn new(
        catalog: &'w SiteCatalog,
        web: &'w mut WebStore,
        fx: &'w FxTable,
    ) -> ProofFactory<'w> {
        ProofFactory {
            catalog,
            web,
            fx,
            earners: HashMap::new(),
            url_counter: 0,
        }
    }

    /// Number of distinct earners seen so far.
    pub fn earner_count(&self) -> usize {
        self.earners.len()
    }

    fn earner(&mut self, rng: &mut StdRng, actor: ActorId) -> &mut EarnerState {
        self.earners.entry(actor).or_insert_with(|| {
            // Median US$250, σ=1.5 → mean ≈ US$770, heavy tail past $20k.
            let total = LogNormal::from_median(300.0, 1.5).sample(rng).min(45_000.0);
            // Higher earners post more proofs (Fig. 2 right).
            let images = (1.0 + total / 400.0 + rng.gen_range(0.0..2.0)).round() as u32;
            EarnerState {
                remaining_usd: total,
                remaining_images: images.min(46),
            }
        })
    }

    /// Platform mix drifting over time: PayPal-dominant early, AGC
    /// overtaking from 2016 (Figure 3).
    fn platform(rng: &mut StdRng, date: Day) -> PaymentPlatform {
        let year = date.year();
        let (pp, agc, btc, cash) = if year < 2013 {
            (0.80, 0.08, 0.02, 0.10)
        } else if year < 2016 {
            (0.43, 0.50, 0.02, 0.05)
        } else {
            (0.10, 0.82, 0.02, 0.06)
        };
        let w = WeightedIndex::new(&[pp, agc, btc, cash]);
        match w.sample(rng) {
            0 => PaymentPlatform::PayPal,
            1 => PaymentPlatform::AmazonGiftCard,
            2 => PaymentPlatform::Bitcoin,
            _ => PaymentPlatform::Cash,
        }
    }

    /// Fabricates up to `max_images` proof posts' worth of content for
    /// `actor` on `date`. Returns URL lines to embed in the post body, or
    /// an empty list when the actor has shown everything they will show.
    pub fn make_proof_lines(
        &mut self,
        rng: &mut StdRng,
        truth: &mut GroundTruth,
        actor: ActorId,
        date: Day,
        max_images: u32,
    ) -> Vec<String> {
        let fx = self.fx;
        let state = self.earner(rng, actor);
        if state.remaining_images == 0 {
            return Vec::new();
        }
        let n = state
            .remaining_images
            .min(max_images)
            .min(1 + rng.gen_range(0..4));
        let mut lines = Vec::new();
        for _ in 0..n {
            let state = self.earners.get_mut(&actor).expect("inserted above");
            // Slice of the remaining total for this screenshot.
            let frac = if state.remaining_images <= 1 {
                1.0
            } else {
                rng.gen_range(0.25..0.75)
            };
            let amount_usd = (state.remaining_usd * frac).max(1.0);
            state.remaining_usd -= amount_usd;
            state.remaining_images -= 1;

            let platform = Self::platform(rng, date);
            let currency = match platform {
                PaymentPlatform::Bitcoin => CurrencyCode::Btc,
                _ => match rng.gen_range(0..10) {
                    0 => CurrencyCode::Gbp,
                    1 => CurrencyCode::Eur,
                    _ => CurrencyCode::Usd,
                },
            };
            // Express the USD value in the display currency of that date.
            let unit_usd = fx.to_usd(1.0, currency, date);
            let amount = amount_usd / unit_usd;
            // ~60% of screenshots itemise transactions (avg ≈ $41.90).
            let transactions = rng.gen_bool(0.6).then(|| {
                let per_tx = rng.gen_range(25.0..60.0);
                ((amount_usd / per_tx).round() as u32).max(1)
            });

            self.url_counter += 1;
            let spec = ImageSpec::of(
                ImageClass::PaymentScreenshot(platform),
                (actor.0 as u64) << 24 | self.url_counter,
            );
            truth.proof_info.insert(
                spec,
                ProofInfo {
                    platform,
                    currency,
                    amount,
                    transactions,
                    taken: date,
                    actor,
                },
            );
            *truth.earnings_by_actor.entry(actor).or_insert(0.0) += amount_usd;

            let site = self.catalog.sample(SiteKind::ImageSharing, rng);
            let url = textkit::Url::new(site.domain, format!("/e/{:06x}", self.url_counter));
            let state = if rng.gen_bool(site.link_rot * 0.3) {
                LinkState::Dead
            } else {
                LinkState::Live
            };
            self.web.host(
                url.clone(),
                HostedObject::Image(StoredImage::pristine(spec)),
                date,
                state,
            );
            lines.push(format!("Proof: {}", url.to_https()));
        }
        lines
    }

    /// Hosts a non-proof image in an earnings context (chat screenshot,
    /// stray preview, meme) — the material behind the paper's 199
    /// not-proof downloads and the NSFV-filtered remainder.
    pub fn make_offtopic_line(&mut self, rng: &mut StdRng, date: Day) -> String {
        self.url_counter += 1;
        // Mix calibrated to the paper's funnel: the NSFV filter removed
        // 299 images (stray previews) while 199 analysed images were
        // non-proof screenshots/chats — so model imagery slightly
        // outweighs benign off-topic content.
        let spec = match rng.gen_range(0..20) {
            0..=5 => ImageSpec::of(ImageClass::ChatScreenshot, self.url_counter),
            6 | 7 => ImageSpec::of(ImageClass::Meme, self.url_counter),
            8 => ImageSpec::of(ImageClass::DirectoryThumbnails, self.url_counter),
            _ => ImageSpec::model_photo(
                ImageClass::ModelNude,
                4_000_000 + (self.url_counter % 10_000) as u32,
                self.url_counter,
            ),
        };
        let site = self.catalog.sample(SiteKind::ImageSharing, rng);
        let url = textkit::Url::new(site.domain, format!("/e/{:06x}", self.url_counter));
        self.web.host(
            url.clone(),
            HostedObject::Image(StoredImage::pristine(spec)),
            date,
            LinkState::Live,
        );
        format!("Screenshot: {}", url.to_https())
    }
}

/// The Table 7 joint distribution of Currency Exchange trades,
/// `(offered, wanted, count)` in [PP, BTC, AGC, ?, OTH] order. Marginals
/// reproduce the published row/column totals exactly.
pub const CE_JOINT: &[(usize, usize, u64)] = &[
    (0, 0, 80),
    (0, 1, 2700),
    (0, 2, 180),
    (0, 3, 640),
    (0, 4, 107), // PP offered: 3707
    (1, 0, 2200),
    (1, 1, 50),
    (1, 2, 60),
    (1, 3, 400),
    (1, 4, 53), // BTC: 2763
    (2, 0, 250),
    (2, 1, 1200),
    (2, 2, 0),
    (2, 3, 28),
    (2, 4, 20), // AGC: 1498
    (3, 0, 220),
    (3, 1, 500),
    (3, 2, 39),
    (3, 3, 60),
    (3, 4, 20), // ?: 839
    (4, 0, 51),
    (4, 1, 176),
    (4, 2, 31),
    (4, 3, 0),
    (4, 4, 1), // others: 259
];

/// Currency segment text by index [PP, BTC, AGC, ?, OTH].
fn segment_text(rng: &mut StdRng, idx: usize) -> String {
    let amount = rng.gen_range(1..40) * 5;
    match idx {
        0 => format!("${amount} PayPal"),
        1 => format!("{:.3} BTC", f64::from(amount) / 900.0),
        2 => format!("${amount} Amazon GC"),
        3 => ["some funds", "balance", "misc tokens", "credits"][rng.gen_range(0..4)].to_string(),
        _ => format!("${amount} skrill"),
    }
}

/// Samples a Currency Exchange heading from the Table 7 joint.
pub fn ce_heading(rng: &mut StdRng, sampler: &WeightedIndex) -> String {
    let (offered, wanted, _) = CE_JOINT[sampler.sample(rng)];
    let h = segment_text(rng, offered);
    let w = segment_text(rng, wanted);
    if rng.gen_bool(0.5) {
        format!("[H] {h} [W] {w}")
    } else {
        format!("[W] {w} [H] {h}")
    }
}

/// Builds the weighted sampler over [`CE_JOINT`].
pub fn ce_sampler() -> WeightedIndex {
    WeightedIndex::from_counts(&CE_JOINT.iter().map(|&(_, _, c)| c).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthrand::rng_from_seed;
    use textkit::hw::{parse_hw_heading, Currency};

    #[test]
    fn ce_joint_reproduces_table7_marginals() {
        let mut offered = [0u64; 5];
        let mut wanted = [0u64; 5];
        for &(o, w, c) in CE_JOINT {
            offered[o] += c;
            wanted[w] += c;
        }
        assert_eq!(offered, [3707, 2763, 1498, 839, 259]);
        assert_eq!(wanted, [2801, 4626, 310, 1128, 201]);
        assert_eq!(offered.iter().sum::<u64>(), 9066);
    }

    #[test]
    fn ce_headings_parse_back_to_sampled_currencies() {
        let mut rng = rng_from_seed(20);
        let sampler = ce_sampler();
        let mut btc_wanted = 0;
        let n = 2000;
        for _ in 0..n {
            let h = ce_heading(&mut rng, &sampler);
            let trade = parse_hw_heading(&h).expect("tags always present");
            if trade.wanted == Currency::Btc {
                btc_wanted += 1;
            }
        }
        let share = f64::from(btc_wanted) / f64::from(n);
        // BTC is wanted in 4626/9066 ≈ 51% of trades.
        assert!((share - 0.51).abs() < 0.05, "BTC-wanted share {share}");
    }

    fn fixture() -> (SiteCatalog, WebStore, FxTable) {
        (SiteCatalog::new(), WebStore::new(), FxTable::new())
    }

    #[test]
    fn earner_totals_match_calibration() {
        let (catalog, mut web, fx) = fixture();
        let mut factory = ProofFactory::new(&catalog, &mut web, &fx);
        let mut truth = GroundTruth::default();
        let mut rng = rng_from_seed(21);
        // Drain 400 earners completely.
        for a in 0..400u32 {
            let actor = ActorId(a);
            for round in 0..60 {
                let lines = factory.make_proof_lines(
                    &mut rng,
                    &mut truth,
                    actor,
                    Day::from_ymd(2016, 1, 1).plus_days(round * 7),
                    3,
                );
                if lines.is_empty() {
                    break;
                }
            }
        }
        let totals: Vec<f64> = truth.earnings_by_actor.values().copied().collect();
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        // Paper: mean US$774 per proof-posting actor.
        assert!((450.0..1_200.0).contains(&mean), "mean {mean}");
        let max = totals.iter().cloned().fold(0.0, f64::max);
        assert!(max > 5_000.0, "max {max} lacks a heavy tail");
    }

    #[test]
    fn platform_mix_crosses_over_in_2016() {
        let mut rng = rng_from_seed(22);
        let mut count = |year: i32| {
            let mut pp = 0;
            let mut agc = 0;
            for _ in 0..2000 {
                match ProofFactory::platform(&mut rng, Day::from_ymd(year, 6, 1)) {
                    PaymentPlatform::PayPal => pp += 1,
                    PaymentPlatform::AmazonGiftCard => agc += 1,
                    _ => {}
                }
            }
            (pp, agc)
        };
        let (pp12, agc12) = count(2012);
        let (pp18, agc18) = count(2018);
        assert!(pp12 > agc12 * 3, "2012: PP {pp12} vs AGC {agc12}");
        assert!(agc18 > pp18, "2018: PP {pp18} vs AGC {agc18}");
    }

    #[test]
    fn proofs_register_truth_and_web_objects() {
        let (catalog, mut web, fx) = fixture();
        let mut truth = GroundTruth::default();
        {
            let mut factory = ProofFactory::new(&catalog, &mut web, &fx);
            let mut rng = rng_from_seed(23);
            let lines = factory.make_proof_lines(
                &mut rng,
                &mut truth,
                ActorId(7),
                Day::from_ymd(2017, 5, 1),
                3,
            );
            assert!(!lines.is_empty());
            assert_eq!(factory.earner_count(), 1);
        }
        assert!(!truth.proof_info.is_empty());
        assert!(!web.is_empty());
        for info in truth.proof_info.values() {
            assert!(info.amount > 0.0);
            assert_eq!(info.actor, ActorId(7));
        }
    }

    #[test]
    fn transaction_counts_imply_paper_average() {
        let (catalog, mut web, fx) = fixture();
        let mut truth = GroundTruth::default();
        let mut factory = ProofFactory::new(&catalog, &mut web, &fx);
        let mut rng = rng_from_seed(24);
        for a in 0..300u32 {
            factory.make_proof_lines(
                &mut rng,
                &mut truth,
                ActorId(a),
                Day::from_ymd(2016, 7, 1),
                3,
            );
        }
        let (mut usd_sum, mut tx_sum) = (0.0, 0u32);
        for info in truth.proof_info.values() {
            if let Some(tx) = info.transactions {
                usd_sum += fx.to_usd(info.amount, info.currency, info.taken);
                tx_sum += tx;
            }
        }
        let avg = usd_sum / f64::from(tx_sum.max(1));
        // Paper: average US$41.90 per transaction.
        assert!((25.0..60.0).contains(&avg), "avg per tx {avg}");
    }

    #[test]
    fn offtopic_lines_host_non_proof_content() {
        let (catalog, mut web, fx) = fixture();
        let mut factory = ProofFactory::new(&catalog, &mut web, &fx);
        let mut rng = rng_from_seed(25);
        let line = factory.make_offtopic_line(&mut rng, Day::from_ymd(2016, 1, 1));
        assert!(line.contains("https://"));
        assert_eq!(web.len(), 1);
    }
}
