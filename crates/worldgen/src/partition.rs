//! Contiguous shard partitioning for supervised sharded runs.
//!
//! The corpus is naturally partitioned — ten forums, per-site crawl
//! domains — and the shard driver in `ewhoring-core` splits a run by
//! forum across supervised workers. The split itself lives here, next
//! to the generator that defines the forum ordering, so the partition
//! seam is shared by worldgen and the pipeline: contiguous, near-equal
//! spans in the *input* order, which is what keeps a merge-by-
//! concatenation byte-identical to the unsharded traversal.

use std::ops::Range;

/// Splits `0..n_items` into `shards` contiguous, near-equal spans.
///
/// The first `n_items % shards` spans get one extra item, so span
/// lengths differ by at most one and every item lands in exactly one
/// span, in order. `shards == 0` is treated as 1; when `shards >
/// n_items` the trailing spans are empty (they still exist, so a
/// supervisor can keep its shard indexing stable).
pub fn partition_spans(n_items: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1);
    let base = n_items / shards;
    let extra = n_items % shards;
    let mut spans = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        spans.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n_items);
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_everything_in_order() {
        for n in [0, 1, 7, 10, 64, 1000] {
            for shards in [1, 2, 3, 5, 7, 13] {
                let spans = partition_spans(n, shards);
                assert_eq!(spans.len(), shards, "n={n} shards={shards}");
                let flat: Vec<usize> = spans.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} shards={shards}");
                let (min, max) = spans
                    .iter()
                    .map(|s| s.len())
                    .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
                assert!(max - min <= 1, "near-equal spans: n={n} shards={shards}");
            }
        }
    }

    #[test]
    fn zero_shards_degrades_to_one_span() {
        assert_eq!(partition_spans(10, 0), vec![0..10]);
    }

    #[test]
    fn more_shards_than_items_leaves_trailing_spans_empty() {
        let spans = partition_spans(3, 5);
        assert_eq!(spans, vec![0..1, 1..2, 2..3, 3..3, 3..3]);
    }
}
