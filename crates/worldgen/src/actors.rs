//! Per-actor activity model, calibrated to paper Table 8.
//!
//! Table 8 pins the survival function of eWhoring posts per actor
//! (72 982 actors ≥1 post, 13 014 ≥10, 2 146 ≥50, 815 ≥100, 263 ≥200,
//! 46 ≥500, 13 ≥1 000), the share of an actor's activity that is
//! eWhoring-related (≈23% overall, rising with engagement), and the days
//! actors remain active before/after their eWhoring window. [`CohortTail`]
//! samples post counts by inverting that empirical survival curve
//! log-log-interpolated between the published anchors; [`ActorPlan`]
//! bundles the full per-actor profile.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use synthrand::{Day, Exponential, LogNormal};

/// Survival anchors from Table 8: `(x, P(N ≥ x))` with N = eWhoring posts.
const SURVIVAL_ANCHORS: &[(f64, f64)] = &[
    (1.0, 1.0),
    (10.0, 13_014.0 / 72_982.0),
    (50.0, 2_146.0 / 72_982.0),
    (100.0, 815.0 / 72_982.0),
    (200.0, 263.0 / 72_982.0),
    (500.0, 46.0 / 72_982.0),
    (1_000.0, 13.0 / 72_982.0),
    (2_900.0, 1.0 / 72_982.0),
];

/// Sampler for eWhoring-post counts per actor.
#[derive(Debug, Clone, Copy, Default)]
pub struct CohortTail;

impl CohortTail {
    /// Samples a post count ≥ 1 by inverse-transform on the log-log
    /// interpolated survival curve.
    pub fn sample(rng: &mut StdRng) -> u32 {
        let u: f64 = rng.gen_range(SURVIVAL_ANCHORS.last().unwrap().1..1.0);
        Self::quantile(u)
    }

    /// The count x with `P(N ≥ x) = u` (log-log interpolation).
    pub fn quantile(u: f64) -> u32 {
        debug_assert!(u > 0.0 && u <= 1.0);
        for w in SURVIVAL_ANCHORS.windows(2) {
            let (x0, s0) = w[0];
            let (x1, s1) = w[1];
            if u <= s0 && u >= s1 {
                let t = (u.ln() - s0.ln()) / (s1.ln() - s0.ln());
                let x = (x0.ln() + t * (x1.ln() - x0.ln())).exp();
                return x.round().max(1.0) as u32;
            }
        }
        SURVIVAL_ANCHORS.last().unwrap().0 as u32
    }

    /// The survival probability at `x` (for calibration tests).
    pub fn survival(x: f64) -> f64 {
        if x <= 1.0 {
            return 1.0;
        }
        for w in SURVIVAL_ANCHORS.windows(2) {
            let (x0, s0) = w[0];
            let (x1, s1) = w[1];
            if x >= x0 && x <= x1 {
                let t = (x.ln() - x0.ln()) / (x1.ln() - x0.ln());
                return (s0.ln() + t * (s1.ln() - s0.ln())).exp();
            }
        }
        0.0
    }
}

/// A generated actor's activity profile.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ActorPlan {
    /// eWhoring posts this actor will make.
    pub n_ewhoring: u32,
    /// Non-eWhoring posts (other boards).
    pub n_other: u32,
    /// First day of eWhoring activity.
    pub first_ew: Day,
    /// Last day of eWhoring activity.
    pub last_ew: Day,
    /// First post anywhere on the forum.
    pub first_post: Day,
    /// Last post anywhere on the forum.
    pub last_post: Day,
    /// Registration date (shortly before the first post).
    pub registered: Day,
}

impl ActorPlan {
    /// Draws a full plan.
    ///
    /// `forum_first` is the forum's first eWhoring activity; `forum_open`
    /// the earliest date any board existed; `end` the dataset end.
    pub fn sample(rng: &mut StdRng, forum_open: Day, forum_first: Day, end: Day) -> ActorPlan {
        let n_ewhoring = CohortTail::sample(rng);

        // Share of activity that is eWhoring (paper ≈23%, rising with
        // engagement). Log-normal around an engagement-dependent median.
        let median = 0.16 * (1.0 + 0.12 * f64::from(n_ewhoring).ln_1p());
        let pct = LogNormal::from_median(median, 0.55)
            .sample(rng)
            .clamp(0.03, 0.95);
        let n_other = ((f64::from(n_ewhoring) * (1.0 - pct) / pct).round() as u32).min(4_000);

        // eWhoring window: start uniform over the forum's eWhoring era,
        // duration growing with engagement.
        let span_budget = end.days_since(forum_first).max(40);
        // Activity grows over the forum's lifetime (the paper's Figure 3
        // shows proof volume concentrated after 2014), so entry dates are
        // biased towards later years.
        let u: f64 = rng.gen();
        let start_offset = (f64::from(span_budget.saturating_sub(30).max(1)) * u.powf(0.5)) as u32;
        let first_ew = forum_first.plus_days(start_offset);
        let span = if n_ewhoring <= 1 {
            0
        } else {
            let mean = 20.0 + 2.0 * f64::from(n_ewhoring).min(600.0);
            (Exponential::from_mean(mean).sample(rng) as u32).min(end.days_since(first_ew))
        };
        let last_ew = first_ew.plus_days(span);

        // Days active before/after the eWhoring window (Table 8 means:
        // ~165 before, shrinking after for heavy posters).
        let before = Exponential::from_mean(170.0).sample(rng) as u32;
        let after_mean = 500.0 / (1.0 + f64::from(n_ewhoring).ln_1p() / 2.5);
        let after = Exponential::from_mean(after_mean).sample(rng) as u32;

        let first_post = Day(first_ew.0.saturating_sub(before).max(forum_open.0));
        let last_post = Day((last_ew.0 + after).min(end.0)).max(last_ew);
        let registered = Day(first_post.0.saturating_sub(rng.gen_range(0..30)));

        ActorPlan {
            n_ewhoring,
            n_other,
            first_ew,
            last_ew,
            first_post,
            last_post,
            registered,
        }
    }

    /// Days active before the first eWhoring post.
    pub fn days_before(&self) -> u32 {
        self.first_ew.days_since(self.first_post)
    }

    /// Days active after the last eWhoring post.
    pub fn days_after(&self) -> u32 {
        self.last_post.days_since(self.last_ew)
    }

    /// Fraction of this actor's posts that are eWhoring-related.
    pub fn pct_ewhoring(&self) -> f64 {
        f64::from(self.n_ewhoring) / f64::from(self.n_ewhoring + self.n_other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthrand::rng_from_seed;

    #[test]
    fn survival_matches_anchors_exactly() {
        assert!((CohortTail::survival(10.0) - 13_014.0 / 72_982.0).abs() < 1e-12);
        assert!((CohortTail::survival(100.0) - 815.0 / 72_982.0).abs() < 1e-12);
        assert_eq!(CohortTail::survival(0.5), 1.0);
    }

    #[test]
    fn sampled_cohorts_match_table8_shares() {
        let mut rng = rng_from_seed(8);
        let n = 80_000;
        let counts: Vec<u32> = (0..n).map(|_| CohortTail::sample(&mut rng)).collect();
        let ge = |x: u32| counts.iter().filter(|&&c| c >= x).count() as f64 / n as f64;
        // ~82% of actors make fewer than 10 posts (paper: "Most of these
        // (~80%) made less than 10 posts").
        assert!((ge(10) - 0.178).abs() < 0.012, "P(≥10) = {}", ge(10));
        assert!((ge(50) - 0.0294).abs() < 0.005, "P(≥50) = {}", ge(50));
        assert!((ge(500) - 0.00063).abs() < 0.0006, "P(≥500) = {}", ge(500));
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn mean_posts_near_paper_average() {
        // Paper: 626 784 posts / 72 982 actors ≈ 8.6 per actor.
        let mut rng = rng_from_seed(9);
        let n = 60_000;
        let mean: f64 = (0..n)
            .map(|_| CohortTail::sample(&mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((6.0..11.5).contains(&mean), "mean {mean}");
    }

    #[test]
    fn quantile_is_monotone() {
        let mut last = u32::MAX;
        for i in 1..100 {
            let u = i as f64 / 100.0;
            let q = CohortTail::quantile(u);
            assert!(q <= last, "quantile must fall as u rises");
            last = q;
        }
        assert_eq!(CohortTail::quantile(1.0), 1);
    }

    fn plan(seed: u64) -> ActorPlan {
        let mut rng = rng_from_seed(seed);
        ActorPlan::sample(
            &mut rng,
            Day::from_ymd(2005, 1, 1),
            Day::from_ymd(2008, 11, 1),
            Day::from_ymd(2019, 3, 31),
        )
    }

    #[test]
    fn plan_dates_are_ordered() {
        for seed in 0..200 {
            let p = plan(seed);
            assert!(p.registered <= p.first_post, "seed {seed}");
            assert!(p.first_post <= p.first_ew, "seed {seed}");
            assert!(p.first_ew <= p.last_ew, "seed {seed}");
            assert!(p.last_ew <= p.last_post, "seed {seed}");
            assert!(p.last_post <= Day::from_ymd(2019, 3, 31), "seed {seed}");
        }
    }

    #[test]
    fn pct_ewhoring_is_plausible() {
        let mut rng = rng_from_seed(10);
        let plans: Vec<ActorPlan> = (0..5_000)
            .map(|_| {
                ActorPlan::sample(
                    &mut rng,
                    Day::from_ymd(2005, 1, 1),
                    Day::from_ymd(2008, 11, 1),
                    Day::from_ymd(2019, 3, 31),
                )
            })
            .collect();
        let mean_pct: f64 =
            plans.iter().map(ActorPlan::pct_ewhoring).sum::<f64>() / plans.len() as f64;
        // Paper Table 8: overall ~23% of activity is eWhoring.
        assert!((0.17..0.32).contains(&mean_pct), "mean pct {mean_pct}");
    }

    #[test]
    fn days_before_mean_is_months_not_years() {
        let mut rng = rng_from_seed(11);
        let mean: f64 = (0..5_000)
            .map(|_| {
                ActorPlan::sample(
                    &mut rng,
                    Day::from_ymd(2005, 1, 1),
                    Day::from_ymd(2008, 11, 1),
                    Day::from_ymd(2019, 3, 31),
                )
                .days_before() as f64
            })
            .sum::<f64>()
            / 5_000.0;
        // Paper: actors spend ~165 days in the forum before eWhoring.
        assert!((110.0..230.0).contains(&mean), "mean before {mean}");
    }

    #[test]
    fn heavy_posters_get_longer_ew_spans() {
        let mut rng = rng_from_seed(12);
        let mut small = Vec::new();
        let mut big = Vec::new();
        for _ in 0..20_000 {
            let p = ActorPlan::sample(
                &mut rng,
                Day::from_ymd(2005, 1, 1),
                Day::from_ymd(2008, 11, 1),
                Day::from_ymd(2019, 3, 31),
            );
            let span = p.last_ew.days_since(p.first_ew) as f64;
            if p.n_ewhoring >= 50 {
                big.push(span);
            } else if p.n_ewhoring <= 3 {
                small.push(span);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            avg(&big) > avg(&small) * 2.0,
            "{} vs {}",
            avg(&big),
            avg(&small)
        );
    }
}
