//! Deterministic synthetic-world builder.
//!
//! This crate stands in for the two access-gated data sources of the paper:
//! the CrimeBB forum corpus and the live web of 2008–2019. From a single
//! seed it generates, with calibration targets taken from the paper's own
//! tables:
//!
//! * a ten-forum corpus of eWhoring conversations (Table 1 scale), plus the
//!   Hackforums side-boards needed for §5–§6 (Currency Exchange, Bragging
//!   Rights, gaming/hacking/market interest boards);
//! * the hosted web: preview images on image-sharing sites, pack archives
//!   on cloud storage (Tables 3/4 host mix, §4.2 link mortality);
//! * origin domains, the reverse-search index, and Wayback snapshots
//!   (§4.5 targets: match rates, seen-before rates, match-count tails);
//! * the known-CSAM hash list with a small number of planted list images
//!   (§4.3: 36 matches, 61 actionable URLs);
//! * proof-of-earnings imagery and Currency Exchange activity (§5);
//! * per-actor activity profiles driving the §6 cohort and interest
//!   analyses (Table 8, Figures 4/5).
//!
//! **Ground truth vs pipeline.** The generator records what it planted in
//! [`GroundTruth`]. The measurement pipeline (crate `ewhoring-core`) may
//! consult ground truth only where the paper used a human: the 1 000-thread
//! annotation sample (§4.1) and the manual annotation of proof-of-earnings
//! images (§5.1). Everything else must be *measured*.
//!
//! The world is scale-parametric: `scale = 1.0` reproduces paper-sized
//! counts (~45k eWhoring threads, ~630k posts, ~73k actors); tests and CI
//! use small scales.

pub mod actors;
pub mod config;
pub mod feed;
pub mod finance;
pub mod fx;
pub mod headings;
pub mod packs;
pub mod partition;
pub mod threads;
pub mod truth;
pub mod world;

pub use config::{ForumProfile, WorldConfig, FORUM_PROFILES};
pub use feed::{epoch_bound, epoch_of_day, Feed};
pub use fx::FxTable;
pub use partition::partition_spans;
pub use truth::{GroundTruth, PackKind, PackRecord, ProofInfo, ThreadRole};
pub use world::World;
