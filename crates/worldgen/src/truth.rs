//! Ground truth recorded during generation.

use crimebb::{ActorId, PostId, ThreadId};
use imagesim::{ImageSpec, PaymentPlatform};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use synthrand::Day;
use textkit::Url;

/// What a generated eWhoring thread actually is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadRole {
    /// A Thread Offering Packs — the TOP classifier's positive class.
    Top,
    /// A thread asking for packs/advice (hard negative: shares vocabulary).
    Request,
    /// A tutorial/guide thread.
    Tutorial,
    /// An earnings/bragging thread (may carry proof-of-earnings links).
    Earnings,
    /// General discussion.
    Discussion,
    /// An account-trade thread (OGUsers-style).
    Trade,
}

/// How a pack relates to the wider web (drives §4.5 match behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PackKind {
    /// Stolen material, lightly edited; indexed by reverse search.
    Standard,
    /// Heavily re-shared material: more sites per image, exact duplicates
    /// across packs.
    Saturated,
    /// Every image mirrored by an automated tool — evades reverse search.
    MirroredAll,
    /// Self-produced material that never appeared on the web.
    SelfMade,
}

/// Ground truth about one generated pack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackRecord {
    /// Thread offering the pack.
    pub thread: ThreadId,
    /// Actor who shared it.
    pub actor: ActorId,
    /// Cloud-storage URL hosting the archive.
    pub url: Url,
    /// Depicted model id.
    pub model: u32,
    /// Pack behaviour class.
    pub kind: PackKind,
    /// Number of images in the archive.
    pub n_images: u32,
    /// Date the pack was posted to the forum.
    pub posted: Day,
}

/// Ground-truth annotation of a proof-of-earnings image — what a human
/// reads off the screenshot (§5.1's manual annotation step).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProofInfo {
    /// Payment platform shown.
    pub platform: PaymentPlatform,
    /// ISO-ish currency code of the displayed amounts.
    pub currency: crate::fx::CurrencyCode,
    /// Total amount shown, in `currency` units.
    pub amount: f64,
    /// Number of itemised incoming transactions, when the screenshot shows
    /// them (paper: ~60% of proofs do).
    pub transactions: Option<u32>,
    /// Date the screenshot was taken (for FX conversion).
    pub taken: Day,
    /// The actor whose earnings these are.
    pub actor: ActorId,
}

/// Everything the generator planted, for evaluation and for the two
/// human-analogue steps (annotation sample, proof annotation).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Role of every eWhoring-related thread.
    pub thread_roles: HashMap<ThreadId, ThreadRole>,
    /// Pack records by cloud URL.
    pub packs: Vec<PackRecord>,
    /// Proof-of-earnings annotations keyed by image spec.
    pub proof_info: HashMap<ImageSpec, ProofInfo>,
    /// Specs of planted hash-list (CSAM-analogue) images.
    pub csam_specs: Vec<ImageSpec>,
    /// Threads whose packs contain planted hash-list images.
    pub csam_threads: Vec<ThreadId>,
    /// Posts that carry proof-of-earnings links (for §5 evaluation).
    pub proof_posts: Vec<PostId>,
    /// For each actor: their total planted earnings in USD (evaluation of
    /// the §5 estimate).
    pub earnings_by_actor: HashMap<ActorId, f64>,
}

impl GroundTruth {
    /// Role of a thread (threads outside the eWhoring set have none).
    pub fn role(&self, thread: ThreadId) -> Option<ThreadRole> {
        self.thread_roles.get(&thread).copied()
    }

    /// True when the thread offers packs.
    pub fn is_top(&self, thread: ThreadId) -> bool {
        self.role(thread) == Some(ThreadRole::Top)
    }

    /// Number of planted TOPs.
    pub fn top_count(&self) -> usize {
        self.thread_roles
            .values()
            .filter(|&&r| r == ThreadRole::Top)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_lookup_and_top_count() {
        let mut gt = GroundTruth::default();
        gt.thread_roles.insert(ThreadId(1), ThreadRole::Top);
        gt.thread_roles.insert(ThreadId(2), ThreadRole::Request);
        assert!(gt.is_top(ThreadId(1)));
        assert!(!gt.is_top(ThreadId(2)));
        assert!(!gt.is_top(ThreadId(99)));
        assert_eq!(gt.top_count(), 1);
    }
}
