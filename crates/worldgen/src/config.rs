//! World configuration and per-forum calibration targets (paper Table 1).

use serde::{Deserialize, Serialize};
use synthrand::Day;

/// Calibration profile of one forum, from paper Table 1.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForumProfile {
    /// Forum display name.
    pub name: &'static str,
    /// eWhoring-related threads at scale 1.0.
    pub threads: u32,
    /// eWhoring-related posts at scale 1.0.
    pub posts: u32,
    /// Threads Offering Packs at scale 1.0.
    pub tops: u32,
    /// Actors participating in eWhoring threads at scale 1.0.
    pub actors: u32,
    /// First eWhoring post (year, month).
    pub first_post: (i32, u32),
    /// Whether the forum has a dedicated eWhoring board (Hackforums). On
    /// other forums, eWhoring threads are only discoverable through the
    /// `ewhor`/`e-whor` heading keywords, so their headings always carry
    /// one.
    pub has_ewhoring_board: bool,
    /// Whether moderators remove pack/preview threads (BlackHatWorld bans
    /// eWhoring; Table 1 shows 0 TOPs there).
    pub tops_removed_by_mods: bool,
}

/// Table 1, row for row. "Others (4)" is split into four small forums.
pub const FORUM_PROFILES: &[ForumProfile] = &[
    ForumProfile {
        name: "Hackforums",
        threads: 42_292,
        posts: 596_827,
        tops: 4_027,
        actors: 64_035,
        first_post: (2008, 11),
        has_ewhoring_board: true,
        tops_removed_by_mods: false,
    },
    ForumProfile {
        name: "OGUsers",
        threads: 1_744,
        posts: 23_974,
        tops: 76,
        actors: 5_586,
        first_post: (2017, 4),
        has_ewhoring_board: false,
        tops_removed_by_mods: false,
    },
    ForumProfile {
        name: "BlackHatWorld",
        threads: 258,
        posts: 2_694,
        tops: 0,
        actors: 1_420,
        first_post: (2008, 4),
        has_ewhoring_board: false,
        tops_removed_by_mods: true,
    },
    ForumProfile {
        name: "V3rmillion",
        threads: 95,
        posts: 1_348,
        tops: 6,
        actors: 697,
        first_post: (2016, 2),
        has_ewhoring_board: false,
        tops_removed_by_mods: false,
    },
    ForumProfile {
        name: "MPGH",
        threads: 62,
        posts: 922,
        tops: 12,
        actors: 341,
        first_post: (2012, 7),
        has_ewhoring_board: false,
        tops_removed_by_mods: false,
    },
    ForumProfile {
        name: "RaidForums",
        threads: 48,
        posts: 405,
        tops: 10,
        actors: 318,
        first_post: (2015, 3),
        has_ewhoring_board: false,
        tops_removed_by_mods: false,
    },
    ForumProfile {
        name: "GreySec",
        threads: 8,
        posts: 220,
        tops: 2,
        actors: 200,
        first_post: (2015, 5),
        has_ewhoring_board: false,
        tops_removed_by_mods: false,
    },
    ForumProfile {
        name: "Nulled",
        threads: 6,
        posts: 180,
        tops: 2,
        actors: 170,
        first_post: (2015, 8),
        has_ewhoring_board: false,
        tops_removed_by_mods: false,
    },
    ForumProfile {
        name: "Antichat",
        threads: 4,
        posts: 120,
        tops: 1,
        actors: 120,
        first_post: (2016, 1),
        has_ewhoring_board: false,
        tops_removed_by_mods: false,
    },
    ForumProfile {
        name: "Sinister",
        threads: 3,
        posts: 94,
        tops: 1,
        actors: 95,
        first_post: (2016, 6),
        has_ewhoring_board: false,
        tops_removed_by_mods: false,
    },
];

/// World generation parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Root seed; every artefact derives from it.
    pub seed: u64,
    /// Linear scale on all corpus-level counts. 1.0 = paper scale.
    pub scale: f64,
    /// Number of origin domains the reverse-search index covers at scale
    /// 1.0 (paper: 5 917 domains resolved).
    pub origin_domains: u32,
    /// Known-CSAM images planted in shared packs at scale 1.0 (paper: 36
    /// PhotoDNA matches).
    pub csam_images: u32,
    /// Generate Hackforums side-board activity (interests, Currency
    /// Exchange, proof-of-earnings). Disable for image-pipeline-only
    /// benchmarks.
    pub with_side_boards: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0xE400_2019,
            scale: 1.0,
            origin_domains: 5_917,
            csam_images: 36,
            with_side_boards: true,
        }
    }
}

impl WorldConfig {
    /// A small-scale config for tests (≈2% of paper scale).
    pub fn test_scale(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            scale: 0.02,
            origin_domains: 600,
            csam_images: 8,
            with_side_boards: true,
        }
    }

    /// A mid-scale config for benchmarks (~10%).
    pub fn bench_scale(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            scale: 0.10,
            origin_domains: 1_500,
            csam_images: 16,
            with_side_boards: true,
        }
    }

    /// Scales a paper-calibrated count, keeping at least `min`.
    pub fn scaled(&self, paper_count: u32, min: u32) -> u32 {
        (((paper_count as f64) * self.scale).round() as u32).max(min)
    }

    /// Dataset start (first post overall: 2008-04 on BlackHatWorld per
    /// Table 1; the first *eWhoring* post is 2008-11 on Hackforums).
    pub fn dataset_start(&self) -> Day {
        Day::from_ymd(2008, 4, 1)
    }

    /// Dataset end (March 2019).
    pub fn dataset_end(&self) -> Day {
        Day::from_ymd(2019, 3, 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_sum_to_table1_totals() {
        let threads: u32 = FORUM_PROFILES.iter().map(|p| p.threads).sum();
        let posts: u32 = FORUM_PROFILES.iter().map(|p| p.posts).sum();
        let tops: u32 = FORUM_PROFILES.iter().map(|p| p.tops).sum();
        let actors: u32 = FORUM_PROFILES.iter().map(|p| p.actors).sum();
        assert_eq!(threads, 44_520);
        assert_eq!(posts, 626_784);
        assert_eq!(tops, 4_137);
        assert_eq!(actors, 72_982);
    }

    #[test]
    fn only_hackforums_has_board_and_only_bhw_removes() {
        assert_eq!(
            FORUM_PROFILES
                .iter()
                .filter(|p| p.has_ewhoring_board)
                .count(),
            1
        );
        let bhw: Vec<_> = FORUM_PROFILES
            .iter()
            .filter(|p| p.tops_removed_by_mods)
            .collect();
        assert_eq!(bhw.len(), 1);
        assert_eq!(bhw[0].name, "BlackHatWorld");
        assert_eq!(bhw[0].tops, 0);
    }

    #[test]
    fn scaling_rounds_and_clamps() {
        let cfg = WorldConfig {
            scale: 0.01,
            ..WorldConfig::default()
        };
        assert_eq!(cfg.scaled(42_292, 1), 423);
        assert_eq!(cfg.scaled(3, 1), 1);
        let full = WorldConfig::default();
        assert_eq!(full.scaled(42_292, 1), 42_292);
    }

    #[test]
    fn dataset_span_matches_paper() {
        let cfg = WorldConfig::default();
        assert_eq!(cfg.dataset_start().mm_yy(), "04/08");
        assert_eq!(cfg.dataset_end().mm_yy(), "03/19");
    }
}
