//! Time-ordered epoch feed view of a generated world (streaming mode).
//!
//! The generator builds the corpus forum by forum, so entity ids are
//! not chronological. The feed re-orders thread creations and posts
//! into one global timeline, re-assigns dense ids in timeline order,
//! and slices the timeline into `K` calendar epochs of equal length
//! over the dataset window (2008-04 .. 2019-03). Because ids follow
//! the timeline, the corpus at epoch `e` is a *strict prefix* of the
//! corpus at epoch `e+1` — the invariant every incremental artifact in
//! `core::pipeline::epoch` builds on.
//!
//! Forums, boards, and actors are registration-time metadata and exist
//! from epoch 0 (their ids are unchanged); services (web, catalog,
//! index, …) are shared in full at every epoch — the *forum feed* is
//! what streams, the web is simply there when the crawler looks.

use crate::config::WorldConfig;
use crate::world::World;
use crimebb::{ActorId, BoardId, CorpusBuilder, PostId, ThreadId};
use std::collections::HashMap;
use synthrand::Day;

/// Calendar boundary of epoch `j` out of `epochs`: the last day that
/// belongs to epoch `j`. `bound(0)` is the dataset start, `bound(epochs)`
/// the dataset end; interior bounds divide the window evenly (integer
/// day arithmetic, so every caller lands on the identical boundary).
pub fn epoch_bound(config: &WorldConfig, epochs: u32, j: u32) -> Day {
    let start = u64::from(config.dataset_start().0);
    let end = u64::from(config.dataset_end().0);
    let j = u64::from(j.min(epochs));
    let day = start + (end - start) * j / u64::from(epochs.max(1));
    Day(day as u32)
}

/// The epoch (1-based) a day falls into: the smallest `j` with
/// `day <= bound(j)`. Days before the dataset window land in epoch 1,
/// days after it in the final epoch.
pub fn epoch_of_day(config: &WorldConfig, epochs: u32, day: Day) -> u32 {
    (1..=epochs.max(1))
        .find(|&j| day <= epoch_bound(config, epochs, j))
        .unwrap_or(epochs.max(1))
}

/// One timeline event: a thread opens, or a post lands in one.
#[derive(Debug, Clone)]
enum FeedEvent {
    Thread {
        board: BoardId,
        author: ActorId,
        heading: String,
        created: Day,
    },
    Post {
        thread: ThreadId,
        author: ActorId,
        date: Day,
        body: String,
        quotes: Option<PostId>,
    },
}

/// A generated world re-packaged as a time-ordered event feed sliced
/// into `K` epochs. Build one with [`Feed::new`], then materialise any
/// prefix with [`Feed::world_at`] or advance a growing world epoch by
/// epoch with [`Feed::apply_epoch`].
#[derive(Debug, Clone)]
pub struct Feed {
    epochs: u32,
    /// The world with an empty timeline: forums/boards/actors, all
    /// services, and the (id-remapped) ground truth — but no threads or
    /// posts yet.
    base: World,
    events: Vec<FeedEvent>,
    /// `ends[e]` = number of timeline events in epochs `1..=e`
    /// (`ends[0] == 0`, `ends[epochs] == events.len()`).
    ends: Vec<usize>,
}

impl Feed {
    /// Re-orders `world` into a `K`-epoch feed. Consumes the world: the
    /// feed's ids are re-assigned in timeline order, so the original
    /// (generation-ordered) ids are no longer meaningful.
    pub fn new(world: World, epochs: u32) -> Feed {
        let epochs = epochs.max(1);
        let World {
            config,
            corpus,
            mut truth,
            catalog,
            web,
            origins,
            index,
            wayback,
            hashlist,
            fx,
            hackforums,
        } = world;

        // Sort key: (day, thread-before-post, original id). Original ids
        // are unique per kind, so the order is total and deterministic.
        // A quote always refers to an earlier post of the same thread,
        // and within a thread original post ids follow posting order, so
        // quoted posts sort (and thus replay) before their quoters.
        #[derive(Clone, Copy)]
        enum Key {
            Thread(u32),
            Post(u32),
        }
        let mut keys: Vec<(Day, u8, u32, Key)> =
            Vec::with_capacity(corpus.threads().len() + corpus.posts().len());
        for t in corpus.threads() {
            keys.push((t.created, 0, t.id.0, Key::Thread(t.id.0)));
        }
        for p in corpus.posts() {
            debug_assert!(
                p.date >= corpus.thread(p.thread).created,
                "post predates its thread"
            );
            keys.push((p.date, 1, p.id.0, Key::Post(p.id.0)));
        }
        keys.sort_unstable_by_key(|&(d, k, id, _)| (d, k, id));

        // Pass 1: dense ids in timeline order.
        let mut thread_map: Vec<ThreadId> = vec![ThreadId(u32::MAX); corpus.threads().len()];
        let mut post_map: Vec<PostId> = vec![PostId(u32::MAX); corpus.posts().len()];
        let (mut next_thread, mut next_post) = (0u32, 0u32);
        for &(_, _, _, key) in &keys {
            match key {
                Key::Thread(orig) => {
                    thread_map[orig as usize] = ThreadId(next_thread);
                    next_thread += 1;
                }
                Key::Post(orig) => {
                    post_map[orig as usize] = PostId(next_post);
                    next_post += 1;
                }
            }
        }

        // Pass 2: the event list, with references remapped.
        let events: Vec<FeedEvent> = keys
            .iter()
            .map(|&(_, _, _, key)| match key {
                Key::Thread(orig) => {
                    let t = corpus.thread(ThreadId(orig));
                    FeedEvent::Thread {
                        board: t.board,
                        author: t.author,
                        heading: t.heading.clone(),
                        created: t.created,
                    }
                }
                Key::Post(orig) => {
                    let p = corpus.post(PostId(orig));
                    FeedEvent::Post {
                        thread: thread_map[p.thread.index()],
                        author: p.author,
                        date: p.date,
                        body: p.body.clone(),
                        quotes: p.quotes.map(|q| post_map[q.index()]),
                    }
                }
            })
            .collect();

        // Epoch slice offsets (events are day-sorted, so each boundary is
        // a partition point). The final epoch absorbs any stragglers.
        let day_of = |ev: &FeedEvent| match ev {
            FeedEvent::Thread { created, .. } => *created,
            FeedEvent::Post { date, .. } => *date,
        };
        let mut ends = Vec::with_capacity(epochs as usize + 1);
        ends.push(0);
        for j in 1..epochs {
            let bound = epoch_bound(&config, epochs, j);
            ends.push(events.partition_point(|ev| day_of(ev) <= bound));
        }
        ends.push(events.len());

        // Ground truth: remap the thread/post-keyed annotations; the
        // spec- and actor-keyed ones are id-stable. The truth is shared
        // unfiltered at every epoch — it is only consulted per-entity
        // (`is_top`, proof annotation), so later-epoch entries are inert.
        truth.thread_roles = truth
            .thread_roles
            .into_iter()
            .map(|(t, role)| (thread_map[t.index()], role))
            .collect::<HashMap<_, _>>();
        for pack in &mut truth.packs {
            pack.thread = thread_map[pack.thread.index()];
        }
        for t in &mut truth.csam_threads {
            *t = thread_map[t.index()];
        }
        for p in &mut truth.proof_posts {
            *p = post_map[p.index()];
        }

        // The base corpus: registration-time metadata only, in original
        // order so forum/board/actor ids are unchanged.
        let mut b = CorpusBuilder::new();
        for f in corpus.forums() {
            b.add_forum(f.name.clone());
        }
        for board in corpus.boards() {
            b.add_board(board.forum, board.name.clone(), board.category);
        }
        for a in corpus.actors() {
            b.add_actor(a.forum, a.name.clone(), a.registered);
        }

        Feed {
            epochs,
            base: World {
                config,
                corpus: b.build(),
                truth,
                catalog,
                web,
                origins,
                index,
                wayback,
                hashlist,
                fx,
                hackforums,
            },
            events,
            ends,
        }
    }

    /// Number of epochs the timeline is sliced into.
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// Calendar boundary of epoch `j` (see [`epoch_bound`]).
    pub fn bound(&self, j: u32) -> Day {
        epoch_bound(&self.base.config, self.epochs, j)
    }

    /// Timeline events in epoch `e` (1-based).
    pub fn epoch_len(&self, e: u32) -> usize {
        let e = e as usize;
        self.ends[e] - self.ends[e - 1]
    }

    /// The world before any events: the starting point for incremental
    /// ingestion via [`Feed::apply_epoch`].
    pub fn base_world(&self) -> World {
        self.base.clone()
    }

    /// Materialises the world as of the end of epoch `e` (0 = base) by
    /// replaying the timeline prefix into a fresh corpus.
    pub fn world_at(&self, e: u32) -> World {
        let mut w = self.base.clone();
        self.apply(&mut w, 0, self.ends[e.min(self.epochs) as usize]);
        w
    }

    /// Appends epoch `e`'s events to a world currently at epoch `e - 1`.
    /// Replay assigns the same dense ids whether a prefix is rebuilt
    /// from scratch or grown epoch by epoch, which is what makes a
    /// grown world *equal* to `world_at(e)` — debug builds assert the
    /// caller really is at the preceding boundary.
    pub fn apply_epoch(&self, world: &mut World, e: u32) {
        let e = e as usize;
        assert!(e >= 1 && e <= self.epochs as usize, "epoch out of range");
        debug_assert_eq!(
            world.corpus.threads().len() + world.corpus.posts().len(),
            self.ends[e - 1],
            "world is not at the preceding epoch boundary"
        );
        self.apply(world, self.ends[e - 1], self.ends[e]);
    }

    fn apply(&self, world: &mut World, from: usize, to: usize) {
        for ev in &self.events[from..to] {
            match ev {
                FeedEvent::Thread {
                    board,
                    author,
                    heading,
                    created,
                } => {
                    world
                        .corpus
                        .append_thread(*board, *author, heading.clone(), *created);
                }
                FeedEvent::Post {
                    thread,
                    author,
                    date,
                    body,
                    quotes,
                } => {
                    world
                        .corpus
                        .append_post(*thread, *author, *date, body.clone(), *quotes);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        let mut config = WorldConfig::test_scale(0xFEED);
        config.scale = 0.01;
        World::generate(config)
    }

    #[test]
    fn bounds_cover_the_dataset_window_exactly() {
        let config = WorldConfig::test_scale(1);
        for k in [1, 3, 7] {
            assert_eq!(epoch_bound(&config, k, 0), config.dataset_start());
            assert_eq!(epoch_bound(&config, k, k), config.dataset_end());
            for j in 1..=k {
                assert!(epoch_bound(&config, k, j - 1) < epoch_bound(&config, k, j));
            }
        }
    }

    #[test]
    fn epoch_of_day_matches_bounds() {
        let config = WorldConfig::test_scale(1);
        let k = 4;
        for j in 1..k {
            let b = epoch_bound(&config, k, j);
            assert_eq!(epoch_of_day(&config, k, b), j);
            assert_eq!(epoch_of_day(&config, k, b.plus_days(1)), j + 1);
        }
        assert_eq!(epoch_of_day(&config, k, epoch_bound(&config, k, k)), k);
        assert_eq!(epoch_of_day(&config, k, Day(0)), 1, "pre-window days");
        assert_eq!(
            epoch_of_day(&config, k, config.dataset_end().plus_days(9)),
            k,
            "post-window days"
        );
    }

    #[test]
    fn grown_world_equals_rebuilt_prefix_at_every_epoch() {
        let k = 4;
        let feed = Feed::new(tiny_world(), k);
        let mut grown = feed.base_world();
        for e in 1..=k {
            feed.apply_epoch(&mut grown, e);
            let rebuilt = feed.world_at(e);
            assert_eq!(
                grown.corpus.to_json().unwrap(),
                rebuilt.corpus.to_json().unwrap(),
                "epoch {e}"
            );
        }
    }

    #[test]
    fn final_epoch_replays_the_whole_corpus() {
        let world = tiny_world();
        let n_threads = world.corpus.threads().len();
        let n_posts = world.corpus.posts().len();
        let n_top = world.truth.top_count();
        let feed = Feed::new(world, 3);
        let full = feed.world_at(3);
        assert_eq!(full.corpus.threads().len(), n_threads);
        assert_eq!(full.corpus.posts().len(), n_posts);
        assert_eq!(full.truth.top_count(), n_top);
    }

    #[test]
    fn timeline_ids_are_chronological() {
        let feed = Feed::new(tiny_world(), 2);
        let w = feed.world_at(2);
        let mut last = Day(0);
        for p in w.corpus.posts() {
            assert!(p.date >= last, "post ids follow the timeline");
            last = p.date;
        }
        let mut last = Day(0);
        for t in w.corpus.threads() {
            assert!(t.created >= last, "thread ids follow the timeline");
            last = t.created;
        }
    }

    #[test]
    fn truth_is_remapped_with_the_ids() {
        let world = tiny_world();
        let tops_by_heading: Vec<String> = world
            .corpus
            .threads()
            .iter()
            .filter(|t| world.truth.is_top(t.id))
            .map(|t| t.heading.clone())
            .collect();
        let feed = Feed::new(world, 3);
        let w = feed.world_at(3);
        let remapped: Vec<String> = w
            .corpus
            .threads()
            .iter()
            .filter(|t| w.truth.is_top(t.id))
            .map(|t| t.heading.clone())
            .collect();
        let mut a = tops_by_heading.clone();
        let mut b = remapped.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "the same threads are TOPs after remapping");
    }
}
