//! Template text for headings and post bodies.
//!
//! Headings carry the class-conditional vocabulary the TOP classifier
//! learns from (paper Table 2), deliberately including hard negatives
//! ("LOOKING FOR unsaturated pack" is a request, not an offer). On forums
//! without a dedicated eWhoring board, every heading embeds an
//! `ewhor`/`e-whor` token, because the paper's extraction would not find
//! the thread otherwise.

use crate::truth::ThreadRole;
use rand::rngs::StdRng;
use rand::Rng;

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

/// The `ewhor`-bearing tokens that make a heading discoverable by the §3
/// keyword query.
const EWHOR_TOKENS: &[&str] = &["eWhoring", "ewhoring", "E-Whoring", "ewhore", "e-whoring"];

/// Generates a heading for a thread of `role`.
///
/// `force_keyword` embeds an eWhoring token (required on forums without a
/// dedicated board); on Hackforums' own board roughly half the headings
/// carry one anyway.
pub fn heading(rng: &mut StdRng, role: ThreadRole, force_keyword: bool) -> String {
    let kw = pick(rng, EWHOR_TOKENS);
    let with_kw = force_keyword || rng.gen_bool(0.5);
    let h = match role {
        ThreadRole::Top => top_heading(rng, with_kw, kw),
        ThreadRole::Request => request_heading(rng, with_kw, kw),
        ThreadRole::Tutorial => tutorial_heading(rng, with_kw, kw),
        ThreadRole::Earnings => earnings_heading(rng, with_kw, kw),
        ThreadRole::Discussion => discussion_heading(rng, with_kw, kw),
        ThreadRole::Trade => trade_heading(rng, with_kw, kw),
    };
    // Some templates have no natural slot for the keyword; when the thread
    // must be discoverable, tag it on (forum users do exactly this).
    if force_keyword && !textkit::lexicon::heading_is_ewhoring(&h) {
        format!("{h} [{kw}]")
    } else {
        h
    }
}

fn top_heading(rng: &mut StdRng, with_kw: bool, kw: &str) -> String {
    let size = rng.gen_range(2..30) * 10;
    let adj = pick(
        rng,
        &["unsaturated", "new", "private", "HQ", "fresh", "exclusive"],
    );
    let noun = pick(
        rng,
        &["pack", "collection", "set", "compilation", "repository"],
    );
    let extra = pick(rng, &["pics", "pictures", "videos", "vids", "pics + vids"]);
    let girl = pick(rng, &["girl", "sexy girl", "model", "blonde", "brunette"]);
    let verb = pick(
        rng,
        &[
            "Selling",
            "WTS",
            "Offering",
            "Giving away",
            "FREE",
            "Sharing",
        ],
    );
    let tail = if with_kw {
        format!(" for {kw}")
    } else {
        String::new()
    };
    // ~12% of real TOPs carry vague headings with none of the Table 2
    // vocabulary ("you know what this is") — the classifier's recall
    // misses come from these.
    if rng.gen_bool(0.12) {
        return match rng.gen_range(0..4) {
            0 => format!("dropping something special{tail}"),
            1 => format!("you know what this is{tail}"),
            2 => format!("enjoy this one lads{tail}"),
            _ => format!("my latest work, grab it{tail}"),
        };
    }
    match rng.gen_range(0..4) {
        0 => format!("[{verb}] {adj} {girl} {noun} - {size} {extra}{tail}"),
        1 => format!("{verb} {adj} {noun} ({size} {extra}){tail}"),
        2 => format!("{adj} {noun} of a {girl}, {size}+ {extra}{tail}"),
        _ => format!("{verb}: {girl} {noun} | {extra} | {adj}{tail}"),
    }
}

fn request_heading(rng: &mut StdRng, with_kw: bool, kw: &str) -> String {
    let noun = pick(
        rng,
        &["pack", "packs", "pics", "collection", "mentor", "advice"],
    );
    let subj = if with_kw { kw } else { "this method" };
    match rng.gen_range(0..5) {
        0 => format!("[QUESTION] how do I start with {subj}?"),
        1 => format!("Looking for unsaturated {noun}, anyone?"),
        2 => format!("WTB fresh {noun} for {subj}"),
        3 => format!("Need help with my first {noun} ({subj})"),
        _ => format!("[HELP] quick question about {subj}"),
    }
}

fn tutorial_heading(rng: &mut StdRng, with_kw: bool, kw: &str) -> String {
    let subj = if with_kw { kw } else { "the method" };
    match rng.gen_range(0..4) {
        0 => format!("[TUT] {subj} for beginners"),
        1 => format!("The definite guide to {subj}"),
        2 => format!("{subj} guide 2.0 - from zero to $100/day"),
        _ => format!("HOWTO: {subj} step by step"),
    }
}

fn earnings_heading(rng: &mut StdRng, with_kw: bool, kw: &str) -> String {
    let subj = if with_kw { kw } else { "this" };
    match rng.gen_range(0..5) {
        0 => "Post your earnings".to_string(),
        1 => format!("How much do you make with {subj}?"),
        2 => format!("${} in a week - proof inside", rng.gen_range(5..90) * 10),
        3 => format!("My {subj} profit milestones (with proof)"),
        _ => format!("Money made from {subj} - screenshots"),
    }
}

fn discussion_heading(rng: &mut StdRng, with_kw: bool, kw: &str) -> String {
    let subj = if with_kw { kw } else { "this scene" };
    // ~8% of discussions talk *about* packs in TOP vocabulary without
    // offering anything — the classifier's precision errors come from
    // these hard negatives.
    if rng.gen_bool(0.025) {
        return match rng.gen_range(0..4) {
            0 => format!("why private collections keep selling - {subj} talk"),
            1 => "the new pack video meta, discussion".to_string(),
            2 => format!("pics or videos, what converts best in {subj}?"),
            _ => "are unsaturated packs a myth?".to_string(),
        };
    }
    match rng.gen_range(0..5) {
        0 => format!("Is {subj} dead in {}?", rng.gen_range(2012..2020)),
        1 => format!("Best sites for {subj} right now"),
        2 => format!("{subj} and PayPal limits - discussion"),
        3 => format!("Why {subj} is banned here"),
        _ => format!("Thoughts on {subj}? moral side"),
    }
}

fn trade_heading(rng: &mut StdRng, with_kw: bool, kw: &str) -> String {
    let name = pick(rng, &["Ashley", "Sophie", "Emma", "Chloe", "Mia", "Lena"]);
    let app = pick(rng, &["Snapchat", "Kik", "Instagram"]);
    let tail = if with_kw {
        format!(" ({kw} ready)")
    } else {
        String::new()
    };
    format!(
        "Selling {app} account @{name}{}{tail}",
        rng.gen_range(10..99)
    )
}

/// Body of an initial post; `url_lines` are inserted verbatim (link lines
/// for previews/packs/proofs).
pub fn initial_body(rng: &mut StdRng, role: ThreadRole, url_lines: &[String]) -> String {
    let mut body = String::with_capacity(160 + url_lines.iter().map(String::len).sum::<usize>());
    match role {
        ThreadRole::Top => {
            body.push_str(pick(
                rng,
                &[
                    "Sharing my pack with you all, enjoy.",
                    "Fresh pack, barely used. Previews below.",
                    "Leave a like if you download. Unsaturated material.",
                    "My private collection, previews attached.",
                ],
            ));
        }
        ThreadRole::Request => body.push_str(pick(
            rng,
            &[
                "Can anyone point me to a good starter pack? Need advice.",
                "I wonder whether anyone has fresh material. Looking for help.",
                "General question about verification templates, help please.",
            ],
        )),
        ThreadRole::Tutorial => body.push_str(pick(
            rng,
            &[
                "Complete guide below. Step 1: make your backstory believable.",
                "This tutorial covers accounts, payment and traffic.",
            ],
        )),
        ThreadRole::Earnings => body.push_str(pick(
            rng,
            &[
                "Here is my proof of earnings for the month, selling my method too.",
                "Made good money this week, proof attached.",
                "Posting my profit screenshots, ask me anything.",
            ],
        )),
        ThreadRole::Discussion => body.push_str(pick(
            rng,
            &[
                "What do you all think about the current state of things?",
                "Saw a lot of bans lately, discuss.",
            ],
        )),
        ThreadRole::Trade => body.push_str(pick(
            rng,
            &[
                "Account comes with the original email. Price in PM.",
                "Aged account, feminine handle, perfect for the method.",
            ],
        )),
    }
    for line in url_lines {
        body.push('\n');
        body.push_str(line);
    }
    body
}

/// A short reply body. `grateful` replies (typical under TOPs) express
/// thanks; others are generic chatter.
pub fn reply_body(rng: &mut StdRng, grateful: bool) -> &'static str {
    if grateful {
        pick(
            rng,
            &[
                "Downloading, thanks for the share!",
                "just downloaded the pack, amazing pack",
                "thanks bro, leaving a like",
                "vouch, quality material",
                "link works, thanks",
            ],
        )
    } else {
        pick(
            rng,
            &[
                "bump",
                "any updates on this?",
                "interesting, following",
                "pm sent",
                "this still working in 2017?",
                "good point tbh",
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthrand::rng_from_seed;
    use textkit::lexicon::heading_is_ewhoring;

    #[test]
    fn forced_keyword_makes_headings_discoverable() {
        let mut rng = rng_from_seed(1);
        for role in [
            ThreadRole::Top,
            ThreadRole::Request,
            ThreadRole::Tutorial,
            ThreadRole::Earnings,
            ThreadRole::Discussion,
            ThreadRole::Trade,
        ] {
            for _ in 0..50 {
                let h = heading(&mut rng, role, true);
                assert!(heading_is_ewhoring(&h), "{role:?}: {h}");
            }
        }
    }

    #[test]
    fn top_headings_carry_top_vocabulary() {
        let mut rng = rng_from_seed(2);
        let lex = textkit::Lexicon::top();
        let hits = (0..100)
            .filter(|_| lex.matches(&heading(&mut rng, ThreadRole::Top, false)))
            .count();
        // ~12% of TOP headings are deliberately vague (classifier recall
        // errors come from these).
        assert!((80..=97).contains(&hits), "{hits}/100 TOP headings matched");
    }

    #[test]
    fn request_headings_carry_request_vocabulary() {
        let mut rng = rng_from_seed(3);
        let lex = textkit::Lexicon::request();
        let hits = (0..100)
            .filter(|_| lex.matches(&heading(&mut rng, ThreadRole::Request, false)))
            .count();
        assert!(hits >= 90, "only {hits}/100 request headings matched");
    }

    #[test]
    fn some_requests_look_like_tops() {
        // The hard-negative case: request headings containing TOP keywords.
        let mut rng = rng_from_seed(4);
        let lex = textkit::Lexicon::top();
        let confusing = (0..200)
            .filter(|_| lex.matches(&heading(&mut rng, ThreadRole::Request, false)))
            .count();
        assert!(confusing > 20, "want hard negatives, got {confusing}/200");
    }

    #[test]
    fn bodies_embed_url_lines() {
        let mut rng = rng_from_seed(5);
        let urls = vec![
            "preview: https://imgur.com/abc".to_string(),
            "pack: https://mediafire.com/f/xyz".to_string(),
        ];
        let body = initial_body(&mut rng, ThreadRole::Top, &urls);
        let extracted = textkit::extract_urls(&body);
        assert_eq!(extracted.len(), 2);
    }

    #[test]
    fn reply_bodies_differ_by_gratitude() {
        let mut rng = rng_from_seed(6);
        let g = reply_body(&mut rng, true);
        assert!(g.contains("thank") || g.contains("vouch") || g.contains("download"));
    }
}
