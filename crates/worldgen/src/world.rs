//! The orchestrated world build.

use crate::actors::ActorPlan;
use crate::config::{WorldConfig, FORUM_PROFILES};
use crate::finance::{ce_heading, ce_sampler, ProofFactory};
use crate::fx::FxTable;
use crate::headings;
use crate::packs::PackFactory;
use crate::threads::{generate_forum_threads, ForumThreadGen};
use crate::truth::{GroundTruth, ProofInfo, ThreadRole};
use crimebb::{ActorId, BoardCategory, BoardId, Corpus, CorpusBuilder, ForumId};
use imagesim::ImageSpec;
use rand::rngs::StdRng;
use rand::Rng;
use revsearch::{ReverseIndex, Wayback};
use safety::HashList;
use std::collections::{HashMap, HashSet};
use synthrand::{Day, LogNormal, SeedFactory, WeightedIndex};
use websim::{OriginRegistry, SiteCatalog, WebStore};

/// The generated world: corpus + web + services + ground truth.
#[derive(Debug, Clone)]
pub struct World {
    /// Generation parameters.
    pub config: WorldConfig,
    /// The forum corpus (CrimeBB analogue).
    pub corpus: Corpus,
    /// What the generator planted.
    pub truth: GroundTruth,
    /// Hosting-site catalogue.
    pub catalog: SiteCatalog,
    /// Hosted previews, packs, and proofs.
    pub web: WebStore,
    /// Origin domains of stolen material.
    pub origins: OriginRegistry,
    /// Reverse-image-search index (TinEye analogue).
    pub index: ReverseIndex,
    /// Web-archive snapshots.
    pub wayback: Wayback,
    /// Known-CSAM hash list.
    pub hashlist: HashList,
    /// Historical FX rates.
    pub fx: FxTable,
    /// The Hackforums forum id (hosts the §5/§6 analyses).
    pub hackforums: ForumId,
}

/// Interest mix per period for Hackforums side-board activity (Figure 5:
/// gaming/hacking dominate before; market/money rise during and after).
type Mix = &'static [(BoardCategory, f64)];
const MIX_BEFORE: Mix = &[
    (BoardCategory::Gaming, 0.30),
    (BoardCategory::Hacking, 0.26),
    (BoardCategory::Coding, 0.09),
    (BoardCategory::Market, 0.13),
    (BoardCategory::Money, 0.06),
    (BoardCategory::Tech, 0.06),
    (BoardCategory::Common, 0.08),
    (BoardCategory::Lounge, 0.02),
];
const MIX_DURING: Mix = &[
    (BoardCategory::Gaming, 0.17),
    (BoardCategory::Hacking, 0.16),
    (BoardCategory::Coding, 0.07),
    (BoardCategory::Market, 0.26),
    (BoardCategory::Money, 0.13),
    (BoardCategory::Tech, 0.05),
    (BoardCategory::Common, 0.12),
    (BoardCategory::Lounge, 0.04),
];
const MIX_AFTER: Mix = &[
    (BoardCategory::Gaming, 0.14),
    (BoardCategory::Hacking, 0.13),
    (BoardCategory::Coding, 0.07),
    (BoardCategory::Market, 0.26),
    (BoardCategory::Money, 0.15),
    (BoardCategory::Tech, 0.05),
    (BoardCategory::Common, 0.17),
    (BoardCategory::Lounge, 0.03),
];

impl World {
    /// Generates the world from `config`. Deterministic in `config.seed`.
    pub fn generate(config: WorldConfig) -> World {
        let seeds = SeedFactory::new(config.seed);
        let catalog = SiteCatalog::new();
        let fx = FxTable::new();
        let origins = OriginRegistry::generate(
            &mut seeds.rng("origins"),
            config.origin_domains as usize,
            Day::from_ymd(2005, 6, 1),
            config.dataset_end(),
        );
        let mut index = ReverseIndex::new();
        let mut wayback = Wayback::new();
        let mut hashlist = HashList::new();
        let mut pack_web = WebStore::new();
        let mut proof_web = WebStore::new();
        let mut truth = GroundTruth::default();
        let mut builder = CorpusBuilder::new();
        let mut hackforums = ForumId(0);

        {
            let expected_tops: u32 = FORUM_PROFILES
                .iter()
                .map(|p| config.scaled(p.tops, u32::from(p.tops > 0)))
                .sum();
            let mut packs = PackFactory::new(
                &config,
                expected_tops,
                &catalog,
                &origins,
                &mut pack_web,
                &mut index,
                &mut wayback,
                &mut hashlist,
            );
            let mut proofs = ProofFactory::new(&catalog, &mut proof_web, &fx);

            for (fi, profile) in FORUM_PROFILES.iter().enumerate() {
                let mut rng = seeds.rng_indexed("forum", fi as u64);
                let forum = builder.add_forum(profile.name);
                let is_hf = profile.has_ewhoring_board;
                if is_hf {
                    hackforums = forum;
                }

                // Boards.
                let ew_board = if is_hf {
                    builder.add_board(forum, "eWhoring", BoardCategory::EWhoring)
                } else {
                    builder.add_board(forum, "General", BoardCategory::Common)
                };
                let side_boards: HashMap<BoardCategory, BoardId> = if is_hf {
                    [
                        BoardCategory::Gaming,
                        BoardCategory::Hacking,
                        BoardCategory::Coding,
                        BoardCategory::Market,
                        BoardCategory::Money,
                        BoardCategory::Tech,
                        BoardCategory::Common,
                        BoardCategory::Lounge,
                        BoardCategory::CurrencyExchange,
                        BoardCategory::BraggingRights,
                    ]
                    .into_iter()
                    .map(|cat| (cat, builder.add_board(forum, cat.label(), cat)))
                    .collect()
                } else {
                    HashMap::new()
                };

                // Actors.
                let forum_first = Day::from_ymd(profile.first_post.0, profile.first_post.1, 1);
                let forum_open = Day(forum_first.0.saturating_sub(if is_hf { 1400 } else { 400 }));
                let n_actors = config.scaled(profile.actors, 5);
                let mut actors: Vec<(ActorId, ActorPlan)> = Vec::with_capacity(n_actors as usize);
                for i in 0..n_actors {
                    let mut plan =
                        ActorPlan::sample(&mut rng, forum_open, forum_first, config.dataset_end());
                    if i == 0 {
                        // Pin the forum's first eWhoring post to its
                        // Table 1 date; the late-year activity bias would
                        // otherwise leave the earliest month empty at
                        // small scales.
                        plan.first_ew = forum_first;
                        plan.first_post = plan.first_post.min(forum_first);
                        plan.registered = plan.registered.min(plan.first_post);
                        plan.last_ew = plan.last_ew.max(plan.first_ew);
                    }
                    let id = builder.add_actor(
                        forum,
                        format!("{}_{i}", profile.name.to_ascii_lowercase()),
                        plan.registered,
                    );
                    actors.push((id, plan));
                }

                // Proof posters: ≈1/3 of actors with ≥50 eWhoring posts plus
                // a sprinkle of smaller ones (§5.2).
                let proof_posters: HashSet<ActorId> = if is_hf {
                    actors
                        .iter()
                        .filter(|(_, p)| {
                            (p.n_ewhoring >= 46 && rng.gen_bool(0.44))
                                || (p.n_ewhoring >= 15 && p.n_ewhoring < 46 && rng.gen_bool(0.03))
                        })
                        .map(|(a, _)| *a)
                        .collect()
                } else {
                    HashSet::new()
                };

                // Pack-sharer pool: the most active actors, ~2 523 at
                // paper scale. TOP authorship Zipf-concentrates here.
                let sharer_pool: Vec<(ActorId, Day, Day)> = {
                    let mut by_activity: Vec<&(ActorId, ActorPlan)> = actors.iter().collect();
                    by_activity.sort_by_key(|(a, p)| (std::cmp::Reverse(p.n_ewhoring), *a));
                    let n = config.scaled(2_523, 5).min(actors.len() as u32) as usize;
                    by_activity
                        .iter()
                        .take(n)
                        .map(|(a, p)| (*a, p.first_ew, p.last_ew))
                        .collect()
                };
                // Zero-match producers: the mega-sharer heads the list
                // (the paper's 47-of-100 zero-match actor).
                let zero_match_producers: HashSet<ActorId> = if is_hf {
                    sharer_pool.iter().take(2).map(|&(a, _, _)| a).collect()
                } else {
                    HashSet::new()
                };

                let input = ForumThreadGen {
                    profile,
                    config: &config,
                    board: ew_board,
                    actors: &actors,
                    proof_posters: &proof_posters,
                    zero_match_producers: &zero_match_producers,
                    sharer_pool: if is_hf { &sharer_pool } else { &[] },
                };
                generate_forum_threads(
                    &mut rng,
                    &mut builder,
                    &mut truth,
                    &mut packs,
                    &mut proofs,
                    &input,
                );

                if !is_hf && config.with_side_boards {
                    // Other forums get modest off-topic activity in their
                    // General board so that %eWhoring and before/after
                    // spans are measurable for their actors too.
                    let mut events: Vec<(Day, ActorId)> = Vec::new();
                    for &(actor, plan) in &actors {
                        let n = plan.n_other.min(60);
                        for _ in 0..n {
                            let day = Day::sample_between(
                                &mut rng,
                                plan.first_post,
                                plan.last_post.max(plan.first_post),
                            );
                            events.push((day, actor));
                        }
                    }
                    events.sort_unstable_by_key(|&(d, a)| (d, a));
                    fill_board(&mut rng, &mut builder, ew_board, &events, 10.0);
                }
                if is_hf && config.with_side_boards {
                    generate_side_activity(&mut rng, &mut builder, &actors, &side_boards);
                    generate_currency_exchange(
                        &mut rng,
                        &mut builder,
                        &actors,
                        side_boards[&BoardCategory::CurrencyExchange],
                        config.dataset_end(),
                    );
                    generate_bragging_threads(
                        &mut rng,
                        &mut builder,
                        &mut truth,
                        &mut proofs,
                        &actors,
                        &proof_posters,
                        side_boards[&BoardCategory::BraggingRights],
                        &config,
                    );
                }
            }
            truth.csam_specs = packs.csam_specs.clone();
        }

        let mut web = pack_web;
        web.merge(proof_web);

        World {
            config,
            corpus: builder.build(),
            truth,
            catalog,
            web,
            origins,
            index,
            wayback,
            hashlist,
            fx,
            hackforums,
        }
    }

    /// The "human annotator" for proof-of-earnings images (§5.1): given a
    /// downloaded screenshot, returns what a researcher would read off it.
    /// Returns `None` for images that are not proof-of-earnings.
    pub fn annotate_proof(&self, spec: &ImageSpec) -> Option<&ProofInfo> {
        self.truth.proof_info.get(spec)
    }
}

/// Deals time-sorted `(date, actor)` events into threads of ~`capacity`
/// posts on `board`.
fn fill_board(
    rng: &mut StdRng,
    builder: &mut CorpusBuilder,
    board: BoardId,
    events: &[(Day, ActorId)],
    median_capacity: f64,
) {
    let dist = LogNormal::from_median(median_capacity, 0.9);
    let mut current: Option<(crimebb::ThreadId, u32)> = None;
    for &(day, actor) in events {
        match current {
            Some((thread, remaining)) if remaining > 0 => {
                builder.add_post(thread, actor, day, "", None);
                current = Some((thread, remaining - 1));
            }
            _ => {
                let thread = builder.add_thread(
                    board,
                    actor,
                    format!("general discussion #{}", builder.post_count()),
                    day,
                );
                builder.add_post(thread, actor, day, "", None);
                let cap = dist.sample(rng).round().max(1.0) as u32;
                current = Some((thread, cap));
            }
        }
    }
}

/// Generates non-eWhoring activity on Hackforums' side boards following
/// the before/during/after interest mixes.
fn generate_side_activity(
    rng: &mut StdRng,
    builder: &mut CorpusBuilder,
    actors: &[(ActorId, ActorPlan)],
    boards: &HashMap<BoardCategory, BoardId>,
) {
    let samplers: Vec<(Mix, WeightedIndex)> = [MIX_BEFORE, MIX_DURING, MIX_AFTER]
        .into_iter()
        .map(|mix| {
            let w: Vec<f64> = mix.iter().map(|&(_, p)| p).collect();
            (mix, WeightedIndex::new(&w))
        })
        .collect();

    let mut events: Vec<(Day, ActorId, BoardCategory)> = Vec::new();
    for &(actor, plan) in actors {
        if plan.n_other == 0 {
            continue;
        }
        // Period weights ∝ duration (plus one day so zero-length periods
        // can still receive a post).
        let len_before = f64::from(plan.first_ew.days_since(plan.first_post)) + 1.0;
        let len_during = f64::from(plan.last_ew.days_since(plan.first_ew)) + 1.0;
        let len_after = f64::from(plan.last_post.days_since(plan.last_ew)) + 1.0;
        let total_len = len_before + len_during + len_after;
        let windows = [
            (
                plan.first_post,
                plan.first_ew,
                len_before / total_len,
                0usize,
            ),
            (plan.first_ew, plan.last_ew, len_during / total_len, 1),
            (plan.last_ew, plan.last_post, len_after / total_len, 2),
        ];
        for &(lo, hi, share, period) in &windows {
            let n = (f64::from(plan.n_other) * share).round() as u32;
            let (mix, sampler) = &samplers[period];
            for _ in 0..n {
                let day = Day::sample_between(rng, lo, hi.max(lo));
                let cat = mix[sampler.sample(rng)].0;
                events.push((day, actor, cat));
            }
        }
    }
    events.sort_unstable_by_key(|&(d, a, c)| (d, a, c as u8));

    // Partition per category, preserving order, then fill boards.
    let mut per_cat: HashMap<BoardCategory, Vec<(Day, ActorId)>> = HashMap::new();
    for (day, actor, cat) in events {
        per_cat.entry(cat).or_default().push((day, actor));
    }
    let mut cats: Vec<BoardCategory> = per_cat.keys().copied().collect();
    cats.sort_unstable(); // deterministic board fill order
    for cat in cats {
        fill_board(rng, builder, boards[&cat], &per_cat[&cat], 8.0);
    }
}

/// Generates Currency Exchange threads for eWhoring actors (§5.1,
/// Table 7): actors with ≥50 eWhoring posts open `[H]/[W]` trade threads
/// after starting eWhoring.
fn generate_currency_exchange(
    rng: &mut StdRng,
    builder: &mut CorpusBuilder,
    actors: &[(ActorId, ActorPlan)],
    board: BoardId,
    end: Day,
) {
    let sampler = ce_sampler();
    let n_dist = LogNormal::from_median(8.0, 1.1);
    let mut events: Vec<(Day, ActorId)> = Vec::new();
    for &(actor, plan) in actors {
        if plan.n_ewhoring < 46 || !rng.gen_bool(0.34) {
            continue;
        }
        let n = (n_dist.sample(rng).round() as u32).clamp(1, 250);
        for _ in 0..n {
            let day = Day::sample_between(rng, plan.first_ew, plan.last_post.max(plan.first_ew));
            events.push((day, actor));
        }
    }
    events.sort_unstable_by_key(|&(d, a)| (d, a));
    for (day, actor) in events {
        let heading = ce_heading(rng, &sampler);
        let thread = builder.add_thread(board, actor, heading, day);
        builder.add_post(thread, actor, day, "rates inside, pm me", None);
        // Occasional reply from a trading partner.
        if rng.gen_bool(0.3) {
            let (other, _) = actors[rng.gen_range(0..actors.len())];
            builder.add_post(
                thread,
                other,
                Day((day.0 + rng.gen_range(0..4)).min(end.0)),
                "pm sent",
                None,
            );
        }
    }
}

/// Generates "Bragging Rights" threads: earnings show-offs with proofs,
/// included in the §5.1 harvest via board membership.
#[allow(clippy::too_many_arguments)]
fn generate_bragging_threads(
    rng: &mut StdRng,
    builder: &mut CorpusBuilder,
    truth: &mut GroundTruth,
    proofs: &mut ProofFactory<'_>,
    actors: &[(ActorId, ActorPlan)],
    proof_posters: &HashSet<ActorId>,
    board: BoardId,
    config: &WorldConfig,
) {
    let mut posters: Vec<ActorId> = proof_posters.iter().copied().collect();
    posters.sort_unstable(); // HashSet order is not deterministic
    if posters.is_empty() {
        return;
    }
    let plan_of: HashMap<ActorId, ActorPlan> = actors.iter().copied().collect();
    let n_threads = config.scaled(550, 1);
    let mut openings: Vec<(Day, ActorId)> = (0..n_threads)
        .map(|_| {
            let author = posters[rng.gen_range(0..posters.len())];
            let plan = plan_of[&author];
            let day = Day::sample_between(rng, plan.first_ew, plan.last_post.max(plan.first_ew));
            (day, author)
        })
        .collect();
    openings.sort_unstable_by_key(|&(d, a)| (d, a));

    for (day, author) in openings {
        let heading = headings::heading(rng, ThreadRole::Earnings, false);
        let thread = builder.add_thread(board, author, heading, day);
        truth.thread_roles.insert(thread, ThreadRole::Earnings);
        let mut lines = Vec::new();
        if rng.gen_bool(0.8) {
            lines = proofs.make_proof_lines(rng, truth, author, day, 6);
        }
        let body = headings::initial_body(rng, ThreadRole::Earnings, &lines);
        let has_proof = body.contains("Proof:");
        let post = builder.add_post(thread, author, day, body, None);
        if has_proof {
            truth.proof_posts.push(post);
        }
        // Replies, some with their own proofs.
        let mut reply_day = day;
        for _ in 0..rng.gen_range(2..12) {
            let (replier, _) = actors[rng.gen_range(0..actors.len())];
            reply_day = Day((reply_day.0 + rng.gen_range(0..5)).min(config.dataset_end().0));
            let mut body = headings::reply_body(rng, false).to_string();
            if proof_posters.contains(&replier) && rng.gen_bool(0.5) {
                for line in proofs.make_proof_lines(rng, truth, replier, reply_day, 4) {
                    body.push('\n');
                    body.push_str(&line);
                }
            }
            let has_proof = body.contains("Proof:");
            let post = builder.add_post(thread, replier, reply_day, body, None);
            if has_proof {
                truth.proof_posts.push(post);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldConfig::test_scale(0xAB))
    }

    #[test]
    fn world_generates_all_forums() {
        let w = world();
        assert_eq!(w.corpus.forums().len(), FORUM_PROFILES.len());
        assert_eq!(w.corpus.forum(w.hackforums).name, "Hackforums");
    }

    #[test]
    fn world_is_deterministic() {
        let a = World::generate(WorldConfig::test_scale(7));
        let b = World::generate(WorldConfig::test_scale(7));
        assert_eq!(a.corpus.posts().len(), b.corpus.posts().len());
        assert_eq!(a.web.len(), b.web.len());
        assert_eq!(a.index.len(), b.index.len());
        assert_eq!(a.truth.packs.len(), b.truth.packs.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldConfig::test_scale(1));
        let b = World::generate(WorldConfig::test_scale(2));
        assert_ne!(a.corpus.posts().len(), b.corpus.posts().len());
    }

    #[test]
    fn hackforums_has_side_boards_and_activity() {
        let w = world();
        let ce: Vec<_> = w
            .corpus
            .threads_in_category(w.hackforums, BoardCategory::CurrencyExchange);
        assert!(!ce.is_empty(), "currency exchange threads exist");
        let gaming = w
            .corpus
            .threads_in_category(w.hackforums, BoardCategory::Gaming);
        assert!(!gaming.is_empty(), "gaming threads exist");
    }

    #[test]
    fn truth_has_packs_proofs_and_csam() {
        let w = world();
        assert!(!w.truth.packs.is_empty());
        assert!(!w.truth.proof_info.is_empty());
        assert_eq!(w.truth.csam_specs.len() as u32, w.config.csam_images);
        assert_eq!(w.hashlist.len() as u32, w.config.csam_images);
        assert!(!w.truth.proof_posts.is_empty());
    }

    #[test]
    fn annotator_reads_only_proof_images() {
        let w = world();
        let spec = *w.truth.proof_info.keys().next().unwrap();
        assert!(w.annotate_proof(&spec).is_some());
        let not_proof = ImageSpec::of(imagesim::ImageClass::Landscape, 1);
        assert!(w.annotate_proof(&not_proof).is_none());
    }

    #[test]
    fn ewhoring_extraction_finds_other_forum_threads() {
        // Threads outside Hackforums must be discoverable via headings.
        let w = world();
        let mut per_forum: HashMap<ForumId, usize> = HashMap::new();
        for t in w.corpus.threads() {
            let forum = w.corpus.board(t.board).forum;
            if forum != w.hackforums && textkit::lexicon::heading_is_ewhoring(&t.heading) {
                *per_forum.entry(forum).or_insert(0) += 1;
            }
        }
        // All nine non-HF forums have discoverable eWhoring threads.
        assert_eq!(per_forum.len(), FORUM_PROFILES.len() - 1, "{per_forum:?}");
    }

    #[test]
    fn post_dates_stay_inside_dataset_span() {
        let w = world();
        let (lo, hi) = w.corpus.date_span().unwrap();
        assert!(lo >= Day::from_ymd(2003, 1, 1));
        assert!(hi <= w.config.dataset_end());
    }
}
