//! Property and invariant tests over world generation at varying scales
//! and seeds — the generator must stay calibrated and internally
//! consistent everywhere in its configuration space, not just at the
//! scales the unit tests happen to use.

use proptest::prelude::*;
use worldgen::{World, WorldConfig, FORUM_PROFILES};

fn config(seed: u64, scale_milli: u32) -> WorldConfig {
    WorldConfig {
        seed,
        scale: f64::from(scale_milli) / 1000.0,
        origin_domains: 150,
        csam_images: 3,
        with_side_boards: true,
    }
}

proptest! {
    // World generation is comparatively expensive; keep the case count
    // low and the scales tiny.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn worlds_are_consistent_across_seeds_and_scales(
        seed in 0u64..1_000_000,
        scale_milli in 5u32..30,
    ) {
        let w = World::generate(config(seed, scale_milli));

        // Structure: all forums, HF has its dedicated board + side boards.
        prop_assert_eq!(w.corpus.forums().len(), FORUM_PROFILES.len());
        let hf_boards = w.corpus.forum(w.hackforums).boards.len();
        prop_assert!(hf_boards >= 11, "HF has {hf_boards} boards");

        // Every post's author and thread resolve; every thread's board
        // resolves (index integrity at generation scale).
        for t in w.corpus.threads().iter().take(500) {
            let _ = w.corpus.board(t.board);
            let _ = w.corpus.actor(t.author);
        }

        // Dates: nothing beyond the dataset end.
        let (_, hi) = w.corpus.date_span().unwrap();
        prop_assert!(hi <= w.config.dataset_end());

        // Ground truth wiring: every pack URL hosted, every planted spec
        // listed.
        for rec in w.truth.packs.iter().take(50) {
            prop_assert!(w.web.entry(&rec.url).is_some());
        }
        prop_assert_eq!(w.hashlist.len(), w.truth.csam_specs.len());

        // Scaling: thread counts track the profile quotas within rounding.
        let expected: u32 = FORUM_PROFILES
            .iter()
            .map(|p| w.config.scaled(p.threads, 1))
            .sum();
        let ew_threads = ewhoring_core::extract::extract_ewhoring_threads(&w.corpus).len();
        // Extraction also picks up Bragging Rights headings; allow slack.
        let ratio = ew_threads as f64 / f64::from(expected);
        prop_assert!((0.9..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn proof_truth_scales_with_config(
        seed in 0u64..1_000_000,
    ) {
        let small = World::generate(config(seed, 8));
        let large = World::generate(config(seed, 24));
        // More world → more proofs and more packs, same seed.
        prop_assert!(large.truth.proof_info.len() >= small.truth.proof_info.len());
        prop_assert!(large.truth.packs.len() >= small.truth.packs.len());
    }
}
