//! Deterministic data-parallel execution for the hot pipeline stages.
//!
//! Re-exports the [`parkit`] primitives under the crate the pipeline
//! stages live in. The pattern was extracted from the original
//! `measure_batch` and now backs every data-parallel stage:
//!
//! * `measure_images` — per-image rendering + measurement ([`par_map`]);
//! * `top_classifier` — per-thread tokenisation, feature extraction and
//!   hybrid classification (`core::features`, `core::topcls`), plus the
//!   document-term matrix / TF-IDF work in `textkit::dtm`;
//! * `nsfv` — validation-set scoring and the exact-dedup digest count;
//! * `actors` — the eigenvector-centrality inner loop in `socgraph`
//!   (and PageRank for the ablation benches).
//!
//! **Determinism contract.** Inputs are split into contiguous chunks,
//! mapped on scoped worker threads, and reassembled in input order; the
//! mapped function is pure per item, and seeded variants derive their
//! state from `PipelineOptions::seed` plus a fixed-size block index
//! ([`par_map_seeded`]). Consequently the pipeline report is
//! byte-identical for any `PipelineOptions::workers` value — enforced by
//! the worker-matrix test in `tests/determinism.rs`. Inputs shorter than
//! [`SERIAL_CUTOFF`] stay on the calling thread; see the constant's
//! documentation for why 64.

pub use parkit::{
    effective_workers, par_map, par_map_chunks, par_map_indexed, par_map_range, par_map_seeded,
    SERIAL_CUTOFF,
};
