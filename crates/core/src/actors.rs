//! Stage 8: analysis of eWhoring actors (paper §6).
//!
//! * **Overview** (Table 8, Figure 4): per-actor eWhoring post counts,
//!   share of activity that is eWhoring, and days active before/after the
//!   eWhoring window, grouped into the paper's ≥1/≥10/≥50/… cohorts.
//! * **Social network** (§6.1): a reply/quote graph over eWhoring threads
//!   ("actor A has responded to actor B if either A explicitly quotes a
//!   post made by B … or A directly posts a reply in a thread initiated by
//!   B"), with H-index, i-10/50/100 and eigenvector centrality.
//! * **Key actors** (§6.3, Tables 9/10): rank-based selection along five
//!   indicators, their pairwise overlaps and per-group characteristics.
//! * **Interests** (Figure 5): key actors' posting mix across board
//!   categories before, during and after eWhoring ("we removed all
//!   activity in … 'The Lounge'").

use crimebb::{ActorId, BoardCategory, Corpus, ThreadId};
use serde::{Deserialize, Serialize};
use socgraph::{eigenvector_centrality_par, h_index, i_index, DiGraph};
use std::collections::{BTreeMap, HashMap, HashSet};
use synthrand::Day;

/// Per-actor measurements over the eWhoring set.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ActorMetrics {
    /// The actor.
    pub actor: ActorId,
    /// Posts in eWhoring threads.
    pub ew_posts: usize,
    /// Posts anywhere on the forum.
    pub total_posts: usize,
    /// First eWhoring post date.
    pub first_ew: Day,
    /// Last eWhoring post date.
    pub last_ew: Day,
    /// Days active before the first eWhoring post.
    pub days_before: u32,
    /// Days active after the last eWhoring post.
    pub days_after: u32,
}

impl ActorMetrics {
    /// Share of the actor's posts that are eWhoring-related.
    pub fn pct_ewhoring(&self) -> f64 {
        if self.total_posts == 0 {
            0.0
        } else {
            self.ew_posts as f64 / self.total_posts as f64
        }
    }
}

/// One Table 8 row.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CohortRow {
    /// Cohort threshold (≥ this many eWhoring posts).
    pub min_posts: usize,
    /// Actors in the cohort.
    pub actors: usize,
    /// Mean eWhoring posts per actor.
    pub avg_posts: f64,
    /// Mean percentage of activity that is eWhoring.
    pub pct_ewhoring: f64,
    /// Mean days posting before eWhoring.
    pub days_before: f64,
    /// Mean days posting after eWhoring.
    pub days_after: f64,
}

/// Table 8 thresholds.
pub const COHORT_THRESHOLDS: [usize; 7] = [1, 10, 50, 100, 200, 500, 1000];

/// Per-actor streaming counters behind the Table 8 / Figure 4 assembly
/// (carried in the epoch carry's `ActorsCarry`). Each post is folded
/// exactly once, at the epoch it arrives; [`ActorFold::metrics`] then
/// assembles the same rows as [`actor_metrics`] over the full corpus.
///
/// Every counter is an integer count or a `min`/`max` over post days —
/// all order-insensitive — so the fold is exact regardless of how the
/// timeline is sliced into epochs, and there is no float operand order
/// to preserve.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ActorFold {
    /// Posts in eWhoring threads, indexed by actor id.
    pub ew_posts: Vec<u32>,
    /// Posts anywhere on the forum, indexed by actor id.
    pub total_posts: Vec<u32>,
    /// First eWhoring post day (`Day(u32::MAX)` until the first lands).
    pub first_ew: Vec<Day>,
    /// Last eWhoring post day (`Day(0)` until the first lands).
    pub last_ew: Vec<Day>,
    /// First post day anywhere (`Day(u32::MAX)` sentinel).
    pub first_post: Vec<Day>,
    /// Last post day anywhere (`Day(0)` sentinel).
    pub last_post: Vec<Day>,
}

impl ActorFold {
    /// Sizes every counter vector for `n_actors` (actors are
    /// registration-time metadata and exist from epoch 0, so the node
    /// set never grows). Idempotent on warm carries.
    pub fn ensure(&mut self, n_actors: usize) {
        self.ew_posts.resize(n_actors, 0);
        self.total_posts.resize(n_actors, 0);
        self.first_ew.resize(n_actors, Day(u32::MAX));
        self.last_ew.resize(n_actors, Day(0));
        self.first_post.resize(n_actors, Day(u32::MAX));
        self.last_post.resize(n_actors, Day(0));
    }

    /// Folds one post into the counters. `in_ew` is whether the post's
    /// thread is in the extracted eWhoring set — membership is decided
    /// by the heading at thread creation, so the answer is identical at
    /// every later epoch.
    pub fn note_post(&mut self, actor: ActorId, date: Day, in_ew: bool) {
        let i = actor.0 as usize;
        self.total_posts[i] += 1;
        self.first_post[i] = self.first_post[i].min(date);
        self.last_post[i] = self.last_post[i].max(date);
        if in_ew {
            self.ew_posts[i] += 1;
            self.first_ew[i] = self.first_ew[i].min(date);
            self.last_ew[i] = self.last_ew[i].max(date);
        }
    }

    /// Merges another fold's counters in — the shard coordinator's half
    /// of the fold. Counts add; first/last days take min/max, matching
    /// the sentinels [`ActorFold::ensure`] seeds. Because every post is
    /// folded into exactly one shard's partial, merging the partials in
    /// any order reproduces the single-process fold exactly.
    pub fn merge(&mut self, other: &ActorFold) {
        self.ensure(other.ew_posts.len());
        for i in 0..other.ew_posts.len() {
            self.ew_posts[i] += other.ew_posts[i];
            self.total_posts[i] += other.total_posts[i];
            self.first_ew[i] = self.first_ew[i].min(other.first_ew[i]);
            self.last_ew[i] = self.last_ew[i].max(other.last_ew[i]);
            self.first_post[i] = self.first_post[i].min(other.first_post[i]);
            self.last_post[i] = self.last_post[i].max(other.last_post[i]);
        }
    }

    /// Assembles the [`actor_metrics`] rows from the carried counters:
    /// every actor with at least one eWhoring post, in ascending actor
    /// id — the same order `actor_metrics` sorts into.
    pub fn metrics(&self) -> Vec<ActorMetrics> {
        let mut out = Vec::new();
        for i in 0..self.ew_posts.len() {
            if self.ew_posts[i] == 0 {
                continue;
            }
            out.push(ActorMetrics {
                actor: ActorId(i as u32),
                ew_posts: self.ew_posts[i] as usize,
                total_posts: self.total_posts[i] as usize,
                first_ew: self.first_ew[i],
                last_ew: self.last_ew[i],
                days_before: self.first_ew[i].days_since(self.first_post[i]),
                days_after: self.last_post[i].days_since(self.last_ew[i]),
            });
        }
        out
    }
}

/// Computes per-actor metrics over the extracted eWhoring threads.
pub fn actor_metrics(corpus: &Corpus, ewhoring_threads: &[ThreadId]) -> Vec<ActorMetrics> {
    let counts = corpus.posts_per_actor_in(ewhoring_threads);
    let thread_set: HashSet<ThreadId> = ewhoring_threads.iter().copied().collect();
    let mut out: Vec<ActorMetrics> = Vec::with_capacity(counts.len());
    for (&actor, &ew_posts) in &counts {
        let (first_ew, last_ew) = corpus
            .actor_span_in_set(actor, &thread_set)
            .expect("actor posted in the set");
        let (first_post, last_post) = corpus.actor_activity_span(actor).expect("actor has posts");
        out.push(ActorMetrics {
            actor,
            ew_posts,
            total_posts: corpus.posts_by(actor).len(),
            first_ew,
            last_ew,
            days_before: first_ew.days_since(first_post),
            days_after: last_post.days_since(last_ew),
        });
    }
    out.sort_unstable_by_key(|m| m.actor);
    out
}

/// Builds Table 8 from per-actor metrics.
pub fn cohort_table(metrics: &[ActorMetrics]) -> Vec<CohortRow> {
    COHORT_THRESHOLDS
        .iter()
        .map(|&min_posts| {
            let cohort: Vec<&ActorMetrics> =
                metrics.iter().filter(|m| m.ew_posts >= min_posts).collect();
            let n = cohort.len();
            let mean = |f: &dyn Fn(&ActorMetrics) -> f64| -> f64 {
                if n == 0 {
                    0.0
                } else {
                    cohort.iter().map(|m| f(m)).sum::<f64>() / n as f64
                }
            };
            CohortRow {
                min_posts,
                actors: n,
                avg_posts: mean(&|m| m.ew_posts as f64),
                pct_ewhoring: mean(&|m| m.pct_ewhoring() * 100.0),
                days_before: mean(&|m| f64::from(m.days_before)),
                days_after: mean(&|m| f64::from(m.days_after)),
            }
        })
        .collect()
}

/// Builds the §6.1 interaction graph. Node ids are `ActorId` values.
pub fn interaction_graph(corpus: &Corpus, ewhoring_threads: &[ThreadId]) -> DiGraph {
    let mut g = DiGraph::with_nodes(corpus.actors().len());
    for &t in ewhoring_threads {
        let thread_author = corpus.thread(t).author;
        let posts = corpus.posts_in_thread(t);
        for &p in posts.iter().skip(1) {
            let post = corpus.post(p);
            let target = match post.quotes {
                Some(q) => corpus.post(q).author,
                None => thread_author,
            };
            if post.author != target {
                g.add_edge(post.author.0, target.0, 1.0);
            }
        }
    }
    g
}

/// Popularity indices of one actor (§6.1).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Popularity {
    /// H-index over initiated threads' reply counts.
    pub h_index: usize,
    /// Threads with ≥10 replies.
    pub i10: usize,
    /// Threads with ≥50 replies.
    pub i50: usize,
    /// Threads with ≥100 replies.
    pub i100: usize,
}

/// Computes popularity indices for every actor that initiated an eWhoring
/// thread.
pub fn popularity(corpus: &Corpus, ewhoring_threads: &[ThreadId]) -> HashMap<ActorId, Popularity> {
    let mut replies_by_author: HashMap<ActorId, Vec<usize>> = HashMap::new();
    for &t in ewhoring_threads {
        replies_by_author
            .entry(corpus.thread(t).author)
            .or_default()
            .push(corpus.reply_count(t));
    }
    replies_by_author
        .into_iter()
        .map(|(a, replies)| {
            (
                a,
                Popularity {
                    h_index: h_index(&replies),
                    i10: i_index(&replies, 10),
                    i50: i_index(&replies, 50),
                    i100: i_index(&replies, 100),
                },
            )
        })
        .collect()
}

/// The five §6.3 key-actor indicators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KeyGroup {
    /// Top pack sharers.
    Packs,
    /// Highest reported earnings.
    Earnings,
    /// Highest H-index.
    Popular,
    /// Most Currency-Exchange-active after starting eWhoring.
    CurrencyExchange,
    /// Highest eigenvector centrality.
    Influence,
}

impl KeyGroup {
    /// All groups in Table 9/10 order.
    pub const ALL: [KeyGroup; 5] = [
        KeyGroup::Popular,
        KeyGroup::Influence,
        KeyGroup::Earnings,
        KeyGroup::CurrencyExchange,
        KeyGroup::Packs,
    ];

    /// Short label used in the tables (paper Table 10 legend).
    pub fn label(self) -> &'static str {
        match self {
            KeyGroup::Popular => "Hi",
            KeyGroup::Influence => "I",
            KeyGroup::Earnings => "$",
            KeyGroup::CurrencyExchange => "Ce",
            KeyGroup::Packs => "P",
        }
    }
}

/// Key-actor selection output.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KeyActors {
    /// Members per group.
    pub groups: BTreeMap<KeyGroup, Vec<ActorId>>,
    /// The union (paper: 195 actors).
    pub all: Vec<ActorId>,
    /// Pairwise intersection sizes, `(a, b, |A ∩ B|)` (Table 9's
    /// off-diagonal).
    pub intersections: Vec<(KeyGroup, KeyGroup, usize)>,
    /// Actors unique to each group (Table 9's diagonal).
    pub unique: BTreeMap<KeyGroup, usize>,
}

/// Inputs for key-actor selection, all *measured* quantities.
pub struct KeyActorInputs<'a> {
    /// Per-actor metrics (Table 8 base data).
    pub metrics: &'a [ActorMetrics],
    /// Packs shared per actor (authors of detected TOPs with packs).
    pub packs_by_actor: &'a HashMap<ActorId, usize>,
    /// Measured per-actor earnings in USD.
    pub earnings_by_actor: &'a HashMap<ActorId, f64>,
    /// Popularity indices.
    pub popularity: &'a HashMap<ActorId, Popularity>,
    /// The interaction graph.
    pub graph: &'a DiGraph,
    /// CE threads per actor after starting eWhoring.
    pub ce_by_actor: &'a HashMap<ActorId, usize>,
}

/// Selects the key actors: top `k` per indicator (the paper uses 50, plus
/// a ≥6-packs rule that yielded 63 sharers). The eigenvector-centrality
/// power iteration runs across `workers` threads (0 = all cores) and is
/// bit-identical for any worker count.
pub fn select_key_actors(inputs: &KeyActorInputs<'_>, k: usize, workers: usize) -> KeyActors {
    let centrality = eigenvector_centrality_par(inputs.graph, 200, workers);
    select_key_actors_with_centrality(inputs, &centrality, k)
}

/// [`select_key_actors`] with a caller-supplied centrality vector (one
/// entry per graph node). The epoch pipeline maintains that vector
/// incrementally via warm-started power iteration; the batch path
/// computes it fresh — both feed the identical selection below.
pub fn select_key_actors_with_centrality(
    inputs: &KeyActorInputs<'_>,
    centrality: &[f64],
    k: usize,
) -> KeyActors {
    let mut groups: BTreeMap<KeyGroup, Vec<ActorId>> = BTreeMap::new();

    // Packs: everyone with ≥6 shared packs; if that undershoots (small
    // worlds), the top-k by pack count.
    let mut packers: Vec<(ActorId, usize)> = inputs
        .packs_by_actor
        .iter()
        .map(|(&a, &n)| (a, n))
        .collect();
    packers.sort_unstable_by_key(|&(a, n)| (std::cmp::Reverse(n), a));
    let by_threshold: Vec<ActorId> = packers
        .iter()
        .filter(|&&(_, n)| n >= 6)
        .map(|&(a, _)| a)
        .collect();
    let packs_group = if by_threshold.len() >= 3 {
        by_threshold
    } else {
        packers.iter().take(k).map(|&(a, _)| a).collect()
    };
    groups.insert(KeyGroup::Packs, packs_group);

    // Earnings: top-k by reported USD.
    let mut earners: Vec<(ActorId, f64)> = inputs
        .earnings_by_actor
        .iter()
        .map(|(&a, &u)| (a, u))
        .collect();
    earners.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite").then(x.0.cmp(&y.0)));
    groups.insert(
        KeyGroup::Earnings,
        earners.iter().take(k).map(|&(a, _)| a).collect(),
    );

    // Popular: top-k by H-index.
    let mut popular: Vec<(ActorId, usize)> = inputs
        .popularity
        .iter()
        .map(|(&a, p)| (a, p.h_index))
        .collect();
    popular.sort_unstable_by_key(|&(a, h)| (std::cmp::Reverse(h), a));
    groups.insert(
        KeyGroup::Popular,
        popular.iter().take(k).map(|&(a, _)| a).collect(),
    );

    // Influence: top-k eigenvector centrality.
    let mut influential: Vec<(ActorId, f64)> = inputs
        .metrics
        .iter()
        .map(|m| {
            (
                m.actor,
                centrality.get(m.actor.index()).copied().unwrap_or(0.0),
            )
        })
        .collect();
    influential.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite").then(x.0.cmp(&y.0)));
    groups.insert(
        KeyGroup::Influence,
        influential.iter().take(k).map(|&(a, _)| a).collect(),
    );

    // Currency exchange: top-k by post-eWhoring CE thread count.
    let mut ce: Vec<(ActorId, usize)> = inputs.ce_by_actor.iter().map(|(&a, &n)| (a, n)).collect();
    ce.sort_unstable_by_key(|&(a, n)| (std::cmp::Reverse(n), a));
    groups.insert(
        KeyGroup::CurrencyExchange,
        ce.iter()
            .take(k)
            .filter(|&&(_, n)| n > 0)
            .map(|&(a, _)| a)
            .collect(),
    );

    // Union + intersections.
    let sets: BTreeMap<KeyGroup, HashSet<ActorId>> = groups
        .iter()
        .map(|(&g, v)| (g, v.iter().copied().collect()))
        .collect();
    let mut all: Vec<ActorId> = sets.values().flatten().copied().collect();
    all.sort_unstable();
    all.dedup();

    let mut intersections = Vec::new();
    for (i, &a) in KeyGroup::ALL.iter().enumerate() {
        for &b in &KeyGroup::ALL[i + 1..] {
            let n = sets[&a].intersection(&sets[&b]).count();
            intersections.push((a, b, n));
        }
    }
    let mut unique = BTreeMap::new();
    for &g in &KeyGroup::ALL {
        let n = sets[&g]
            .iter()
            .filter(|a| {
                KeyGroup::ALL
                    .iter()
                    .filter(|&&other| other != g)
                    .all(|other| !sets[other].contains(a))
            })
            .count();
        unique.insert(g, n);
    }

    KeyActors {
        groups,
        all,
        intersections,
        unique,
    }
}

/// Table 10 row: group-mean characteristics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupProfile {
    /// Group label ("ALL" for the union row).
    pub group: String,
    /// Mean total posts.
    pub posts: f64,
    /// Mean % of posts in eWhoring.
    pub pct_ewhoring: f64,
    /// Mean days before eWhoring.
    pub days_before: f64,
    /// Mean reported earnings (USD).
    pub amount: f64,
    /// Mean H-index.
    pub h: f64,
    /// Mean i-10.
    pub i10: f64,
    /// Mean i-100.
    pub i100: f64,
    /// Mean packs shared.
    pub packs: f64,
    /// Mean CE threads.
    pub currency_exchange: f64,
}

/// Builds Table 10 (one row per group plus ALL).
pub fn group_profiles(inputs: &KeyActorInputs<'_>, key: &KeyActors) -> Vec<GroupProfile> {
    let metric_of: HashMap<ActorId, &ActorMetrics> =
        inputs.metrics.iter().map(|m| (m.actor, m)).collect();
    let profile = |label: &str, members: &[ActorId]| -> GroupProfile {
        let n = members.len().max(1) as f64;
        let mut p = GroupProfile {
            group: label.to_string(),
            posts: 0.0,
            pct_ewhoring: 0.0,
            days_before: 0.0,
            amount: 0.0,
            h: 0.0,
            i10: 0.0,
            i100: 0.0,
            packs: 0.0,
            currency_exchange: 0.0,
        };
        for a in members {
            if let Some(m) = metric_of.get(a) {
                p.posts += m.total_posts as f64 / n;
                p.pct_ewhoring += m.pct_ewhoring() * 100.0 / n;
                p.days_before += f64::from(m.days_before) / n;
            }
            p.amount += inputs.earnings_by_actor.get(a).copied().unwrap_or(0.0) / n;
            if let Some(pop) = inputs.popularity.get(a) {
                p.h += pop.h_index as f64 / n;
                p.i10 += pop.i10 as f64 / n;
                p.i100 += pop.i100 as f64 / n;
            }
            p.packs += inputs.packs_by_actor.get(a).copied().unwrap_or(0) as f64 / n;
            p.currency_exchange += inputs.ce_by_actor.get(a).copied().unwrap_or(0) as f64 / n;
        }
        p
    };
    let mut rows: Vec<GroupProfile> = KeyGroup::ALL
        .iter()
        .map(|g| profile(g.label(), &key.groups[g]))
        .collect();
    rows.push(profile("ALL", &key.all));
    rows
}

/// Figure 5: interest shares per period for the key actors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InterestEvolution {
    /// `(category label, before %, during %, after %)`.
    pub shares: Vec<(String, f64, f64, f64)>,
}

/// Computes interest evolution. "We removed all activity in a general
/// board named 'The Lounge'"; the eWhoring board itself is excluded too
/// (the figure tracks *other* interests).
pub fn interest_evolution(
    corpus: &Corpus,
    metrics: &[ActorMetrics],
    key_actors: &[ActorId],
) -> InterestEvolution {
    let metric_of: HashMap<ActorId, &ActorMetrics> = metrics.iter().map(|m| (m.actor, m)).collect();
    let mut per_period: [BTreeMap<BoardCategory, usize>; 3] = Default::default();
    for a in key_actors {
        let Some(m) = metric_of.get(a) else { continue };
        let windows = [
            (Day(0), Day(m.first_ew.0.saturating_sub(1))),
            (m.first_ew, m.last_ew),
            (m.last_ew.plus_days(1), Day(u32::MAX)),
        ];
        for (i, &(lo, hi)) in windows.iter().enumerate() {
            if lo > hi {
                continue;
            }
            for (cat, n) in corpus.actor_interests(*a, Some((lo, hi))) {
                if matches!(cat, BoardCategory::Lounge | BoardCategory::EWhoring) {
                    continue;
                }
                *per_period[i].entry(cat).or_insert(0) += n;
            }
        }
    }
    let totals: [f64; 3] = [
        per_period[0].values().sum::<usize>() as f64,
        per_period[1].values().sum::<usize>() as f64,
        per_period[2].values().sum::<usize>() as f64,
    ];
    let mut cats: Vec<BoardCategory> = per_period.iter().flat_map(|m| m.keys().copied()).collect();
    cats.sort_unstable();
    cats.dedup();
    let shares = cats
        .into_iter()
        .map(|c| {
            let share = |i: usize| -> f64 {
                if totals[i] == 0.0 {
                    0.0
                } else {
                    100.0 * per_period[i].get(&c).copied().unwrap_or(0) as f64 / totals[i]
                }
            };
            (c.label().to_string(), share(0), share(1), share(2))
        })
        .collect();
    InterestEvolution { shares }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_ewhoring_threads;
    use worldgen::{World, WorldConfig};

    fn setup() -> (World, Vec<ThreadId>, Vec<ActorMetrics>) {
        let w = World::generate(WorldConfig::test_scale(0xAC7));
        let set = extract_ewhoring_threads(&w.corpus);
        let threads = set.all_threads();
        let metrics = actor_metrics(&w.corpus, &threads);
        (w, threads, metrics)
    }

    #[test]
    fn cohort_table_shrinks_and_pct_rises() {
        let (_, _, metrics) = setup();
        let table = cohort_table(&metrics);
        assert_eq!(table.len(), 7);
        for w in table.windows(2) {
            assert!(w[0].actors >= w[1].actors, "cohorts nest");
        }
        // ~80% of actors make <10 posts (Table 8 shape).
        let small_share = 1.0 - table[1].actors as f64 / table[0].actors as f64;
        assert!((0.70..0.95).contains(&small_share), "share {small_share}");
        // Engagement correlates with focus: the ≥50 cohort is more
        // eWhoring-centric than the base.
        assert!(
            table[2].pct_ewhoring > table[0].pct_ewhoring,
            "{} vs {}",
            table[2].pct_ewhoring,
            table[0].pct_ewhoring
        );
    }

    #[test]
    fn days_before_is_months_scale() {
        let (_, _, metrics) = setup();
        let table = cohort_table(&metrics);
        // Paper: ~165 days before for the ≥1 cohort.
        assert!(
            (60.0..320.0).contains(&table[0].days_before),
            "before {}",
            table[0].days_before
        );
    }

    #[test]
    fn graph_reflects_replies() {
        let (w, threads, _) = setup();
        let g = interaction_graph(&w.corpus, &threads);
        assert!(g.edge_count() > 0);
        // Total edge weight equals replies directed at other actors.
        let mut expected = 0.0;
        for &t in &threads {
            let author = w.corpus.thread(t).author;
            for &p in w.corpus.posts_in_thread(t).iter().skip(1) {
                let post = w.corpus.post(p);
                let target = post.quotes.map_or(author, |q| w.corpus.post(q).author);
                if target != post.author {
                    expected += 1.0;
                }
            }
        }
        let total: f64 = (0..g.node_count() as u32).map(|n| g.out_strength(n)).sum();
        assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn popularity_indices_are_consistent() {
        let (w, threads, _) = setup();
        let pop = popularity(&w.corpus, &threads);
        assert!(!pop.is_empty());
        for p in pop.values() {
            assert!(p.i100 <= p.i50 && p.i50 <= p.i10);
        }
        let max_h = pop.values().map(|p| p.h_index).max().unwrap();
        assert!(max_h >= 2, "somebody is popular (max H {max_h})");
    }

    #[test]
    fn key_actor_selection_builds_five_groups() {
        let (w, threads, metrics) = setup();
        let g = interaction_graph(&w.corpus, &threads);
        let pop = popularity(&w.corpus, &threads);
        let mut packs_by_actor: HashMap<ActorId, usize> = HashMap::new();
        for rec in &w.truth.packs {
            *packs_by_actor.entry(rec.actor).or_insert(0) += 1;
        }
        let earnings: HashMap<ActorId, f64> = w.truth.earnings_by_actor.clone();
        let counts = w.corpus.posts_per_actor_in(&threads);
        let mut ce_by_actor: HashMap<ActorId, usize> = HashMap::new();
        for (&a, _) in counts.iter() {
            let first = w.corpus.actor_span_in(a, &threads).map(|(f, _)| f);
            let n = w
                .corpus
                .threads_started_by(a, BoardCategory::CurrencyExchange, first)
                .len();
            if n > 0 {
                ce_by_actor.insert(a, n);
            }
        }
        let inputs = KeyActorInputs {
            metrics: &metrics,
            packs_by_actor: &packs_by_actor,
            earnings_by_actor: &earnings,
            popularity: &pop,
            graph: &g,
            ce_by_actor: &ce_by_actor,
        };
        let key = select_key_actors(&inputs, 10, 2);
        assert_eq!(key.groups.len(), 5);
        assert!(!key.all.is_empty());
        // Union is at most the sum of group sizes and at least the largest.
        let sum: usize = key.groups.values().map(Vec::len).sum();
        let max = key.groups.values().map(Vec::len).max().unwrap();
        assert!(key.all.len() <= sum && key.all.len() >= max);
        assert_eq!(key.intersections.len(), 10);

        // Table 10 rows exist and the ALL row aggregates everyone.
        let rows = group_profiles(&inputs, &key);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[5].group, "ALL");
        assert!(rows.iter().all(|r| r.posts >= 0.0));

        // Figure 5: gaming interest declines from before to during;
        // market rises.
        let evo = interest_evolution(&w.corpus, &metrics, &key.all);
        let gaming = evo.shares.iter().find(|(c, ..)| c == "Gaming");
        if let Some(&(_, before, during, _)) = gaming {
            assert!(before > during, "gaming before {before} vs during {during}");
        }
        let market = evo.shares.iter().find(|(c, ..)| c == "Market");
        if let Some(&(_, before, during, _)) = market {
            assert!(during > before, "market before {before} during {during}");
        }
    }

    /// The epoch-carry fold assembles the exact rows the batch
    /// `actor_metrics` computes: integer counters and min/max day spans
    /// are order-insensitive, so folding post-by-post over the timeline
    /// equals the one-shot scan — serialized byte-for-byte.
    #[test]
    fn actor_fold_matches_batch_actor_metrics() {
        let (w, threads, metrics) = setup();
        let ewset: HashSet<ThreadId> = threads.iter().copied().collect();
        let mut fold = ActorFold::default();
        fold.ensure(w.corpus.actors().len());
        let posts = w.corpus.posts();
        // Fold in two arbitrary slices — the warm-carry shape — not one.
        let split = posts.len() / 3;
        for post in &posts[..split] {
            fold.note_post(post.author, post.date, ewset.contains(&post.thread));
        }
        for post in &posts[split..] {
            fold.note_post(post.author, post.date, ewset.contains(&post.thread));
        }
        let folded = fold.metrics();
        assert!(!folded.is_empty());
        assert_eq!(
            serde_json::to_string(&folded).unwrap(),
            serde_json::to_string(&metrics).unwrap(),
            "folded counters must reproduce the batch scan"
        );
    }
}
