//! Extension: the §8 intervention proposal, simulated.
//!
//! The paper's discussion recommends that "blacklists with hashes of known
//! images used for eWhoring, e.g. those found in packs, could be created
//! and shared among stakeholders", so that image-sharing and cloud-storage
//! sites can enforce their terms of service proactively. This module
//! simulates that intervention on the generated world:
//!
//! 1. Pick a deployment date `T`.
//! 2. Build a blacklist from the robust hashes of every pack image the
//!    pipeline crawled from material posted *before* `T` (what researchers
//!    or industry could have known by then).
//! 3. Replay the packs posted *after* `T` and measure what a hash-matching
//!    upload filter would have caught: the fraction of post-`T` pack
//!    images already on the list, and the fraction of post-`T` packs that
//!    would have been materially disrupted (≥ half their content blocked).
//!
//! Because saturated packs recycle earlier material while self-made and
//! tool-mirrored packs evade hashing, the simulation reproduces the
//! intervention's real-world limits, not just its best case.

use crate::crawl::PackDownload;
use crate::nsfv::ImageMeasures;
use imagesim::RobustHash;
use serde::{Deserialize, Serialize};
use synthrand::Day;

/// Hamming threshold for blacklist matching — the reverse-search setting,
/// since site-side filters face the same edited-copy problem.
pub const BLACKLIST_MATCH_THRESHOLD: u32 = imagesim::DEFAULT_MATCH_THRESHOLD;

/// A shared industry blacklist of known pack-image hashes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SharedBlacklist {
    hashes: Vec<RobustHash>,
}

impl SharedBlacklist {
    /// An empty blacklist.
    pub fn new() -> SharedBlacklist {
        SharedBlacklist::default()
    }

    /// Adds a known image hash (exact duplicates are skipped).
    pub fn add(&mut self, hash: RobustHash) {
        if !self.hashes.contains(&hash) {
            self.hashes.push(hash);
        }
    }

    /// Number of listed hashes.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when nothing is listed.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Would an upload filter using this list block `hash`?
    pub fn blocks(&self, hash: &RobustHash) -> bool {
        self.hashes
            .iter()
            .any(|h| h.distance(hash) <= BLACKLIST_MATCH_THRESHOLD)
    }
}

/// Outcome of the intervention simulation.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct InterventionOutcome {
    /// Deployment date.
    pub deployed: Day,
    /// Hashes on the shared list at deployment.
    pub blacklist_size: usize,
    /// Packs posted after deployment.
    pub later_packs: usize,
    /// Images in those packs.
    pub later_images: usize,
    /// Images an upload filter would have blocked.
    pub blocked_images: usize,
    /// Packs with at least half their images blocked ("disrupted").
    pub disrupted_packs: usize,
    /// Packs with zero blocked images (fresh or evading material).
    pub untouched_packs: usize,
}

impl InterventionOutcome {
    /// Fraction of post-deployment images blocked.
    pub fn image_block_rate(&self) -> f64 {
        if self.later_images == 0 {
            0.0
        } else {
            self.blocked_images as f64 / self.later_images as f64
        }
    }

    /// Fraction of post-deployment packs disrupted.
    pub fn pack_disruption_rate(&self) -> f64 {
        if self.later_packs == 0 {
            0.0
        } else {
            self.disrupted_packs as f64 / self.later_packs as f64
        }
    }
}

/// Runs the simulation over crawled packs (with their per-image measures,
/// as produced by the pipeline) and a deployment date.
pub fn simulate_blacklist(
    packs: &[(&PackDownload, &[ImageMeasures])],
    deployed: Day,
) -> InterventionOutcome {
    let mut blacklist = SharedBlacklist::new();
    for (pack, measures) in packs {
        if pack.link.posted < deployed {
            for m in *measures {
                blacklist.add(m.hash);
            }
        }
    }
    let mut outcome = InterventionOutcome {
        deployed,
        blacklist_size: blacklist.len(),
        ..InterventionOutcome::default()
    };
    for (pack, measures) in packs {
        if pack.link.posted < deployed || measures.is_empty() {
            continue;
        }
        outcome.later_packs += 1;
        let blocked = measures
            .iter()
            .filter(|m| blacklist.blocks(&m.hash))
            .count();
        outcome.later_images += measures.len();
        outcome.blocked_images += blocked;
        if blocked * 2 >= measures.len() {
            outcome.disrupted_packs += 1;
        }
        if blocked == 0 {
            outcome.untouched_packs += 1;
        }
    }
    outcome
}

/// Sweeps deployment dates and returns `(date, image block rate,
/// pack disruption rate)` — earlier deployment catches less (smaller
/// list) but also has more future material to affect.
pub fn deployment_sweep(
    packs: &[(&PackDownload, &[ImageMeasures])],
    dates: &[Day],
) -> Vec<(Day, f64, f64)> {
    dates
        .iter()
        .map(|&d| {
            let o = simulate_blacklist(packs, d);
            (d, o.image_block_rate(), o.pack_disruption_rate())
        })
        .collect()
}

/// Extension: payment-platform screening (§8: "payment platforms may be
/// able to play a role in detecting and shutting down accounts used to
/// receive payments for eWhoring").
///
/// A platform-side detector that flags accounts receiving many small
/// incoming transactions in a short window — the signature the paper's
/// §5.2 analysis exposes (typical trades of US$5–50, tens per month for
/// committed actors). Applied to the harvested proofs, it measures how
/// much of the reported revenue such a rule would have frozen, and how
/// many low-volume actors escape.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PaymentScreening {
    /// Actors whose proofs show at least the threshold transaction volume.
    pub flagged_actors: usize,
    /// Actors below the radar.
    pub unflagged_actors: usize,
    /// USD attributed to flagged actors.
    pub flagged_usd: f64,
    /// Total USD observed.
    pub total_usd: f64,
}

impl PaymentScreening {
    /// Share of observed revenue a platform freeze would have hit.
    pub fn usd_coverage(&self) -> f64 {
        if self.total_usd == 0.0 {
            0.0
        } else {
            self.flagged_usd / self.total_usd
        }
    }
}

/// Runs the payment-screening rule over harvested proofs: an actor is
/// flagged when any single proof shows ≥ `min_tx` itemised incoming
/// transactions (a platform sees the true ledger, so this is a lower
/// bound on what it could detect).
pub fn screen_payment_accounts(
    proofs: &[crate::finance::ProofRecord],
    min_tx: u32,
) -> PaymentScreening {
    use std::collections::HashMap;
    let mut per_actor: HashMap<crimebb::ActorId, (f64, bool)> = HashMap::new();
    for p in proofs {
        let e = per_actor.entry(p.actor).or_insert((0.0, false));
        e.0 += p.usd;
        if p.transactions.is_some_and(|t| t >= min_tx) {
            e.1 = true;
        }
    }
    let mut out = PaymentScreening::default();
    for (_, (usd, flagged)) in per_actor {
        out.total_usd += usd;
        if flagged {
            out.flagged_actors += 1;
            out.flagged_usd += usd;
        } else {
            out.unflagged_actors += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::crawl_tops;
    use worldgen::{ThreadRole, World, WorldConfig};

    fn crawled_packs(world: &World) -> Vec<(crate::crawl::PackDownload, Vec<ImageMeasures>)> {
        let mut tops: Vec<_> = world
            .truth
            .thread_roles
            .iter()
            .filter(|&(_, &r)| r == ThreadRole::Top)
            .map(|(&t, _)| t)
            .collect();
        tops.sort_unstable();
        let crawl = crawl_tops(&world.corpus, &world.catalog, &world.web, &tops);
        crawl
            .packs
            .into_iter()
            .map(|p| {
                let measures: Vec<ImageMeasures> = p
                    .images
                    .iter()
                    .take(20)
                    .map(|img| ImageMeasures::of(&img.render()))
                    .collect();
                (p, measures)
            })
            .collect()
    }

    fn as_refs(
        owned: &[(crate::crawl::PackDownload, Vec<ImageMeasures>)],
    ) -> Vec<(&crate::crawl::PackDownload, &[ImageMeasures])> {
        owned.iter().map(|(p, m)| (p, m.as_slice())).collect()
    }

    #[test]
    fn blacklist_blocks_recycled_material() {
        let world = World::generate(WorldConfig::test_scale(0x1417));
        let owned = crawled_packs(&world);
        let packs = as_refs(&owned);
        assert!(packs.len() >= 4, "need packs to simulate");
        // Deploy in the middle of the posting timeline.
        let mut dates: Vec<Day> = packs.iter().map(|(p, _)| p.link.posted).collect();
        dates.sort_unstable();
        let mid = dates[dates.len() / 2];
        let outcome = simulate_blacklist(&packs, mid);
        assert!(outcome.blacklist_size > 0);
        assert!(outcome.later_packs > 0);
        // Saturated packs recycle earlier images, so the filter catches a
        // real share — but mirrored/self-made material evades, so never
        // everything.
        let rate = outcome.image_block_rate();
        assert!(rate > 0.05, "block rate {rate}");
        assert!(rate < 0.95, "block rate {rate} suspiciously total");
        assert!(outcome.untouched_packs > 0, "evading packs exist");
    }

    #[test]
    fn later_deployment_has_bigger_list_but_less_future() {
        let world = World::generate(WorldConfig::test_scale(0x1418));
        let owned = crawled_packs(&world);
        let packs = as_refs(&owned);
        let mut dates: Vec<Day> = packs.iter().map(|(p, _)| p.link.posted).collect();
        dates.sort_unstable();
        let early = dates[dates.len() / 5];
        let late = dates[dates.len() * 4 / 5];
        let sweep = deployment_sweep(&packs, &[early, late]);
        let o_early = simulate_blacklist(&packs, early);
        let o_late = simulate_blacklist(&packs, late);
        assert!(o_late.blacklist_size >= o_early.blacklist_size);
        assert!(o_late.later_packs <= o_early.later_packs);
        assert_eq!(sweep.len(), 2);
    }

    #[test]
    fn deploying_before_everything_blocks_nothing() {
        let world = World::generate(WorldConfig::test_scale(0x1419));
        let owned = crawled_packs(&world);
        let packs = as_refs(&owned);
        let outcome = simulate_blacklist(&packs, Day(0));
        assert_eq!(outcome.blacklist_size, 0);
        assert_eq!(outcome.blocked_images, 0);
        assert_eq!(outcome.untouched_packs, outcome.later_packs);
    }

    #[test]
    fn payment_screening_splits_by_volume() {
        use crate::finance::ProofRecord;
        use imagesim::PaymentPlatform;
        let proofs = vec![
            ProofRecord {
                actor: crimebb::ActorId(1),
                platform: PaymentPlatform::PayPal,
                usd: 900.0,
                transactions: Some(25),
                month_index: 2016 * 12,
            },
            ProofRecord {
                actor: crimebb::ActorId(2),
                platform: PaymentPlatform::AmazonGiftCard,
                usd: 40.0,
                transactions: Some(2),
                month_index: 2016 * 12,
            },
            ProofRecord {
                actor: crimebb::ActorId(3),
                platform: PaymentPlatform::PayPal,
                usd: 100.0,
                transactions: None,
                month_index: 2016 * 12,
            },
        ];
        let s = screen_payment_accounts(&proofs, 10);
        assert_eq!(s.flagged_actors, 1);
        assert_eq!(s.unflagged_actors, 2);
        assert!((s.usd_coverage() - 900.0 / 1040.0).abs() < 1e-9);
    }

    #[test]
    fn payment_screening_covers_most_revenue_in_generated_worlds() {
        use crate::extract::extract_ewhoring_threads;
        use crate::finance::harvest_earnings;
        use safety::SafetyGate;
        let world = World::generate(WorldConfig::test_scale(0x90A1));
        let threads = extract_ewhoring_threads(&world.corpus).all_threads();
        let gate = SafetyGate::new(world.hashlist.clone());
        let harvest = harvest_earnings(&world, &gate, &threads);
        if harvest.proofs.len() < 10 {
            return;
        }
        let s = screen_payment_accounts(&harvest.proofs, 10);
        // High earners transact a lot, so revenue coverage beats actor
        // coverage — the asymmetry that makes the intervention attractive.
        let actor_share = s.flagged_actors as f64 / (s.flagged_actors + s.unflagged_actors) as f64;
        assert!(
            s.usd_coverage() >= actor_share,
            "usd {} vs actors {actor_share}",
            s.usd_coverage()
        );
        assert!(s.total_usd > 0.0);
    }

    #[test]
    fn blacklist_dedupes_and_matches_edits() {
        use imagesim::{ImageClass, ImageSpec, Transform};
        let mut list = SharedBlacklist::new();
        let spec = ImageSpec::model_photo(ImageClass::ModelNude, 5, 5);
        let h = RobustHash::of(&spec.render());
        list.add(h);
        list.add(h);
        assert_eq!(list.len(), 1);
        // A lightly edited re-upload is still blocked; a mirrored one
        // escapes (the evasion the paper documents).
        let noisy = Transform::Noise {
            amplitude: 6,
            seed: 1,
        }
        .apply(&spec.render());
        assert!(list.blocks(&RobustHash::of(&noisy)));
        let mirrored = Transform::MirrorHorizontal.apply(&spec.render());
        assert!(!list.blocks(&RobustHash::of(&mirrored)));
    }
}
