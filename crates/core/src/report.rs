//! Plain-text rendering of every table and figure in the paper.
//!
//! The `report` binary in `ewhoring-bench` prints these against a
//! generated world; `EXPERIMENTS.md` records paper-vs-measured values.
//! Figures are rendered as the numeric series behind them (CDF quantiles,
//! monthly counts, percentage tables) — the shapes the paper plots.

use crate::pipeline::{PipelineReport, StageStatus};
use std::fmt::Write as _;

/// A minimal fixed-width text-table builder.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Renders with right-aligned numeric-looking cells.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths[i];
                if i == 0 {
                    let _ = write!(line, "{:<w$}", cells[i]);
                } else {
                    let _ = write!(line, "{:>w$}", cells[i]);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `d` decimals.
fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Quantiles of a sample (q in `[0,1]`), by sorting. Empty input → zeros.
pub fn quantiles(values: &[f64], qs: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return vec![0.0; qs.len()];
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    qs.iter()
        .map(|&q| {
            let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
            sorted[idx]
        })
        .collect()
}

/// Table 2: the methodology's keyword lexicons (static — rendered for
/// completeness so every paper table appears in the report).
pub fn table2() -> String {
    use textkit::lexicon::{
        EARNINGS_KEYWORDS, EWHORING_KEYWORDS, REQUEST_KEYWORDS, TOP_KEYWORDS, TUTORIAL_KEYWORDS,
    };
    let mut out = String::from(
        "Table 2: keywords used in the methodology
",
    );
    let mut row = |label: &str, words: &[&str]| {
        let _ = writeln!(out, "  {label}: {}", words.join(", "));
    };
    row("Extract eWhoring-related threads", EWHORING_KEYWORDS);
    row("Classify Threads Offering Packs", TOP_KEYWORDS);
    row("Detect info-requesting posts", REQUEST_KEYWORDS);
    row("Detect threads providing tutorials", TUTORIAL_KEYWORDS);
    row("Extract posts sharing earnings", EARNINGS_KEYWORDS);
    out
}

/// Figure 1: the pipeline itself — rendered as the stage sequence with
/// measured wall-clock times.
pub fn fig1(report: &PipelineReport) -> String {
    let mut out = String::from(
        "Figure 1: the processing pipeline (measured stages)
",
    );
    for t in &report.timings {
        let _ = writeln!(
            out,
            "  {:<16} {:>10} µs  {:>8} items",
            t.stage, t.wall_us, t.items
        );
    }
    out
}

/// Table 1: eWhoring conversations per forum.
pub fn table1(report: &PipelineReport) -> String {
    let mut t = TextTable::new(&[
        "Forum",
        "#Threads",
        "#Posts",
        "First post",
        "#TOPs",
        "#Actors",
    ]);
    let mut rows = report.forums.clone();
    rows.sort_by_key(|r| std::cmp::Reverse(r.threads));
    let (mut threads, mut posts, mut tops, mut actors) = (0, 0, 0, 0);
    for r in &rows {
        threads += r.threads;
        posts += r.posts;
        tops += r.tops;
        actors += r.actors;
        t.row(vec![
            r.forum.clone(),
            r.threads.to_string(),
            r.posts.to_string(),
            r.first_post.clone(),
            r.tops.to_string(),
            r.actors.to_string(),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        threads.to_string(),
        posts.to_string(),
        String::new(),
        tops.to_string(),
        actors.to_string(),
    ]);
    format!(
        "Table 1: eWhoring-related conversations per forum\n{}",
        t.render()
    )
}

/// §4.1: classifier evaluation and hybrid overlap.
pub fn section41(report: &PipelineReport) -> String {
    let c = &report.topcls;
    let mut out = String::from("§4.1: hybrid TOP classifier\n");
    let _ = writeln!(
        out,
        "  annotated sample positives: {} (paper: 175/1000)",
        c.sample_positives
    );
    let _ = writeln!(
        out,
        "  hybrid   P={:.2} R={:.2} F1={:.2} (paper: 0.92/0.93/0.92)",
        c.hybrid_metrics.precision, c.hybrid_metrics.recall, c.hybrid_metrics.f1
    );
    let _ = writeln!(
        out,
        "  ML only  P={:.2} R={:.2} F1={:.2}",
        c.ml_metrics.precision, c.ml_metrics.recall, c.ml_metrics.f1
    );
    let _ = writeln!(
        out,
        "  heuristic P={:.2} R={:.2} F1={:.2}",
        c.heuristic_metrics.precision, c.heuristic_metrics.recall, c.heuristic_metrics.f1
    );
    let _ = writeln!(
        out,
        "  detected TOPs: {} = ML {} + heuristic {} − both {} (paper: 4137 = 3456 + 2676 − 1995)",
        c.detected.len(),
        c.ml_count,
        c.heuristic_count,
        c.both_count
    );
    out
}

/// Tables 3 & 4: links per hosting site.
pub fn tables3_4(report: &PipelineReport) -> String {
    let render = |title: &str, tally: &std::collections::BTreeMap<String, usize>| -> String {
        let mut rows: Vec<(&String, &usize)> = tally.iter().collect();
        rows.sort_by_key(|&(d, c)| (std::cmp::Reverse(*c), d.clone()));
        let mut t = TextTable::new(&["Site", "#Links"]);
        let mut total = 0;
        for (d, c) in rows {
            total += c;
            t.row(vec![d.clone(), c.to_string()]);
        }
        t.row(vec!["Total".into(), total.to_string()]);
        format!("{title}\n{}", t.render())
    };
    format!(
        "{}\n{}",
        render(
            "Table 3: links per image-sharing site",
            &report.crawl.image_links_by_site
        ),
        render(
            "Table 4: links per cloud-storage service",
            &report.crawl.cloud_links_by_site
        ),
    )
}

/// §4.2 crawler health: what the resilience layer did (attempts,
/// retries, breaker trips, simulated waits per site kind). All zeros
/// except attempts when fault injection is disabled.
pub fn crawl_health(report: &PipelineReport) -> String {
    let s = &report.crawl_stats;
    let mut out = String::from("§4.2: crawler health (fault injection + retry layer)\n");
    let _ = writeln!(
        out,
        "  attempts: {} (image {} / cloud {}), retries: {}",
        s.attempts.total(),
        s.attempts.image_sharing,
        s.attempts.cloud_storage,
        s.retries.total()
    );
    let _ = writeln!(
        out,
        "  transient faults: {} timeouts, {} rate-limited, {} server errors, {} truncated archives",
        s.timeouts, s.rate_limited, s.server_errors, s.truncated_archives
    );
    let _ = writeln!(
        out,
        "  breaker trips: {} (links skipped while open: {}); budget-exhausted: {}; retries exhausted: {}",
        s.breaker_trips, s.breaker_skipped, s.budget_exhausted, s.retries_exhausted
    );
    let _ = writeln!(
        out,
        "  unreachable links: {}; simulated wait: {:.1} s image-sharing, {:.1} s cloud-storage",
        report.crawl.unreachable_links,
        s.wait_us.image_sharing as f64 / 1_000_000.0,
        s.wait_us.cloud_storage as f64 / 1_000_000.0
    );
    out
}

/// §4.2/§4.4 funnel summary.
pub fn funnel(report: &PipelineReport) -> String {
    let fu = &report.funnel;
    let mut out = String::from("§4.2/§4.4: download funnel\n");
    let _ = writeln!(
        out,
        "  linked TOPs: {}/{} ({:.1}%; paper 774/4137 = 18.7%)",
        report.crawl.linked_tops,
        report.crawl.total_tops,
        100.0 * report.crawl.linked_tops as f64 / report.crawl.total_tops.max(1) as f64
    );
    let _ = writeln!(
        out,
        "  preview downloads: {} (paper 5788)",
        fu.preview_downloads
    );
    let _ = writeln!(
        out,
        "  packs downloaded: {} holding {} images (paper 1255 / 111288)",
        fu.packs_downloaded, fu.pack_images
    );
    let _ = writeln!(out, "  unique files: {} (paper 53948)", fu.unique_files);
    let _ = writeln!(
        out,
        "  images in ≥20 copies: {} (paper 127)",
        fu.heavily_duplicated
    );
    let _ = writeln!(
        out,
        "  previews classified NSFV: {} (paper 3496)",
        fu.previews_nsfv
    );
    let v = &report.nsfv_validation;
    let _ = writeln!(
        out,
        "  Algorithm 1 validation: recall {:.0}% fp {:.1}% (paper 100% / ~8%)",
        100.0 * v.recall(),
        100.0 * v.fp_rate()
    );
    out
}

/// §4.3: safety findings.
pub fn section43(report: &PipelineReport) -> String {
    let s = &report.safety;
    let mut out = String::from("§4.3: child-abuse material filtering\n");
    let _ = writeln!(
        out,
        "  hash-list matches: {} images in {} threads (paper: 36 images, 36 threads)",
        s.stage.summary.matched_cases,
        s.stage.flagged_threads.len()
    );
    let _ = writeln!(
        out,
        "  actioned URLs: {} (paper: 61)",
        s.stage.summary.actioned_urls
    );
    for (sev, n) in &s.stage.summary.by_severity {
        let _ = writeln!(out, "    severity {sev:?}: {n}");
    }
    for (region, n) in &s.stage.summary.by_region {
        let _ = writeln!(out, "    region {}: {n}", region.label());
    }
    for (ty, n) in &s.stage.summary.by_site_type {
        let _ = writeln!(out, "    site type {}: {n}", ty.label());
    }
    let _ = writeln!(
        out,
        "  actors in flagged threads: {} (paper: 476)",
        s.actors_in_flagged_threads
    );
    out
}

/// Table 5: reverse-search outcomes.
pub fn table5(report: &PipelineReport) -> String {
    let mut t = TextTable::new(&["", "Total", "Matches", "Seen Before", "Ratio", "Max"]);
    for (label, s) in [
        ("packs", &report.provenance.packs),
        ("previews", &report.provenance.previews),
    ] {
        t.row(vec![
            label.to_string(),
            s.total.to_string(),
            format!("{} ({:.0}%)", s.matched, 100.0 * s.match_rate()),
            format!("{} ({:.2}%)", s.seen_before, 100.0 * s.seen_before_rate()),
            f(s.ratio, 1),
            s.max.to_string(),
        ]);
    }
    let mut out = format!("Table 5: reverse image search\n{}", t.render());
    let _ = writeln!(
        out,
        "  zero-match packs: {}/{} (paper: 203/1255); top actor: {}/{} of their packs",
        report.provenance.zero_match_packs,
        report.provenance.analysed_packs,
        report.provenance.top_zero_match_actor.0,
        report.provenance.top_zero_match_actor.1
    );
    let _ = writeln!(
        out,
        "  distinct matched domains: {} (paper: 5917)",
        report.provenance.distinct_domains
    );
    out
}

/// Table 6: domain categories per classifier (top rows to 85% mass).
pub fn table6(report: &PipelineReport) -> String {
    let mut out = String::from("Table 6: domain categories (to 85% of tag mass)\n");
    for table in &report.provenance.domain_tags {
        let total: usize = table.tags.iter().map(|&(_, c)| c).sum();
        let _ = writeln!(out, "  [{}] ({} tags)", table.classifier, total);
        let mut cum = 0usize;
        for (tag, count) in &table.tags {
            cum += count;
            let share = 100.0 * cum as f64 / total.max(1) as f64;
            let _ = writeln!(out, "    {tag:<28} {count:>6}  {share:>5.1}%");
            if share >= 85.0 {
                break;
            }
        }
    }
    out
}

/// §5.1/§5.2 + Figure 2: earnings.
pub fn section5(report: &PipelineReport) -> String {
    let h = &report.harvest;
    let e = &report.earnings;
    let mut out = String::from("§5: financial profits\n");
    let _ = writeln!(
        out,
        "  funnel: {} threads → {} posts → {} URLs → {} downloads → {} analysed → {} proofs + {} not-proof (NSFV-filtered {})",
        h.earnings_threads, h.posts_with_links, h.unique_urls, h.downloaded, h.analysed,
        h.proofs.len(), h.not_proof, h.filtered_nsfv
    );
    let _ = writeln!(
        out,
        "  (paper: 1084 → 1276 → 2694 → 2366 → 2067 → 1868 + 199, NSFV 299)"
    );
    let _ = writeln!(
        out,
        "  actors: {} (paper 661); total US${:.0}k (paper ≈US$511k); mean US${:.0} (paper 774); max US${:.0}",
        e.actors,
        e.total_usd / 1000.0,
        e.mean_per_actor,
        e.max_per_actor
    );
    let _ = writeln!(
        out,
        "  detailed proofs: {} ({:.0}%; paper ~60%); avg transaction US${:.2} (paper 41.90)",
        e.detailed_proofs,
        100.0 * e.detailed_proofs as f64 / h.proofs.len().max(1) as f64,
        e.avg_transaction_usd
    );
    let _ = writeln!(
        out,
        "  platforms: {:?} (paper AGC 934, PayPal 795, BTC 35)",
        e.platform_counts
    );

    // Figure 2: CDF quantiles.
    let usd: Vec<f64> = e.per_actor.iter().map(|&(u, _)| u).collect();
    let imgs: Vec<f64> = e.per_actor.iter().map(|&(_, n)| n as f64).collect();
    let qs = [0.25, 0.5, 0.75, 0.9, 0.99];
    let uq = quantiles(&usd, &qs);
    let iq = quantiles(&imgs, &qs);
    let _ = writeln!(
        out,
        "  Fig 2 (left)  earnings quantiles 25/50/75/90/99%: {:?}",
        uq.iter().map(|v| v.round()).collect::<Vec<_>>()
    );
    let _ = writeln!(
        out,
        "  Fig 2 (right) image-count quantiles 25/50/75/90/99%: {iq:?}"
    );
    out
}

/// Figure 3: monthly AGC vs PayPal proof counts.
pub fn fig3(report: &PipelineReport) -> String {
    let mut out = String::from("Figure 3: proofs per month (AGC vs PayPal)\n");
    // The *sustained* crossover, the way the eye reads the paper's
    // monthly plot: the month after the last trailing-12-month window in
    // which PayPal still led.
    let series = &report.earnings.monthly_platforms;
    let mut last_pp_lead: Option<i32> = None;
    for (i, &(month, agc, pp)) in series.iter().enumerate() {
        let year = month.div_euclid(12);
        let m = month.rem_euclid(12) + 1;
        let _ = writeln!(out, "  {year}-{m:02}: AGC {agc:>3}  PayPal {pp:>3}");
        let window: Vec<&(i32, usize, usize)> = series[..=i]
            .iter()
            .filter(|&&(mo, _, _)| mo > month - 12)
            .collect();
        let agc12: usize = window.iter().map(|&&(_, a, _)| a).sum();
        let pp12: usize = window.iter().map(|&&(_, _, p)| p).sum();
        if pp12 >= agc12 {
            last_pp_lead = Some(month);
        }
    }
    if let Some(m) = last_pp_lead {
        let _ = writeln!(
            out,
            "  AGC leads PayPal (trailing 12m) for good after {}-{:02} (paper: 2016)",
            m.div_euclid(12),
            m.rem_euclid(12) + 1
        );
    }
    out
}

/// Table 7: currency exchange.
pub fn table7(report: &PipelineReport) -> String {
    let c = &report.currency;
    let labels = ["PayPal", "BTC", "AGC", "?", "others"];
    let mut t = TextTable::new(&["Currency", "PayPal", "BTC", "AGC", "?", "others", "Total"]);
    for (name, map) in [("Offered", &c.offered), ("Wanted", &c.wanted)] {
        let mut cells = vec![name.to_string()];
        let mut total = 0;
        for l in labels {
            let v = map.get(l).copied().unwrap_or(0);
            total += v;
            cells.push(v.to_string());
        }
        cells.push(total.to_string());
        t.row(cells);
    }
    format!(
        "Table 7: Currency Exchange threads ({} threads by {} actors; paper 9066 by 686)\n{}",
        c.threads,
        c.actors,
        t.render()
    )
}

/// Table 8: actor cohorts.
pub fn table8(report: &PipelineReport) -> String {
    let mut t = TextTable::new(&[
        "#Posts",
        "#Actors",
        "Avg. posts",
        "%ewhor.",
        "Before",
        "After",
    ]);
    for r in &report.cohorts {
        t.row(vec![
            format!(">= {}", r.min_posts),
            r.actors.to_string(),
            f(r.avg_posts, 1),
            f(r.pct_ewhoring, 1),
            f(r.days_before, 1),
            f(r.days_after, 1),
        ]);
    }
    format!("Table 8: actors by eWhoring post count\n{}", t.render())
}

/// Figure 4: per-cohort CDF quantiles of the four actor metrics.
pub fn fig4(report: &PipelineReport) -> String {
    let mut out = String::from("Figure 4: actor metric quantiles (median / p90) per cohort\n");
    for &min_posts in &crate::actors::COHORT_THRESHOLDS {
        let cohort: Vec<&(usize, f64, u32, u32)> = report
            .fig4_points
            .iter()
            .filter(|&&(n, ..)| n >= min_posts)
            .collect();
        if cohort.is_empty() {
            continue;
        }
        let posts: Vec<f64> = cohort.iter().map(|&&(n, ..)| n as f64).collect();
        let pct: Vec<f64> = cohort.iter().map(|&&(_, p, ..)| p * 100.0).collect();
        let before: Vec<f64> = cohort.iter().map(|&&(_, _, b, _)| f64::from(b)).collect();
        let after: Vec<f64> = cohort.iter().map(|&&(.., a)| f64::from(a)).collect();
        let q = |v: &[f64]| quantiles(v, &[0.5, 0.9]);
        let (qp, qc, qb, qa) = (q(&posts), q(&pct), q(&before), q(&after));
        let _ = writeln!(
            out,
            "  >= {:>4} ({:>6} actors): posts {:>5.0}/{:>6.0}  %ew {:>4.1}/{:>5.1}  before {:>5.0}/{:>6.0}  after {:>5.0}/{:>6.0}",
            min_posts, cohort.len(), qp[0], qp[1], qc[0], qc[1], qb[0], qb[1], qa[0], qa[1]
        );
    }
    out
}

/// Table 9: key-actor group intersections.
pub fn table9(report: &PipelineReport) -> String {
    let k = &report.key_actors;
    let mut out = format!(
        "Table 9: key-actor overlaps ({} key actors; paper 195)\n",
        k.all.len()
    );
    for (g, n) in &k.unique {
        let _ = writeln!(
            out,
            "  unique to {:<2}: {n} (group size {})",
            g.label(),
            k.groups[g].len()
        );
    }
    for &(a, b, n) in &k.intersections {
        let _ = writeln!(out, "  {:<2} ∩ {:<2} = {n}", a.label(), b.label());
    }
    out
}

/// Table 10: group characteristics.
pub fn table10(report: &PipelineReport) -> String {
    let mut t = TextTable::new(&[
        "Group", "#Posts", "%eWh", "Before", "#Amount", "H", "I10", "I100", "#Packs", "#CE",
    ]);
    for p in &report.group_profiles {
        t.row(vec![
            p.group.clone(),
            f(p.posts, 1),
            f(p.pct_ewhoring, 1),
            f(p.days_before, 1),
            f(p.amount, 1),
            f(p.h, 1),
            f(p.i10, 1),
            f(p.i100, 1),
            f(p.packs, 1),
            f(p.currency_exchange, 1),
        ]);
    }
    format!("Table 10: key-actor group characteristics\n{}", t.render())
}

/// Figure 5: interest evolution.
pub fn fig5(report: &PipelineReport) -> String {
    let mut t = TextTable::new(&["Category", "Before %", "During %", "After %"]);
    for (cat, b, d, a) in &report.interests.shares {
        t.row(vec![cat.clone(), f(*b, 1), f(*d, 1), f(*a, 1)]);
    }
    format!(
        "Figure 5: key-actor interests before/during/after eWhoring\n{}",
        t.render()
    )
}

/// Pipeline-health section: records quarantined during ingestion (per
/// stage and error kind) and stage interventions by the driver (retries
/// that recovered, degradations). A clean run renders one line saying
/// so — the section always appears, so its absence is itself a signal.
pub fn pipeline_health(report: &PipelineReport) -> String {
    let mut out = String::from("pipeline health: quarantine + degradation\n");
    if report.quarantine.is_empty() && report.health.is_empty() {
        let _ = writeln!(
            out,
            "  clean run: no records quarantined, no stage interventions"
        );
        return out;
    }
    let _ = writeln!(
        out,
        "  quarantined records: {} total",
        report.quarantine.len()
    );
    for ((stage, kind), n) in report.quarantine.counts() {
        let _ = writeln!(out, "    {stage:<16} {:<24} {n:>6}", kind.label());
    }
    for h in &report.health {
        let status = match h.status {
            StageStatus::Recovered => "recovered after retry",
            StageStatus::Degraded => "degraded",
        };
        let _ = writeln!(out, "  stage {}: {status} — {}", h.stage, h.detail);
    }
    out
}

/// The full report, every artefact in paper order.
pub fn full_report(report: &PipelineReport) -> String {
    let mut out = String::new();
    for section in [
        fig1(report),
        table1(report),
        table2(),
        section41(report),
        tables3_4(report),
        crawl_health(report),
        funnel(report),
        section43(report),
        table5(report),
        table6(report),
        section5(report),
        fig3(report),
        table7(report),
        table8(report),
        fig4(report),
        table9(report),
        table10(report),
        fig5(report),
        pipeline_health(report),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    let _ = writeln!(out, "stage timings:");
    for t in &report.timings {
        let _ = writeln!(
            out,
            "  {:<16} {:>10} µs  {:>8} items  [{}]",
            t.stage,
            t.wall_us,
            t.items,
            t.source.as_str()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineOptions};
    use worldgen::{World, WorldConfig};

    fn report() -> PipelineReport {
        let world = World::generate(WorldConfig::test_scale(0x4E9));
        Pipeline::new(PipelineOptions {
            k_key_actors: 8,
            ..PipelineOptions::default()
        })
        .run(&world)
    }

    #[test]
    fn text_table_aligns_and_guards_arity() {
        let mut t = TextTable::new(&["a", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].len() == lines[2].len() && lines[2].len() == lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn wrong_arity_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantiles(&v, &[0.0, 0.5, 1.0]), vec![1.0, 3.0, 5.0]);
        assert_eq!(quantiles(&[], &[0.5]), vec![0.0]);
    }

    #[test]
    fn full_report_renders_every_section() {
        let r = report();
        let text = full_report(&r);
        for needle in [
            "Figure 1",
            "Table 1",
            "Table 2",
            "unsaturated",
            "§4.1",
            "Table 3",
            "Table 4",
            "crawler health",
            "breaker trips",
            "§4.3",
            "Table 5",
            "Table 6",
            "§5",
            "Figure 3",
            "Table 7",
            "Table 8",
            "Figure 4",
            "Table 9",
            "Table 10",
            "Figure 5",
            "pipeline health",
            "clean run",
            "Hackforums",
            "imgur.com",
            "mediafire.com",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn report_serialises_to_json() {
        let r = report();
        let json = serde_json::to_string(&r).expect("serialise");
        assert!(json.contains("forums"));
        assert!(json.len() > 1000);
    }
}
