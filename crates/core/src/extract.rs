//! Stage 1: extracting eWhoring-related conversations (paper §3).
//!
//! "We searched for two specific keywords (i.e., 'ewhor' and 'e-whor') in
//! the headings of all the threads contained in CrimeBB … We also include
//! all the threads from the specific board dedicated to eWhoring in
//! Hackforums."

use crimebb::{BoardCategory, Corpus, ForumId, ThreadId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use textkit::lexicon::heading_is_ewhoring;

/// The extracted eWhoring conversations, per forum and overall.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EwhoringSet {
    /// Thread ids per forum, in corpus order.
    pub per_forum: Vec<(ForumId, Vec<ThreadId>)>,
}

impl EwhoringSet {
    /// All extracted threads, across forums.
    pub fn all_threads(&self) -> Vec<ThreadId> {
        self.per_forum
            .iter()
            .flat_map(|(_, ts)| ts.iter().copied())
            .collect()
    }

    /// Threads of one forum (empty if the forum had none).
    pub fn forum_threads(&self, forum: ForumId) -> &[ThreadId] {
        self.per_forum
            .iter()
            .find(|(f, _)| *f == forum)
            .map_or(&[], |(_, ts)| ts.as_slice())
    }

    /// Total thread count.
    pub fn len(&self) -> usize {
        self.per_forum.iter().map(|(_, ts)| ts.len()).sum()
    }

    /// True when nothing was extracted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Runs the §3 extraction over the corpus.
pub fn extract_ewhoring_threads(corpus: &Corpus) -> EwhoringSet {
    extract_ewhoring_threads_in(corpus, 0..corpus.forums().len())
}

/// Runs the §3 extraction for one contiguous span of forums (by corpus
/// index) — the shard-worker seam. Extraction is per-forum independent:
/// a thread's `seen` entry can only be produced by its own forum's
/// boards, so restricting both loops to `forums` yields exactly the
/// `per_forum` rows the full extraction produces for those forums, in
/// the same order. The returned set's `per_forum` covers only the span.
pub fn extract_ewhoring_threads_in(corpus: &Corpus, forums: std::ops::Range<usize>) -> EwhoringSet {
    let span = &corpus.forums()[forums.clone()];
    let mut per_forum: Vec<(ForumId, Vec<ThreadId>)> =
        span.iter().map(|f| (f.id, Vec::new())).collect();

    // Dedicated-board threads (Hackforums' eWhoring section).
    let mut seen: HashSet<ThreadId> = HashSet::new();
    for (slot, forum) in span.iter().enumerate() {
        for board in corpus.boards_in_category(forum.id, BoardCategory::EWhoring) {
            for &t in corpus.threads_in_board(board.id) {
                if seen.insert(t) {
                    per_forum[slot].1.push(t);
                }
            }
        }
    }

    // Keyword-matching headings anywhere ("comparison was done in
    // lowercase" — heading_is_ewhoring lower-cases internally).
    for thread in corpus.threads() {
        if seen.contains(&thread.id) {
            continue;
        }
        if heading_is_ewhoring(&thread.heading) {
            let forum = corpus.board(thread.board).forum;
            if forums.contains(&forum.index()) {
                seen.insert(thread.id);
                per_forum[forum.index() - forums.start].1.push(thread.id);
            }
        }
    }

    EwhoringSet { per_forum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crimebb::CorpusBuilder;
    use synthrand::Day;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        let hf = b.add_forum("HF");
        let ew = b.add_board(hf, "eWhoring", BoardCategory::EWhoring);
        let gm = b.add_board(hf, "Gaming", BoardCategory::Gaming);
        let other = b.add_forum("Other");
        let gen = b.add_board(other, "General", BoardCategory::Common);
        let a = b.add_actor(hf, "a", Day::from_ymd(2012, 1, 1));
        let c = b.add_actor(other, "c", Day::from_ymd(2012, 1, 1));
        let d = Day::from_ymd(2014, 1, 1);

        // In the dedicated board, no keyword needed.
        let t1 = b.add_thread(ew, a, "fresh pack giveaway", d);
        b.add_post(t1, a, d, "x", None);
        // Keyword match in another board of HF.
        let t2 = b.add_thread(gm, a, "quit gaming for eWhoring", d);
        b.add_post(t2, a, d, "x", None);
        // Keyword match on the other forum.
        let t3 = b.add_thread(gen, c, "E-WHORING guide", d);
        b.add_post(t3, c, d, "x", None);
        // Non-matching thread outside the board.
        let t4 = b.add_thread(gm, a, "minecraft server", d);
        b.add_post(t4, a, d, "x", None);
        b.build()
    }

    #[test]
    fn board_membership_and_keywords_both_extract() {
        let c = corpus();
        let set = extract_ewhoring_threads(&c);
        assert_eq!(set.len(), 3);
        let hf = c.forums()[0].id;
        let other = c.forums()[1].id;
        assert_eq!(set.forum_threads(hf).len(), 2);
        assert_eq!(set.forum_threads(other).len(), 1);
    }

    #[test]
    fn non_matching_threads_excluded() {
        let c = corpus();
        let set = extract_ewhoring_threads(&c);
        let all = set.all_threads();
        let excluded = c
            .threads()
            .iter()
            .find(|t| t.heading == "minecraft server")
            .unwrap()
            .id;
        assert!(!all.contains(&excluded));
    }

    #[test]
    fn no_duplicates_when_board_thread_has_keyword() {
        let mut b = CorpusBuilder::new();
        let hf = b.add_forum("HF");
        let ew = b.add_board(hf, "eWhoring", BoardCategory::EWhoring);
        let a = b.add_actor(hf, "a", Day::from_ymd(2012, 1, 1));
        let d = Day::from_ymd(2014, 1, 1);
        let t = b.add_thread(ew, a, "my eWhoring pack", d);
        b.add_post(t, a, d, "x", None);
        let set = extract_ewhoring_threads(&b.build());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn empty_corpus_extracts_nothing() {
        let set = extract_ewhoring_threads(&Corpus::default());
        assert!(set.is_empty());
    }

    /// The shard seam: per-forum spans concatenate to the full set.
    #[test]
    fn forum_spans_concatenate_to_full_extraction() {
        let c = corpus();
        let full = extract_ewhoring_threads(&c);
        for split in 1..=c.forums().len() {
            let a = extract_ewhoring_threads_in(&c, 0..split);
            let b = extract_ewhoring_threads_in(&c, split..c.forums().len());
            let stitched: Vec<_> = a
                .per_forum
                .iter()
                .chain(b.per_forum.iter())
                .cloned()
                .collect();
            assert_eq!(
                serde_json::to_string(&stitched).unwrap(),
                serde_json::to_string(&full.per_forum).unwrap(),
                "split at {split}"
            );
        }
    }
}
