//! Stage 2: the hybrid TOP classifier (paper §4.1).
//!
//! A Linear-SVM over statistical + TF-IDF features is trained on a
//! 1 000-thread annotated sample (800 train / 200 test) and OR-combined
//! with a keyword heuristic: "If either method classifies a thread as
//! offering packs, this is included in our pipeline to extract links."
//!
//! The annotated sample stands in for the paper's human annotator: thread
//! *selection* uses only public signals (lexicon matches — the annotator
//! skimmed promising threads), while *labels* come from ground truth (the
//! annotator reads the thread and is assumed accurate).

use crate::features::{thread_stats, thread_stats_at, FeatureExtractor};
use crimebb::{Corpus, ThreadId};
use linsvm::{confusion, BinaryMetrics, LinearSvm, SparseVec, SvmConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use synthrand::Day;
use websim::SiteCatalog;
use worldgen::GroundTruth;

/// Size of the annotated sample (paper: 1 000 threads).
pub const ANNOTATION_SAMPLE: usize = 1_000;
/// Training portion (paper: 800/200).
pub const TRAIN_SIZE: usize = 800;

/// The §4.1 keyword heuristic.
///
/// A thread is heuristically a TOP when its heading carries at least two
/// TOP keywords ("images", "video", "unsaturated", …) and shows no
/// asking-for signals (question marks, buying/request keywords) — "we also
/// account for both the number of question marks and the presence of
/// keywords related to buying to discard threads asking for packs".
pub fn heuristic_is_top(corpus: &Corpus, catalog: &SiteCatalog, thread: ThreadId) -> bool {
    let s = thread_stats(corpus, catalog, thread);
    s.top_kw >= 2.0 && s.question_marks == 0.0 && s.request_kw == 0.0
}

/// [`heuristic_is_top`] as of the end of day `cutoff` — the heuristic's
/// signals are all heading-derived, so the decision only depends on the
/// thread existing by the cutoff; the `_at` stats make that explicit.
pub fn heuristic_is_top_at(
    corpus: &Corpus,
    catalog: &SiteCatalog,
    thread: ThreadId,
    cutoff: Day,
) -> bool {
    let s = thread_stats_at(corpus, catalog, thread, cutoff);
    s.top_kw >= 2.0 && s.question_marks == 0.0 && s.request_kw == 0.0
}

/// Streaming-mode text-index diagnostics: the incrementally maintained
/// corpus vocabulary / document-frequency table (vocab union + new-doc
/// rows per epoch, never a from-scratch rebuild).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamIndexStats {
    /// Terms in the incrementally unioned vocabulary.
    pub terms: usize,
    /// Documents (first-sight thread texts) folded into the index.
    pub docs: usize,
    /// Sum of the IDF table — a cheap fingerprint of the whole index.
    pub idf_checksum: f64,
}

/// Evaluation and application results of the hybrid classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopClassification {
    /// Held-out metrics of the hybrid classifier (paper: P 92 / R 93 / F1 92).
    pub hybrid_metrics: BinaryMetrics,
    /// Held-out metrics of the SVM alone.
    pub ml_metrics: BinaryMetrics,
    /// Held-out metrics of the heuristic alone.
    pub heuristic_metrics: BinaryMetrics,
    /// TOPs found in the annotated sample (paper: 175 of 1 000).
    pub sample_positives: usize,
    /// Detected TOPs over the full extracted set.
    pub detected: Vec<ThreadId>,
    /// How many the ML side flagged (paper: 3 456).
    pub ml_count: usize,
    /// How many the heuristic side flagged (paper: 2 676).
    pub heuristic_count: usize,
    /// Flagged by both (paper: 1 995).
    pub both_count: usize,
    /// Streaming runs only: incremental text-index diagnostics.
    /// `None` in batch mode.
    pub stream_index: Option<StreamIndexStats>,
}

/// The trained hybrid classifier plus its feature extractor.
pub struct TopClassifier {
    extractor: FeatureExtractor,
    svm: LinearSvm,
}

impl TopClassifier {
    /// ML-side decision for one thread.
    pub fn ml_is_top(&self, corpus: &Corpus, catalog: &SiteCatalog, thread: ThreadId) -> bool {
        let fv = self.features(corpus, catalog, thread);
        self.svm.predict(&fv)
    }

    fn features(&self, corpus: &Corpus, catalog: &SiteCatalog, thread: ThreadId) -> SparseVec {
        self.extractor.features(corpus, catalog, thread)
    }

    /// Hybrid decision (ML OR heuristic).
    pub fn is_top(&self, corpus: &Corpus, catalog: &SiteCatalog, thread: ThreadId) -> bool {
        self.ml_is_top(corpus, catalog, thread) || heuristic_is_top(corpus, catalog, thread)
    }
}

/// Selects the annotation sample: a mix of lexicon-promising threads and a
/// uniform residue, so positives are enriched the way a human annotator's
/// skim would enrich them.
pub fn annotation_sample(
    rng: &mut StdRng,
    corpus: &Corpus,
    catalog: &SiteCatalog,
    threads: &[ThreadId],
    size: usize,
) -> Vec<ThreadId> {
    let size = size.min(threads.len());
    let mut promising: Vec<ThreadId> = Vec::new();
    let mut rest: Vec<ThreadId> = Vec::new();
    for &t in threads {
        let s = thread_stats(corpus, catalog, t);
        if s.top_kw >= 1.0 && s.question_marks == 0.0 {
            promising.push(t);
        } else {
            rest.push(t);
        }
    }
    promising.shuffle(rng);
    rest.shuffle(rng);
    let n_promising = (size * 2 / 5).min(promising.len());
    let mut sample: Vec<ThreadId> = promising.into_iter().take(n_promising).collect();
    sample.extend(rest.into_iter().take(size - sample.len()));
    sample.truncate(size);
    sample
}

/// Trains the hybrid classifier on the annotated sample and applies it to
/// every extracted thread.
///
/// Feature extraction and the full-corpus application sweep run across
/// `workers` threads (0 = all cores) with results reassembled in input
/// order, so the output is identical for any worker count — only the
/// annotation sampling draws from `rng`, and it stays serial.
pub fn classify_tops(
    rng: &mut StdRng,
    corpus: &Corpus,
    catalog: &SiteCatalog,
    truth: &GroundTruth,
    threads: &[ThreadId],
    workers: usize,
) -> (TopClassifier, TopClassification) {
    classify_tops_with_fit(rng, corpus, catalog, truth, threads, workers, |train| {
        FeatureExtractor::fit(corpus, train, workers)
    })
}

/// [`classify_tops`] with the feature fit injected. The sharded driver
/// passes a closure that farms the training-set tokenisation out to
/// supervised shard workers and fits on the concatenated documents
/// ([`FeatureExtractor::fit_from_docs`]); `fit` is called exactly where
/// the batch path calls [`FeatureExtractor::fit`], so the annotation
/// rng stream on `rng` is untouched and the classifier is byte-
/// identical whenever the injected fit is.
pub fn classify_tops_with_fit(
    rng: &mut StdRng,
    corpus: &Corpus,
    catalog: &SiteCatalog,
    truth: &GroundTruth,
    threads: &[ThreadId],
    workers: usize,
    fit: impl FnOnce(&[ThreadId]) -> FeatureExtractor,
) -> (TopClassifier, TopClassification) {
    // 1. Annotate.
    let sample = annotation_sample(rng, corpus, catalog, threads, ANNOTATION_SAMPLE);
    let labels: Vec<bool> = sample.iter().map(|&t| truth.is_top(t)).collect();
    let sample_positives = labels.iter().filter(|&&l| l).count();

    // 2. 800/200 split, fit features on train only.
    let n_train = (sample.len() * TRAIN_SIZE / ANNOTATION_SAMPLE).max(1);
    let (train_idx, test_idx) = linsvm::train_test_split(sample.len(), n_train, 0x5711);
    let train_threads: Vec<ThreadId> = train_idx.iter().map(|&i| sample[i]).collect();
    let extractor = fit(&train_threads);

    let rows = |idx: &[usize]| -> Vec<SparseVec> {
        let picked: Vec<ThreadId> = idx.iter().map(|&i| sample[i]).collect();
        extractor.features_many(corpus, catalog, &picked, workers)
    };
    let mut train_x = rows(&train_idx);
    let mut train_y: Vec<bool> = train_idx.iter().map(|&i| labels[i]).collect();
    // The sample is ~1:5 imbalanced; duplicating half the positives (a
    // 1.5× class weight) keeps the hinge loss from under-weighting recall
    // without flooding precision.
    let positives: Vec<SparseVec> = train_x
        .iter()
        .zip(&train_y)
        .filter(|&(_, &y)| y)
        .map(|(x, _)| x.clone())
        .collect();
    for p in positives.into_iter().step_by(2) {
        train_x.push(p);
        train_y.push(true);
    }
    let test_x = rows(&test_idx);
    let test_y: Vec<bool> = test_idx.iter().map(|&i| labels[i]).collect();

    let svm = LinearSvm::train(&train_x, &train_y, SvmConfig::default());
    let classifier = TopClassifier { extractor, svm };

    // 3. Held-out evaluation of ML, heuristic and hybrid.
    let ml_pred: Vec<bool> = test_x.iter().map(|x| classifier.svm.predict(x)).collect();
    let heur_pred: Vec<bool> = test_idx
        .iter()
        .map(|&i| heuristic_is_top(corpus, catalog, sample[i]))
        .collect();
    let hybrid_pred: Vec<bool> = ml_pred
        .iter()
        .zip(&heur_pred)
        .map(|(&m, &h)| m || h)
        .collect();

    // 4. Apply to the full extracted set: the per-thread decisions are
    // independent, so both classifier sides run data-parallel; the tallies
    // fold serially in input order.
    let decisions: Vec<(bool, bool)> = crate::par::par_map(threads, workers, |&t| {
        (
            classifier.ml_is_top(corpus, catalog, t),
            heuristic_is_top(corpus, catalog, t),
        )
    });
    let mut detected = Vec::new();
    let mut ml_count = 0;
    let mut heuristic_count = 0;
    let mut both_count = 0;
    for (&t, &(ml, heur)) in threads.iter().zip(&decisions) {
        if ml {
            ml_count += 1;
        }
        if heur {
            heuristic_count += 1;
        }
        if ml && heur {
            both_count += 1;
        }
        if ml || heur {
            detected.push(t);
        }
    }

    let result = TopClassification {
        hybrid_metrics: confusion(&hybrid_pred, &test_y).metrics(),
        ml_metrics: confusion(&ml_pred, &test_y).metrics(),
        heuristic_metrics: confusion(&heur_pred, &test_y).metrics(),
        sample_positives,
        detected,
        ml_count,
        heuristic_count,
        both_count,
        stream_index: None,
    };
    (classifier, result)
}

/// [`annotation_sample`] as of the end of day `cutoff`: the promising
/// rule sees only posts dated on or before the cutoff, so the sample a
/// later corpus selects is identical to the one the epoch-1 corpus
/// selected (given the same RNG state and candidate list).
pub fn annotation_sample_at(
    rng: &mut StdRng,
    corpus: &Corpus,
    catalog: &SiteCatalog,
    threads: &[ThreadId],
    size: usize,
    cutoff: Day,
) -> Vec<ThreadId> {
    let size = size.min(threads.len());
    let mut promising: Vec<ThreadId> = Vec::new();
    let mut rest: Vec<ThreadId> = Vec::new();
    for &t in threads {
        let s = thread_stats_at(corpus, catalog, t, cutoff);
        if s.top_kw >= 1.0 && s.question_marks == 0.0 {
            promising.push(t);
        } else {
            rest.push(t);
        }
    }
    promising.shuffle(rng);
    rest.shuffle(rng);
    let n_promising = (size * 2 / 5).min(promising.len());
    let mut sample: Vec<ThreadId> = promising.into_iter().take(n_promising).collect();
    sample.extend(rest.into_iter().take(size - sample.len()));
    sample.truncate(size);
    sample
}

/// The bootstrap-frozen classifier of streaming mode: model and held-out
/// metrics trained once at the first epoch boundary, then applied
/// unchanged to every later epoch's new threads. Serialisable so the
/// epoch carry can freeze it across advances.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BootstrapModel {
    /// The frozen feature extractor (vocabulary + IDF at the boundary).
    pub extractor: FeatureExtractor,
    /// The frozen SVM.
    pub svm: LinearSvm,
    /// Held-out hybrid metrics, evaluated at the boundary.
    pub hybrid_metrics: BinaryMetrics,
    /// Held-out SVM-only metrics.
    pub ml_metrics: BinaryMetrics,
    /// Held-out heuristic-only metrics.
    pub heuristic_metrics: BinaryMetrics,
    /// TOPs in the annotated sample.
    pub sample_positives: usize,
}

/// Trains the streaming bootstrap model: [`classify_tops`] steps 1–3
/// with every input windowed to `cutoff` (the epoch-1 boundary).
/// `threads` must be the threads existing by the cutoff, in extraction
/// order. Pure in `(visible prefix, rng state)`, so the epoch-e corpus
/// replays the epoch-1 training bit-exactly.
pub fn bootstrap_at(
    rng: &mut StdRng,
    corpus: &Corpus,
    catalog: &SiteCatalog,
    truth: &GroundTruth,
    threads: &[ThreadId],
    cutoff: Day,
    workers: usize,
) -> BootstrapModel {
    let sample = annotation_sample_at(rng, corpus, catalog, threads, ANNOTATION_SAMPLE, cutoff);
    let labels: Vec<bool> = sample.iter().map(|&t| truth.is_top(t)).collect();
    let sample_positives = labels.iter().filter(|&&l| l).count();

    let n_train = (sample.len() * TRAIN_SIZE / ANNOTATION_SAMPLE).max(1);
    let (train_idx, test_idx) = linsvm::train_test_split(sample.len(), n_train, 0x5711);
    let train_threads: Vec<ThreadId> = train_idx.iter().map(|&i| sample[i]).collect();
    let extractor = FeatureExtractor::fit_at(corpus, &train_threads, cutoff, workers);

    let rows = |idx: &[usize]| -> Vec<SparseVec> {
        let picked: Vec<ThreadId> = idx.iter().map(|&i| sample[i]).collect();
        crate::par::par_map(&picked, workers, |&t| {
            extractor.features_at(corpus, catalog, t, cutoff)
        })
    };
    let mut train_x = rows(&train_idx);
    let mut train_y: Vec<bool> = train_idx.iter().map(|&i| labels[i]).collect();
    let positives: Vec<SparseVec> = train_x
        .iter()
        .zip(&train_y)
        .filter(|&(_, &y)| y)
        .map(|(x, _)| x.clone())
        .collect();
    for p in positives.into_iter().step_by(2) {
        train_x.push(p);
        train_y.push(true);
    }
    let test_x = rows(&test_idx);
    let test_y: Vec<bool> = test_idx.iter().map(|&i| labels[i]).collect();

    let svm = LinearSvm::train(&train_x, &train_y, SvmConfig::default());

    let ml_pred: Vec<bool> = test_x.iter().map(|x| svm.predict(x)).collect();
    let heur_pred: Vec<bool> = test_idx
        .iter()
        .map(|&i| heuristic_is_top_at(corpus, catalog, sample[i], cutoff))
        .collect();
    let hybrid_pred: Vec<bool> = ml_pred
        .iter()
        .zip(&heur_pred)
        .map(|(&m, &h)| m || h)
        .collect();

    BootstrapModel {
        hybrid_metrics: confusion(&hybrid_pred, &test_y).metrics(),
        ml_metrics: confusion(&ml_pred, &test_y).metrics(),
        heuristic_metrics: confusion(&heur_pred, &test_y).metrics(),
        sample_positives,
        extractor,
        svm,
    }
}

impl BootstrapModel {
    /// First-sight decisions `(ml, heuristic)` for `threads`, each
    /// evaluated on the thread state as of `cutoff`, across `workers`
    /// threads in input order.
    pub fn decide_at(
        &self,
        corpus: &Corpus,
        catalog: &SiteCatalog,
        threads: &[ThreadId],
        cutoff: Day,
        workers: usize,
    ) -> Vec<(bool, bool)> {
        crate::par::par_map(threads, workers, |&t| {
            (
                self.svm
                    .predict(&self.extractor.features_at(corpus, catalog, t, cutoff)),
                heuristic_is_top_at(corpus, catalog, t, cutoff),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_ewhoring_threads;
    use synthrand::rng_from_seed;
    use worldgen::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::test_scale(0x70C5))
    }

    #[test]
    fn hybrid_classifier_reaches_low_nineties() {
        // Held-out metrics need a reasonably sized test split; use a 5%
        // world (the 2% worlds leave ~30 positives in the whole sample).
        let w = World::generate(worldgen::WorldConfig {
            scale: 0.05,
            ..WorldConfig::test_scale(0x70C5)
        });
        let set = extract_ewhoring_threads(&w.corpus);
        let threads = set.all_threads();
        let mut rng = rng_from_seed(1);
        let (_, result) = classify_tops(&mut rng, &w.corpus, &w.catalog, &w.truth, &threads, 2);
        // Paper: precision 92%, recall 93%, F1 92%.
        assert!(
            result.hybrid_metrics.recall > 0.80,
            "recall {:?}",
            result.hybrid_metrics
        );
        assert!(
            result.hybrid_metrics.precision > 0.75,
            "precision {:?}",
            result.hybrid_metrics
        );
    }

    #[test]
    fn union_beats_both_sides() {
        let w = world();
        let set = extract_ewhoring_threads(&w.corpus);
        let threads = set.all_threads();
        let mut rng = rng_from_seed(2);
        let (_, r) = classify_tops(&mut rng, &w.corpus, &w.catalog, &w.truth, &threads, 2);
        assert!(r.detected.len() >= r.ml_count.max(r.heuristic_count));
        assert_eq!(
            r.detected.len(),
            r.ml_count + r.heuristic_count - r.both_count
        );
        assert!(r.both_count > 0, "the two sides overlap");
        assert!(
            r.both_count < r.detected.len(),
            "each side contributes unique detections"
        );
    }

    #[test]
    fn detection_count_tracks_planted_tops() {
        let w = world();
        let set = extract_ewhoring_threads(&w.corpus);
        let threads = set.all_threads();
        let mut rng = rng_from_seed(3);
        let (_, r) = classify_tops(&mut rng, &w.corpus, &w.catalog, &w.truth, &threads, 2);
        let planted = w.truth.top_count() as f64;
        let detected = r.detected.len() as f64;
        assert!(
            (detected / planted) > 0.75 && (detected / planted) < 1.45,
            "detected {detected} vs planted {planted}"
        );
    }

    #[test]
    fn sample_is_enriched_but_not_all_positive() {
        let w = world();
        let set = extract_ewhoring_threads(&w.corpus);
        let threads = set.all_threads();
        let mut rng = rng_from_seed(4);
        // Use half the extracted set so enrichment has room to act (at
        // paper scale the sample is far smaller than the 44k threads).
        let size = threads.len() / 2;
        let sample = annotation_sample(&mut rng, &w.corpus, &w.catalog, &threads, size);
        assert_eq!(sample.len(), size);
        let pos = sample.iter().filter(|&&t| w.truth.is_top(t)).count() as f64;
        let rate = pos / sample.len() as f64;
        let base = w.truth.top_count() as f64 / threads.len() as f64;
        assert!(rate > base, "sample rate {rate} vs base {base}");
        assert!(rate < 0.6, "sample rate {rate} suspiciously high");
    }
}
