//! Stage 6: reverse image search and provenance analysis (paper §4.5).
//!
//! Previews (all NSFV images from image-sharing sites) and three sampled
//! images per pack — those with the lowest, median and highest NSFW score
//! — are reverse-searched. For each match the crawl date is compared with
//! the forum post date, falling back to Wayback snapshots, to decide
//! whether the image was online *before* it was shared ("Seen Before",
//! Table 5). Matched domains are classified by the three commercial
//! classifiers (Table 6).

use crate::nsfv::ImageMeasures;
use crimebb::ThreadId;
use imagesim::RobustHash;
use revsearch::{ClassifierKind, DomainClassifier, ReverseIndex, Wayback};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use synthrand::Day;
use websim::OriginRegistry;

/// A safety-cleared pack ready for provenance analysis.
#[derive(Debug, Clone)]
pub struct PackForAnalysis {
    /// Thread that shared the pack.
    pub thread: ThreadId,
    /// Forum posting date.
    pub posted: Day,
    /// Measures of the pack's images (pixels already dropped).
    pub images: Vec<ImageMeasures>,
}

/// Table 5 row: reverse-search outcomes for one image population.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ReverseSearchStats {
    /// Images queried.
    pub total: usize,
    /// Images with at least one match.
    pub matched: usize,
    /// Images whose earliest located copy predates the forum post.
    pub seen_before: usize,
    /// Mean matches per *matched* image (paper: 12.7 packs / 17.3 previews).
    pub ratio: f64,
    /// Maximum matches for a single image.
    pub max: usize,
}

impl ReverseSearchStats {
    /// Match rate over queried images.
    pub fn match_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.matched as f64 / self.total as f64
        }
    }

    /// Seen-before rate over queried images (Table 5 reports percentages
    /// of the total).
    pub fn seen_before_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.seen_before as f64 / self.total as f64
        }
    }
}

/// Per-classifier domain-tag distribution (Table 6).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DomainTagTable {
    /// Classifier display name.
    pub classifier: String,
    /// `(tag, count)` sorted by descending count.
    pub tags: Vec<(String, usize)>,
}

/// The full §4.5 output.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProvenanceResult {
    /// Pack-image row of Table 5.
    pub packs: ReverseSearchStats,
    /// Preview row of Table 5.
    pub previews: ReverseSearchStats,
    /// Packs analysed.
    pub analysed_packs: usize,
    /// Packs whose sampled images all had zero matches (paper: 203/1 255).
    pub zero_match_packs: usize,
    /// Zero-match packs per sharing thread author — the paper observes one
    /// actor with 47 zero-match packs. `(thread count of top actor,
    /// total packs of top actor)`.
    pub top_zero_match_actor: (usize, usize),
    /// Distinct domains across all matches (paper: 5 917).
    pub distinct_domains: usize,
    /// Tag tables for the three classifiers.
    pub domain_tags: Vec<DomainTagTable>,
}

/// Selects the three §4.5 sample images of a pack: lowest, median, and
/// highest NSFW score. Packs with fewer than three images return what they
/// have ("note some packs have less than 3 images").
pub fn sample_pack_images(images: &[ImageMeasures]) -> Vec<ImageMeasures> {
    let mut sorted: Vec<ImageMeasures> = images.to_vec();
    sorted.sort_by(|a, b| a.nsfw.partial_cmp(&b.nsfw).expect("scores are finite"));
    match sorted.len() {
        0 => Vec::new(),
        1 => vec![sorted[0]],
        2 => vec![sorted[0], sorted[1]],
        n => vec![sorted[0], sorted[n / 2], sorted[n - 1]],
    }
}

/// Outcome of one reverse search. Pure in `(measures.hash, posted)` for
/// a fixed index + wayback archive — which is what makes it memoisable
/// across epoch advances (the services are static; only the forum
/// timeline grows).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Matches located by the reverse index.
    pub matches: usize,
    /// Whether any copy was online before the forum post.
    pub seen_before: bool,
    /// Domain ids of every match (with repeats).
    pub domains: Vec<u32>,
}

fn run_query(
    index: &ReverseIndex,
    wayback: &Wayback,
    measures: &ImageMeasures,
    posted: Day,
) -> QueryOutcome {
    let matches = index.query(&measures.hash);
    let mut seen_before = false;
    let mut domains = Vec::with_capacity(matches.len());
    for m in &matches {
        domains.push(m.domain);
        if m.crawled < posted || wayback.seen_before(&m.url, posted) {
            seen_before = true;
        }
    }
    QueryOutcome {
        matches: matches.len(),
        seen_before,
        domains,
    }
}

/// Runs the full provenance stage.
pub fn analyse_provenance(
    index: &ReverseIndex,
    wayback: &Wayback,
    origins: &OriginRegistry,
    packs: &[PackForAnalysis],
    pack_authors: &[crimebb::ActorId],
    previews: &[(ImageMeasures, Day)],
) -> ProvenanceResult {
    analyse_with(origins, packs, pack_authors, previews, &mut |m, posted| {
        run_query(index, wayback, m, posted)
    })
}

/// [`analyse_provenance`] with a cross-run memo of reverse-search
/// outcomes, keyed `(hash, posted)`. A hit skips the linear index scan
/// and the Wayback lookups; the memoised value is exact because
/// [`QueryOutcome`] is pure in the key for fixed services. Fresh
/// outcomes are appended to `memo` in first-query order, so warm and
/// fresh carriers build identical memos for the same prefix.
pub fn analyse_provenance_memo(
    index: &ReverseIndex,
    wayback: &Wayback,
    origins: &OriginRegistry,
    packs: &[PackForAnalysis],
    pack_authors: &[crimebb::ActorId],
    previews: &[(ImageMeasures, Day)],
    memo: &mut Vec<(RobustHash, Day, QueryOutcome)>,
) -> ProvenanceResult {
    let mut known: HashMap<(RobustHash, Day), QueryOutcome> =
        memo.iter().map(|(h, d, q)| ((*h, *d), q.clone())).collect();
    let mut fresh: Vec<(RobustHash, Day, QueryOutcome)> = Vec::new();
    let result = analyse_with(origins, packs, pack_authors, previews, &mut |m, posted| {
        let key = (m.hash, posted);
        if let Some(hit) = known.get(&key) {
            return hit.clone();
        }
        let q = run_query(index, wayback, m, posted);
        known.insert(key, q.clone());
        fresh.push((key.0, key.1, q.clone()));
        q
    });
    memo.extend(fresh);
    result
}

/// The §4.5 aggregation over an arbitrary query function — the seam
/// that lets the memoised and direct paths share one traversal, so a
/// memo hit cannot drift from a recomputed outcome.
fn analyse_with(
    origins: &OriginRegistry,
    packs: &[PackForAnalysis],
    pack_authors: &[crimebb::ActorId],
    previews: &[(ImageMeasures, Day)],
    query: &mut dyn FnMut(&ImageMeasures, Day) -> QueryOutcome,
) -> ProvenanceResult {
    assert_eq!(packs.len(), pack_authors.len(), "author per pack");
    let mut result = ProvenanceResult {
        analysed_packs: packs.len(),
        ..ProvenanceResult::default()
    };
    let mut matched_domains: HashSet<u32> = HashSet::new();
    let mut zero_by_actor: BTreeMap<crimebb::ActorId, (usize, usize)> = BTreeMap::new();

    // Packs: 3 samples each.
    let mut pack_match_sum = 0usize;
    for (pack, &author) in packs.iter().zip(pack_authors) {
        let mut pack_zero = true;
        for m in sample_pack_images(&pack.images) {
            let q = query(&m, pack.posted);
            result.packs.total += 1;
            if q.matches > 0 {
                result.packs.matched += 1;
                pack_match_sum += q.matches;
                result.packs.max = result.packs.max.max(q.matches);
                pack_zero = false;
                if q.seen_before {
                    result.packs.seen_before += 1;
                }
                matched_domains.extend(q.domains);
            }
        }
        let e = zero_by_actor.entry(author).or_insert((0, 0));
        e.1 += 1;
        if pack_zero {
            result.zero_match_packs += 1;
            e.0 += 1;
        }
    }
    result.packs.ratio = if result.packs.matched > 0 {
        pack_match_sum as f64 / result.packs.matched as f64
    } else {
        0.0
    };
    result.top_zero_match_actor = zero_by_actor
        .values()
        .copied()
        .max_by_key(|&(z, _)| z)
        .unwrap_or((0, 0));

    // Previews: every NSFV image.
    let mut preview_match_sum = 0usize;
    for (m, posted) in previews {
        let q = query(m, *posted);
        result.previews.total += 1;
        if q.matches > 0 {
            result.previews.matched += 1;
            preview_match_sum += q.matches;
            result.previews.max = result.previews.max.max(q.matches);
            if q.seen_before {
                result.previews.seen_before += 1;
            }
            matched_domains.extend(q.domains);
        }
    }
    result.previews.ratio = if result.previews.matched > 0 {
        preview_match_sum as f64 / result.previews.matched as f64
    } else {
        0.0
    };

    // Domain classification (Table 6).
    result.distinct_domains = matched_domains.len();
    for kind in ClassifierKind::ALL {
        let classifier = DomainClassifier::new(kind);
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for &d in &matched_domains {
            for tag in classifier.classify(origins.get(d as usize)) {
                *counts.entry(tag).or_insert(0) += 1;
            }
        }
        let mut tags: Vec<(String, usize)> = counts
            .into_iter()
            .map(|(t, c)| (t.to_string(), c))
            .collect();
        tags.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        result.domain_tags.push(DomainTagTable {
            classifier: kind.label().to_string(),
            tags,
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagesim::{ImageClass, ImageSpec};

    fn measures(model: u32, variant: u64) -> ImageMeasures {
        ImageMeasures::of(&ImageSpec::model_photo(ImageClass::ModelNude, model, variant).render())
    }

    #[test]
    fn sampling_picks_low_median_high() {
        let mut imgs: Vec<ImageMeasures> = (0..7).map(|v| measures(v as u32 + 1, v)).collect();
        // Force distinct scores to check ordering logic.
        for (i, m) in imgs.iter_mut().enumerate() {
            m.nsfw = i as f64 / 10.0;
        }
        let s = sample_pack_images(&imgs);
        assert_eq!(s.len(), 3);
        assert!(s[0].nsfw <= s[1].nsfw && s[1].nsfw <= s[2].nsfw);
        assert_eq!(s[0].nsfw, 0.0);
        assert_eq!(s[2].nsfw, 0.6);
    }

    #[test]
    fn small_packs_sample_everything() {
        assert_eq!(sample_pack_images(&[]).len(), 0);
        assert_eq!(sample_pack_images(&[measures(1, 1)]).len(), 1);
        assert_eq!(
            sample_pack_images(&[measures(1, 1), measures(2, 2)]).len(),
            2
        );
    }

    #[test]
    fn end_to_end_provenance_over_generated_world() {
        use worldgen::{World, WorldConfig};
        let w = World::generate(WorldConfig::test_scale(0x960));

        // Build pack inputs straight from ground truth (pipeline wiring is
        // tested at the pipeline level).
        let mut packs = Vec::new();
        let mut authors = Vec::new();
        for rec in w.truth.packs.iter().take(40) {
            if let Some(entry) = w.web.entry(&rec.url) {
                if let websim::HostedObject::Pack { images } = &entry.object {
                    packs.push(PackForAnalysis {
                        thread: rec.thread,
                        posted: rec.posted,
                        images: images
                            .iter()
                            .take(12)
                            .map(|s| ImageMeasures::of(&s.render()))
                            .collect(),
                    });
                    authors.push(rec.actor);
                }
            }
        }
        assert!(!packs.is_empty());
        let r = analyse_provenance(&w.index, &w.wayback, &w.origins, &packs, &authors, &[]);
        assert_eq!(r.analysed_packs, packs.len());
        assert!(r.packs.total >= packs.len());
        // Standard/saturated packs dominate, so most queries match.
        assert!(
            r.packs.match_rate() > 0.4,
            "match rate {}",
            r.packs.match_rate()
        );
        // Matched images were overwhelmingly online before the post.
        assert!(
            r.packs.seen_before <= r.packs.matched,
            "seen_before bounded by matched"
        );
        assert!(r.distinct_domains > 0);
        assert_eq!(r.domain_tags.len(), 3);
        // Porn-like tags dominate every classifier's table.
        for table in &r.domain_tags {
            let top = &table.tags[0].0;
            assert!(
                top.to_lowercase().contains("porn")
                    || top.to_lowercase().contains("adult")
                    || top.to_lowercase().contains("sex")
                    || top == "no_result",
                "{}: top tag {top}",
                table.classifier
            );
        }
    }

    /// The memoised path must agree with the direct path on a cold memo,
    /// and a warm re-run must add no entries (every query is a hit) while
    /// still producing the identical result.
    #[test]
    fn memoised_analysis_matches_direct_and_reuses_entries() {
        use worldgen::{World, WorldConfig};
        let w = World::generate(WorldConfig::test_scale(0x962));
        let mut packs = Vec::new();
        let mut authors = Vec::new();
        for rec in w.truth.packs.iter().take(20) {
            if let Some(entry) = w.web.entry(&rec.url) {
                if let websim::HostedObject::Pack { images } = &entry.object {
                    packs.push(PackForAnalysis {
                        thread: rec.thread,
                        posted: rec.posted,
                        images: images
                            .iter()
                            .take(10)
                            .map(|s| ImageMeasures::of(&s.render()))
                            .collect(),
                    });
                    authors.push(rec.actor);
                }
            }
        }
        assert!(!packs.is_empty());
        let previews: Vec<(ImageMeasures, Day)> = packs
            .iter()
            .flat_map(|p| p.images.iter().take(1).map(|m| (m.clone(), p.posted)))
            .collect();

        let direct = analyse_provenance(
            &w.index, &w.wayback, &w.origins, &packs, &authors, &previews,
        );
        let mut memo = Vec::new();
        let cold = analyse_provenance_memo(
            &w.index, &w.wayback, &w.origins, &packs, &authors, &previews, &mut memo,
        );
        let snap = |r: &ProvenanceResult| serde_json::to_string(r).unwrap();
        assert_eq!(snap(&direct), snap(&cold));
        assert!(!memo.is_empty());

        let filled = memo.len();
        let warm = analyse_provenance_memo(
            &w.index, &w.wayback, &w.origins, &packs, &authors, &previews, &mut memo,
        );
        assert_eq!(snap(&direct), snap(&warm));
        assert_eq!(memo.len(), filled, "warm re-run adds no memo entries");
    }

    #[test]
    fn zero_match_packs_are_counted_per_actor() {
        use worldgen::{PackKind, World, WorldConfig};
        let w = World::generate(WorldConfig::test_scale(0x961));
        let mut packs = Vec::new();
        let mut authors = Vec::new();
        for rec in &w.truth.packs {
            if rec.kind != PackKind::MirroredAll && rec.kind != PackKind::SelfMade {
                continue;
            }
            if let Some(entry) = w.web.entry(&rec.url) {
                if let websim::HostedObject::Pack { images } = &entry.object {
                    packs.push(PackForAnalysis {
                        thread: rec.thread,
                        posted: rec.posted,
                        images: images
                            .iter()
                            .take(8)
                            .map(|s| ImageMeasures::of(&s.render()))
                            .collect(),
                    });
                    authors.push(rec.actor);
                }
            }
        }
        if packs.is_empty() {
            return; // tiny world without zero-match packs: nothing to test
        }
        let r = analyse_provenance(&w.index, &w.wayback, &w.origins, &packs, &authors, &[]);
        // Mirrored/self-made packs must be (near) zero-match.
        assert!(
            r.zero_match_packs as f64 / packs.len() as f64 > 0.8,
            "{} of {} zero-match",
            r.zero_match_packs,
            packs.len()
        );
        assert!(r.top_zero_match_actor.0 >= 1);
    }
}
