//! Thread feature extraction for the TOP classifier (paper §4.1).
//!
//! "For each thread it extracts: the number of replies; the number of links
//! to cloud storage and image sharing sites, and number of links to other
//! threads in the forum; the length of the first post; and a set of
//! features extracted from the text using natural language processing …
//! Additionally, the feature set … includes the number of special keywords
//! and characters in the thread headings, such as question marks, keywords
//! related to selling/buying … and keywords related to tutorials and
//! mentoring."
//!
//! The statistical block occupies fixed feature indices `[0, STAT_DIM)`;
//! TF-IDF terms follow at `STAT_DIM + term_id`.

use crimebb::{Corpus, ThreadId};
use linsvm::SparseVec;
use synthrand::Day;
use textkit::dtm::{TfIdf, Vocabulary};
use textkit::lexicon::Lexicon;
use textkit::tokenize::{count_char, tokenize_with_stopwords};
use textkit::url::extract_urls;
use websim::SiteCatalog;

/// Number of statistical features preceding the TF-IDF block.
pub const STAT_DIM: usize = 9;

/// Raw (unnormalised) statistical features of one thread.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ThreadStats {
    /// Replies (posts beyond the first).
    pub replies: f64,
    /// Links to known cloud-storage services in the first post.
    pub cloud_links: f64,
    /// Links to known image-sharing sites in the first post.
    pub image_links: f64,
    /// Links to other threads of the forum (internal references).
    pub thread_links: f64,
    /// Length of the first post in characters.
    pub first_post_len: f64,
    /// Question marks in the heading.
    pub question_marks: f64,
    /// Buying/requesting keywords in the heading (Table 2 row 3).
    pub request_kw: f64,
    /// Tutorial keywords in the heading (Table 2 row 4).
    pub tutorial_kw: f64,
    /// TOP keywords in the heading (Table 2 row 2).
    pub top_kw: f64,
}

/// Extracts the statistical block for one thread.
pub fn thread_stats(corpus: &Corpus, catalog: &SiteCatalog, thread: ThreadId) -> ThreadStats {
    let t = corpus.thread(thread);
    let first = corpus.first_post(thread);
    let body = first.map_or("", |p| p.body.as_str());

    let mut cloud = 0.0;
    let mut image = 0.0;
    let mut other = 0.0;
    for url in extract_urls(body) {
        match catalog.lookup(&url.domain()) {
            Some(site) if site.kind == websim::SiteKind::CloudStorage => cloud += 1.0,
            Some(_) => image += 1.0,
            None => other += 1.0,
        }
    }

    let request = Lexicon::request();
    let tutorial = Lexicon::tutorial();
    let top = Lexicon::top();

    ThreadStats {
        replies: corpus.reply_count(thread) as f64,
        cloud_links: cloud,
        image_links: image,
        thread_links: other,
        first_post_len: body.len() as f64,
        question_marks: count_char(&t.heading, '?') as f64,
        request_kw: request.count_matches(&t.heading) as f64,
        tutorial_kw: tutorial.count_matches(&t.heading) as f64,
        top_kw: top.count_matches(&t.heading) as f64,
    }
}

impl ThreadStats {
    /// Compresses counts into a bounded sparse block (log scaling keeps the
    /// SVM's feature magnitudes comparable with the unit-norm TF-IDF rows).
    pub fn to_sparse(&self) -> SparseVec {
        let vals = [
            self.replies.ln_1p(),
            self.cloud_links.min(8.0),
            self.image_links.min(16.0) * 0.5,
            self.thread_links.min(8.0) * 0.5,
            (self.first_post_len / 200.0).min(4.0),
            self.question_marks.min(4.0),
            self.request_kw.min(4.0),
            self.tutorial_kw.min(4.0),
            self.top_kw.min(6.0),
        ];
        SparseVec::from_pairs(
            vals.iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(i, &v)| (i, v))
                .collect(),
        )
    }
}

/// [`thread_stats`] as of the end of day `cutoff`: replies and
/// first-post fields only count posts dated on or before the cutoff.
/// Posts are chronological within a thread, so the visible prefix is a
/// `partition_point` — and because a thread's earlier posts never change,
/// the result is identical whether computed on the corpus as of `cutoff`
/// or on any later corpus. That is what lets a first-sight classification
/// made at epoch `j` be replayed bit-exactly from a later corpus.
pub fn thread_stats_at(
    corpus: &Corpus,
    catalog: &SiteCatalog,
    thread: ThreadId,
    cutoff: Day,
) -> ThreadStats {
    let t = corpus.thread(thread);
    let posts = corpus.posts_in_thread(thread);
    let visible = posts.partition_point(|&p| corpus.post(p).date <= cutoff);
    let body = if visible > 0 {
        corpus.post(posts[0]).body.as_str()
    } else {
        ""
    };

    let mut cloud = 0.0;
    let mut image = 0.0;
    let mut other = 0.0;
    for url in extract_urls(body) {
        match catalog.lookup(&url.domain()) {
            Some(site) if site.kind == websim::SiteKind::CloudStorage => cloud += 1.0,
            Some(_) => image += 1.0,
            None => other += 1.0,
        }
    }

    let request = Lexicon::request();
    let tutorial = Lexicon::tutorial();
    let top = Lexicon::top();

    ThreadStats {
        replies: visible.saturating_sub(1) as f64,
        cloud_links: cloud,
        image_links: image,
        thread_links: other,
        first_post_len: body.len() as f64,
        question_marks: count_char(&t.heading, '?') as f64,
        request_kw: request.count_matches(&t.heading) as f64,
        tutorial_kw: tutorial.count_matches(&t.heading) as f64,
        top_kw: top.count_matches(&t.heading) as f64,
    }
}

/// The tokenised text of a thread: heading plus first-post body (the
/// classifier "parses thread headings and posts").
pub fn thread_tokens(corpus: &Corpus, thread: ThreadId) -> Vec<String> {
    let t = corpus.thread(thread);
    let mut tokens = tokenize_with_stopwords(&t.heading);
    if let Some(p) = corpus.first_post(thread) {
        tokens.extend(tokenize_with_stopwords(&p.body));
    }
    tokens
}

/// [`thread_tokens`] as of the end of day `cutoff`: the first-post body
/// only contributes if the first post exists by then.
pub fn thread_tokens_at(corpus: &Corpus, thread: ThreadId, cutoff: Day) -> Vec<String> {
    let t = corpus.thread(thread);
    let mut tokens = tokenize_with_stopwords(&t.heading);
    if let Some(p) = corpus.first_post(thread) {
        if p.date <= cutoff {
            tokens.extend(tokenize_with_stopwords(&p.body));
        }
    }
    tokens
}

/// A fitted feature extractor: vocabulary + IDF weights over the training
/// threads, reused unchanged at inference time. Serialisable so the epoch
/// pipeline can freeze the bootstrap-trained extractor in its carry.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FeatureExtractor {
    vocab: Vocabulary,
    tfidf: TfIdf,
}

impl FeatureExtractor {
    /// Fits vocabulary and IDF on the training threads. Tokenisation, the
    /// document-term matrix, and the IDF fit all run across `workers`
    /// threads (0 = all cores) with output identical to a serial fit.
    pub fn fit(corpus: &Corpus, train: &[ThreadId], workers: usize) -> FeatureExtractor {
        let docs: Vec<Vec<String>> =
            crate::par::par_map(train, workers, |&t| thread_tokens(corpus, t));
        Self::fit_from_docs(&docs, workers)
    }

    /// Fits vocabulary and IDF on pre-tokenised documents, one per
    /// training thread **in training order**. This is the merge seam for
    /// sharded runs: shard workers tokenise their contiguous span of the
    /// training set, the coordinator concatenates the per-shard document
    /// lists in shard order (= training order), and this fit — vocabulary
    /// union, document-term matrix, IDF — is then byte-identical to a
    /// single-process [`FeatureExtractor::fit`] over the same threads.
    pub fn fit_from_docs(docs: &[Vec<String>], workers: usize) -> FeatureExtractor {
        let vocab = Vocabulary::build(docs.iter().map(|d| d.iter()), 2);
        let dtm = textkit::dtm::DocTermMatrix::from_docs_par(&vocab, docs, workers);
        let tfidf = TfIdf::fit_par(&dtm, workers);
        FeatureExtractor { vocab, tfidf }
    }

    /// [`FeatureExtractor::fit`] as of the end of day `cutoff`: the
    /// vocabulary and IDF only see post text dated on or before the
    /// cutoff. The epoch pipeline bootstraps its frozen extractor with
    /// this — on the epoch-1 corpus it equals a plain [`fit`], and on
    /// any later corpus it replays the epoch-1 fit bit-exactly (the
    /// `_at` inputs are prefix-stable).
    ///
    /// [`fit`]: FeatureExtractor::fit
    pub fn fit_at(
        corpus: &Corpus,
        train: &[ThreadId],
        cutoff: Day,
        workers: usize,
    ) -> FeatureExtractor {
        let docs: Vec<Vec<String>> =
            crate::par::par_map(train, workers, |&t| thread_tokens_at(corpus, t, cutoff));
        let vocab = Vocabulary::build(docs.iter().map(|d| d.iter()), 2);
        let dtm = textkit::dtm::DocTermMatrix::from_docs_par(&vocab, &docs, workers);
        let tfidf = TfIdf::fit_par(&dtm, workers);
        FeatureExtractor { vocab, tfidf }
    }

    /// Full feature vector of one thread: statistical block + TF-IDF block.
    pub fn features(&self, corpus: &Corpus, catalog: &SiteCatalog, thread: ThreadId) -> SparseVec {
        let stats = thread_stats(corpus, catalog, thread).to_sparse();
        let counts = self.vocab.count(&thread_tokens(corpus, thread));
        let tfidf_row = self.tfidf.transform_row(&counts);
        let text = SparseVec::from_sorted(tfidf_row);
        stats.concat(&text, STAT_DIM)
    }

    /// [`FeatureExtractor::features`] as of the end of day `cutoff` —
    /// the first-sight feature vector the epoch pipeline classifies new
    /// threads with. Pure in `(thread's visible prefix, cutoff)`, so a
    /// later corpus replays it bit-exactly.
    pub fn features_at(
        &self,
        corpus: &Corpus,
        catalog: &SiteCatalog,
        thread: ThreadId,
        cutoff: Day,
    ) -> SparseVec {
        let stats = thread_stats_at(corpus, catalog, thread, cutoff).to_sparse();
        let counts = self.vocab.count(&thread_tokens_at(corpus, thread, cutoff));
        let tfidf_row = self.tfidf.transform_row(&counts);
        let text = SparseVec::from_sorted(tfidf_row);
        stats.concat(&text, STAT_DIM)
    }

    /// Feature vectors for many threads across `workers` threads
    /// (0 = all cores), in input order.
    pub fn features_many(
        &self,
        corpus: &Corpus,
        catalog: &SiteCatalog,
        threads: &[ThreadId],
        workers: usize,
    ) -> Vec<SparseVec> {
        crate::par::par_map(threads, workers, |&t| self.features(corpus, catalog, t))
    }

    /// Vocabulary size (diagnostics).
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crimebb::{BoardCategory, CorpusBuilder};
    use synthrand::Day;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        let f = b.add_forum("HF");
        let board = b.add_board(f, "eWhoring", BoardCategory::EWhoring);
        let a = b.add_actor(f, "a", Day::from_ymd(2012, 1, 1));
        let d = Day::from_ymd(2014, 1, 1);

        let top = b.add_thread(board, a, "[FREE] unsaturated pack - 100 pics", d);
        let p = b.add_post(
            top,
            a,
            d,
            "enjoy\nDownload: https://mediafire.com/f/abc\nPreview: https://imgur.com/x1\nPreview: https://imgur.com/x2",
            None,
        );
        b.add_post(top, a, d, "thanks!", Some(p));
        b.add_post(top, a, d, "great pack", Some(p));

        let req = b.add_thread(board, a, "Looking for a pack??", d);
        b.add_post(req, a, d, "need advice please, help with packs", None);
        b.build()
    }

    #[test]
    fn stats_count_link_kinds_and_replies() {
        let c = corpus();
        let catalog = SiteCatalog::new();
        let top = c.threads()[0].id;
        let s = thread_stats(&c, &catalog, top);
        assert_eq!(s.replies, 2.0);
        assert_eq!(s.cloud_links, 1.0);
        assert_eq!(s.image_links, 2.0);
        assert!(s.top_kw >= 2.0, "pack + pics: {}", s.top_kw);
        assert_eq!(s.question_marks, 0.0);
    }

    #[test]
    fn request_thread_has_question_and_request_signals() {
        let c = corpus();
        let catalog = SiteCatalog::new();
        let req = c.threads()[1].id;
        let s = thread_stats(&c, &catalog, req);
        assert_eq!(s.question_marks, 2.0);
        assert!(s.request_kw >= 1.0, "looking for: {}", s.request_kw);
        assert_eq!(s.cloud_links, 0.0);
    }

    #[test]
    fn sparse_encoding_respects_stat_dim() {
        let c = corpus();
        let catalog = SiteCatalog::new();
        let s = thread_stats(&c, &catalog, c.threads()[0].id).to_sparse();
        assert!(s.dim_hint() <= STAT_DIM);
        assert!(s.nnz() > 0);
    }

    #[test]
    fn extractor_separates_blocks() {
        let c = corpus();
        let catalog = SiteCatalog::new();
        let all: Vec<ThreadId> = c.threads().iter().map(|t| t.id).collect();
        let ex = FeatureExtractor::fit(&c, &all, 1);
        let fv = ex.features(&c, &catalog, all[0]);
        // Statistical entries live below STAT_DIM; text entries above.
        assert!(fv.entries().iter().any(|&(i, _)| i < STAT_DIM));
        assert!(fv.entries().iter().any(|&(i, _)| i >= STAT_DIM));
    }

    /// Cutoff semantics: with the cutoff past every post the `_at`
    /// variants equal the plain ones; before the first post only the
    /// heading contributes; in between, replies are truncated.
    #[test]
    fn cutoff_variants_window_the_thread() {
        let c = corpus();
        let catalog = SiteCatalog::new();
        let top = c.threads()[0].id;
        let late = Day::from_ymd(2020, 1, 1);
        assert_eq!(
            thread_stats_at(&c, &catalog, top, late),
            thread_stats(&c, &catalog, top)
        );
        assert_eq!(thread_tokens_at(&c, top, late), thread_tokens(&c, top),);

        let early = Day::from_ymd(2013, 12, 31);
        let s = thread_stats_at(&c, &catalog, top, early);
        assert_eq!(s.replies, 0.0, "no posts visible before creation");
        assert_eq!(s.cloud_links, 0.0);
        assert_eq!(s.first_post_len, 0.0);
        assert!(s.top_kw >= 2.0, "heading features survive the cutoff");
        assert_eq!(
            thread_tokens_at(&c, top, early),
            tokenize_with_stopwords(&c.thread(top).heading)
        );

        let ex = FeatureExtractor::fit(&c, &[top], 1);
        assert_eq!(
            ex.features_at(&c, &catalog, top, late).entries(),
            ex.features(&c, &catalog, top).entries()
        );
    }

    #[test]
    fn unseen_terms_are_ignored_at_inference() {
        let c = corpus();
        let catalog = SiteCatalog::new();
        // Fit on the request thread only; TOP thread's vocabulary is OOV.
        let ex = FeatureExtractor::fit(&c, &[c.threads()[1].id], 1);
        let fv = ex.features(&c, &catalog, c.threads()[0].id);
        // Still has statistical features even if no text features survive.
        assert!(fv.entries().iter().any(|&(i, _)| i < STAT_DIM));
    }
}
