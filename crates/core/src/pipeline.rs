//! End-to-end orchestration of the measurement pipeline (paper Figure 1).
//!
//! [`Pipeline::run`] executes every stage in the paper's order against a
//! generated [`World`], collecting one result struct per table/figure. The
//! image-measurement step (the only pixel-touching work) fans out across
//! worker threads; everything else is sequential and deterministic.

use crate::actors::{
    actor_metrics, cohort_table, group_profiles, interaction_graph, interest_evolution,
    popularity, select_key_actors, CohortRow, GroupProfile, InterestEvolution,
    KeyActorInputs, KeyActors,
};
use crate::crawl::{crawl_tops, CrawlResult};
use crate::extract::{extract_ewhoring_threads, EwhoringSet};
use crate::finance::{
    analyse_currency_exchange, analyse_earnings, harvest_earnings, CurrencyExchangeAnalysis,
    EarningsAnalysis, EarningsHarvest,
};
use crate::nsfv::{validate, ImageMeasures, NsfvValidation};
use crate::provenance::{analyse_provenance, PackForAnalysis, ProvenanceResult};
use crate::safety_stage::{screen_downloads, SafetyStageResult};
use crate::topcls::{classify_tops, TopClassification};
use crimebb::{ActorId, ThreadId};
use imagesim::validation::build_validation_set;
use safety::SafetyGate;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use websim::StoredImage;
use worldgen::World;

/// Pipeline tuning knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PipelineOptions {
    /// Seed for annotation sampling / training shuffles.
    pub seed: u64,
    /// `k` for key-actor selection (paper: 50).
    pub k_key_actors: usize,
    /// Worker threads for image measurement (0 = all cores).
    pub workers: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            seed: 0x1919,
            k_key_actors: 50,
            workers: 0,
        }
    }
}

/// Table 1 row: per-forum eWhoring footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForumRow {
    /// Forum name.
    pub forum: String,
    /// eWhoring threads extracted.
    pub threads: usize,
    /// Posts in those threads.
    pub posts: usize,
    /// First post date, `MM/YY`.
    pub first_post: String,
    /// TOPs detected by the hybrid classifier.
    pub tops: usize,
    /// Distinct actors.
    pub actors: usize,
}

/// §4.3 extras measured on top of the IWF summary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SafetyFindings {
    /// The stage result (flagged downloads, IWF summary).
    pub stage: SafetyStageResult,
    /// Distinct actors who replied in flagged threads (paper: 476).
    pub actors_in_flagged_threads: usize,
}

/// §4.2/§4.4 funnel counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ImageFunnel {
    /// Single images downloaded from image-sharing sites (paper: 5 788).
    pub preview_downloads: usize,
    /// Packs downloaded (paper: 1 255).
    pub packs_downloaded: usize,
    /// Images inside downloaded packs (paper: 111 288).
    pub pack_images: usize,
    /// Unique files after exact dedup (paper: 53 948).
    pub unique_files: usize,
    /// Exact-duplicate images appearing in ≥20 packs (paper: 127).
    pub heavily_duplicated: usize,
    /// Preview downloads classified NSFV (paper: 3 496).
    pub previews_nsfv: usize,
}

/// Everything the pipeline measures, one field per paper artefact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Table 1.
    pub forums: Vec<ForumRow>,
    /// §4.1 classifier results.
    pub topcls: TopClassification,
    /// §4.2 crawl output (Tables 3/4 live in the tallies).
    pub crawl: CrawlResult,
    /// §4.2/§4.4 funnel.
    pub funnel: ImageFunnel,
    /// §4.3 safety results.
    pub safety: SafetyFindings,
    /// §4.4 validation-set evaluation.
    pub nsfv_validation: NsfvValidation,
    /// §4.5 provenance (Tables 5/6).
    pub provenance: ProvenanceResult,
    /// §5.1 harvest funnel.
    pub harvest: EarningsHarvest,
    /// §5.2 earnings aggregates (Figures 2/3).
    pub earnings: EarningsAnalysis,
    /// Table 7.
    pub currency: CurrencyExchangeAnalysis,
    /// Table 8.
    pub cohorts: Vec<CohortRow>,
    /// Figure 4 raw points: `(ew_posts, pct_ewhoring, days_before,
    /// days_after)` per actor.
    pub fig4_points: Vec<(usize, f64, u32, u32)>,
    /// §6.3 key actors (Table 9 data).
    pub key_actors: KeyActors,
    /// Table 10.
    pub group_profiles: Vec<GroupProfile>,
    /// Figure 5.
    pub interests: InterestEvolution,
    /// Wall-clock per stage, milliseconds.
    pub stage_ms: Vec<(String, u128)>,
}

/// The pipeline runner.
pub struct Pipeline {
    options: PipelineOptions,
}

impl Pipeline {
    /// Creates a runner with `options`.
    pub fn new(options: PipelineOptions) -> Pipeline {
        Pipeline { options }
    }

    /// Runs every stage against `world`.
    pub fn run(&self, world: &World) -> PipelineReport {
        let mut stage_ms: Vec<(String, u128)> = Vec::new();
        let mut timed = |label: &str, t: Instant| {
            stage_ms.push((label.to_string(), t.elapsed().as_millis()));
        };

        // Stage 1: extraction (§3).
        let t = Instant::now();
        let set = extract_ewhoring_threads(&world.corpus);
        let all_threads = set.all_threads();
        timed("extract", t);

        // Stage 2: TOP classification (§4.1).
        let t = Instant::now();
        let mut rng = synthrand::rng_from_seed(self.options.seed);
        let (_classifier, topcls) = classify_tops(
            &mut rng,
            &world.corpus,
            &world.catalog,
            &world.truth,
            &all_threads,
        );
        timed("top_classifier", t);

        let forums = forum_rows(world, &set, &topcls.detected);

        // Stage 3: crawl (§4.2).
        let t = Instant::now();
        let crawl = crawl_tops(&world.corpus, &world.catalog, &world.web, &topcls.detected);
        timed("crawl", t);

        // Measure pixels once, in parallel.
        let t = Instant::now();
        let preview_measures = measure_batch(
            &crawl
                .previews
                .iter()
                .map(|d| d.image)
                .collect::<Vec<StoredImage>>(),
            self.options.workers,
        );
        let pack_image_lists: Vec<Vec<ImageMeasures>> = crawl
            .packs
            .iter()
            .map(|p| measure_batch(&p.images, self.options.workers))
            .collect();
        timed("measure_images", t);

        // Stage 4: safety screening (§4.3).
        let t = Instant::now();
        let gate = SafetyGate::new(world.hashlist.clone());
        let mut screen_items: Vec<(ImageMeasures, String, ThreadId)> = Vec::new();
        for (d, m) in crawl.previews.iter().zip(&preview_measures) {
            screen_items.push((*m, d.link.url.to_https(), d.link.thread));
        }
        for (p, measures) in crawl.packs.iter().zip(&pack_image_lists) {
            for m in measures {
                screen_items.push((*m, p.link.url.to_https(), p.link.thread));
            }
        }
        let today = world.config.dataset_end().plus_days(30);
        let stage = screen_downloads(&gate, &world.index, &world.origins, &screen_items, today);
        let flagged: HashSet<usize> = stage.flagged.iter().copied().collect();
        let actors_in_flagged = world
            .corpus
            .actors_in_threads(&stage.flagged_threads)
            .len();
        let safety = SafetyFindings {
            stage,
            actors_in_flagged_threads: actors_in_flagged,
        };
        timed("safety", t);

        // Apply deletions: rebuild the measure lists without flagged items.
        let n_previews = crawl.previews.len();
        let preview_kept: Vec<(usize, ImageMeasures)> = preview_measures
            .iter()
            .enumerate()
            .filter(|(i, _)| !flagged.contains(i))
            .map(|(i, m)| (i, *m))
            .collect();
        let mut offset = n_previews;
        let mut packs_kept: Vec<Vec<ImageMeasures>> = Vec::with_capacity(pack_image_lists.len());
        for measures in &pack_image_lists {
            let kept = measures
                .iter()
                .enumerate()
                .filter(|(j, _)| !flagged.contains(&(offset + j)))
                .map(|(_, m)| *m)
                .collect();
            offset += measures.len();
            packs_kept.push(kept);
        }

        // Stage 5: NSFV classification (§4.4).
        let t = Instant::now();
        let nsfv_validation = validate(&build_validation_set(self.options.seed ^ 0x24));
        let previews_nsfv: Vec<(ImageMeasures, synthrand::Day)> = preview_kept
            .iter()
            .filter(|(_, m)| !m.is_sfv())
            .map(|(i, m)| (*m, crawl.previews[*i].link.posted))
            .collect();
        timed("nsfv", t);

        // Funnel accounting.
        let pack_images: usize = pack_image_lists.iter().map(Vec::len).sum();
        let mut digest_counts: HashMap<u64, usize> = HashMap::new();
        for (_, m) in &preview_kept {
            *digest_counts.entry(m.digest).or_insert(0) += 1;
        }
        for pack in &packs_kept {
            for m in pack {
                *digest_counts.entry(m.digest).or_insert(0) += 1;
            }
        }
        let funnel = ImageFunnel {
            preview_downloads: n_previews,
            packs_downloaded: crawl.packs.len(),
            pack_images,
            unique_files: digest_counts.len(),
            heavily_duplicated: digest_counts.values().filter(|&&c| c >= 20).count(),
            previews_nsfv: previews_nsfv.len(),
        };

        // Stage 6: provenance (§4.5).
        let t = Instant::now();
        let packs_for_analysis: Vec<PackForAnalysis> = crawl
            .packs
            .iter()
            .zip(&packs_kept)
            .map(|(p, images)| PackForAnalysis {
                thread: p.link.thread,
                posted: p.link.posted,
                images: images.clone(),
            })
            .collect();
        let pack_authors: Vec<ActorId> = crawl
            .packs
            .iter()
            .map(|p| world.corpus.thread(p.link.thread).author)
            .collect();
        let provenance = analyse_provenance(
            &world.index,
            &world.wayback,
            &world.origins,
            &packs_for_analysis,
            &pack_authors,
            &previews_nsfv,
        );
        timed("provenance", t);

        // Stage 7: finance (§5).
        let t = Instant::now();
        let harvest = harvest_earnings(world, &gate, &all_threads);
        let earnings = analyse_earnings(&harvest);
        let currency = analyse_currency_exchange(&world.corpus, world.hackforums, &all_threads);
        timed("finance", t);

        // Stage 8: actors (§6).
        let t = Instant::now();
        let metrics = actor_metrics(&world.corpus, &all_threads);
        let cohorts = cohort_table(&metrics);
        let fig4_points = metrics
            .iter()
            .map(|m| (m.ew_posts, m.pct_ewhoring(), m.days_before, m.days_after))
            .collect();
        let graph = interaction_graph(&world.corpus, &all_threads);
        let pop = popularity(&world.corpus, &all_threads);
        // Measured per-actor quantities for key-actor selection.
        let mut packs_by_actor: HashMap<ActorId, usize> = HashMap::new();
        for p in &crawl.packs {
            *packs_by_actor
                .entry(world.corpus.thread(p.link.thread).author)
                .or_insert(0) += 1;
        }
        let mut earnings_by_actor: HashMap<ActorId, f64> = HashMap::new();
        for proof in &harvest.proofs {
            *earnings_by_actor.entry(proof.actor).or_insert(0.0) += proof.usd;
        }
        let ce_by_actor = ce_threads_by_actor(world, &all_threads);
        let inputs = KeyActorInputs {
            metrics: &metrics,
            packs_by_actor: &packs_by_actor,
            earnings_by_actor: &earnings_by_actor,
            popularity: &pop,
            graph: &graph,
            ce_by_actor: &ce_by_actor,
        };
        let key_actors = select_key_actors(&inputs, self.options.k_key_actors);
        let profiles = group_profiles(&inputs, &key_actors);
        let interests = interest_evolution(&world.corpus, &metrics, &key_actors.all);
        timed("actors", t);

        PipelineReport {
            forums,
            topcls,
            crawl,
            funnel,
            safety,
            nsfv_validation,
            provenance,
            harvest,
            earnings,
            currency,
            cohorts,
            fig4_points,
            key_actors,
            group_profiles: profiles,
            interests,
            stage_ms,
        }
    }
}

/// Table 1 rows from the extraction and classification.
fn forum_rows(world: &World, set: &EwhoringSet, detected_tops: &[ThreadId]) -> Vec<ForumRow> {
    let top_set: HashSet<ThreadId> = detected_tops.iter().copied().collect();
    set.per_forum
        .iter()
        .map(|(forum, threads)| {
            let posts = world.corpus.post_count_in(threads);
            let first = world
                .corpus
                .earliest_post_in(threads)
                .map_or_else(|| "-".to_string(), |d| d.mm_yy());
            ForumRow {
                forum: world.corpus.forum(*forum).name.clone(),
                threads: threads.len(),
                posts,
                first_post: first,
                tops: threads.iter().filter(|t| top_set.contains(t)).count(),
                actors: world.corpus.actors_in_threads(threads).len(),
            }
        })
        .collect()
}

/// Post-eWhoring Currency Exchange thread counts per qualifying actor.
fn ce_threads_by_actor(
    world: &World,
    ewhoring_threads: &[ThreadId],
) -> HashMap<ActorId, usize> {
    let counts = world.corpus.posts_per_actor_in(ewhoring_threads);
    let mut out = HashMap::new();
    for (&actor, &c) in &counts {
        if c <= 50 || world.corpus.actor(actor).forum != world.hackforums {
            continue;
        }
        let first = world
            .corpus
            .actor_span_in(actor, ewhoring_threads)
            .map(|(f, _)| f);
        let n = world
            .corpus
            .threads_started_by(actor, crimebb::BoardCategory::CurrencyExchange, first)
            .len();
        if n > 0 {
            out.insert(actor, n);
        }
    }
    out
}

/// Measures a batch of stored images across worker threads.
pub fn measure_batch(images: &[StoredImage], workers: usize) -> Vec<ImageMeasures> {
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        workers
    };
    if images.len() < 64 || workers <= 1 {
        return images
            .iter()
            .map(|img| ImageMeasures::of(&img.render()))
            .collect();
    }
    let chunk = images.len().div_ceil(workers);
    let mut out: Vec<Vec<ImageMeasures>> = Vec::new();
    crossbeam::scope(|s| {
        let handles: Vec<_> = images
            .chunks(chunk)
            .map(|part| {
                s.spawn(move |_| {
                    part.iter()
                        .map(|img| ImageMeasures::of(&img.render()))
                        .collect::<Vec<ImageMeasures>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("measurement worker panicked"));
        }
    })
    .expect("crossbeam scope");
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagesim::{ImageClass, ImageSpec};
    use worldgen::WorldConfig;

    #[test]
    fn measure_batch_matches_serial() {
        let images: Vec<StoredImage> = (0..100)
            .map(|v| StoredImage::pristine(ImageSpec::model_photo(ImageClass::ModelNude, v, v.into())))
            .collect();
        let parallel = measure_batch(&images, 4);
        let serial: Vec<ImageMeasures> = images
            .iter()
            .map(|i| ImageMeasures::of(&i.render()))
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn full_pipeline_runs_on_a_test_world() {
        let world = World::generate(WorldConfig::test_scale(0xE2E));
        let report = Pipeline::new(PipelineOptions {
            k_key_actors: 10,
            ..PipelineOptions::default()
        })
        .run(&world);

        // Table 1 shape: every forum extracted, Hackforums dominant.
        assert_eq!(report.forums.len(), worldgen::FORUM_PROFILES.len());
        let hf = report
            .forums
            .iter()
            .max_by_key(|r| r.threads)
            .expect("rows exist");
        assert_eq!(hf.forum, "Hackforums");

        // Classifier worked and TOPs were detected.
        assert!(report.topcls.hybrid_metrics.f1 > 0.7);
        assert!(!report.topcls.detected.is_empty());

        // Crawl produced previews and packs; funnel accounting consistent.
        assert!(report.funnel.preview_downloads > 0);
        assert!(report.funnel.packs_downloaded > 0);
        assert!(report.funnel.unique_files <= report.funnel.pack_images + report.funnel.preview_downloads);
        assert!(report.funnel.unique_files > 0);
        assert!(report.funnel.previews_nsfv <= report.funnel.preview_downloads);

        // Safety caught planted material.
        assert!(report.safety.stage.summary.matched_cases > 0);
        assert!(report.safety.actors_in_flagged_threads > 0);

        // NSFV validation holds the paper's operating point.
        assert_eq!(
            report.nsfv_validation.nude_detected,
            report.nsfv_validation.nude_total
        );

        // Provenance produced both Table 5 rows.
        assert!(report.provenance.packs.total > 0);
        assert!(report.provenance.previews.total > 0);

        // Finance produced proofs and Table 7 data.
        assert!(!report.harvest.proofs.is_empty());
        assert!(report.earnings.total_usd > 0.0);
        assert!(report.currency.threads > 0);

        // Actor analyses filled in.
        assert_eq!(report.cohorts.len(), 7);
        assert!(!report.fig4_points.is_empty());
        assert_eq!(report.group_profiles.len(), 6);
        assert!(!report.interests.shares.is_empty());
        assert!(!report.stage_ms.is_empty());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let world = World::generate(WorldConfig::test_scale(0xDE7));
        let opts = PipelineOptions {
            k_key_actors: 8,
            ..PipelineOptions::default()
        };
        let a = Pipeline::new(opts).run(&world);
        let b = Pipeline::new(opts).run(&world);
        assert_eq!(a.funnel.unique_files, b.funnel.unique_files);
        assert_eq!(a.topcls.detected, b.topcls.detected);
        assert_eq!(a.earnings.total_usd, b.earnings.total_usd);
        assert_eq!(a.key_actors.all, b.key_actors.all);
    }
}
