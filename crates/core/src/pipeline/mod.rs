//! The measurement pipeline as a stage graph (paper Figure 1).
//!
//! Each paper stage is one [`Stage`] implementation under [`stages`],
//! reading and writing a typed [`StageCtx`] artifact store. [`Pipeline`]
//! is a thin driver: it executes the stage list in order, records
//! per-stage wall-clock and item throughput into [`StageTiming`]s, and
//! can stop after any prefix of the graph ([`Pipeline::run_prefix`]).
//!
//! Stage order (module ↔ paper section):
//!
//! | stage            | module                | paper |
//! |------------------|-----------------------|-------|
//! | `extract`        | [`stages::extract`]   | §3    |
//! | `top_classifier` | [`stages::topcls`]    | §4.1  |
//! | `crawl`          | [`stages::crawl`]     | §4.2  |
//! | `measure_images` | [`stages::measure`]   | §4.2  |
//! | `safety`         | [`stages::safety`]    | §4.3  |
//! | `nsfv`           | [`stages::nsfv`]      | §4.4  |
//! | `provenance`     | [`stages::provenance`]| §4.5  |
//! | `finance`        | [`stages::finance`]   | §5    |
//! | `actors`         | [`stages::actors`]    | §6    |
//!
//! Everything is deterministic in `PipelineOptions::seed`. The hot
//! stages (`top_classifier`, `measure_images`, `nsfv`, `actors`) run
//! their per-item loops on the shared data-parallel layer in
//! [`crate::par`], which reassembles results in input order — so the
//! report is byte-identical for any `PipelineOptions::workers` value
//! (enforced by the worker-matrix test in `tests/determinism.rs`).

pub mod ctx;
pub mod stages;

pub use ctx::{
    apply_deletions, ImageRef, ImageSource, KeptImages, MeasuredImages, StageCtx, StageError,
};
pub use stages::measure::measure_batch;

use crate::actors::{CohortRow, GroupProfile, InterestEvolution, KeyActors};
use crate::crawl::{CrawlResult, CrawlStats};
use crate::finance::{CurrencyExchangeAnalysis, EarningsAnalysis, EarningsHarvest};
use crate::nsfv::NsfvValidation;
use crate::provenance::ProvenanceResult;
use crate::safety_stage::SafetyStageResult;
use crate::topcls::TopClassification;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use worldgen::World;

/// Pipeline tuning knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PipelineOptions {
    /// Seed for annotation sampling / training shuffles.
    pub seed: u64,
    /// `k` for key-actor selection (paper: 50).
    pub k_key_actors: usize,
    /// Worker threads for every data-parallel stage — classifier feature
    /// extraction, image measurement, NSFV scoring, dedup counting, and
    /// the centrality iteration (0 = all cores). Output is byte-identical
    /// for any value; see [`crate::par`] for the determinism contract.
    pub workers: usize,
    /// Transient-fault severity for the crawl stage: `0.0` (default)
    /// disables injection — output is then byte-identical to the
    /// pre-fault pipeline — `1.0` injects at the calibrated per-site
    /// rates, and large values simulate a total outage. The fault plan's
    /// seed derives from `seed`, so runs stay reproducible.
    pub fault_severity: f64,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            seed: 0x1919,
            k_key_actors: 50,
            workers: 0,
            fault_severity: 0.0,
        }
    }
}

/// Table 1 row: per-forum eWhoring footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForumRow {
    /// Forum name.
    pub forum: String,
    /// eWhoring threads extracted.
    pub threads: usize,
    /// Posts in those threads.
    pub posts: usize,
    /// First post date, `MM/YY`.
    pub first_post: String,
    /// TOPs detected by the hybrid classifier.
    pub tops: usize,
    /// Distinct actors.
    pub actors: usize,
}

/// §4.3 extras measured on top of the IWF summary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SafetyFindings {
    /// The stage result (flagged downloads, IWF summary).
    pub stage: SafetyStageResult,
    /// Distinct actors who replied in flagged threads (paper: 476).
    pub actors_in_flagged_threads: usize,
}

/// §4.2/§4.4 funnel counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ImageFunnel {
    /// Single images downloaded from image-sharing sites (paper: 5 788).
    pub preview_downloads: usize,
    /// Packs downloaded (paper: 1 255).
    pub packs_downloaded: usize,
    /// Images inside downloaded packs (paper: 111 288).
    pub pack_images: usize,
    /// Unique files after exact dedup (paper: 53 948).
    pub unique_files: usize,
    /// Exact-duplicate images appearing in ≥20 packs (paper: 127).
    pub heavily_duplicated: usize,
    /// Preview downloads classified NSFV (paper: 3 496).
    pub previews_nsfv: usize,
}

/// Wall-clock and throughput for one executed stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name, as returned by [`Stage::name`].
    pub stage: String,
    /// Wall-clock, microseconds.
    pub wall_us: u128,
    /// Items the stage processed (threads, images, packs — per stage).
    pub items: usize,
}

/// Per-stage timings for a (possibly prefix) pipeline run.
pub type StageTimings = Vec<StageTiming>;

/// Everything the pipeline measures, one field per paper artefact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Table 1.
    pub forums: Vec<ForumRow>,
    /// §4.1 classifier results.
    pub topcls: TopClassification,
    /// §4.2 crawl output (Tables 3/4 live in the tallies).
    pub crawl: CrawlResult,
    /// §4.2 crawler health: attempts, retries, breaker trips, simulated
    /// waits. Deterministic in the seed (unlike `timings`).
    pub crawl_stats: CrawlStats,
    /// §4.2/§4.4 funnel.
    pub funnel: ImageFunnel,
    /// §4.3 safety results.
    pub safety: SafetyFindings,
    /// §4.4 validation-set evaluation.
    pub nsfv_validation: NsfvValidation,
    /// §4.5 provenance (Tables 5/6).
    pub provenance: ProvenanceResult,
    /// §5.1 harvest funnel.
    pub harvest: EarningsHarvest,
    /// §5.2 earnings aggregates (Figures 2/3).
    pub earnings: EarningsAnalysis,
    /// Table 7.
    pub currency: CurrencyExchangeAnalysis,
    /// Table 8.
    pub cohorts: Vec<CohortRow>,
    /// Figure 4 raw points: `(ew_posts, pct_ewhoring, days_before,
    /// days_after)` per actor.
    pub fig4_points: Vec<(usize, f64, u32, u32)>,
    /// §6.3 key actors (Table 9 data).
    pub key_actors: KeyActors,
    /// Table 10.
    pub group_profiles: Vec<GroupProfile>,
    /// Figure 5.
    pub interests: InterestEvolution,
    /// Wall-clock + throughput per executed stage.
    pub timings: StageTimings,
}

/// One node of the stage graph.
///
/// A stage reads earlier artifacts out of the [`StageCtx`], does its
/// work, and writes its outputs back in. Stages hold no state of their
/// own — everything flows through the context, which is what makes
/// prefix runs and artifact inspection possible.
pub trait Stage {
    /// Stable stage name (appears in [`StageTiming::stage`]).
    fn name(&self) -> &'static str;
    /// Runs the stage against `ctx`.
    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError>;
}

/// The pipeline runner: a thin driver over the stage graph.
pub struct Pipeline {
    options: PipelineOptions,
}

impl Pipeline {
    /// Creates a runner with `options`.
    pub fn new(options: PipelineOptions) -> Pipeline {
        Pipeline { options }
    }

    /// The full stage graph in paper order.
    pub fn stages() -> Vec<Box<dyn Stage>> {
        stages::full_graph()
    }

    /// Runs every stage against `world` and assembles the report.
    pub fn run(&self, world: &World) -> PipelineReport {
        self.run_prefix(world, usize::MAX)
            .and_then(StageCtx::into_report)
            .expect("the full stage graph produces every artifact")
    }

    /// Runs the first `n` stages of the graph (all of them if `n`
    /// exceeds the graph length) and returns the artifact store, so
    /// callers can inspect intermediate products without paying for the
    /// rest of the pipeline.
    pub fn run_prefix<'w>(&self, world: &'w World, n: usize) -> Result<StageCtx<'w>, StageError> {
        let mut ctx = StageCtx::new(world, self.options);
        for stage in Self::stages().into_iter().take(n) {
            Self::step(stage.as_ref(), &mut ctx)?;
        }
        Ok(ctx)
    }

    /// Executes one stage, recording its timing into the context.
    fn step(stage: &dyn Stage, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let t = Instant::now();
        stage.run(ctx)?;
        let wall_us = t.elapsed().as_micros();
        let items = ctx.take_items();
        ctx.timings.push(StageTiming {
            stage: stage.name().to_string(),
            wall_us,
            items,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::WorldConfig;

    #[test]
    fn full_pipeline_runs_on_a_test_world() {
        let world = World::generate(WorldConfig::test_scale(0xE2E));
        let report = Pipeline::new(PipelineOptions {
            k_key_actors: 10,
            ..PipelineOptions::default()
        })
        .run(&world);

        // Table 1 shape: every forum extracted, Hackforums dominant.
        assert_eq!(report.forums.len(), worldgen::FORUM_PROFILES.len());
        let hf = report
            .forums
            .iter()
            .max_by_key(|r| r.threads)
            .expect("rows exist");
        assert_eq!(hf.forum, "Hackforums");

        // Classifier worked and TOPs were detected.
        assert!(report.topcls.hybrid_metrics.f1 > 0.7);
        assert!(!report.topcls.detected.is_empty());

        // Crawl produced previews and packs; funnel accounting consistent.
        assert!(report.funnel.preview_downloads > 0);
        assert!(report.funnel.packs_downloaded > 0);
        assert!(
            report.funnel.unique_files
                <= report.funnel.pack_images + report.funnel.preview_downloads
        );
        assert!(report.funnel.unique_files > 0);
        assert!(report.funnel.previews_nsfv <= report.funnel.preview_downloads);

        // Safety caught planted material.
        assert!(report.safety.stage.summary.matched_cases > 0);
        assert!(report.safety.actors_in_flagged_threads > 0);

        // NSFV validation holds the paper's operating point.
        assert_eq!(
            report.nsfv_validation.nude_detected,
            report.nsfv_validation.nude_total
        );

        // Provenance produced both Table 5 rows.
        assert!(report.provenance.packs.total > 0);
        assert!(report.provenance.previews.total > 0);

        // Finance produced proofs and Table 7 data.
        assert!(!report.harvest.proofs.is_empty());
        assert!(report.earnings.total_usd > 0.0);
        assert!(report.currency.threads > 0);

        // Actor analyses filled in.
        assert_eq!(report.cohorts.len(), 7);
        assert!(!report.fig4_points.is_empty());
        assert_eq!(report.group_profiles.len(), 6);
        assert!(!report.interests.shares.is_empty());

        // Driver recorded one timing per stage, with throughput.
        assert_eq!(report.timings.len(), Pipeline::stages().len());
        assert!(report.timings.iter().all(|t| t.items > 0));
    }

    #[test]
    fn pipeline_is_deterministic() {
        let world = World::generate(WorldConfig::test_scale(0xDE7));
        let opts = PipelineOptions {
            k_key_actors: 8,
            ..PipelineOptions::default()
        };
        let a = Pipeline::new(opts).run(&world);
        let b = Pipeline::new(opts).run(&world);
        assert_eq!(a.funnel.unique_files, b.funnel.unique_files);
        assert_eq!(a.topcls.detected, b.topcls.detected);
        assert_eq!(a.earnings.total_usd, b.earnings.total_usd);
        assert_eq!(a.key_actors.all, b.key_actors.all);
    }

    #[test]
    fn prefix_run_stops_at_the_requested_stage() {
        let world = World::generate(WorldConfig::test_scale(0xE2E));
        let pipe = Pipeline::new(PipelineOptions::default());

        // Three stages: extract, top_classifier, crawl.
        let ctx = pipe.run_prefix(&world, 3).expect("prefix runs");
        assert!(ctx.crawl().is_ok(), "crawl artifact produced");
        assert_eq!(
            ctx.measures().unwrap_err(),
            StageError::MissingArtifact("measures")
        );
        let names: Vec<&str> = ctx.timings().iter().map(|t| t.stage.as_str()).collect();
        assert_eq!(names, ["extract", "top_classifier", "crawl"]);

        // A prefix cannot be assembled into a full report.
        assert!(matches!(
            ctx.into_report(),
            Err(StageError::MissingArtifact(_))
        ));

        // The empty prefix produces nothing at all.
        let ctx = pipe.run_prefix(&world, 0).expect("empty prefix runs");
        assert_eq!(
            ctx.extraction().unwrap_err(),
            StageError::MissingArtifact("extraction")
        );
    }
}
