//! The measurement pipeline as a stage graph (paper Figure 1).
//!
//! Each paper stage is one [`Stage`] implementation under [`stages`],
//! reading and writing a typed [`StageCtx`] artifact store. [`Pipeline`]
//! is a thin driver: it executes the stage list in order, records
//! per-stage wall-clock and item throughput into [`StageTiming`]s, and
//! can stop after any prefix of the graph ([`Pipeline::run_prefix`]).
//!
//! Stage order (module ↔ paper section):
//!
//! | stage            | module                | paper |
//! |------------------|-----------------------|-------|
//! | `extract`        | [`stages::extract`]   | §3    |
//! | `top_classifier` | [`stages::topcls`]    | §4.1  |
//! | `crawl`          | [`stages::crawl`]     | §4.2  |
//! | `measure_images` | [`stages::measure`]   | §4.2  |
//! | `safety`         | [`stages::safety`]    | §4.3  |
//! | `nsfv`           | [`stages::nsfv`]      | §4.4  |
//! | `provenance`     | [`stages::provenance`]| §4.5  |
//! | `finance`        | [`stages::finance`]   | §5    |
//! | `actors`         | [`stages::actors`]    | §6    |
//!
//! Everything is deterministic in `PipelineOptions::seed`. The hot
//! stages (`top_classifier`, `measure_images`, `nsfv`, `actors`) run
//! their per-item loops on the shared data-parallel layer in
//! [`crate::par`], which reassembles results in input order — so the
//! report is byte-identical for any `PipelineOptions::workers` value
//! (enforced by the worker-matrix test in `tests/determinism.rs`).
//!
//! The execution layer is crash-tolerant: [`Pipeline::run_resumable`]
//! journals every completed stage's artifacts to disk ([`journal`]) and
//! resumes a killed run from the last completed stage boundary,
//! byte-identical to an uninterrupted run. Input corruption is injected
//! deterministically by a [`corruption::CorruptionPlan`] at
//! `PipelineOptions::corruption_severity`; stages quarantine corrupt
//! records into a [`corruption::QuarantineLedger`] instead of
//! panicking, and the driver retries a failed stage once before asking
//! it to degrade ([`Stage::degrade`]).
#![deny(clippy::unwrap_used)]

pub mod cache;
pub mod corruption;
pub mod ctx;
pub mod epoch;
pub mod journal;
pub mod shard;
pub mod stages;

pub use cache::{snapshot_json, CachedRun, RunCache, RunSpec, RunStatus};
pub use corruption::{CorruptionPlan, QuarantineEntry, QuarantineLedger, RecordErrorKind};
pub use ctx::{
    apply_deletions, ImageRef, ImageSource, KeptImages, MeasuredImages, StageCtx, StageError,
};
pub use epoch::{stream_world, EpochCarry, EpochEngine};
pub use journal::Journal;
pub use shard::{RestartPolicy, RoundOutcome, RoundStats, ShardPoison, Supervision, Supervisor};
pub use stages::measure::measure_batch;

use crate::actors::{CohortRow, GroupProfile, InterestEvolution, KeyActors};
use crate::crawl::{CrawlResult, CrawlStats};
use crate::finance::{CurrencyExchangeAnalysis, EarningsAnalysis, EarningsHarvest};
use crate::nsfv::NsfvValidation;
use crate::provenance::ProvenanceResult;
use crate::safety_stage::SafetyStageResult;
use crate::topcls::TopClassification;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use worldgen::World;

/// Epoch-sliced streaming mode: the feed is split into `epochs`
/// calendar slices ([`worldgen::epoch_bound`]) and the pipeline sees
/// only events up to slice `upto`'s boundary. With a warm
/// [`EpochCarry`] ([`Pipeline::run_with_carry`]) each advance costs
/// O(delta); with a fresh carry the same code path recomputes from
/// scratch — the two are byte-identical by construction (the epoch
/// equivalence gate in `tests/determinism.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Number of calendar epochs the dataset window is split into.
    pub epochs: u32,
    /// Last epoch (1-based) whose events are visible to this run.
    pub upto: u32,
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PipelineOptions {
    /// Seed for annotation sampling / training shuffles.
    pub seed: u64,
    /// `k` for key-actor selection (paper: 50).
    pub k_key_actors: usize,
    /// Worker threads for every data-parallel stage — classifier feature
    /// extraction, image measurement, NSFV scoring, dedup counting, and
    /// the centrality iteration (0 = all cores). Output is byte-identical
    /// for any value; see [`crate::par`] for the determinism contract.
    pub workers: usize,
    /// Transient-fault severity for the crawl stage: `0.0` (default)
    /// disables injection — output is then byte-identical to the
    /// pre-fault pipeline — `1.0` injects at the calibrated per-site
    /// rates, and large values simulate a total outage. The fault plan's
    /// seed derives from `seed`, so runs stay reproducible.
    pub fault_severity: f64,
    /// Input-corruption severity: `0.0` (default) disables injection —
    /// output is then byte-identical to the uncorrupted pipeline —
    /// `1.0` mangles records at the calibrated per-kind rates
    /// (truncated/malformed forum rows, invalid-UTF-8 headings, corrupt
    /// image bytes, NaN feature inputs). Corrupt records land in the
    /// quarantine ledger instead of aborting the run. The plan's seed
    /// derives from `seed`, so runs stay reproducible.
    pub corruption_severity: f64,
    /// `Some` selects epoch-sliced streaming mode (see [`StreamSpec`]);
    /// `None` (default) is the classic whole-dataset batch pipeline,
    /// byte-identical to the pre-streaming code.
    pub stream: Option<StreamSpec>,
    /// Shard the run by forum across `shards` supervised worker threads
    /// (`0`, the default, is the classic unsharded driver). The merged
    /// report is byte-identical at every shard count, so — like
    /// `workers` — this knob is excluded from the journal run key.
    /// Mutually exclusive with `stream` (the epoch engine has its own
    /// incremental driver).
    pub shards: usize,
    /// Deterministic shard-failure injection for supervision tests
    /// (panics and/or hard errors on one shard); `None` (default)
    /// injects nothing. Only meaningful when `shards > 0`.
    pub poison: Option<shard::ShardPoison>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            seed: 0x1919,
            k_key_actors: 50,
            workers: 0,
            fault_severity: 0.0,
            corruption_severity: 0.0,
            stream: None,
            shards: 0,
            poison: None,
        }
    }
}

/// Table 1 row: per-forum eWhoring footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForumRow {
    /// Forum name.
    pub forum: String,
    /// eWhoring threads extracted.
    pub threads: usize,
    /// Posts in those threads.
    pub posts: usize,
    /// First post date, `MM/YY`.
    pub first_post: String,
    /// TOPs detected by the hybrid classifier.
    pub tops: usize,
    /// Distinct actors.
    pub actors: usize,
}

/// §4.3 extras measured on top of the IWF summary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SafetyFindings {
    /// The stage result (flagged downloads, IWF summary).
    pub stage: SafetyStageResult,
    /// Distinct actors who replied in flagged threads (paper: 476).
    pub actors_in_flagged_threads: usize,
}

/// §4.2/§4.4 funnel counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ImageFunnel {
    /// Single images downloaded from image-sharing sites (paper: 5 788).
    pub preview_downloads: usize,
    /// Packs downloaded (paper: 1 255).
    pub packs_downloaded: usize,
    /// Images inside downloaded packs (paper: 111 288).
    pub pack_images: usize,
    /// Unique files after exact dedup (paper: 53 948).
    pub unique_files: usize,
    /// Exact-duplicate images appearing in ≥20 packs (paper: 127).
    pub heavily_duplicated: usize,
    /// Preview downloads classified NSFV (paper: 3 496).
    pub previews_nsfv: usize,
}

/// How a stage's result entered the run: computed in-process, or loaded
/// back from the checkpoint journal. Bench baselines must never
/// conflate the two — a journal load is measured I/O, not stage work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingSource {
    /// The stage executed in this process.
    Computed,
    /// The stage's artifacts were loaded from the checkpoint journal
    /// (also used for the journal-overhead bookkeeping row itself).
    Journal,
}

impl TimingSource {
    /// Lower-case label for machine-readable output.
    pub fn as_str(&self) -> &'static str {
        match self {
            TimingSource::Computed => "computed",
            TimingSource::Journal => "journal",
        }
    }
}

/// Wall-clock and throughput for one executed stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name, as returned by [`Stage::name`].
    pub stage: String,
    /// Wall-clock, microseconds.
    pub wall_us: u128,
    /// Items the stage processed (threads, images, packs — per stage).
    pub items: usize,
    /// Whether the stage was computed or journal-loaded.
    pub source: TimingSource,
}

/// Post-mortem status of a stage the driver had to intervene on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageStatus {
    /// The stage failed once and succeeded on the driver's retry.
    Recovered,
    /// The stage failed twice and wrote degraded (partial or default)
    /// artifacts via [`Stage::degrade`] so downstream stages could run.
    Degraded,
}

/// One stage-health event. Only stages the driver intervened on appear
/// here — a clean run has an empty health list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageHealth {
    /// The stage concerned.
    pub stage: String,
    /// What the driver did.
    pub status: StageStatus,
    /// The triggering error, rendered.
    pub detail: String,
}

/// Per-stage timings for a (possibly prefix) pipeline run.
pub type StageTimings = Vec<StageTiming>;

/// Everything the pipeline measures, one field per paper artefact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Table 1.
    pub forums: Vec<ForumRow>,
    /// §4.1 classifier results.
    pub topcls: TopClassification,
    /// §4.2 crawl output (Tables 3/4 live in the tallies).
    pub crawl: CrawlResult,
    /// §4.2 crawler health: attempts, retries, breaker trips, simulated
    /// waits. Deterministic in the seed (unlike `timings`).
    pub crawl_stats: CrawlStats,
    /// §4.2/§4.4 funnel.
    pub funnel: ImageFunnel,
    /// §4.3 safety results.
    pub safety: SafetyFindings,
    /// §4.4 validation-set evaluation.
    pub nsfv_validation: NsfvValidation,
    /// §4.5 provenance (Tables 5/6).
    pub provenance: ProvenanceResult,
    /// §5.1 harvest funnel.
    pub harvest: EarningsHarvest,
    /// §5.2 earnings aggregates (Figures 2/3).
    pub earnings: EarningsAnalysis,
    /// Table 7.
    pub currency: CurrencyExchangeAnalysis,
    /// Table 8.
    pub cohorts: Vec<CohortRow>,
    /// Figure 4 raw points: `(ew_posts, pct_ewhoring, days_before,
    /// days_after)` per actor.
    pub fig4_points: Vec<(usize, f64, u32, u32)>,
    /// §6.3 key actors (Table 9 data).
    pub key_actors: KeyActors,
    /// Table 10.
    pub group_profiles: Vec<GroupProfile>,
    /// Figure 5.
    pub interests: InterestEvolution,
    /// Per-record failures quarantined during the run. Deterministic in
    /// the seed (unlike `timings`); empty at `corruption_severity 0.0`
    /// on clean inputs.
    pub quarantine: corruption::QuarantineLedger,
    /// Stage-health events (recovered retries, degradations). Empty on
    /// a clean run.
    pub health: Vec<StageHealth>,
    /// Supervision counters for sharded runs (shards run / restarted /
    /// quarantined); all zero on an unsharded run. Stripped from
    /// determinism snapshots alongside `timings` — restarts are
    /// scheduling events, not measurements.
    pub supervision: Supervision,
    /// Wall-clock + throughput per executed stage.
    pub timings: StageTimings,
}

/// One node of the stage graph.
///
/// A stage reads earlier artifacts out of the [`StageCtx`], does its
/// work, and writes its outputs back in. Stages hold no state of their
/// own — everything flows through the context, which is what makes
/// prefix runs and artifact inspection possible.
pub trait Stage {
    /// Stable stage name (appears in [`StageTiming::stage`]).
    fn name(&self) -> &'static str;
    /// Runs the stage against `ctx`.
    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError>;
    /// Last-resort degradation: after [`Stage::run`] failed twice, a
    /// non-critical stage may write partial or default artifacts so
    /// downstream stages can still run, returning `true`. The default
    /// (`false`) propagates the error — correct for stages whose
    /// artifacts every later stage depends on. Implementations must not
    /// degrade on [`StageError::MissingArtifact`]: that is a broken
    /// graph, not broken data.
    fn degrade(&self, _ctx: &mut StageCtx<'_>, _cause: &StageError) -> bool {
        false
    }
}

/// The pipeline runner: a thin driver over the stage graph.
pub struct Pipeline {
    options: PipelineOptions,
}

impl Pipeline {
    /// Creates a runner with `options`.
    pub fn new(options: PipelineOptions) -> Pipeline {
        Pipeline { options }
    }

    /// The full stage graph in paper order.
    pub fn stages() -> Vec<Box<dyn Stage>> {
        stages::full_graph()
    }

    /// Runs every stage against `world` and assembles the report.
    ///
    /// With `options.shards > 0` the run executes through the
    /// supervised shard driver ([`shard::run_sharded`]): the corpus
    /// scans fan out per-forum across panic-isolated shard workers and
    /// a merge coordinator folds the partials — byte-identical to the
    /// unsharded run at every shard count.
    pub fn run(&self, world: &World) -> PipelineReport {
        if self.options.shards > 0 {
            assert!(
                self.options.stream.is_none(),
                "sharded execution is batch-only; epoch streaming has its own driver"
            );
            return shard::run_sharded(self.options, world)
                .expect("the sharded driver produces every artifact");
        }
        self.run_prefix(world, usize::MAX)
            .and_then(StageCtx::into_report)
            .expect("the full stage graph produces every artifact")
    }

    /// Runs the first `n` stages of the graph (all of them if `n`
    /// exceeds the graph length) and returns the artifact store, so
    /// callers can inspect intermediate products without paying for the
    /// rest of the pipeline.
    pub fn run_prefix<'w>(&self, world: &'w World, n: usize) -> Result<StageCtx<'w>, StageError> {
        let mut ctx = StageCtx::new(world, self.options);
        for stage in Self::stages().into_iter().take(n) {
            Self::step(stage.as_ref(), &mut ctx)?;
        }
        Ok(ctx)
    }

    /// Streaming-mode run: executes every stage with `carry` as the
    /// warm inter-epoch state and returns the refreshed carry alongside
    /// the report. Requires `options.stream` to be set. Passing
    /// [`EpochCarry::default`] is the *fresh-carry* run — a full
    /// recompute through the identical stream code path — which is what
    /// the epoch-equivalence gate compares warm advances against.
    pub fn run_with_carry(
        &self,
        world: &World,
        carry: EpochCarry,
    ) -> Result<(PipelineReport, EpochCarry), StageError> {
        assert!(
            self.options.stream.is_some(),
            "run_with_carry requires PipelineOptions::stream"
        );
        assert!(
            self.options.shards == 0,
            "sharded execution is batch-only; epoch streaming has its own driver"
        );
        let mut ctx = StageCtx::new(world, self.options);
        ctx.carry = Some(carry);
        for stage in Self::stages() {
            Self::step(stage.as_ref(), &mut ctx)?;
        }
        let carry = ctx.carry.take().expect("stages keep the carry in place");
        Ok((ctx.into_report()?, carry))
    }

    /// Runs every stage with a checkpoint journal under `journal_dir`:
    /// already-journaled stages are loaded instead of re-executed, every
    /// computed stage is checkpointed on completion. A run killed at any
    /// stage boundary resumes here to a report byte-identical (modulo
    /// wall-clock timings) to an uninterrupted run — the ledger, health
    /// events, and item counts are journaled along with the artifacts.
    pub fn run_resumable(
        &self,
        world: &World,
        journal_dir: &std::path::Path,
    ) -> Result<PipelineReport, StageError> {
        self.run_prefix_resumable(world, usize::MAX, journal_dir)?
            .into_report()
    }

    /// [`Pipeline::run_prefix`] with a checkpoint journal: loads the
    /// longest journaled prefix, computes (and checkpoints) the rest.
    /// Journal records are validated on load — a checksum or run-key
    /// mismatch falls back to recomputation, never to silent reuse.
    pub fn run_prefix_resumable<'w>(
        &self,
        world: &'w World,
        n: usize,
        journal_dir: &std::path::Path,
    ) -> Result<StageCtx<'w>, StageError> {
        // The stage journal captures artifacts, not inter-epoch carry
        // state; epoch runs checkpoint whole-epoch boundaries through
        // [`EpochEngine`] instead.
        assert!(
            self.options.stream.is_none(),
            "stage-level journaling is batch-only; use EpochEngine for epoch checkpoints"
        );
        assert!(
            self.options.shards == 0,
            "stage-level journaling covers the unsharded driver only; \
             sharded runs recompute (they are cheap by construction)"
        );
        let journal = Journal::open(journal_dir, &world.config, &self.options)?;
        let mut ctx = StageCtx::new(world, self.options);
        let mut journal_us: u128 = 0;
        let mut journal_ops: usize = 0;
        // Only a *contiguous* journaled prefix is trusted: past the
        // first miss every later stage is recomputed and overwritten,
        // because its inputs may no longer match what produced it.
        let mut resuming = true;
        for (index, stage) in Self::stages().into_iter().take(n).enumerate() {
            if resuming {
                let t = Instant::now();
                match journal.load(index, stage.name()) {
                    journal::LoadOutcome::Hit(record) => {
                        match journal::restore_stage(stage.name(), &mut ctx, &record.artifacts) {
                            Ok(()) => {
                                for entry in record.quarantined {
                                    ctx.ledger.push(entry);
                                }
                                ctx.health.extend(record.health);
                                let wall_us = t.elapsed().as_micros();
                                journal_us += wall_us;
                                journal_ops += 1;
                                ctx.timings.push(StageTiming {
                                    stage: stage.name().to_string(),
                                    wall_us,
                                    items: record.items,
                                    source: TimingSource::Journal,
                                });
                                continue;
                            }
                            // A record that deserialized but does not
                            // map onto the artifact types is as corrupt
                            // as a bad checksum: recompute from here on.
                            Err(_) => resuming = false,
                        }
                    }
                    journal::LoadOutcome::Miss | journal::LoadOutcome::Rejected(_) => {
                        resuming = false;
                    }
                }
                journal_us += t.elapsed().as_micros();
            }
            let ledger_before = ctx.ledger.len();
            let health_before = ctx.health.len();
            Self::step(stage.as_ref(), &mut ctx)?;
            let t = Instant::now();
            let record = journal::StageRecord {
                artifacts: journal::capture_stage(stage.name(), &ctx)?,
                quarantined: ctx.ledger.entries()[ledger_before..].to_vec(),
                health: ctx.health[health_before..].to_vec(),
                items: ctx.timings.last().map_or(0, |t| t.items),
            };
            journal.save(index, stage.name(), &record)?;
            journal_us += t.elapsed().as_micros();
            journal_ops += 1;
        }
        // Journal overhead gets its own row so per-stage numbers stay
        // pure compute (or pure load, per their `source` marker).
        ctx.timings.push(StageTiming {
            stage: "journal".to_string(),
            wall_us: journal_us,
            items: journal_ops,
            source: TimingSource::Journal,
        });
        Ok(ctx)
    }

    /// Executes one stage, recording its timing into the context. A
    /// failed stage is rolled back (ledger, health, item count) and
    /// retried once; if the retry also fails, the stage may degrade
    /// ([`Stage::degrade`]) — otherwise the error propagates.
    fn step(stage: &dyn Stage, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let t = Instant::now();
        let ledger_before = ctx.ledger.len();
        let health_before = ctx.health.len();
        if let Err(first) = stage.run(ctx) {
            // Roll back partial per-record effects so the retry cannot
            // double-record quarantines or items.
            ctx.ledger.truncate(ledger_before);
            ctx.health.truncate(health_before);
            ctx.items = 0;
            match stage.run(ctx) {
                Ok(()) => {
                    ctx.health.push(StageHealth {
                        stage: stage.name().to_string(),
                        status: StageStatus::Recovered,
                        detail: first.to_string(),
                    });
                }
                Err(second) => {
                    ctx.ledger.truncate(ledger_before);
                    ctx.health.truncate(health_before);
                    ctx.items = 0;
                    if stage.degrade(ctx, &second) {
                        ctx.health.push(StageHealth {
                            stage: stage.name().to_string(),
                            status: StageStatus::Degraded,
                            detail: second.to_string(),
                        });
                    } else {
                        return Err(second);
                    }
                }
            }
        }
        let wall_us = t.elapsed().as_micros();
        let items = ctx.take_items();
        ctx.timings.push(StageTiming {
            stage: stage.name().to_string(),
            wall_us,
            items,
            source: TimingSource::Computed,
        });
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use worldgen::WorldConfig;

    #[test]
    fn full_pipeline_runs_on_a_test_world() {
        let world = World::generate(WorldConfig::test_scale(0xE2E));
        let report = Pipeline::new(PipelineOptions {
            k_key_actors: 10,
            ..PipelineOptions::default()
        })
        .run(&world);

        // Table 1 shape: every forum extracted, Hackforums dominant.
        assert_eq!(report.forums.len(), worldgen::FORUM_PROFILES.len());
        let hf = report
            .forums
            .iter()
            .max_by_key(|r| r.threads)
            .expect("rows exist");
        assert_eq!(hf.forum, "Hackforums");

        // Classifier worked and TOPs were detected.
        assert!(report.topcls.hybrid_metrics.f1 > 0.7);
        assert!(!report.topcls.detected.is_empty());

        // Crawl produced previews and packs; funnel accounting consistent.
        assert!(report.funnel.preview_downloads > 0);
        assert!(report.funnel.packs_downloaded > 0);
        assert!(
            report.funnel.unique_files
                <= report.funnel.pack_images + report.funnel.preview_downloads
        );
        assert!(report.funnel.unique_files > 0);
        assert!(report.funnel.previews_nsfv <= report.funnel.preview_downloads);

        // Safety caught planted material.
        assert!(report.safety.stage.summary.matched_cases > 0);
        assert!(report.safety.actors_in_flagged_threads > 0);

        // NSFV validation holds the paper's operating point.
        assert_eq!(
            report.nsfv_validation.nude_detected,
            report.nsfv_validation.nude_total
        );

        // Provenance produced both Table 5 rows.
        assert!(report.provenance.packs.total > 0);
        assert!(report.provenance.previews.total > 0);

        // Finance produced proofs and Table 7 data.
        assert!(!report.harvest.proofs.is_empty());
        assert!(report.earnings.total_usd > 0.0);
        assert!(report.currency.threads > 0);

        // Actor analyses filled in.
        assert_eq!(report.cohorts.len(), 7);
        assert!(!report.fig4_points.is_empty());
        assert_eq!(report.group_profiles.len(), 6);
        assert!(!report.interests.shares.is_empty());

        // Driver recorded one timing per stage, with throughput.
        assert_eq!(report.timings.len(), Pipeline::stages().len());
        assert!(report.timings.iter().all(|t| t.items > 0));
    }

    #[test]
    fn pipeline_is_deterministic() {
        let world = World::generate(WorldConfig::test_scale(0xDE7));
        let opts = PipelineOptions {
            k_key_actors: 8,
            ..PipelineOptions::default()
        };
        let a = Pipeline::new(opts).run(&world);
        let b = Pipeline::new(opts).run(&world);
        assert_eq!(a.funnel.unique_files, b.funnel.unique_files);
        assert_eq!(a.topcls.detected, b.topcls.detected);
        assert_eq!(a.earnings.total_usd, b.earnings.total_usd);
        assert_eq!(a.key_actors.all, b.key_actors.all);
    }

    #[test]
    fn prefix_run_stops_at_the_requested_stage() {
        let world = World::generate(WorldConfig::test_scale(0xE2E));
        let pipe = Pipeline::new(PipelineOptions::default());

        // Three stages: extract, top_classifier, crawl.
        let ctx = pipe.run_prefix(&world, 3).expect("prefix runs");
        assert!(ctx.crawl().is_ok(), "crawl artifact produced");
        assert_eq!(
            ctx.measures().unwrap_err(),
            StageError::MissingArtifact("measures")
        );
        let names: Vec<&str> = ctx.timings().iter().map(|t| t.stage.as_str()).collect();
        assert_eq!(names, ["extract", "top_classifier", "crawl"]);

        // A prefix cannot be assembled into a full report.
        assert!(matches!(
            ctx.into_report(),
            Err(StageError::MissingArtifact(_))
        ));

        // The empty prefix produces nothing at all.
        let ctx = pipe.run_prefix(&world, 0).expect("empty prefix runs");
        assert_eq!(
            ctx.extraction().unwrap_err(),
            StageError::MissingArtifact("extraction")
        );
    }

    /// Synthetic stage for driver tests: fails its first `fails` runs
    /// (recording a partial ledger entry each attempt so rollback is
    /// observable), then succeeds. `degradable` opts into degradation.
    struct FlakyStage {
        fails_left: Cell<u32>,
        degradable: bool,
    }

    impl FlakyStage {
        fn failing(fails: u32, degradable: bool) -> FlakyStage {
            FlakyStage {
                fails_left: Cell::new(fails),
                degradable,
            }
        }
    }

    impl Stage for FlakyStage {
        fn name(&self) -> &'static str {
            "flaky"
        }

        fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
            // A partial effect before the possible failure: the driver
            // must roll this back on a failed attempt.
            ctx.ledger.record(
                "flaky",
                "record/0".to_string(),
                RecordErrorKind::MalformedRow,
            );
            if self.fails_left.get() > 0 {
                self.fails_left.set(self.fails_left.get() - 1);
                return Err(StageError::CorruptArtifact {
                    path: "flaky/input".to_string(),
                    reason: "synthetic failure".to_string(),
                });
            }
            ctx.note_items(1);
            Ok(())
        }

        fn degrade(&self, ctx: &mut StageCtx<'_>, _cause: &StageError) -> bool {
            if self.degradable {
                ctx.note_items(0);
            }
            self.degradable
        }
    }

    #[test]
    fn driver_retries_a_failed_stage_once_and_records_recovery() {
        let world = World::generate(WorldConfig::test_scale(0xF1A));
        let mut ctx = StageCtx::new(&world, PipelineOptions::default());
        let stage = FlakyStage::failing(1, false);

        Pipeline::step(&stage, &mut ctx).expect("retry succeeds");

        assert_eq!(ctx.health().len(), 1);
        assert_eq!(ctx.health()[0].stage, "flaky");
        assert_eq!(ctx.health()[0].status, StageStatus::Recovered);
        assert!(ctx.health()[0].detail.contains("synthetic failure"));
        // The failed attempt's ledger entry was rolled back; only the
        // successful attempt's entry survives.
        assert_eq!(ctx.ledger.len(), 1);
        let t = ctx.timings().last().unwrap();
        assert_eq!((t.stage.as_str(), t.items), ("flaky", 1));
        assert_eq!(t.source, TimingSource::Computed);
    }

    #[test]
    fn driver_degrades_a_twice_failed_stage_when_allowed() {
        let world = World::generate(WorldConfig::test_scale(0xF1A));
        let mut ctx = StageCtx::new(&world, PipelineOptions::default());
        let stage = FlakyStage::failing(2, true);

        Pipeline::step(&stage, &mut ctx).expect("degradation keeps the run alive");

        assert_eq!(ctx.health().len(), 1);
        assert_eq!(ctx.health()[0].status, StageStatus::Degraded);
        assert_eq!(ctx.ledger.len(), 0, "both failed attempts rolled back");
    }

    #[test]
    fn driver_propagates_a_double_failure_without_degradation() {
        let world = World::generate(WorldConfig::test_scale(0xF1A));
        let mut ctx = StageCtx::new(&world, PipelineOptions::default());
        let stage = FlakyStage::failing(2, false);

        let err = Pipeline::step(&stage, &mut ctx).unwrap_err();
        assert!(matches!(err, StageError::CorruptArtifact { .. }));
        assert!(ctx.health().is_empty());
        assert!(ctx.ledger.is_empty());
        assert!(ctx.timings().is_empty(), "no timing for a failed stage");
    }
}
