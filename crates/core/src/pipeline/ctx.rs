//! The typed artifact store threaded through the stage graph.
//!
//! Each stage reads earlier artifacts out of [`StageCtx`] and writes its
//! own back in. Artifacts are plain `Option` fields, so a prefix run
//! leaves later slots `None` and [`StageCtx::into_report`] reports
//! exactly which artifact is missing.

use super::corruption::{CorruptionPlan, QuarantineLedger};
use super::{
    ForumRow, ImageFunnel, PipelineOptions, PipelineReport, SafetyFindings, StageHealth,
    StageTiming,
};
use crate::actors::{CohortRow, GroupProfile, InterestEvolution, KeyActors};
use crate::crawl::{CrawlResult, CrawlStats};
use crate::extract::EwhoringSet;
use crate::finance::{CurrencyExchangeAnalysis, EarningsAnalysis, EarningsHarvest};
use crate::nsfv::{ImageMeasures, NsfvValidation};
use crate::provenance::ProvenanceResult;
use crate::topcls::TopClassification;
use crimebb::ThreadId;
use rand::rngs::StdRng;
use safety::SafetyGate;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use synthrand::Day;
use worldgen::World;

/// Why a stage (or report assembly) could not proceed.
#[derive(Debug, Clone)]
pub enum StageError {
    /// A required artifact was never produced — the stage that writes it
    /// did not run (e.g. a prefix run stopped too early).
    MissingArtifact(&'static str),
    /// An I/O operation failed (journal read/write). Carries the
    /// underlying [`std::io::Error`] behind an `Arc` so the variant stays
    /// `Clone`; [`std::error::Error::source`] exposes it for chaining.
    Io {
        /// What the pipeline was doing (path and operation).
        context: String,
        /// The underlying I/O error.
        source: std::sync::Arc<std::io::Error>,
    },
    /// A journaled or in-flight artifact failed validation (bad
    /// checksum, unparseable payload, stale run key, inconsistent
    /// cross-references).
    CorruptArtifact {
        /// The file or artifact that failed validation.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A stage quarantined every record it was given — there is nothing
    /// left to measure, so proceeding would silently report an empty
    /// world as a finding.
    Quarantined {
        /// The stage that ran out of clean records.
        stage: &'static str,
        /// How many records it quarantined.
        records: usize,
    },
}

impl StageError {
    /// Wraps an I/O failure with its operation context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> StageError {
        StageError::Io {
            context: context.into(),
            source: std::sync::Arc::new(source),
        }
    }
}

// Manual impl: `std::io::Error` is not `PartialEq`, so the `Io` variant
// compares context plus error kind (enough for test assertions).
impl PartialEq for StageError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (StageError::MissingArtifact(a), StageError::MissingArtifact(b)) => a == b,
            (
                StageError::Io {
                    context: ca,
                    source: sa,
                },
                StageError::Io {
                    context: cb,
                    source: sb,
                },
            ) => ca == cb && sa.kind() == sb.kind(),
            (
                StageError::CorruptArtifact {
                    path: pa,
                    reason: ra,
                },
                StageError::CorruptArtifact {
                    path: pb,
                    reason: rb,
                },
            ) => pa == pb && ra == rb,
            (
                StageError::Quarantined {
                    stage: sa,
                    records: ra,
                },
                StageError::Quarantined {
                    stage: sb,
                    records: rb,
                },
            ) => sa == sb && ra == rb,
            _ => false,
        }
    }
}

impl Eq for StageError {}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageError::MissingArtifact(name) => {
                write!(
                    f,
                    "missing artifact `{name}`: the stage producing it has not run"
                )
            }
            StageError::Io { context, source } => {
                write!(f, "I/O failure while {context}: {source}")
            }
            StageError::CorruptArtifact { path, reason } => {
                write!(f, "corrupt artifact `{path}`: {reason}")
            }
            StageError::Quarantined { stage, records } => {
                write!(
                    f,
                    "stage `{stage}` quarantined all {records} of its records: nothing left to measure"
                )
            }
        }
    }
}

impl std::error::Error for StageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StageError::Io { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Which crawl product an image came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ImageSource {
    /// A single-image preview download.
    Preview,
    /// The `n`-th downloaded pack, in crawl order.
    Pack(u32),
}

/// Stable identity of one downloaded image: its source plus its index
/// *within that source*. Replaces global flat offsets, so an operation on
/// pack `k` can never alias an image of pack `k + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ImageRef {
    /// Where the image came from.
    pub source: ImageSource,
    /// Index within the source (preview list or one pack's image list).
    pub index: u32,
}

impl ImageRef {
    /// Ref to the `index`-th preview download.
    pub fn preview(index: usize) -> ImageRef {
        ImageRef {
            source: ImageSource::Preview,
            index: index as u32,
        }
    }

    /// Ref to the `index`-th image of the `pack`-th pack.
    pub fn pack(pack: usize, index: usize) -> ImageRef {
        ImageRef {
            source: ImageSource::Pack(pack as u32),
            index: index as u32,
        }
    }
}

/// Per-image measures for everything the crawl downloaded, re-split by
/// source after the single flattened [`measure_batch`] call.
///
/// [`measure_batch`]: super::measure_batch
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MeasuredImages {
    /// One entry per preview download, crawl order.
    pub previews: Vec<ImageMeasures>,
    /// One inner list per pack, crawl order.
    pub packs: Vec<Vec<ImageMeasures>>,
}

impl MeasuredImages {
    /// Re-splits one flat measurement batch (previews first, then every
    /// pack in order) back into its sources. Panics if the lengths do not
    /// add up — that would mean the batch dropped or invented images.
    /// Prefer [`MeasuredImages::try_from_flat`] in stage code.
    pub fn from_flat(
        flat: Vec<ImageMeasures>,
        n_previews: usize,
        pack_lens: &[usize],
    ) -> MeasuredImages {
        match Self::try_from_flat(flat, n_previews, pack_lens) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible re-split: a length mismatch is reported as a
    /// [`StageError::CorruptArtifact`] instead of a panic, so the driver
    /// can retry or surface the failure in the run report.
    pub fn try_from_flat(
        flat: Vec<ImageMeasures>,
        n_previews: usize,
        pack_lens: &[usize],
    ) -> Result<MeasuredImages, StageError> {
        let expected = n_previews + pack_lens.iter().sum::<usize>();
        if flat.len() != expected {
            return Err(StageError::CorruptArtifact {
                path: "measures/flat".to_string(),
                reason: format!(
                    "flat measure batch must cover previews + all pack images: \
                     got {}, expected {expected}",
                    flat.len()
                ),
            });
        }
        let mut rest = flat.into_iter();
        let previews = rest.by_ref().take(n_previews).collect();
        let packs = pack_lens
            .iter()
            .map(|&len| rest.by_ref().take(len).collect())
            .collect();
        Ok(MeasuredImages { previews, packs })
    }

    /// Total images measured.
    pub fn total(&self) -> usize {
        self.previews.len() + self.packs.iter().map(Vec::len).sum::<usize>()
    }

    /// Every [`ImageRef`] in canonical screening order: previews first,
    /// then each pack's images in pack order.
    pub fn refs(&self) -> Vec<ImageRef> {
        let mut out = Vec::with_capacity(self.total());
        for i in 0..self.previews.len() {
            out.push(ImageRef::preview(i));
        }
        for (k, pack) in self.packs.iter().enumerate() {
            for j in 0..pack.len() {
                out.push(ImageRef::pack(k, j));
            }
        }
        out
    }

    /// Looks up one image's measures by ref.
    pub fn get(&self, r: ImageRef) -> Option<&ImageMeasures> {
        match r.source {
            ImageSource::Preview => self.previews.get(r.index as usize),
            ImageSource::Pack(k) => self.packs.get(k as usize)?.get(r.index as usize),
        }
    }
}

/// Measures that survived safety deletions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KeptImages {
    /// Surviving previews with their original refs (`source == Preview`),
    /// so the crawl metadata (post date, link) stays addressable.
    pub previews: Vec<(ImageRef, ImageMeasures)>,
    /// Surviving images per pack, same pack order as the crawl.
    pub packs: Vec<Vec<ImageMeasures>>,
}

/// Drops every flagged image. Flags are keyed by [`ImageRef`], so a
/// flagged image in pack `k` can never evict an image from pack `k + 1`
/// the way global-offset arithmetic could.
pub fn apply_deletions(measures: &MeasuredImages, flagged: &HashSet<ImageRef>) -> KeptImages {
    let previews = measures
        .previews
        .iter()
        .enumerate()
        .map(|(i, m)| (ImageRef::preview(i), *m))
        .filter(|(r, _)| !flagged.contains(r))
        .collect();
    let packs = measures
        .packs
        .iter()
        .enumerate()
        .map(|(k, pack)| {
            pack.iter()
                .enumerate()
                .filter(|(j, _)| !flagged.contains(&ImageRef::pack(k, *j)))
                .map(|(_, m)| *m)
                .collect()
        })
        .collect();
    KeptImages { previews, packs }
}

/// Returns the artifact or a [`StageError::MissingArtifact`] naming it.
///
/// Free function (rather than a `StageCtx` method) so stage bodies can
/// borrow one artifact while holding `&mut ctx.rng`: field-path borrows
/// stay disjoint.
pub(crate) fn require<'a, T>(slot: &'a Option<T>, name: &'static str) -> Result<&'a T, StageError> {
    slot.as_ref().ok_or(StageError::MissingArtifact(name))
}

/// The artifact store carried across the stage graph.
///
/// Stages read inputs through the accessor methods (or [`require`] when
/// they also hold `&mut rng`) and write outputs straight into the `pub`
/// slots. The driver owns `timings`; stages report throughput with
/// [`StageCtx::note_items`].
pub struct StageCtx<'w> {
    /// The synthetic world under measurement (read-only).
    pub world: &'w World,
    /// Pipeline tuning knobs.
    pub options: PipelineOptions,
    /// The run's RNG, seeded from `options.seed` at construction. Only
    /// the TOP-classifier stage draws from it, so streams match the
    /// pre-stage-graph pipeline exactly.
    pub rng: StdRng,
    /// The run's input-corruption plan, seeded from `options.seed` via
    /// the `pipeline/corruption` sub-seed and scaled by
    /// `options.corruption_severity`. Inert at severity `0.0`.
    pub corruption: CorruptionPlan,
    /// Per-record failures quarantined so far. Stages push entries via
    /// [`QuarantineLedger::record`] instead of panicking on bad input.
    pub ledger: QuarantineLedger,
    pub(super) timings: Vec<StageTiming>,
    pub(super) items: usize,
    pub(super) health: Vec<StageHealth>,
    /// Streaming mode only: the inter-epoch carry state. `Some` exactly
    /// when `options.stream` is set; stages fork on it, take it, update
    /// it, and put it back so the driver can hand it to the next epoch.
    /// Always `None` in batch mode — batch stages never look at it.
    pub carry: Option<super::epoch::EpochCarry>,
    /// Sharded mode only: the merged per-shard actor partials (fold
    /// counters, interaction edges, CE ledger) the shard coordinator
    /// hands to the `actors` stage. Always `None` in batch mode.
    pub shard_actors: Option<super::shard::ShardActorPartials>,
    /// Supervision counters (shards run / restarted / quarantined);
    /// all zero on an unsharded run.
    pub supervision: super::Supervision,

    // ---- artifacts, in production order ----
    /// Stage `extract`: the extraction set (§3).
    pub extraction: Option<EwhoringSet>,
    /// Stage `extract`: all extracted threads, flattened.
    pub all_threads: Option<Vec<ThreadId>>,
    /// Stage `top_classifier`: classifier evaluation + detected TOPs (§4.1).
    pub topcls: Option<TopClassification>,
    /// Stage `top_classifier`: Table 1 rows.
    pub forums: Option<Vec<ForumRow>>,
    /// Stage `crawl`: crawler output (§4.2).
    pub crawl: Option<CrawlResult>,
    /// Stage `crawl`: crawler health counters (retries, breaker trips,
    /// simulated waits per site kind).
    pub crawl_stats: Option<CrawlStats>,
    /// Stage `measure_images`: per-image measures keyed by [`ImageRef`].
    pub measures: Option<MeasuredImages>,
    /// Stage `safety`: the hash-matching gate (kept for finance's proof
    /// screening, which must reuse the same gate log).
    pub gate: Option<SafetyGate>,
    /// Stage `safety`: flagged images by ref.
    pub flagged: Option<HashSet<ImageRef>>,
    /// Stage `safety`: IWF summary + flagged-thread actor counts (§4.3).
    pub safety: Option<SafetyFindings>,
    /// Stage `safety`: measures surviving deletion.
    pub kept: Option<KeptImages>,
    /// Stage `nsfv`: validation-set evaluation (§4.4).
    pub nsfv_validation: Option<NsfvValidation>,
    /// Stage `nsfv`: kept previews classified NSFV, with post dates.
    pub previews_nsfv: Option<Vec<(ImageMeasures, Day)>>,
    /// Stage `nsfv`: §4.2/§4.4 funnel counters.
    pub funnel: Option<ImageFunnel>,
    /// Stage `provenance`: Tables 5/6 (§4.5).
    pub provenance: Option<ProvenanceResult>,
    /// Stage `finance`: §5.1 harvest funnel.
    pub harvest: Option<EarningsHarvest>,
    /// Stage `finance`: §5.2 earnings aggregates.
    pub earnings: Option<EarningsAnalysis>,
    /// Stage `finance`: Table 7.
    pub currency: Option<CurrencyExchangeAnalysis>,
    /// Stage `actors`: Table 8.
    pub cohorts: Option<Vec<CohortRow>>,
    /// Stage `actors`: Figure 4 raw points.
    pub fig4_points: Option<Vec<(usize, f64, u32, u32)>>,
    /// Stage `actors`: §6.3 key actors.
    pub key_actors: Option<KeyActors>,
    /// Stage `actors`: Table 10.
    pub group_profiles: Option<Vec<GroupProfile>>,
    /// Stage `actors`: Figure 5.
    pub interests: Option<InterestEvolution>,
}

macro_rules! artifact_accessors {
    ($($(#[$meta:meta])* $field:ident: $ty:ty),* $(,)?) => {
        impl StageCtx<'_> {
            $(
                $(#[$meta])*
                pub fn $field(&self) -> Result<&$ty, StageError> {
                    require(&self.$field, stringify!($field))
                }
            )*
        }
    };
}

artifact_accessors! {
    /// The extraction set, or an error if `extract` has not run.
    extraction: EwhoringSet,
    /// All extracted threads, or an error if `extract` has not run.
    all_threads: Vec<ThreadId>,
    /// TOP classification, or an error if `top_classifier` has not run.
    topcls: TopClassification,
    /// Table 1 rows, or an error if `top_classifier` has not run.
    forums: Vec<ForumRow>,
    /// Crawl output, or an error if `crawl` has not run.
    crawl: CrawlResult,
    /// Crawler health counters, or an error if `crawl` has not run.
    crawl_stats: CrawlStats,
    /// Image measures, or an error if `measure_images` has not run.
    measures: MeasuredImages,
    /// The safety gate, or an error if `safety` has not run.
    gate: SafetyGate,
    /// Flagged refs, or an error if `safety` has not run.
    flagged: HashSet<ImageRef>,
    /// Safety findings, or an error if `safety` has not run.
    safety: SafetyFindings,
    /// Surviving measures, or an error if `safety` has not run.
    kept: KeptImages,
    /// NSFV validation, or an error if `nsfv` has not run.
    nsfv_validation: NsfvValidation,
    /// NSFV previews, or an error if `nsfv` has not run.
    previews_nsfv: Vec<(ImageMeasures, Day)>,
    /// Funnel counters, or an error if `nsfv` has not run.
    funnel: ImageFunnel,
    /// Provenance result, or an error if `provenance` has not run.
    provenance: ProvenanceResult,
    /// Harvest funnel, or an error if `finance` has not run.
    harvest: EarningsHarvest,
    /// Earnings aggregates, or an error if `finance` has not run.
    earnings: EarningsAnalysis,
    /// Currency-exchange analysis, or an error if `finance` has not run.
    currency: CurrencyExchangeAnalysis,
    /// Cohort table, or an error if `actors` has not run.
    cohorts: Vec<CohortRow>,
    /// Figure 4 points, or an error if `actors` has not run.
    fig4_points: Vec<(usize, f64, u32, u32)>,
    /// Key actors, or an error if `actors` has not run.
    key_actors: KeyActors,
    /// Group profiles, or an error if `actors` has not run.
    group_profiles: Vec<GroupProfile>,
    /// Interest evolution, or an error if `actors` has not run.
    interests: InterestEvolution,
}

impl<'w> StageCtx<'w> {
    /// Fresh context over `world`, every artifact slot empty.
    pub fn new(world: &'w World, options: PipelineOptions) -> StageCtx<'w> {
        StageCtx {
            world,
            options,
            rng: synthrand::rng_from_seed(options.seed),
            corruption: CorruptionPlan::with_severity(
                synthrand::SeedFactory::new(options.seed).seed_for("pipeline/corruption"),
                options.corruption_severity,
            ),
            ledger: QuarantineLedger::new(),
            timings: Vec::new(),
            items: 0,
            health: Vec::new(),
            carry: options.stream.map(|_| super::epoch::EpochCarry::default()),
            shard_actors: None,
            supervision: super::Supervision::default(),
            extraction: None,
            all_threads: None,
            topcls: None,
            forums: None,
            crawl: None,
            crawl_stats: None,
            measures: None,
            gate: None,
            flagged: None,
            safety: None,
            kept: None,
            nsfv_validation: None,
            previews_nsfv: None,
            funnel: None,
            provenance: None,
            harvest: None,
            earnings: None,
            currency: None,
            cohorts: None,
            fig4_points: None,
            key_actors: None,
            group_profiles: None,
            interests: None,
        }
    }

    /// Records how many items the current stage processed (shown in its
    /// [`StageTiming`]). Stages call this once per run.
    pub fn note_items(&mut self, n: usize) {
        self.items = n;
    }

    /// Takes the pending item count for the stage that just finished.
    pub(super) fn take_items(&mut self) -> usize {
        std::mem::take(&mut self.items)
    }

    /// Timings recorded so far, one entry per completed stage.
    pub fn timings(&self) -> &[StageTiming] {
        &self.timings
    }

    /// Stage-health events recorded so far (recovered retries,
    /// degradations). Empty on a clean run.
    pub fn health(&self) -> &[StageHealth] {
        &self.health
    }

    /// Assembles the final [`PipelineReport`], consuming the context.
    /// Errors with the first missing artifact if only a prefix ran.
    pub fn into_report(self) -> Result<PipelineReport, StageError> {
        macro_rules! take {
            ($field:ident) => {
                self.$field
                    .ok_or(StageError::MissingArtifact(stringify!($field)))?
            };
        }
        Ok(PipelineReport {
            forums: take!(forums),
            topcls: take!(topcls),
            crawl: take!(crawl),
            crawl_stats: take!(crawl_stats),
            funnel: take!(funnel),
            safety: take!(safety),
            nsfv_validation: take!(nsfv_validation),
            provenance: take!(provenance),
            harvest: take!(harvest),
            earnings: take!(earnings),
            currency: take!(currency),
            cohorts: take!(cohorts),
            fig4_points: take!(fig4_points),
            key_actors: take!(key_actors),
            group_profiles: take!(group_profiles),
            interests: take!(interests),
            quarantine: self.ledger,
            health: self.health,
            supervision: self.supervision,
            timings: self.timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagesim::{ImageClass, ImageSpec};
    use websim::StoredImage;

    fn measures(n: usize, salt: u64) -> Vec<ImageMeasures> {
        (0..n)
            .map(|v| {
                let spec = ImageSpec::model_photo(ImageClass::ModelNude, v as u32, v as u64 + salt);
                ImageMeasures::of(&StoredImage::pristine(spec).render())
            })
            .collect()
    }

    #[test]
    fn from_flat_resplit_is_lossless() {
        let previews = measures(3, 100);
        let packs = [measures(2, 200), measures(0, 300), measures(4, 400)];
        let mut flat = previews.clone();
        for p in &packs {
            flat.extend(p.iter().copied());
        }
        let split = MeasuredImages::from_flat(flat, previews.len(), &[2, 0, 4]);
        assert_eq!(split.previews, previews);
        assert_eq!(split.packs.len(), 3);
        for (got, want) in split.packs.iter().zip(&packs) {
            assert_eq!(got, want);
        }
        assert_eq!(split.total(), 9);
    }

    #[test]
    #[should_panic(expected = "flat measure batch")]
    fn from_flat_rejects_short_batches() {
        MeasuredImages::from_flat(measures(2, 0), 2, &[1]);
    }

    #[test]
    fn refs_follow_screening_order() {
        let split = MeasuredImages {
            previews: measures(2, 0),
            packs: vec![measures(1, 10), measures(2, 20)],
        };
        assert_eq!(
            split.refs(),
            vec![
                ImageRef::preview(0),
                ImageRef::preview(1),
                ImageRef::pack(0, 0),
                ImageRef::pack(1, 0),
                ImageRef::pack(1, 1),
            ]
        );
        for r in split.refs() {
            assert!(split.get(r).is_some());
        }
        assert!(split.get(ImageRef::pack(2, 0)).is_none());
    }

    /// Regression for the old global-offset arithmetic: flagging the last
    /// image of pack `k` must never evict the first image of pack `k + 1`.
    #[test]
    fn flag_in_pack_k_never_evicts_pack_k_plus_1() {
        let split = MeasuredImages {
            previews: measures(2, 0),
            packs: vec![measures(3, 10), measures(3, 20)],
        };
        // Flag the whole of pack 0 (including its last image, whose flat
        // offset would be pack 1's first under off-by-one arithmetic).
        let flagged: HashSet<ImageRef> = (0..3).map(|j| ImageRef::pack(0, j)).collect();
        let kept = apply_deletions(&split, &flagged);
        assert_eq!(kept.previews.len(), 2, "previews untouched");
        assert!(kept.packs[0].is_empty(), "pack 0 fully deleted");
        assert_eq!(kept.packs[1], split.packs[1], "pack 1 fully intact");
    }

    #[test]
    fn preview_flags_keep_original_refs() {
        let split = MeasuredImages {
            previews: measures(3, 0),
            packs: vec![measures(1, 10)],
        };
        let flagged: HashSet<ImageRef> = [ImageRef::preview(1)].into_iter().collect();
        let kept = apply_deletions(&split, &flagged);
        let refs: Vec<ImageRef> = kept.previews.iter().map(|(r, _)| *r).collect();
        assert_eq!(refs, vec![ImageRef::preview(0), ImageRef::preview(2)]);
        assert_eq!(kept.packs[0], split.packs[0]);
    }
}
