//! The journal-backed result cache behind the pipeline service.
//!
//! A [`RunSpec`] is the five-knob request surface shared by the batch
//! CLI and the wire protocol: `(scale, seed, workers, faults,
//! corruption)`. Both callers derive their [`WorldConfig`] and
//! [`PipelineOptions`] through the *same* [`RunSpec`] methods, so a
//! report computed for a wire request is byte-identical to the batch
//! run for the same knobs — that equivalence is what `make smoke-serve`
//! `cmp`s.
//!
//! [`RunCache`] maps a run key (the same key the checkpoint journal
//! uses) to a completed [`PipelineReport`]:
//!
//! * **In-memory layer** — each key owns a [`OnceLock`] slot, which
//!   gives single-flight deduplication for free: N concurrent requests
//!   for the same key block on one slot, exactly one executes the
//!   pipeline ([`RunCache::computed_runs`] counts these), and the rest
//!   wake to a shared `Arc` of the finished report.
//! * **Journal layer** — when opened with a journal root, the compute
//!   path runs [`Pipeline::run_resumable`], so a run journaled by *any*
//!   earlier process (a batch invocation, a previous server lifetime)
//!   is loaded stage by stage instead of recomputed; a fully journaled
//!   run costs deserialization only and reports every stage with
//!   [`TimingSource::Journal`].
//!
//! Failures are cached too: a spec whose pipeline errors holds the
//! rendered [`StageError`] in its slot, so hammering a poisoned key
//! cannot re-run a failing pipeline in a loop.
//!
//! [`TimingSource::Journal`]: super::TimingSource::Journal

use super::{journal, Pipeline, PipelineOptions, PipelineReport, StageError, StreamSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use worldgen::{World, WorldConfig};

/// The full request surface of one pipeline run, as exposed on the CLI
/// and the wire: everything else (domain counts, `k_key_actors`) is
/// derived from these five knobs, in one place, so batch and service
/// runs can never drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Corpus scale; `1.0` = paper scale.
    pub scale: f64,
    /// World seed.
    pub seed: u64,
    /// Worker threads for the data-parallel stages (`0` = all cores).
    /// Excluded from the run key — output is worker-independent.
    pub workers: usize,
    /// Transient-fault severity for the crawl stage.
    pub faults: f64,
    /// Input-corruption severity.
    pub corruption: f64,
    /// Feed epochs for streaming mode; `0` = classic batch run.
    pub epochs: u32,
    /// Epoch to report at in streaming mode; `0` = the final epoch.
    pub upto: u32,
    /// Supervised shard workers; `0` = the classic unsharded driver.
    /// Excluded from the run key — output is shard-count-independent,
    /// exactly like `workers`.
    pub shards: usize,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            scale: 0.3,
            seed: 0xE400_2019,
            workers: 4,
            faults: 0.0,
            corruption: 0.0,
            epochs: 0,
            upto: 0,
            shards: 0,
        }
    }
}

impl RunSpec {
    /// The world this spec measures. Domain and planted-image counts
    /// follow the batch CLI's long-standing scale formulas.
    pub fn world_config(&self) -> WorldConfig {
        WorldConfig {
            seed: self.seed,
            scale: self.scale,
            origin_domains: ((5_917.0 * self.scale.sqrt()) as u32).max(200),
            csam_images: ((36.0 * self.scale).round() as u32).max(4),
            with_side_boards: true,
        }
    }

    /// The pipeline options this spec runs with. `k_key_actors` scales
    /// with the corpus exactly as the batch CLI always has.
    pub fn options(&self) -> PipelineOptions {
        PipelineOptions {
            k_key_actors: ((50.0 * self.scale).round() as usize).clamp(8, 50),
            workers: self.workers,
            fault_severity: self.faults,
            corruption_severity: self.corruption,
            stream: (self.epochs > 0).then(|| StreamSpec {
                epochs: self.epochs,
                upto: self.effective_upto(),
            }),
            shards: self.shards,
            ..PipelineOptions::default()
        }
    }

    /// The epoch actually reported at: `upto` clamped into `1..=epochs`,
    /// with `0` meaning the final epoch. `0` for batch specs.
    pub fn effective_upto(&self) -> u32 {
        if self.epochs == 0 {
            0
        } else if self.upto == 0 {
            self.epochs
        } else {
            self.upto.min(self.epochs)
        }
    }

    /// The journal run key for this spec (worker-independent).
    pub fn run_key(&self) -> Result<String, StageError> {
        journal::run_key(&self.world_config(), &self.options())
    }
}

/// Renders the determinism snapshot of a report: the full
/// [`PipelineReport`] minus wall-clock timings, pretty-printed. Two
/// runs of the same [`RunSpec`] — batch or wire, journaled or fresh,
/// any worker count — produce byte-identical snapshots; this is the
/// payload the `report` wire command serves and `--snapshot-json`
/// writes.
pub fn snapshot_json(report: &PipelineReport) -> Result<String, StageError> {
    let mut value = serde_json::to_value(report).map_err(|e| StageError::CorruptArtifact {
        path: "snapshot".to_string(),
        reason: format!("report does not serialize: {e}"),
    })?;
    if let Some(obj) = value.as_object_mut() {
        obj.remove("timings");
        // Supervision counters are scheduling bookkeeping, like
        // timings: a sharded run's snapshot must equal the unsharded
        // run's byte-for-byte.
        obj.remove("supervision");
    }
    serde_json::to_string_pretty(&value).map_err(|e| StageError::CorruptArtifact {
        path: "snapshot".to_string(),
        reason: format!("snapshot does not render: {e}"),
    })
}

/// Where a run served by the cache sits in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The key has never been requested from this cache.
    Unknown,
    /// A request claimed the key and its pipeline is still executing.
    Running,
    /// The run completed; its report is servable.
    Ready,
    /// The run failed; the error is cached.
    Failed,
}

impl RunStatus {
    /// Lower-case wire label.
    pub fn as_str(&self) -> &'static str {
        match self {
            RunStatus::Unknown => "unknown",
            RunStatus::Running => "running",
            RunStatus::Ready => "ready",
            RunStatus::Failed => "failed",
        }
    }
}

/// A cache answer: the finished report plus whether *this* call was the
/// one that computed it.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The run key the report is filed under.
    pub run_key: String,
    /// The completed report, shared across all requesters of the key.
    pub report: Arc<PipelineReport>,
    /// `true` iff this call executed the pipeline (a cache miss);
    /// `false` for hits and single-flight waiters.
    pub fresh: bool,
}

/// One key's slot: settled exactly once, by exactly one computing call.
type Slot = Arc<OnceLock<Result<Arc<PipelineReport>, StageError>>>;

/// Run-key → completed-report cache with single-flight dedup, optionally
/// backed by the on-disk stage journal. See the module docs for the
/// layering.
pub struct RunCache {
    journal_root: Option<PathBuf>,
    slots: Mutex<HashMap<String, Slot>>,
    computed: AtomicUsize,
}

impl RunCache {
    /// A purely in-memory cache: results live for this process only.
    pub fn in_memory() -> RunCache {
        RunCache {
            journal_root: None,
            slots: Mutex::new(HashMap::new()),
            computed: AtomicUsize::new(0),
        }
    }

    /// A cache whose compute path checkpoints into (and resumes from)
    /// the stage journal under `root` — results survive the process and
    /// are shared with batch runs pointed at the same directory.
    pub fn with_journal(root: impl Into<PathBuf>) -> RunCache {
        RunCache {
            journal_root: Some(root.into()),
            slots: Mutex::new(HashMap::new()),
            computed: AtomicUsize::new(0),
        }
    }

    /// How many pipeline executions this cache has started — the
    /// single-flight invariant is `computed_runs() == distinct keys
    /// computed`, no matter how many concurrent requests raced.
    pub fn computed_runs(&self) -> usize {
        self.computed.load(Ordering::SeqCst)
    }

    /// Lifecycle of `run_key` as seen by this cache.
    pub fn status(&self, run_key: &str) -> RunStatus {
        let slot = {
            let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            slots.get(run_key).cloned()
        };
        match slot {
            None => RunStatus::Unknown,
            Some(slot) => match slot.get() {
                None => RunStatus::Running,
                Some(Ok(_)) => RunStatus::Ready,
                Some(Err(_)) => RunStatus::Failed,
            },
        }
    }

    /// The completed report for `run_key`, if one is ready.
    pub fn get(&self, run_key: &str) -> Option<Arc<PipelineReport>> {
        let slot = {
            let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            slots.get(run_key).cloned()
        };
        slot.and_then(|s| s.get().and_then(|r| r.as_ref().ok().cloned()))
    }

    /// Returns the report for `spec`, computing it at most once per
    /// cache: concurrent calls for the same key block on the slot while
    /// a single winner generates the world and runs the pipeline
    /// (journal-resumable when the cache has a journal root). Exactly
    /// one returned [`CachedRun`] per computation has `fresh == true`.
    pub fn get_or_compute(&self, spec: &RunSpec) -> Result<CachedRun, StageError> {
        let run_key = spec.run_key()?;
        let slot = {
            let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            slots.entry(run_key.clone()).or_default().clone()
        };
        let mut fresh = false;
        let outcome = slot.get_or_init(|| {
            fresh = true;
            self.computed.fetch_add(1, Ordering::SeqCst);
            self.compute(spec)
        });
        match outcome {
            Ok(report) => Ok(CachedRun {
                run_key,
                report: Arc::clone(report),
                fresh,
            }),
            Err(e) => Err(e.clone()),
        }
    }

    /// The compute path behind a cache miss. Stream specs always run
    /// fresh through the stream code path over the feed-normalized
    /// world (per-stage journaling is batch-only; incremental serving
    /// is the epoch engine's job — see the serve layer's `advance`).
    fn compute(&self, spec: &RunSpec) -> Result<Arc<PipelineReport>, StageError> {
        let world = World::generate(spec.world_config());
        let options = spec.options();
        let pipeline = Pipeline::new(options);
        let report = match (&self.journal_root, options.stream) {
            // Stage-level journaling covers the unsharded batch driver
            // only; sharded runs always compute through the supervised
            // driver (their snapshot is identical either way).
            (Some(root), None) if options.shards == 0 => pipeline.run_resumable(&world, root)?,
            (_, Some(stream)) => pipeline.run(&super::epoch::stream_world(world, stream)),
            _ => pipeline.run(&world),
        };
        Ok(Arc::new(report))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> RunSpec {
        RunSpec {
            scale: 0.01,
            seed,
            workers: 1,
            faults: 0.0,
            corruption: 0.0,
            epochs: 0,
            upto: 0,
            shards: 0,
        }
    }

    #[test]
    fn run_key_ignores_workers_but_not_the_other_knobs() {
        let base = tiny(1).run_key().unwrap();
        assert_eq!(
            base,
            RunSpec {
                workers: 7,
                ..tiny(1)
            }
            .run_key()
            .unwrap()
        );
        // Shard count is execution topology, not a different run.
        assert_eq!(
            base,
            RunSpec {
                shards: 5,
                ..tiny(1)
            }
            .run_key()
            .unwrap()
        );
        assert_ne!(base, tiny(2).run_key().unwrap());
        assert_ne!(
            base,
            RunSpec {
                faults: 1.0,
                ..tiny(1)
            }
            .run_key()
            .unwrap()
        );
        assert_ne!(
            base,
            RunSpec {
                corruption: 1.0,
                ..tiny(1)
            }
            .run_key()
            .unwrap()
        );
        assert_ne!(
            base,
            RunSpec {
                scale: 0.02,
                ..tiny(1)
            }
            .run_key()
            .unwrap()
        );
        // Epoch slicing changes the run key (a stream run is not the
        // batch run), and the full-stream key is upto-normalized:
        // `upto: 0` and `upto: epochs` name the same run.
        let streamed = RunSpec {
            epochs: 4,
            ..tiny(1)
        };
        assert_ne!(base, streamed.run_key().unwrap());
        assert_eq!(
            streamed.run_key().unwrap(),
            RunSpec {
                upto: 4,
                ..streamed
            }
            .run_key()
            .unwrap()
        );
        assert_ne!(
            streamed.run_key().unwrap(),
            RunSpec {
                upto: 2,
                ..streamed
            }
            .run_key()
            .unwrap()
        );
    }

    #[test]
    fn status_walks_unknown_to_ready() {
        let cache = RunCache::in_memory();
        let spec = tiny(0xCAFE);
        let key = spec.run_key().unwrap();
        assert_eq!(cache.status(&key), RunStatus::Unknown);
        assert!(cache.get(&key).is_none());
        let run = cache.get_or_compute(&spec).unwrap();
        assert!(run.fresh);
        assert_eq!(cache.status(&key), RunStatus::Ready);
        assert!(cache.get(&key).is_some());
        // Second lookup: same Arc, no recompute.
        let again = cache.get_or_compute(&spec).unwrap();
        assert!(!again.fresh);
        assert_eq!(cache.computed_runs(), 1);
        assert!(Arc::ptr_eq(&run.report, &again.report));
    }
}
