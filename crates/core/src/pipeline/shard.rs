//! Supervised shard execution: actor-style sharded runs with panic
//! isolation, shard quarantine, and a deterministic merge coordinator.
//!
//! The corpus is naturally partitioned — ten forums, per-site crawl
//! domains — so a run can be split by forum across shard workers. The
//! pieces:
//!
//! * [`Supervisor`] — a small actor-style supervision layer. Each shard
//!   worker is a scoped OS thread owning a **bounded mailbox**
//!   (`sync_channel(1)`) of attempt tickets; the worker runs the shard
//!   task under `catch_unwind`, so a panicking shard reports a failure
//!   instead of aborting the process. The supervisor applies a
//!   [`RestartPolicy`] — bounded restarts with linear backoff and an
//!   optional per-attempt deadline — and a shard that exhausts its
//!   restart budget is **quarantined**: its mailbox is dropped, the
//!   worker exits, and the round completes without it.
//! * [`run_sharded`] — the sharded pipeline driver. The corpus-scan
//!   stages (`extract` and the TOP classifier's training tokenisation)
//!   fan out per-forum across supervised shards; a merge coordinator
//!   folds the partial artifacts deterministically — extraction rows
//!   concatenate in forum order, the DTM vocabulary is fit over the
//!   shard-ordered document union, per-actor counters merge via
//!   [`ActorFold::merge`], and the cross-forum interaction graph is
//!   stitched by replaying per-shard edge lists in forum order. The
//!   remaining stages run on the coordinator through the ordinary
//!   driver (`crawl`'s per-host circuit breakers couple state across
//!   forums, so sharding them would change byte output). The merged
//!   report is **byte-identical to the unsharded run at every shard
//!   count** — `tests/determinism.rs` enforces shards {1,2,5} ×
//!   workers {1,2,7}.
//! * Degradation — a quarantined shard's forums simply contribute
//!   nothing: its extraction rows stay empty, a `ShardFailure` entry
//!   lands in the quarantine ledger, the pipeline-health section gains
//!   a `Degraded` event, and [`Supervision`] counts it. The run
//!   completes. [`ShardPoison`] injects deterministic shard failures
//!   (panics and/or typed errors) so that path is testable end-to-end.

use super::corruption::RecordErrorKind;
use super::ctx::StageCtx;
use super::stages::topcls::forum_rows;
use super::{
    Pipeline, PipelineOptions, PipelineReport, StageError, StageHealth, StageStatus, StageTiming,
    TimingSource,
};
use crate::actors::ActorFold;
use crate::extract::{extract_ewhoring_threads_in, EwhoringSet};
use crate::features::{thread_tokens, FeatureExtractor};
use crate::pipeline::corruption::CorruptionPlan;
use crate::topcls::classify_tops_with_fit;
use crimebb::{ActorId, BoardCategory, ThreadId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, SyncSender};
use std::time::{Duration, Instant};
use worldgen::{partition_spans, World};

/// How the supervisor reacts to a failing shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestartPolicy {
    /// Restarts granted per shard beyond the first attempt; a shard
    /// failing `max_restarts + 1` times is quarantined.
    pub max_restarts: u32,
    /// Base backoff before restart `k` (the supervisor sleeps
    /// `backoff × k`, linearly — failure here is logic, not a remote
    /// server to be polite to, so there is no jitter to stay
    /// deterministic).
    pub backoff: Duration,
    /// Per-attempt wall-clock deadline. An attempt that finishes past
    /// it — even successfully — counts as a failure, so a hung shard
    /// burns its restart budget and quarantines instead of stalling
    /// the round. `None` (default) disables the check: the merge
    /// contract is byte-identity, and a timing-dependent outcome would
    /// break it, so deadlines are opt-in for callers that prefer
    /// liveness over determinism.
    pub deadline: Option<Duration>,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 2,
            backoff: Duration::from_millis(5),
            deadline: None,
        }
    }
}

/// Supervision counters for one run, merged across rounds. Zero
/// everywhere on an unsharded run (and stripped from determinism
/// snapshots alongside `timings`, since a restart is a scheduling
/// event, not a measurement).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Supervision {
    /// Shard tasks dispatched (shards × supervised rounds).
    pub shards_run: usize,
    /// Shards that needed at least one restart.
    pub shards_restarted: usize,
    /// Shards that exhausted their restart budget and were quarantined.
    pub shards_quarantined: usize,
}

impl Supervision {
    fn absorb(&mut self, stats: RoundStats) {
        self.shards_run += stats.run;
        self.shards_restarted += stats.restarted;
        self.shards_quarantined += stats.quarantined;
    }
}

/// Deterministic shard-failure injection for supervision tests: shard
/// `shard` panics on attempts `< panics` (exercising the restart
/// path), and a `severity >= 1.0` makes every attempt fail with a
/// typed error (exhausting the budget → quarantine). Worker-count and
/// timing independent, so poisoned runs are still byte-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardPoison {
    /// Which shard (by index) misbehaves.
    pub shard: u32,
    /// Attempts that panic before the shard starts succeeding.
    pub panics: u32,
    /// `>= 1.0`: every attempt fails outright (typed error).
    pub severity: f64,
}

/// Per-round supervision tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Shard tasks dispatched this round.
    pub run: usize,
    /// Shards restarted at least once this round.
    pub restarted: usize,
    /// Shards quarantined this round.
    pub quarantined: usize,
}

/// Terminal state of one shard after a supervised round.
#[derive(Debug)]
pub enum RoundOutcome<T> {
    /// The shard produced its partial (possibly after restarts).
    Done(T),
    /// The shard exhausted its restart budget.
    Quarantined {
        /// Attempts consumed (`max_restarts + 1`).
        attempts: u32,
        /// The final attempt's rendered error or panic payload.
        error: String,
    },
}

/// The actor-style supervision layer: dispatches one task per shard to
/// per-shard worker threads and applies the restart policy.
pub struct Supervisor {
    policy: RestartPolicy,
}

impl Supervisor {
    /// A supervisor with the given restart policy.
    pub fn new(policy: RestartPolicy) -> Supervisor {
        Supervisor { policy }
    }

    /// Runs `task(shard, attempt)` for every shard in `0..shards`, each
    /// on its own worker thread with a bounded mailbox, and returns the
    /// outcomes **indexed by shard** (never by completion order, so the
    /// result is scheduling-independent) plus the round's tallies.
    ///
    /// A worker runs each attempt under `catch_unwind`; a panic or an
    /// `Err` is reported to the supervisor, which either re-dispatches
    /// attempt `n + 1` after `backoff × (n + 1)` or — once the budget
    /// is spent — quarantines the shard by dropping its mailbox.
    pub fn run_round<T, F>(&self, shards: usize, task: F) -> (Vec<RoundOutcome<T>>, RoundStats)
    where
        T: Send,
        F: Fn(usize, u32) -> Result<T, String> + Sync,
    {
        let mut stats = RoundStats {
            run: shards,
            restarted: 0,
            quarantined: 0,
        };
        if shards == 0 {
            return (Vec::new(), stats);
        }
        let mut outcomes: Vec<Option<RoundOutcome<T>>> = (0..shards).map(|_| None).collect();
        let (result_tx, result_rx) = mpsc::channel::<(usize, u32, Result<T, String>)>();
        std::thread::scope(|scope| {
            let task = &task;
            let deadline = self.policy.deadline;
            let mut mailboxes: Vec<Option<SyncSender<u32>>> = (0..shards)
                .map(|s| {
                    let (tx, rx) = mpsc::sync_channel::<u32>(1);
                    let results = result_tx.clone();
                    scope.spawn(move || {
                        // Worker loop: wait for an attempt ticket, run
                        // the task under catch_unwind, report back.
                        // Exits when the supervisor drops the mailbox.
                        while let Ok(attempt) = rx.recv() {
                            let started = Instant::now();
                            let result = match catch_unwind(AssertUnwindSafe(|| task(s, attempt))) {
                                Ok(r) => r,
                                Err(payload) => Err(render_panic(payload)),
                            };
                            let result = match (deadline, result) {
                                (Some(limit), Ok(_)) if started.elapsed() > limit => Err(format!(
                                    "shard {s} attempt {attempt} exceeded its {limit:?} deadline"
                                )),
                                (_, r) => r,
                            };
                            if results.send((s, attempt, result)).is_err() {
                                break;
                            }
                        }
                    });
                    Some(tx)
                })
                .collect();
            drop(result_tx);
            for tx in mailboxes.iter().flatten() {
                tx.send(0).expect("fresh worker accepts its first ticket");
            }
            let mut pending = shards;
            while pending > 0 {
                let (s, attempt, result) =
                    result_rx.recv().expect("live workers outnumber tickets");
                match result {
                    Ok(v) => {
                        outcomes[s] = Some(RoundOutcome::Done(v));
                        mailboxes[s] = None;
                        pending -= 1;
                        if attempt > 0 {
                            stats.restarted += 1;
                        }
                    }
                    Err(_) if attempt < self.policy.max_restarts => {
                        std::thread::sleep(self.policy.backoff * (attempt + 1));
                        mailboxes[s]
                            .as_ref()
                            .expect("unresolved shard keeps its mailbox")
                            .send(attempt + 1)
                            .expect("worker loops until its mailbox drops");
                    }
                    Err(error) => {
                        outcomes[s] = Some(RoundOutcome::Quarantined {
                            attempts: attempt + 1,
                            error,
                        });
                        mailboxes[s] = None;
                        pending -= 1;
                        stats.quarantined += 1;
                        if attempt > 0 {
                            stats.restarted += 1;
                        }
                    }
                }
            }
            // Remaining mailboxes (none, normally) drop here; workers
            // see the closed channel and exit before the scope joins.
        });
        let outcomes = outcomes
            .into_iter()
            .map(|o| o.expect("every shard resolved before the round ended"))
            .collect();
        (outcomes, stats)
    }
}

/// Renders a panic payload for [`RoundOutcome::Quarantined::error`].
fn render_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("shard worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("shard worker panicked: {s}")
    } else {
        "shard worker panicked: non-string payload".to_string()
    }
}

/// The per-shard partial feeding the actors stage after the merge:
/// fold counters, interaction-graph edge list (replayed in forum
/// order), and the Currency Exchange thread ledger.
#[derive(Debug, Default)]
pub struct ShardActorPartials {
    /// Per-actor counters merged across shards.
    pub fold: ActorFold,
    /// `(source, target)` interaction edges, concatenated in shard
    /// (= forum) order — the exact `add_edge` sequence of the batch
    /// graph build.
    pub edges: Vec<(u32, u32)>,
    /// `(author, thread)` Currency Exchange ledger rows.
    pub ce_threads: Vec<(ActorId, ThreadId)>,
}

/// Everything one shard's survey pass produces.
struct ShardPartial {
    /// The shard's forums' extraction rows (post corruption filter).
    set: EwhoringSet,
    /// Extraction count before the corruption filter ran.
    before: usize,
    /// Quarantined records, in the batch stage's per-forum order.
    quarantined: Vec<(String, RecordErrorKind)>,
    /// Per-actor counters over the shard's posts.
    fold: ActorFold,
    /// Interaction edges over the shard's eWhoring threads.
    edges: Vec<(u32, u32)>,
    /// CE-thread ledger rows for the shard's forums.
    ce_threads: Vec<(ActorId, ThreadId)>,
}

/// One shard's survey pass: extraction (with the batch corruption
/// filter replicated per-forum), the actor fold, the interaction-edge
/// list, and the CE ledger — everything that is a pure function of the
/// shard's forum span. Extraction is per-forum independent (a thread's
/// dedup entry can only come from its own forum), corruption draws are
/// pure per-thread, and every post belongs to exactly one forum, so
/// concatenating these partials in forum order reproduces the batch
/// artifacts exactly.
fn shard_survey(world: &World, plan: &CorruptionPlan, span: Range<usize>) -> ShardPartial {
    let corpus = &world.corpus;
    let mut set = extract_ewhoring_threads_in(corpus, span.clone());
    let before = set.len();
    let mut quarantined = Vec::new();
    if plan.is_enabled() {
        for (_, threads) in &mut set.per_forum {
            threads.retain(|&t| {
                if let Some(kind) = plan.thread_row(t) {
                    quarantined.push((format!("thread/{}", t.0), kind));
                    return false;
                }
                if let Some(bytes) = plan.mangled_heading(t, &corpus.thread(t).heading) {
                    // The plan damages bytes; only an actual UTF-8
                    // validation failure quarantines the record.
                    if std::str::from_utf8(&bytes).is_err() {
                        quarantined.push((
                            format!("thread/{}", t.0),
                            RecordErrorKind::InvalidUtf8Heading,
                        ));
                        return false;
                    }
                }
                true
            });
        }
    }

    let ewset: HashSet<ThreadId> = set.all_threads().into_iter().collect();
    let mut fold = ActorFold::default();
    fold.ensure(corpus.actors().len());
    let mut ce_threads = Vec::new();
    for thread in corpus.threads() {
        if !span.contains(&corpus.board(thread.board).forum.index()) {
            continue;
        }
        let in_ew = ewset.contains(&thread.id);
        for &p in corpus.posts_in_thread(thread.id) {
            let post = corpus.post(p);
            fold.note_post(post.author, post.date, in_ew);
        }
        if corpus.board(thread.board).category == BoardCategory::CurrencyExchange {
            ce_threads.push((thread.author, thread.id));
        }
    }

    // Interaction edges over the shard's eWhoring threads, in the
    // shard's extraction order — the batch build's order restricted to
    // this forum span.
    let mut edges = Vec::new();
    for (_, threads) in &set.per_forum {
        for &t in threads {
            let thread_author = corpus.thread(t).author;
            for &p in corpus.posts_in_thread(t).iter().skip(1) {
                let post = corpus.post(p);
                let target = match post.quotes {
                    Some(q) => corpus.post(q).author,
                    None => thread_author,
                };
                if post.author != target {
                    edges.push((post.author.0, target.0));
                }
            }
        }
    }

    ShardPartial {
        set,
        before,
        quarantined,
        fold,
        edges,
        ce_threads,
    }
}

/// Applies [`ShardPoison`] at the top of a shard attempt. A panic here
/// is caught by the worker's `catch_unwind` (the restart path); a
/// returned error is the deterministic always-fails path (quarantine
/// once the budget is spent).
fn poison_check(poison: Option<ShardPoison>, shard: usize, attempt: u32) -> Result<(), String> {
    let Some(p) = poison else { return Ok(()) };
    if p.shard as usize != shard {
        return Ok(());
    }
    if p.severity >= 1.0 {
        return Err(format!(
            "poisoned shard {shard}: severity {} fails every attempt",
            p.severity
        ));
    }
    if attempt < p.panics {
        panic!("poisoned shard {shard} panicked on attempt {attempt}");
    }
    Ok(())
}

/// The sharded pipeline driver (invoked by [`Pipeline::run`] when
/// `options.shards > 0`): supervised per-forum survey round, merge
/// coordinator, supervised training-tokenisation round inside the TOP
/// classifier, then the coordinator-side tail of the stage graph.
pub(super) fn run_sharded(
    options: PipelineOptions,
    world: &World,
) -> Result<PipelineReport, StageError> {
    let shards = options.shards.max(1);
    let mut ctx = StageCtx::new(world, options);
    let corpus = &world.corpus;
    let plan = ctx.corruption;
    let supervisor = Supervisor::new(RestartPolicy::default());
    let spans = partition_spans(corpus.forums().len(), shards);

    // ---- survey round (the sharded `extract` stage) ----
    let t = Instant::now();
    let poison = options.poison;
    let (outcomes, stats) = supervisor.run_round(shards, |s, attempt| {
        poison_check(poison, s, attempt)?;
        Ok(shard_survey(world, &plan, spans[s].clone()))
    });
    ctx.supervision.absorb(stats);

    // ---- merge coordinator ----
    // Extraction rows always cover every forum in corpus order; a
    // quarantined shard's forums stay empty (its partition degrades
    // out of the report instead of failing the run).
    let mut per_forum: Vec<_> = corpus.forums().iter().map(|f| (f.id, Vec::new())).collect();
    let mut fold = ActorFold::default();
    fold.ensure(corpus.actors().len());
    let mut edges = Vec::new();
    let mut ce_threads = Vec::new();
    let mut before_total = 0;
    let mut record_quarantines = 0;
    let mut lost_shards = 0;
    for (s, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            RoundOutcome::Done(p) => {
                before_total += p.before;
                for (f, ts) in p.set.per_forum {
                    per_forum[f.index()].1 = ts;
                }
                record_quarantines += p.quarantined.len();
                for (record, kind) in p.quarantined {
                    ctx.ledger.record("extract", record, kind);
                }
                fold.merge(&p.fold);
                edges.extend(p.edges);
                ce_threads.extend(p.ce_threads);
            }
            RoundOutcome::Quarantined { attempts, error } => {
                lost_shards += 1;
                ctx.ledger
                    .record("shard", format!("shard/{s}"), RecordErrorKind::ShardFailure);
                ctx.health.push(StageHealth {
                    stage: "shard".to_string(),
                    status: StageStatus::Degraded,
                    detail: format!("shard {s} quarantined after {attempts} attempts: {error}"),
                });
            }
        }
    }
    if lost_shards == shards {
        return Err(StageError::Quarantined {
            stage: "shard",
            records: shards,
        });
    }
    let set = EwhoringSet { per_forum };
    if plan.is_enabled() && set.is_empty() && before_total > 0 {
        return Err(StageError::Quarantined {
            stage: "extract",
            records: record_quarantines,
        });
    }
    ctx.timings.push(StageTiming {
        stage: "extract".to_string(),
        wall_us: t.elapsed().as_micros(),
        items: set.len(),
        source: TimingSource::Computed,
    });
    ctx.all_threads = Some(set.all_threads());
    ctx.extraction = Some(set);
    ctx.shard_actors = Some(ShardActorPartials {
        fold,
        edges,
        ce_threads,
    });

    // ---- TOP classifier (coordinator, with a supervised tokenise
    // round inside the feature fit) ----
    let t = Instant::now();
    let all_threads = ctx.all_threads.clone().expect("survey round just ran");
    // NaN-feature partition, exactly as the batch stage's serial
    // section (inert at severity 0).
    let classify_input: Vec<ThreadId> = if plan.is_enabled() {
        let mut kept = Vec::with_capacity(all_threads.len());
        let mut noisy = Vec::new();
        for &th in &all_threads {
            if plan.feature_noise(th).is_finite() {
                kept.push(th);
            } else {
                noisy.push(th);
            }
        }
        for th in noisy {
            ctx.ledger.record(
                "top_classifier",
                format!("thread/{}", th.0),
                RecordErrorKind::NonFiniteFeature,
            );
        }
        kept
    } else {
        all_threads
    };
    let workers = options.workers;
    let mut tokenize_stats = RoundStats::default();
    let fit = |train: &[ThreadId]| -> FeatureExtractor {
        // Shards tokenise contiguous spans of the training set; the
        // coordinator concatenates the documents in shard order (=
        // training order) and fits the vocabulary/DTM/IDF over the
        // union, byte-identical to a single-process fit.
        let spans = partition_spans(train.len(), shards);
        let (outcomes, stats) = supervisor.run_round(shards, |s, _attempt| {
            Ok::<_, String>(
                train[spans[s].clone()]
                    .iter()
                    .map(|&th| thread_tokens(corpus, th))
                    .collect::<Vec<_>>(),
            )
        });
        tokenize_stats = stats;
        let mut docs: Vec<Vec<String>> = Vec::with_capacity(train.len());
        for (s, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                RoundOutcome::Done(part) => docs.extend(part),
                // Tokenisation is infallible, so this only fires under
                // synthetic poison; the coordinator fills the span
                // inline so the vocabulary stays complete.
                RoundOutcome::Quarantined { .. } => docs.extend(
                    train[spans[s].clone()]
                        .iter()
                        .map(|&th| thread_tokens(corpus, th)),
                ),
            }
        }
        FeatureExtractor::fit_from_docs(&docs, workers)
    };
    let (_classifier, topcls) = classify_tops_with_fit(
        &mut ctx.rng,
        corpus,
        &world.catalog,
        &world.truth,
        &classify_input,
        workers,
        fit,
    );
    ctx.supervision.absorb(tokenize_stats);
    let forums = forum_rows(
        corpus,
        ctx.extraction.as_ref().expect("merged above"),
        &topcls.detected,
    );
    ctx.timings.push(StageTiming {
        stage: "top_classifier".to_string(),
        wall_us: t.elapsed().as_micros(),
        items: classify_input.len(),
        source: TimingSource::Computed,
    });
    ctx.topcls = Some(topcls);
    ctx.forums = Some(forums);

    // ---- coordinator-side tail ----
    // Crawl's per-host circuit breakers and request budgets couple
    // state across forums, so the tail stages run unsharded through
    // the ordinary driver; `actors` consumes the merged shard partials
    // instead of rescanning the corpus.
    for stage in Pipeline::stages().into_iter().skip(2) {
        Pipeline::step(stage.as_ref(), &mut ctx)?;
    }
    ctx.into_report()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn policy(max_restarts: u32) -> RestartPolicy {
        RestartPolicy {
            max_restarts,
            backoff: Duration::from_millis(1),
            deadline: None,
        }
    }

    #[test]
    fn clean_round_resolves_every_shard_in_index_order() {
        let sup = Supervisor::new(policy(2));
        let (outcomes, stats) = sup.run_round(5, |s, _| Ok::<_, String>(s * 10));
        let values: Vec<usize> = outcomes
            .into_iter()
            .map(|o| match o {
                RoundOutcome::Done(v) => v,
                RoundOutcome::Quarantined { .. } => panic!("clean round"),
            })
            .collect();
        assert_eq!(values, vec![0, 10, 20, 30, 40]);
        assert_eq!(
            stats,
            RoundStats {
                run: 5,
                restarted: 0,
                quarantined: 0
            }
        );
    }

    #[test]
    fn panicking_shard_is_restarted_not_fatal() {
        let sup = Supervisor::new(policy(2));
        let attempts = AtomicUsize::new(0);
        let (outcomes, stats) = sup.run_round(3, |s, attempt| {
            if s == 1 {
                attempts.fetch_add(1, Ordering::SeqCst);
                if attempt == 0 {
                    panic!("shard 1 crashes once");
                }
            }
            Ok::<_, String>(s)
        });
        assert!(matches!(outcomes[1], RoundOutcome::Done(1)));
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "one crash, one retry");
        assert_eq!(stats.restarted, 1);
        assert_eq!(stats.quarantined, 0);
    }

    #[test]
    fn budget_exhaustion_quarantines_only_the_bad_shard() {
        let sup = Supervisor::new(policy(2));
        let (outcomes, stats) = sup.run_round(4, |s, _| {
            if s == 2 {
                Err("always broken".to_string())
            } else {
                Ok(s)
            }
        });
        match &outcomes[2] {
            RoundOutcome::Quarantined { attempts, error } => {
                assert_eq!(*attempts, 3, "initial attempt + 2 restarts");
                assert!(error.contains("always broken"));
            }
            RoundOutcome::Done(_) => panic!("shard 2 must quarantine"),
        }
        for s in [0, 1, 3] {
            assert!(matches!(outcomes[s], RoundOutcome::Done(v) if v == s));
        }
        assert_eq!(stats.quarantined, 1);
    }

    #[test]
    fn deadline_overrun_counts_as_failure() {
        let sup = Supervisor::new(RestartPolicy {
            max_restarts: 0,
            backoff: Duration::from_millis(1),
            deadline: Some(Duration::ZERO),
        });
        let (outcomes, stats) = sup.run_round(2, |s, _| {
            std::thread::sleep(Duration::from_millis(2));
            Ok::<_, String>(s)
        });
        for o in &outcomes {
            match o {
                RoundOutcome::Quarantined { error, .. } => {
                    assert!(error.contains("deadline"), "{error}");
                }
                RoundOutcome::Done(_) => panic!("zero deadline fails every attempt"),
            }
        }
        assert_eq!(stats.quarantined, 2);
    }

    #[test]
    fn poison_check_is_deterministic_per_attempt() {
        let p = Some(ShardPoison {
            shard: 1,
            panics: 0,
            severity: 1.0,
        });
        assert!(poison_check(p, 0, 0).is_ok(), "other shards unaffected");
        assert!(poison_check(p, 1, 0).is_err());
        assert!(
            poison_check(p, 1, 7).is_err(),
            "severity fails every attempt"
        );
        let recovering = Some(ShardPoison {
            shard: 0,
            panics: 2,
            severity: 0.0,
        });
        assert!(poison_check(recovering, 0, 2).is_ok(), "heals after budget");
        assert!(
            catch_unwind(AssertUnwindSafe(|| poison_check(recovering, 0, 1))).is_err(),
            "panics while attempt < panics"
        );
    }
}
