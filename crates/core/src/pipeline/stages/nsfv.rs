//! Stage `nsfv`: not-safe-for-viewing classification (paper §4.4), plus
//! the §4.2/§4.4 funnel accounting over surviving images.
//!
//! NSFV classification is an *analysis* over already-screened images,
//! not a producer of inputs any later stage strictly requires to be
//! complete — so this stage can degrade: if it fails twice, the driver
//! accepts a default validation result, zero NSFV previews, and a
//! partial funnel (download counts only), and the run continues.

use crate::nsfv::{validate, ImageMeasures, NsfvValidation};
use crate::pipeline::ctx::require;
use crate::pipeline::{ImageFunnel, Stage, StageCtx, StageError};
use imagesim::validation::build_validation_set;
use std::collections::HashMap;
use synthrand::Day;

/// Produces `nsfv_validation`, `previews_nsfv`, and `funnel`.
pub struct NsfvStage;

impl Stage for NsfvStage {
    fn name(&self) -> &'static str {
        "nsfv"
    }

    /// Degraded output: default validation metrics, no NSFV previews,
    /// and a funnel holding only the raw download counts (uniqueness
    /// and NSFV tallies zeroed). Only data errors degrade — a missing
    /// artifact is a broken graph and must propagate.
    fn degrade(&self, ctx: &mut StageCtx<'_>, cause: &StageError) -> bool {
        if matches!(cause, StageError::MissingArtifact(_)) {
            return false;
        }
        let (Some(crawl), Some(measures)) = (&ctx.crawl, &ctx.measures) else {
            return false;
        };
        let funnel = ImageFunnel {
            preview_downloads: measures.previews.len(),
            packs_downloaded: crawl.packs.len(),
            pack_images: measures.packs.iter().map(Vec::len).sum(),
            unique_files: 0,
            heavily_duplicated: 0,
            previews_nsfv: 0,
        };
        ctx.nsfv_validation = Some(NsfvValidation::default());
        ctx.previews_nsfv = Some(Vec::new());
        ctx.funnel = Some(funnel);
        true
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let crawl = require(&ctx.crawl, "crawl")?;
        let measures = require(&ctx.measures, "measures")?;
        let kept = require(&ctx.kept, "kept")?;

        let workers = ctx.options.workers;
        // The validation-set evaluation is pure in the run seed, so
        // streaming runs compute it at the first epoch and serve the
        // memoised copy on every later advance.
        let seed = ctx.options.seed;
        let nsfv_validation = if ctx.options.stream.is_some() {
            let carry = ctx.carry.as_mut().expect("stream options imply a carry");
            *carry
                .nsfv
                .get_or_insert_with(|| validate(&build_validation_set(seed ^ 0x24), workers))
        } else {
            validate(&build_validation_set(seed ^ 0x24), workers)
        };
        let previews_nsfv: Vec<(ImageMeasures, Day)> = kept
            .previews
            .iter()
            .filter(|(_, m)| !m.is_sfv())
            .map(|(r, m)| (*m, crawl.previews[r.index as usize].link.posted))
            .collect();

        // Funnel accounting: downloads counted pre-deletion, uniqueness
        // over survivors only. Each worker counts exact-dedup digests over
        // a chunk; merging the partial maps is commutative integer
        // addition, so the counts match the serial fold for any worker
        // count.
        let digests: Vec<u64> = kept
            .previews
            .iter()
            .map(|(_, m)| m.digest)
            .chain(kept.packs.iter().flatten().map(|m| m.digest))
            .collect();
        let partials = crate::par::par_map_chunks(&digests, workers, |chunk| {
            let mut counts: HashMap<u64, usize> = HashMap::new();
            for &d in chunk {
                *counts.entry(d).or_insert(0) += 1;
            }
            counts
        });
        let mut digest_counts: HashMap<u64, usize> = HashMap::new();
        for partial in partials {
            for (d, c) in partial {
                *digest_counts.entry(d).or_insert(0) += c;
            }
        }
        let funnel = ImageFunnel {
            preview_downloads: measures.previews.len(),
            packs_downloaded: crawl.packs.len(),
            pack_images: measures.packs.iter().map(Vec::len).sum(),
            unique_files: digest_counts.len(),
            heavily_duplicated: digest_counts.values().filter(|&&c| c >= 20).count(),
            previews_nsfv: previews_nsfv.len(),
        };

        ctx.note_items(kept.previews.len());
        ctx.nsfv_validation = Some(nsfv_validation);
        ctx.previews_nsfv = Some(previews_nsfv);
        ctx.funnel = Some(funnel);
        Ok(())
    }
}
