//! Stage `crawl`: follow TOP links to previews and packs (paper §4.2).

use crate::crawl::crawl_tops;
use crate::pipeline::ctx::require;
use crate::pipeline::{Stage, StageCtx, StageError};

/// Produces `crawl`.
pub struct CrawlStage;

impl Stage for CrawlStage {
    fn name(&self) -> &'static str {
        "crawl"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let world = ctx.world;
        let detected = &require(&ctx.topcls, "topcls")?.detected;
        let crawl = crawl_tops(&world.corpus, &world.catalog, &world.web, detected);
        ctx.note_items(detected.len());
        ctx.crawl = Some(crawl);
        Ok(())
    }
}
