//! Stage `crawl`: follow TOP links to previews and packs (paper §4.2).
//!
//! Fetches go through a [`FaultPlan`] seeded from the pipeline seed, so
//! transient failures (timeouts, 429s, 5xx, truncated archives) are
//! injected deterministically at `PipelineOptions::fault_severity` and
//! survived by the resilient crawler (retry + backoff + per-host circuit
//! breaker). The stage emits both the crawl result and a [`CrawlStats`]
//! health artifact; at severity `0.0` the plan is inert and the result is
//! byte-identical to the pre-fault pipeline.
//!
//! [`CrawlStats`]: crate::crawl::CrawlStats

use crate::crawl::{crawl_tops_with_faults, RetryPolicy};
use crate::pipeline::corruption::RecordErrorKind;
use crate::pipeline::ctx::require;
use crate::pipeline::{Stage, StageCtx, StageError};
use synthrand::SeedFactory;
use websim::FaultPlan;

/// Produces `crawl` and `crawl_stats`.
pub struct CrawlStage;

impl Stage for CrawlStage {
    fn name(&self) -> &'static str {
        "crawl"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let world = ctx.world;
        let detected = &require(&ctx.topcls, "topcls")?.detected;
        // A sub-seed keeps the fault stream independent of the classifier
        // stage's draws from `ctx.rng`.
        let plan = FaultPlan::with_severity(
            SeedFactory::new(ctx.options.seed).seed_for("crawl/faults"),
            ctx.options.fault_severity,
        );
        let (mut crawl, stats) = crawl_tops_with_faults(
            &world.corpus,
            &world.catalog,
            &world.web,
            detected,
            &plan,
            &RetryPolicy::default(),
        );
        let items = detected.len();

        // Ingestion check on the downloaded bytes: images the corruption
        // plan damaged in transit/storage fail decoding and are
        // quarantined here, *before* measurement, so every downstream
        // index (measures, refs, flags) is built over surviving images
        // only. Packs keep their position even when emptied — the
        // pack list must stay zip-aligned with provenance's walk.
        let corruption = ctx.corruption;
        if corruption.is_enabled() {
            let mut dropped = Vec::new();
            let previews = std::mem::take(&mut crawl.previews);
            crawl.previews = previews
                .into_iter()
                .enumerate()
                .filter(|(i, d)| {
                    let key = format!("preview/{i}/{}", d.link.url.to_https());
                    let ok = !corruption.image_corrupt(&key);
                    if !ok {
                        dropped.push(key);
                    }
                    ok
                })
                .map(|(_, d)| d)
                .collect();
            for (k, pack) in crawl.packs.iter_mut().enumerate() {
                let pack_url = pack.link.url.to_https();
                let images = std::mem::take(&mut pack.images);
                pack.images = images
                    .into_iter()
                    .enumerate()
                    .filter(|(j, _)| {
                        let key = format!("pack/{k}/{j}/{pack_url}");
                        let ok = !corruption.image_corrupt(&key);
                        if !ok {
                            dropped.push(key);
                        }
                        ok
                    })
                    .map(|(_, img)| img)
                    .collect();
            }
            for key in dropped {
                ctx.ledger
                    .record("crawl", key, RecordErrorKind::CorruptImageBytes);
            }
        }

        ctx.note_items(items);
        ctx.crawl = Some(crawl);
        ctx.crawl_stats = Some(stats);
        Ok(())
    }
}
