//! Stage `crawl`: follow TOP links to previews and packs (paper §4.2).
//!
//! Fetches go through a [`FaultPlan`] seeded from the pipeline seed, so
//! transient failures (timeouts, 429s, 5xx, truncated archives) are
//! injected deterministically at `PipelineOptions::fault_severity` and
//! survived by the resilient crawler (retry + backoff + per-host circuit
//! breaker). The stage emits both the crawl result and a [`CrawlStats`]
//! health artifact; at severity `0.0` the plan is inert and the result is
//! byte-identical to the pre-fault pipeline.
//!
//! [`CrawlStats`]: crate::crawl::CrawlStats

use crate::crawl::{crawl_tops_with_faults, RetryPolicy};
use crate::pipeline::ctx::require;
use crate::pipeline::{Stage, StageCtx, StageError};
use synthrand::SeedFactory;
use websim::FaultPlan;

/// Produces `crawl` and `crawl_stats`.
pub struct CrawlStage;

impl Stage for CrawlStage {
    fn name(&self) -> &'static str {
        "crawl"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let world = ctx.world;
        let detected = &require(&ctx.topcls, "topcls")?.detected;
        // A sub-seed keeps the fault stream independent of the classifier
        // stage's draws from `ctx.rng`.
        let plan = FaultPlan::with_severity(
            SeedFactory::new(ctx.options.seed).seed_for("crawl/faults"),
            ctx.options.fault_severity,
        );
        let (crawl, stats) = crawl_tops_with_faults(
            &world.corpus,
            &world.catalog,
            &world.web,
            detected,
            &plan,
            &RetryPolicy::default(),
        );
        ctx.note_items(detected.len());
        ctx.crawl = Some(crawl);
        ctx.crawl_stats = Some(stats);
        Ok(())
    }
}
