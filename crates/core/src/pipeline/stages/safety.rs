//! Stage `safety`: hash-based screening and deletion (paper §4.3).
//!
//! Screens every measured image (previews first, then packs — the
//! canonical [`MeasuredImages::refs`] order), maps the screener's flat
//! indices to [`ImageRef`]s, and applies deletions per source so
//! downstream stages only ever see surviving images.
//!
//! [`MeasuredImages::refs`]: crate::pipeline::MeasuredImages::refs

use crate::nsfv::ImageMeasures;
use crate::pipeline::ctx::require;
use crate::pipeline::{apply_deletions, ImageRef, SafetyFindings, Stage, StageCtx, StageError};
use crate::safety_stage::screen_downloads;
use crimebb::ThreadId;
use safety::SafetyGate;
use std::collections::HashSet;

/// Produces `gate`, `flagged`, `safety`, and `kept`.
pub struct SafetyScreenStage;

impl Stage for SafetyScreenStage {
    fn name(&self) -> &'static str {
        "safety"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let world = ctx.world;
        let crawl = require(&ctx.crawl, "crawl")?;
        let measures = require(&ctx.measures, "measures")?;

        let gate = SafetyGate::new(world.hashlist.clone());
        let mut screen_items: Vec<(ImageMeasures, String, ThreadId)> =
            Vec::with_capacity(measures.total());
        for (d, m) in crawl.previews.iter().zip(&measures.previews) {
            screen_items.push((*m, d.link.url.to_https(), d.link.thread));
        }
        for (p, pack) in crawl.packs.iter().zip(&measures.packs) {
            for m in pack {
                screen_items.push((*m, p.link.url.to_https(), p.link.thread));
            }
        }
        let today = world.config.dataset_end().plus_days(30);
        let stage = screen_downloads(&gate, &world.index, &world.origins, &screen_items, today);

        // The screener reports flat indices into `screen_items`; convert
        // them to stable refs before anything else touches them. An
        // out-of-range index means the screener's view and the measure
        // set diverged — a corrupt artifact, not a crash.
        let refs = measures.refs();
        let flagged: HashSet<ImageRef> = stage
            .flagged
            .iter()
            .map(|&i| {
                refs.get(i)
                    .copied()
                    .ok_or_else(|| StageError::CorruptArtifact {
                        path: "safety/flagged".to_string(),
                        reason: format!(
                            "screener flagged flat index {i}, but only {} images were measured",
                            refs.len()
                        ),
                    })
            })
            .collect::<Result<_, _>>()?;
        let actors_in_flagged = world.corpus.actors_in_threads(&stage.flagged_threads).len();
        let kept = apply_deletions(measures, &flagged);

        ctx.note_items(screen_items.len());
        ctx.kept = Some(kept);
        ctx.safety = Some(SafetyFindings {
            stage,
            actors_in_flagged_threads: actors_in_flagged,
        });
        ctx.flagged = Some(flagged);
        ctx.gate = Some(gate);
        Ok(())
    }
}
