//! Stage `provenance`: reverse-search + wayback attribution (paper §4.5).
//!
//! Provenance attribution is terminal analysis — nothing downstream
//! consumes its artifact except the report — so it may degrade to an
//! empty [`ProvenanceResult`] if it fails twice, rather than aborting a
//! run that already paid for the crawl.

use crate::pipeline::ctx::require;
use crate::pipeline::{Stage, StageCtx, StageError};
use crate::provenance::{
    analyse_provenance, analyse_provenance_memo, PackForAnalysis, ProvenanceResult,
};
use crimebb::ActorId;

/// Produces `provenance`.
pub struct ProvenanceStage;

impl Stage for ProvenanceStage {
    fn name(&self) -> &'static str {
        "provenance"
    }

    /// Degraded output: an empty provenance table (Tables 5/6 render
    /// with zero rows). Missing artifacts still propagate — that is a
    /// graph bug, not bad data.
    fn degrade(&self, ctx: &mut StageCtx<'_>, cause: &StageError) -> bool {
        if matches!(cause, StageError::MissingArtifact(_)) {
            return false;
        }
        ctx.provenance = Some(ProvenanceResult::default());
        true
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let world = ctx.world;
        let crawl = require(&ctx.crawl, "crawl")?;
        let kept = require(&ctx.kept, "kept")?;
        let previews_nsfv = require(&ctx.previews_nsfv, "previews_nsfv")?;

        let packs_for_analysis: Vec<PackForAnalysis> = crawl
            .packs
            .iter()
            .zip(&kept.packs)
            .map(|(p, images)| PackForAnalysis {
                thread: p.link.thread,
                posted: p.link.posted,
                images: images.clone(),
            })
            .collect();
        let pack_authors: Vec<ActorId> = crawl
            .packs
            .iter()
            .map(|p| world.corpus.thread(p.link.thread).author)
            .collect();
        let provenance = if ctx.options.stream.is_some() {
            // Streaming fork: reverse-search outcomes are pure in
            // `(hash, posted)` against the static index + Wayback
            // services, so earlier epochs' queries are served from the
            // carry memo and only genuinely new `(image, post)` pairs
            // pay the linear index scan.
            let memo = &mut ctx
                .carry
                .as_mut()
                .expect("stream options imply a carry")
                .provenance
                .memo;
            analyse_provenance_memo(
                &world.index,
                &world.wayback,
                &world.origins,
                &packs_for_analysis,
                &pack_authors,
                previews_nsfv,
                memo,
            )
        } else {
            analyse_provenance(
                &world.index,
                &world.wayback,
                &world.origins,
                &packs_for_analysis,
                &pack_authors,
                previews_nsfv,
            )
        };
        ctx.note_items(packs_for_analysis.len() + previews_nsfv.len());
        ctx.provenance = Some(provenance);
        Ok(())
    }
}
