//! Stage `top_classifier`: hybrid TOP detection + Table 1 (paper §4.1).
//!
//! Threads whose feature inputs come back non-finite (a corrupt numeric
//! column upstream — injected by the run's corruption plan) are
//! quarantined before training/classification rather than letting NaN
//! poison the SVM's weight updates. The quarantine check happens in
//! this serial section, so the outcome is worker-independent.

use crate::extract::EwhoringSet;
use crate::features::thread_tokens_at;
use crate::pipeline::corruption::RecordErrorKind;
use crate::pipeline::ctx::require;
use crate::pipeline::{ForumRow, Stage, StageCtx, StageError};
use crate::topcls::{bootstrap_at, classify_tops, TopClassification};
use crimebb::{Corpus, ThreadId};
use std::collections::{HashMap, HashSet};
use worldgen::epoch_bound;

/// Produces `topcls` and `forums` (Table 1).
pub struct TopClassifierStage;

impl Stage for TopClassifierStage {
    fn name(&self) -> &'static str {
        "top_classifier"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let world = ctx.world;
        let plan = ctx.corruption;
        let all_threads = require(&ctx.all_threads, "all_threads")?;
        // Partition out threads with NaN-producing feature inputs; the
        // classifier only ever sees finite vectors. Inert at severity 0
        // (`clean` is then the untouched artifact list).
        let clean: Vec<ThreadId>;
        let classify_input: &[ThreadId] = if plan.is_enabled() {
            let mut kept = Vec::with_capacity(all_threads.len());
            let mut noisy = Vec::new();
            for &t in all_threads {
                if plan.feature_noise(t).is_finite() {
                    kept.push(t);
                } else {
                    noisy.push(t);
                }
            }
            clean = kept;
            for t in noisy {
                ctx.ledger.record(
                    "top_classifier",
                    format!("thread/{}", t.0),
                    RecordErrorKind::NonFiniteFeature,
                );
            }
            &clean
        } else {
            all_threads
        };
        let topcls = if let Some(spec) = ctx.options.stream {
            // Streaming fork: decisions are made once, at each thread's
            // first-sight epoch boundary, against the bootstrap-frozen
            // model — epoch N+1 only classifies epoch N+1's new threads.
            // A fresh carry replays the identical per-epoch chain, which
            // is what makes warm advance ≡ full recompute.
            let carry = &mut ctx
                .carry
                .as_mut()
                .expect("stream options imply a carry")
                .topcls;
            let workers = ctx.options.workers;
            // Bucket this advance's undecided threads by first-sight
            // epoch in ONE pass: thread creation days are prefix-stable
            // under the calendar window, so a thread's epoch never
            // changes once assigned. This replaces the former per-epoch
            // full scans (each of which re-evaluated `epoch_bound`
            // inside the filter closure, per thread) — the epoch bounds
            // are now hoisted into one small ascending table. Buckets
            // preserve extraction order, so each sublist is identical
            // whether computed on the epoch-`j` world (warm) or the
            // epoch-`upto` one (fresh).
            let prev_bound = epoch_bound(&world.config, spec.epochs, carry.epoch);
            let bounds: Vec<_> = (carry.epoch + 1..=spec.upto)
                .map(|j| epoch_bound(&world.config, spec.epochs, j))
                .collect();
            let mut buckets: Vec<Vec<ThreadId>> = vec![Vec::new(); bounds.len()];
            for &t in classify_input {
                let created = world.corpus.thread(t).created;
                // Epoch 1 has no lower cutoff (pre-window threads are
                // first-sighted there), matching the old filter.
                if carry.epoch > 0 && created <= prev_bound {
                    continue; // decided in an earlier advance
                }
                // A thread past the last bound is never decided this
                // advance (same as the old `created <= cutoff` filter).
                if let Some(i) = bounds.iter().position(|&b| created <= b) {
                    buckets[i].push(t);
                }
            }
            for (fresh, &cutoff) in buckets.iter().zip(&bounds) {
                if carry.model.is_none() {
                    carry.model = Some(bootstrap_at(
                        &mut ctx.rng,
                        &world.corpus,
                        &world.catalog,
                        &world.truth,
                        fresh,
                        cutoff,
                        workers,
                    ));
                }
                let model = carry.model.as_ref().expect("bootstrapped above");
                let decided =
                    model.decide_at(&world.corpus, &world.catalog, fresh, cutoff, workers);
                carry
                    .decisions
                    .extend(fresh.iter().zip(&decided).map(|(&t, &(ml, h))| (t, ml, h)));
                // Delta text-index update: only the new threads' tokens
                // are counted; vocabulary ids are append-stable.
                let docs: Vec<Vec<String>> = fresh
                    .iter()
                    .map(|&t| thread_tokens_at(&world.corpus, t, cutoff))
                    .collect();
                carry.index.fold(&docs, workers);
            }
            carry.epoch = spec.upto;

            // Assemble the artifact from the carried first-sight
            // decisions, tallied in current extraction order.
            let by_thread: HashMap<ThreadId, (bool, bool)> = carry
                .decisions
                .iter()
                .map(|&(t, ml, h)| (t, (ml, h)))
                .collect();
            let mut detected = Vec::new();
            let (mut ml_count, mut heuristic_count, mut both_count) = (0, 0, 0);
            for &t in classify_input {
                let (ml, heur) = by_thread.get(&t).copied().unwrap_or((false, false));
                debug_assert!(by_thread.contains_key(&t), "undecided thread {t}");
                ml_count += usize::from(ml);
                heuristic_count += usize::from(heur);
                both_count += usize::from(ml && heur);
                if ml || heur {
                    detected.push(t);
                }
            }
            let model = carry.model.as_ref().expect("at least one epoch ran");
            TopClassification {
                hybrid_metrics: model.hybrid_metrics,
                ml_metrics: model.ml_metrics,
                heuristic_metrics: model.heuristic_metrics,
                sample_positives: model.sample_positives,
                detected,
                ml_count,
                heuristic_count,
                both_count,
                stream_index: Some(carry.index.stats()),
            }
        } else {
            let (_classifier, topcls) = classify_tops(
                &mut ctx.rng,
                &world.corpus,
                &world.catalog,
                &world.truth,
                classify_input,
                ctx.options.workers,
            );
            topcls
        };
        let items = classify_input.len();
        let set = require(&ctx.extraction, "extraction")?;
        let forums = forum_rows(&world.corpus, set, &topcls.detected);
        ctx.note_items(items);
        ctx.topcls = Some(topcls);
        ctx.forums = Some(forums);
        Ok(())
    }
}

/// Table 1 rows from the extraction and classification.
pub(crate) fn forum_rows(
    corpus: &Corpus,
    set: &EwhoringSet,
    detected_tops: &[ThreadId],
) -> Vec<ForumRow> {
    let top_set: HashSet<ThreadId> = detected_tops.iter().copied().collect();
    set.per_forum
        .iter()
        .map(|(forum, threads)| {
            let posts = corpus.post_count_in(threads);
            let first = corpus
                .earliest_post_in(threads)
                .map_or_else(|| "-".to_string(), |d| d.mm_yy());
            ForumRow {
                forum: corpus.forum(*forum).name.clone(),
                threads: threads.len(),
                posts,
                first_post: first,
                tops: threads.iter().filter(|t| top_set.contains(t)).count(),
                actors: corpus.actors_in_threads(threads).len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crimebb::{BoardCategory, CorpusBuilder};
    use synthrand::Day;

    /// Two forums, hand-built: forum A has three eWhoring threads (two
    /// detected as TOPs), forum B has one thread (not a TOP).
    #[test]
    fn forum_rows_count_tops_per_forum() {
        let mut b = CorpusBuilder::new();
        let fa = b.add_forum("Alpha");
        let fb = b.add_forum("Beta");
        let ba = b.add_board(fa, "ew-a", BoardCategory::EWhoring);
        let bb = b.add_board(fb, "ew-b", BoardCategory::EWhoring);
        let ann = b.add_actor(fa, "ann", Day::from_ymd(2015, 1, 1));
        let bob = b.add_actor(fa, "bob", Day::from_ymd(2015, 2, 1));
        let cyn = b.add_actor(fb, "cyn", Day::from_ymd(2015, 3, 1));

        let t1 = b.add_thread(ba, ann, "pack one", Day::from_ymd(2016, 1, 5));
        b.add_post(t1, ann, Day::from_ymd(2016, 1, 5), "op", None);
        b.add_post(t1, bob, Day::from_ymd(2016, 1, 6), "re", None);
        let t2 = b.add_thread(ba, bob, "pack two", Day::from_ymd(2016, 2, 5));
        b.add_post(t2, bob, Day::from_ymd(2016, 2, 5), "op", None);
        let t3 = b.add_thread(ba, ann, "chat", Day::from_ymd(2016, 3, 5));
        b.add_post(t3, ann, Day::from_ymd(2016, 3, 5), "op", None);
        let t4 = b.add_thread(bb, cyn, "misc", Day::from_ymd(2017, 4, 5));
        b.add_post(t4, cyn, Day::from_ymd(2017, 4, 5), "op", None);
        let corpus = b.build();

        let set = EwhoringSet {
            per_forum: vec![(fa, vec![t1, t2, t3]), (fb, vec![t4])],
        };
        let rows = forum_rows(&corpus, &set, &[t1, t2]);

        assert_eq!(rows.len(), 2);
        let a = &rows[0];
        assert_eq!(a.forum, "Alpha");
        assert_eq!(a.threads, 3);
        assert_eq!(a.posts, 4);
        assert_eq!(a.first_post, "01/16");
        assert_eq!(a.tops, 2, "only t1 and t2 are detected TOPs");
        assert_eq!(a.actors, 2, "ann and bob post in Alpha's threads");
        let bta = &rows[1];
        assert_eq!(bta.forum, "Beta");
        assert_eq!(bta.threads, 1);
        assert_eq!(bta.posts, 1);
        assert_eq!(bta.first_post, "04/17");
        assert_eq!(bta.tops, 0, "a TOP in forum A never counts for forum B");
        assert_eq!(bta.actors, 1);
    }

    /// A forum with no posts renders the placeholder first-post date.
    #[test]
    fn forum_rows_handle_empty_forums() {
        let mut b = CorpusBuilder::new();
        let f = b.add_forum("Quiet");
        let _ = b.add_board(f, "ew", BoardCategory::EWhoring);
        let corpus = b.build();
        let set = EwhoringSet {
            per_forum: vec![(f, vec![])],
        };
        let rows = forum_rows(&corpus, &set, &[]);
        assert_eq!(rows[0].first_post, "-");
        assert_eq!(rows[0].threads, 0);
        assert_eq!(rows[0].tops, 0);
    }
}
