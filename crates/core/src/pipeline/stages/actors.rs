//! Stage `actors`: cohorts, interaction graph, and key actors (paper §6).

use crate::actors::{
    actor_metrics, cohort_table, group_profiles, interaction_graph, interest_evolution, popularity,
    select_key_actors, select_key_actors_with_centrality, ActorFold, KeyActorInputs,
};
use crate::pipeline::corruption::RecordErrorKind;
use crate::pipeline::ctx::require;
use crate::pipeline::{Stage, StageCtx, StageError};
use crimebb::{ActorId, BoardCategory, Corpus, ForumId, ThreadId};
use socgraph::{eigenvector_centrality_from, DiGraph};
use std::collections::{HashMap, HashSet};
use worldgen::epoch_bound;

/// Produces `cohorts`, `fig4_points`, `key_actors`, `group_profiles`,
/// and `interests`.
pub struct ActorsStage;

impl Stage for ActorsStage {
    fn name(&self) -> &'static str {
        "actors"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let world = ctx.world;
        let all_threads = require(&ctx.all_threads, "all_threads")?;
        let crawl = require(&ctx.crawl, "crawl")?;
        let harvest = require(&ctx.harvest, "harvest")?;

        // Streaming fork: grow the carried interaction graph and the
        // per-actor metric counters by the new epochs' posts only,
        // warm-start the centrality iteration from the previous epoch's
        // vector, and assemble Table 8 / Figure 4 / Table 7 inputs from
        // the carry instead of rescanning the corpus. The warm chain
        // replays bit-identically from a fresh carry (same fold order,
        // same fixed iteration budget; the metric counters are integer
        // counts and day spans with no float order to preserve), which
        // keeps advance ≡ recompute.
        let stream = if let Some(spec) = ctx.options.stream {
            let carry = &mut ctx
                .carry
                .as_mut()
                .expect("stream options imply a carry")
                .actors;
            let corpus = &world.corpus;
            let n_actors = corpus.actors().len();
            if carry.influence.is_empty() {
                // Fresh carry: every actor exists from the base world on,
                // so the node set is fixed across all epochs.
                carry.graph = DiGraph::with_nodes(n_actors);
                carry.influence = vec![1.0 / (n_actors as f64).sqrt(); n_actors];
            }
            carry.fold.ensure(n_actors);
            let ewset: HashSet<ThreadId> = all_threads.iter().copied().collect();
            let posts = corpus.posts();
            for j in carry.epoch + 1..=spec.upto {
                // Loop-invariant per epoch: one `epoch_bound` call, one
                // `partition_point`, then a walk of the slice only.
                let bound = epoch_bound(&world.config, spec.epochs, j);
                let boundary = posts.partition_point(|p| p.date <= bound);
                for post in &posts[carry.cursor..boundary] {
                    let t = post.thread;
                    let in_ew = ewset.contains(&t);
                    carry.fold.note_post(post.author, post.date, in_ew);
                    if !in_ew {
                        continue;
                    }
                    // The opening post starts the thread, it replies to
                    // nothing — same skip as the batch build.
                    if corpus.posts_in_thread(t).first() == Some(&post.id) {
                        continue;
                    }
                    let target = match post.quotes {
                        Some(q) => corpus.post(q).author,
                        None => corpus.thread(t).author,
                    };
                    if post.author != target {
                        carry.graph.add_edge(post.author.0, target.0, 1.0);
                    }
                }
                carry.cursor = boundary;
                carry.influence = eigenvector_centrality_from(
                    &carry.graph,
                    &carry.influence,
                    200,
                    ctx.options.workers,
                );
            }
            carry.epoch = spec.upto;
            // CE-thread ledger grown at creation (board and author are
            // fixed then); the >50-post qualification is re-checked at
            // assembly because it can be crossed epochs later.
            let threads = corpus.threads();
            for th in &threads[carry.ce_cursor..] {
                if corpus.board(th.board).category == BoardCategory::CurrencyExchange {
                    carry.ce_threads.push((th.author, th.id));
                }
            }
            carry.ce_cursor = threads.len();
            let metrics = carry.fold.metrics();
            let ce = ce_threads_from_fold(
                &world.corpus,
                world.hackforums,
                &carry.fold,
                &carry.ce_threads,
            );
            Some((metrics, carry.graph.clone(), carry.influence.clone(), ce))
        } else {
            None
        };
        let (metrics, graph, centrality, ce_by_actor) = if let Some((m, g, c, ce)) = stream {
            (m, g, Some(c), ce)
        } else if let Some(partials) = ctx.shard_actors.take() {
            // Sharded fork: the merge coordinator already folded every
            // shard's per-actor counters, edge list, and CE ledger.
            // Replaying the concatenated edges in shard (= forum) order
            // reproduces the batch graph's `add_edge` sequence exactly,
            // so the centrality iteration is byte-identical too.
            let mut graph = DiGraph::with_nodes(world.corpus.actors().len());
            for &(a, b) in &partials.edges {
                graph.add_edge(a, b, 1.0);
            }
            let ce = ce_threads_from_fold(
                &world.corpus,
                world.hackforums,
                &partials.fold,
                &partials.ce_threads,
            );
            (partials.fold.metrics(), graph, None, ce)
        } else {
            (
                actor_metrics(&world.corpus, all_threads),
                interaction_graph(&world.corpus, all_threads),
                None,
                ce_threads_by_actor(&world.corpus, world.hackforums, all_threads),
            )
        };
        let cohorts = cohort_table(&metrics);
        // Defensive finiteness gate on the Figure 4 scatter: a metric
        // whose eWhoring percentage comes back non-finite (division on
        // corrupt post counts) is quarantined rather than plotted. With
        // healthy inputs this never fires and the artifact is identical.
        let mut fig4_points: Vec<(usize, f64, u32, u32)> = Vec::with_capacity(metrics.len());
        for (i, m) in metrics.iter().enumerate() {
            let pct = m.pct_ewhoring();
            if pct.is_finite() {
                fig4_points.push((m.ew_posts, pct, m.days_before, m.days_after));
            } else {
                ctx.ledger.record(
                    "actors",
                    format!("actor_metric/{i}"),
                    RecordErrorKind::NonFiniteFeature,
                );
            }
        }
        let pop = popularity(&world.corpus, all_threads);

        // Measured per-actor quantities for key-actor selection.
        let mut packs_by_actor: HashMap<ActorId, usize> = HashMap::new();
        for p in &crawl.packs {
            *packs_by_actor
                .entry(world.corpus.thread(p.link.thread).author)
                .or_insert(0) += 1;
        }
        let mut earnings_by_actor: HashMap<ActorId, f64> = HashMap::new();
        for proof in &harvest.proofs {
            *earnings_by_actor.entry(proof.actor).or_insert(0.0) += proof.usd;
        }

        let inputs = KeyActorInputs {
            metrics: &metrics,
            packs_by_actor: &packs_by_actor,
            earnings_by_actor: &earnings_by_actor,
            popularity: &pop,
            graph: &graph,
            ce_by_actor: &ce_by_actor,
        };
        let key_actors = match &centrality {
            Some(c) => select_key_actors_with_centrality(&inputs, c, ctx.options.k_key_actors),
            None => select_key_actors(&inputs, ctx.options.k_key_actors, ctx.options.workers),
        };
        let profiles = group_profiles(&inputs, &key_actors);
        let interests = interest_evolution(&world.corpus, &metrics, &key_actors.all);

        ctx.note_items(metrics.len());
        ctx.cohorts = Some(cohorts);
        ctx.fig4_points = Some(fig4_points);
        ctx.key_actors = Some(key_actors);
        ctx.group_profiles = Some(profiles);
        ctx.interests = Some(interests);
        Ok(())
    }
}

/// Post-eWhoring Currency Exchange thread counts per qualifying actor:
/// HackForums members with more than 50 posts in eWhoring threads, counting
/// only Currency Exchange threads they started after their first eWhoring
/// post (paper §5.1).
pub(crate) fn ce_threads_by_actor(
    corpus: &Corpus,
    hackforums: ForumId,
    ewhoring_threads: &[ThreadId],
) -> HashMap<ActorId, usize> {
    let counts = corpus.posts_per_actor_in(ewhoring_threads);
    let thread_set: std::collections::HashSet<ThreadId> =
        ewhoring_threads.iter().copied().collect();
    let mut out = HashMap::new();
    for (&actor, &c) in &counts {
        if c <= 50 || corpus.actor(actor).forum != hackforums {
            continue;
        }
        let first = corpus.actor_span_in_set(actor, &thread_set).map(|(f, _)| f);
        let n = corpus
            .threads_started_by(actor, BoardCategory::CurrencyExchange, first)
            .len();
        if n > 0 {
            out.insert(actor, n);
        }
    }
    out
}

/// Streaming form of [`ce_threads_by_actor`]: reads the carried
/// per-actor eWhoring tallies and CE-thread ledger instead of rescanning
/// every post in the extraction set. Same gates, re-checked at assembly;
/// the output map's contents (never its iteration order) feed the
/// key-actor ranking, so equality of contents is equality of artifact.
pub(crate) fn ce_threads_from_fold(
    corpus: &Corpus,
    hackforums: ForumId,
    fold: &ActorFold,
    ce_threads: &[(ActorId, ThreadId)],
) -> HashMap<ActorId, usize> {
    let mut out = HashMap::new();
    for &(actor, t) in ce_threads {
        let i = actor.0 as usize;
        if fold.ew_posts[i] <= 50 || corpus.actor(actor).forum != hackforums {
            continue;
        }
        // `threads_started_by` only looks inside the actor's own forum.
        if corpus.forum_of_thread(t) != hackforums {
            continue;
        }
        if corpus.thread(t).created < fold.first_ew[i] {
            continue;
        }
        *out.entry(actor).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crimebb::CorpusBuilder;
    use synthrand::Day;

    /// Hand-built corpus exercising every gate of `ce_threads_by_actor`:
    /// the >50-posts threshold, the HackForums-membership requirement,
    /// and the started-after-first-eWhoring-post cutoff.
    #[test]
    fn ce_threads_by_actor_applies_every_gate() {
        let mut b = CorpusBuilder::new();
        let hf = b.add_forum("Hackforums");
        let other = b.add_forum("Elsewhere");
        let ew = b.add_board(hf, "eWhoring", BoardCategory::EWhoring);
        let ce = b.add_board(hf, "Currency Exchange", BoardCategory::CurrencyExchange);
        let ew_other = b.add_board(other, "ew", BoardCategory::EWhoring);
        let ce_other = b.add_board(other, "ce", BoardCategory::CurrencyExchange);

        let reg = Day::from_ymd(2014, 1, 1);
        let heavy = b.add_actor(hf, "heavy", reg);
        let light = b.add_actor(hf, "light", reg);
        let outsider = b.add_actor(other, "outsider", reg);
        let early = b.add_actor(hf, "early", reg);

        // One eWhoring thread on HF holding everyone's posts, plus one on
        // the other forum for the outsider.
        let t_ew = b.add_thread(ew, heavy, "pics", Day::from_ymd(2016, 1, 1));
        for i in 0..60 {
            // `heavy` and `early` clear the >50 threshold…
            b.add_post(
                t_ew,
                heavy,
                Day::from_ymd(2016, 1, 1).plus_days(i),
                "p",
                None,
            );
            b.add_post(
                t_ew,
                early,
                Day::from_ymd(2016, 1, 1).plus_days(i),
                "p",
                None,
            );
        }
        for i in 60..70 {
            // …`light` does not (posts must stay chronological in-thread).
            b.add_post(
                t_ew,
                light,
                Day::from_ymd(2016, 1, 1).plus_days(i),
                "p",
                None,
            );
        }
        let t_ew2 = b.add_thread(ew_other, outsider, "pics", Day::from_ymd(2016, 1, 1));
        for i in 0..60 {
            b.add_post(
                t_ew2,
                outsider,
                Day::from_ymd(2016, 1, 1).plus_days(i),
                "p",
                None,
            );
        }

        // Currency Exchange threads: `heavy` starts two after entering
        // eWhoring; `light` starts one (filtered: too few posts);
        // `outsider` starts one on the wrong forum; `early` only started
        // CE *before* their first eWhoring post.
        b.add_thread(ce, heavy, "btc", Day::from_ymd(2016, 6, 1));
        b.add_thread(ce, heavy, "pp", Day::from_ymd(2016, 7, 1));
        b.add_thread(ce, light, "btc", Day::from_ymd(2016, 6, 1));
        b.add_thread(ce_other, outsider, "btc", Day::from_ymd(2016, 6, 1));
        b.add_thread(ce, early, "btc", Day::from_ymd(2015, 6, 1));
        let corpus = b.build();

        let out = ce_threads_by_actor(&corpus, hf, &[t_ew, t_ew2]);

        assert_eq!(out.get(&heavy), Some(&2), "qualifies on every gate");
        assert!(!out.contains_key(&light), "≤50 eWhoring posts");
        assert!(
            !out.contains_key(&outsider),
            "not a HackForums member, despite >50 posts and a CE thread"
        );
        assert!(
            !out.contains_key(&early),
            "CE thread predates their first eWhoring post"
        );
        assert_eq!(out.len(), 1);
    }
}
