//! Stage `measure_images`: the only pixel-touching work (paper §4.2).
//!
//! Previews and *all* pack images are flattened into **one**
//! [`measure_batch`] call, so worker threads see the whole workload at
//! once instead of one small batch per pack (most packs are far below
//! the serial-fallback threshold, which used to keep them all serial).
//! The flat results are re-split per source by
//! [`MeasuredImages::from_flat`], keyed by [`ImageRef`] from then on.
//!
//! [`ImageRef`]: crate::pipeline::ImageRef

use crate::crawl::CrawlResult;
use crate::nsfv::ImageMeasures;
use crate::pipeline::ctx::require;
use crate::pipeline::{MeasuredImages, Stage, StageCtx, StageError};
use imagesim::{ImageSpec, MeasureScratch, Transform};
use std::collections::{HashMap, HashSet};
use websim::{RenderScratch, StoredImage};

/// Produces `measures`.
pub struct MeasureStage;

/// Flattens previews + every pack into one image list, measures it with
/// a single `batch` call, and re-splits the results per source. The
/// `batch` parameter is the test seam proving exactly one batch is
/// issued and that the re-split is lossless.
pub(crate) fn flatten_and_measure<F>(
    crawl: &CrawlResult,
    batch: F,
) -> Result<MeasuredImages, StageError>
where
    F: FnOnce(&[StoredImage]) -> Vec<ImageMeasures>,
{
    let n_previews = crawl.previews.len();
    let pack_lens: Vec<usize> = crawl.packs.iter().map(|p| p.images.len()).collect();
    let mut flat: Vec<StoredImage> =
        Vec::with_capacity(n_previews + pack_lens.iter().sum::<usize>());
    flat.extend(crawl.previews.iter().map(|d| d.image));
    for p in &crawl.packs {
        flat.extend(p.images.iter().copied());
    }
    MeasuredImages::try_from_flat(batch(&flat), n_previews, &pack_lens)
}

impl Stage for MeasureStage {
    fn name(&self) -> &'static str {
        "measure_images"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let crawl = require(&ctx.crawl, "crawl")?;
        let workers = ctx.options.workers;
        let measures = if ctx.options.stream.is_some() {
            // Streaming fork: every `(spec, transform)` pair measured in
            // any earlier epoch is served from the carry memo; only the
            // epoch's genuinely new pairs hit the pixel kernels. Memo
            // hits are exact because a measure is a pure function of its
            // pair (the arena-batch bit-identity contract above).
            let memo = &ctx
                .carry
                .as_ref()
                .expect("stream options imply a carry")
                .measure;
            let known: HashMap<(ImageSpec, Transform), ImageMeasures> = memo
                .memo
                .iter()
                .map(|&(img, m)| ((img.spec, img.transform), m))
                .collect();
            let mut fresh_entries: Vec<(StoredImage, ImageMeasures)> = Vec::new();
            let measures = flatten_and_measure(crawl, |images| {
                let mut batch_seen: HashSet<(ImageSpec, Transform)> = HashSet::new();
                let unseen: Vec<StoredImage> = images
                    .iter()
                    .copied()
                    .filter(|img| {
                        let key = (img.spec, img.transform);
                        !known.contains_key(&key) && batch_seen.insert(key)
                    })
                    .collect();
                let measured = measure_batch(&unseen, workers);
                fresh_entries = unseen.into_iter().zip(measured).collect();
                let lookup: HashMap<(ImageSpec, Transform), ImageMeasures> = fresh_entries
                    .iter()
                    .map(|&(img, m)| ((img.spec, img.transform), m))
                    .collect();
                images
                    .iter()
                    .map(|img| {
                        let key = (img.spec, img.transform);
                        known
                            .get(&key)
                            .or_else(|| lookup.get(&key))
                            .copied()
                            .expect("every image is memoised or freshly measured")
                    })
                    .collect()
            })?;
            // Commit only after the fallible re-split succeeded, so a
            // stage retry re-measures instead of trusting a half-write.
            ctx.carry
                .as_mut()
                .expect("stream options imply a carry")
                .measure
                .memo
                .extend(fresh_entries);
            measures
        } else {
            flatten_and_measure(crawl, |images| measure_batch(images, workers))?
        };
        ctx.note_items(measures.total());
        ctx.measures = Some(measures);
        Ok(())
    }
}

/// Measures a batch of stored images across worker threads. Output order
/// matches input order regardless of worker count (the [`crate::par`]
/// contract; batches below [`crate::par::SERIAL_CUTOFF`] stay serial).
///
/// Generated worlds repost the same hosted copy many times (previews of
/// pack images, reposts across threads), and different transforms of one
/// spec share its procedural render. So the batch measures each unique
/// `(spec, transform)` pair exactly once — grouped by spec, so a
/// worker's [`RenderScratch`] serves every transform of a spec from one
/// cached pristine render — and fans the results back out to the input
/// slots.
///
/// Each worker owns one contiguous chunk of the unique list and carries
/// two arenas across it: a [`RenderScratch`] (pristine render cache +
/// transform canvas) and a [`MeasureScratch`] (fused-kernel tables and
/// buffers), so the steady state renders and measures with zero
/// per-image allocations. Every measure is a pure function of its
/// `(spec, transform)` pair and the fused kernel matches the multi-pass
/// reference, so the result is bit-identical to per-image
/// `ImageMeasures::of(&img.render())` — at every worker count.
pub fn measure_batch(images: &[StoredImage], workers: usize) -> Vec<ImageMeasures> {
    // Level 1: dedup identical hosted copies; `slots` maps each input to
    // its unique index.
    let mut index_of: HashMap<(ImageSpec, Transform), u32> = HashMap::new();
    let mut unique: Vec<StoredImage> = Vec::new();
    let slots: Vec<u32> = images
        .iter()
        .map(|img| {
            *index_of
                .entry((img.spec, img.transform))
                .or_insert_with(|| {
                    unique.push(*img);
                    (unique.len() - 1) as u32
                })
        })
        .collect();

    // Level 2: group the survivors by spec (stable within a spec) so
    // contiguous chunks keep hitting the arena's pristine-render cache.
    let mut order: Vec<u32> = (0..unique.len() as u32).collect();
    order.sort_by_key(|&i| {
        let s = unique[i as usize].spec;
        (s.class, s.model, s.variant, i)
    });

    let measured = crate::par::par_map_chunks(&order, workers, |chunk| {
        let mut arena = RenderScratch::new();
        let mut scratch = MeasureScratch::new();
        chunk
            .iter()
            .map(|&i| {
                ImageMeasures::of_with(unique[i as usize].render_with(&mut arena), &mut scratch)
            })
            .collect::<Vec<_>>()
    });

    // Scatter back to unique order, then expand to input order.
    let mut by_unique: Vec<Option<ImageMeasures>> = vec![None; unique.len()];
    for (&i, m) in order.iter().zip(measured.into_iter().flatten()) {
        by_unique[i as usize] = Some(m);
    }
    slots
        .iter()
        .map(|&s| by_unique[s as usize].expect("every unique image is measured"))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::crawl::{Download, FoundLink, PackDownload};
    use crimebb::{PostId, ThreadId};
    use imagesim::{ImageClass, ImageSpec};
    use synthrand::Day;
    use textkit::url::Url;
    use websim::SiteKind;

    #[test]
    fn measure_batch_matches_serial() {
        let images: Vec<StoredImage> = (0..100)
            .map(|v| {
                StoredImage::pristine(ImageSpec::model_photo(ImageClass::ModelNude, v, v.into()))
            })
            .collect();
        let parallel = measure_batch(&images, 4);
        let serial: Vec<ImageMeasures> = images
            .iter()
            .map(|i| ImageMeasures::of(&i.render()))
            .collect();
        assert_eq!(parallel, serial);
    }

    /// The tentpole guarantee: the arena-backed batch (chunked workers,
    /// reused render + measure scratch) is bit-identical to the
    /// multi-pass reference measuring each image in isolation, at every
    /// worker count, across transformed images of mixed classes.
    #[test]
    fn arena_batch_is_bit_identical_to_reference_for_all_worker_counts() {
        use imagesim::Transform;
        let classes = [
            ImageClass::ModelNude,
            ImageClass::ModelDressed,
            ImageClass::ChatScreenshot,
            ImageClass::Landscape,
            ImageClass::Document,
        ];
        let transforms = [
            Transform::Identity,
            Transform::MirrorHorizontal,
            Transform::Watermark { seed: 3 },
            Transform::Brightness(-20),
            Transform::Noise {
                amplitude: 6,
                seed: 4,
            },
            Transform::CropMargin { percent: 8 },
            Transform::OcclusionBar { seed: 9 },
        ];
        let mut images: Vec<StoredImage> = (0..90u32)
            .map(|v| {
                let class = classes[v as usize % classes.len()];
                let spec = if class.is_model() {
                    ImageSpec::model_photo(class, v + 1, v.into())
                } else {
                    ImageSpec::of(class, v.into())
                };
                StoredImage {
                    spec,
                    transform: transforms[v as usize % transforms.len()],
                }
            })
            .collect();
        // Reposts: exact duplicates and same-spec/different-transform
        // copies, so the dedup fan-out and the pristine-render cache are
        // both on the hot path.
        let dupes: Vec<StoredImage> = images.iter().step_by(3).copied().collect();
        images.extend(dupes);
        let retransformed: Vec<StoredImage> = images
            .iter()
            .step_by(7)
            .map(|i| StoredImage {
                spec: i.spec,
                transform: Transform::Brightness(25),
            })
            .collect();
        images.extend(retransformed);
        let reference: Vec<ImageMeasures> = images
            .iter()
            .map(|i| ImageMeasures::reference(&i.render()))
            .collect();
        for workers in [1, 2, 7] {
            let batched = measure_batch(&images, workers);
            assert_eq!(batched, reference, "workers={workers}");
            for (b, r) in batched.iter().zip(&reference) {
                assert_eq!(b.nsfw.to_bits(), r.nsfw.to_bits(), "workers={workers}");
            }
        }
    }

    fn image(v: u32) -> StoredImage {
        StoredImage::pristine(ImageSpec::model_photo(ImageClass::ModelNude, v, v.into()))
    }

    fn link(thread: u32) -> FoundLink {
        FoundLink {
            url: Url::new("img.example.com", format!("/i/{thread}")),
            kind: SiteKind::ImageSharing,
            thread: ThreadId(thread),
            post: PostId(thread),
            posted: Day::from_ymd(2017, 1, 1),
        }
    }

    fn tiny_crawl() -> CrawlResult {
        CrawlResult {
            previews: (0..3)
                .map(|v| Download {
                    image: image(v),
                    link: link(v),
                    is_banner: false,
                })
                .collect(),
            packs: vec![
                PackDownload {
                    images: (10..12).map(image).collect(),
                    link: link(10),
                },
                PackDownload {
                    images: vec![],
                    link: link(11),
                },
                PackDownload {
                    images: (20..24).map(image).collect(),
                    link: link(12),
                },
            ],
            ..CrawlResult::default()
        }
    }

    /// The satellite guarantee: one flattened batch covering previews and
    /// every pack image, re-split per pack without loss.
    #[test]
    fn one_flat_batch_is_issued_and_resplit_per_pack() {
        let crawl = tiny_crawl();
        let mut calls = 0usize;
        let measures = flatten_and_measure(&crawl, |images| {
            calls += 1;
            assert_eq!(images.len(), 9, "3 previews + the 2/0/4 pack images");
            measure_batch(images, 1)
        })
        .unwrap();
        assert_eq!(calls, 1, "exactly one measure batch");

        assert_eq!(measures.previews.len(), 3);
        assert_eq!(
            measures.packs.iter().map(Vec::len).collect::<Vec<_>>(),
            [2, 0, 4],
            "re-split preserves per-pack lengths, including empty packs"
        );
        // Lossless: each slot holds exactly the measure of its own image.
        for (d, m) in crawl.previews.iter().zip(&measures.previews) {
            assert_eq!(*m, ImageMeasures::of(&d.image.render()));
        }
        for (p, pack) in crawl.packs.iter().zip(&measures.packs) {
            for (img, m) in p.images.iter().zip(pack) {
                assert_eq!(*m, ImageMeasures::of(&img.render()));
            }
        }
    }
}
