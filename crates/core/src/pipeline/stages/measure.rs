//! Stage `measure_images`: the only pixel-touching work (paper §4.2).
//!
//! Previews and *all* pack images are flattened into **one**
//! [`measure_batch`] call, so worker threads see the whole workload at
//! once instead of one small batch per pack (most packs are far below
//! the serial-fallback threshold, which used to keep them all serial).
//! The flat results are re-split per source by
//! [`MeasuredImages::from_flat`], keyed by [`ImageRef`] from then on.
//!
//! [`ImageRef`]: crate::pipeline::ImageRef

use crate::crawl::CrawlResult;
use crate::nsfv::ImageMeasures;
use crate::pipeline::ctx::require;
use crate::pipeline::{MeasuredImages, Stage, StageCtx, StageError};
use websim::StoredImage;

/// Produces `measures`.
pub struct MeasureStage;

/// Flattens previews + every pack into one image list, measures it with
/// a single `batch` call, and re-splits the results per source. The
/// `batch` parameter is the test seam proving exactly one batch is
/// issued and that the re-split is lossless.
pub(crate) fn flatten_and_measure<F>(
    crawl: &CrawlResult,
    batch: F,
) -> Result<MeasuredImages, StageError>
where
    F: FnOnce(&[StoredImage]) -> Vec<ImageMeasures>,
{
    let n_previews = crawl.previews.len();
    let pack_lens: Vec<usize> = crawl.packs.iter().map(|p| p.images.len()).collect();
    let mut flat: Vec<StoredImage> =
        Vec::with_capacity(n_previews + pack_lens.iter().sum::<usize>());
    flat.extend(crawl.previews.iter().map(|d| d.image));
    for p in &crawl.packs {
        flat.extend(p.images.iter().copied());
    }
    MeasuredImages::try_from_flat(batch(&flat), n_previews, &pack_lens)
}

impl Stage for MeasureStage {
    fn name(&self) -> &'static str {
        "measure_images"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let crawl = require(&ctx.crawl, "crawl")?;
        let workers = ctx.options.workers;
        let measures = flatten_and_measure(crawl, |images| measure_batch(images, workers))?;
        ctx.note_items(measures.total());
        ctx.measures = Some(measures);
        Ok(())
    }
}

/// Measures a batch of stored images across worker threads. Output order
/// matches input order regardless of worker count (the [`crate::par`]
/// contract; batches below [`crate::par::SERIAL_CUTOFF`] stay serial).
pub fn measure_batch(images: &[StoredImage], workers: usize) -> Vec<ImageMeasures> {
    crate::par::par_map(images, workers, |img| ImageMeasures::of(&img.render()))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::crawl::{Download, FoundLink, PackDownload};
    use crimebb::{PostId, ThreadId};
    use imagesim::{ImageClass, ImageSpec};
    use synthrand::Day;
    use textkit::url::Url;
    use websim::SiteKind;

    #[test]
    fn measure_batch_matches_serial() {
        let images: Vec<StoredImage> = (0..100)
            .map(|v| {
                StoredImage::pristine(ImageSpec::model_photo(ImageClass::ModelNude, v, v.into()))
            })
            .collect();
        let parallel = measure_batch(&images, 4);
        let serial: Vec<ImageMeasures> = images
            .iter()
            .map(|i| ImageMeasures::of(&i.render()))
            .collect();
        assert_eq!(parallel, serial);
    }

    fn image(v: u32) -> StoredImage {
        StoredImage::pristine(ImageSpec::model_photo(ImageClass::ModelNude, v, v.into()))
    }

    fn link(thread: u32) -> FoundLink {
        FoundLink {
            url: Url::new("img.example.com", format!("/i/{thread}")),
            kind: SiteKind::ImageSharing,
            thread: ThreadId(thread),
            post: PostId(thread),
            posted: Day::from_ymd(2017, 1, 1),
        }
    }

    fn tiny_crawl() -> CrawlResult {
        CrawlResult {
            previews: (0..3)
                .map(|v| Download {
                    image: image(v),
                    link: link(v),
                    is_banner: false,
                })
                .collect(),
            packs: vec![
                PackDownload {
                    images: (10..12).map(image).collect(),
                    link: link(10),
                },
                PackDownload {
                    images: vec![],
                    link: link(11),
                },
                PackDownload {
                    images: (20..24).map(image).collect(),
                    link: link(12),
                },
            ],
            ..CrawlResult::default()
        }
    }

    /// The satellite guarantee: one flattened batch covering previews and
    /// every pack image, re-split per pack without loss.
    #[test]
    fn one_flat_batch_is_issued_and_resplit_per_pack() {
        let crawl = tiny_crawl();
        let mut calls = 0usize;
        let measures = flatten_and_measure(&crawl, |images| {
            calls += 1;
            assert_eq!(images.len(), 9, "3 previews + the 2/0/4 pack images");
            measure_batch(images, 1)
        })
        .unwrap();
        assert_eq!(calls, 1, "exactly one measure batch");

        assert_eq!(measures.previews.len(), 3);
        assert_eq!(
            measures.packs.iter().map(Vec::len).collect::<Vec<_>>(),
            [2, 0, 4],
            "re-split preserves per-pack lengths, including empty packs"
        );
        // Lossless: each slot holds exactly the measure of its own image.
        for (d, m) in crawl.previews.iter().zip(&measures.previews) {
            assert_eq!(*m, ImageMeasures::of(&d.image.render()));
        }
        for (p, pack) in crawl.packs.iter().zip(&measures.packs) {
            for (img, m) in p.images.iter().zip(pack) {
                assert_eq!(*m, ImageMeasures::of(&img.render()));
            }
        }
    }
}
