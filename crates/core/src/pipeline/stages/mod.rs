//! One module per paper stage (Figure 1). Each exposes a unit struct
//! implementing [`Stage`]; [`full_graph`] lists them in paper order.

pub mod actors;
pub mod crawl;
pub mod extract;
pub mod finance;
pub mod measure;
pub mod nsfv;
pub mod provenance;
pub mod safety;
pub mod topcls;

pub use actors::ActorsStage;
pub use crawl::CrawlStage;
pub use extract::ExtractStage;
pub use finance::FinanceStage;
pub use measure::MeasureStage;
pub use nsfv::NsfvStage;
pub use provenance::ProvenanceStage;
pub use safety::SafetyScreenStage;
pub use topcls::TopClassifierStage;

use super::Stage;

/// The full stage graph in paper order.
pub(super) fn full_graph() -> Vec<Box<dyn Stage>> {
    vec![
        Box::new(ExtractStage),
        Box::new(TopClassifierStage),
        Box::new(CrawlStage),
        Box::new(MeasureStage),
        Box::new(SafetyScreenStage),
        Box::new(NsfvStage),
        Box::new(ProvenanceStage),
        Box::new(FinanceStage),
        Box::new(ActorsStage),
    ]
}
