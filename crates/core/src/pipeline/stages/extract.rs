//! Stage `extract`: pull eWhoring threads out of the corpus (paper §3).
//!
//! This is the pipeline's ingestion edge, so it is also where input
//! corruption lands: the run's [`CorruptionPlan`] may truncate or
//! malform a thread row, or mangle a heading's bytes. Damaged records
//! are quarantined (stage, record key, error kind) and dropped from the
//! extraction set; at severity `0.0` the plan is inert and the set is
//! byte-identical to the uncorrupted pipeline.
//!
//! [`CorruptionPlan`]: crate::pipeline::corruption::CorruptionPlan

use crate::extract::{extract_ewhoring_threads, EwhoringSet};
use crate::pipeline::corruption::RecordErrorKind;
use crate::pipeline::{Stage, StageCtx, StageError};

/// Produces `extraction` and `all_threads`.
pub struct ExtractStage;

impl Stage for ExtractStage {
    fn name(&self) -> &'static str {
        "extract"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let mut set = extract_ewhoring_threads(&ctx.world.corpus);
        let plan = ctx.corruption;
        if plan.is_enabled() {
            let before = set.len();
            let mut quarantined = Vec::new();
            for (_, threads) in &mut set.per_forum {
                threads.retain(|&t| {
                    if let Some(kind) = plan.thread_row(t) {
                        quarantined.push((format!("thread/{}", t.0), kind));
                        return false;
                    }
                    if let Some(bytes) =
                        plan.mangled_heading(t, &ctx.world.corpus.thread(t).heading)
                    {
                        // The plan damages bytes; only an actual UTF-8
                        // validation failure quarantines the record.
                        if std::str::from_utf8(&bytes).is_err() {
                            quarantined.push((
                                format!("thread/{}", t.0),
                                RecordErrorKind::InvalidUtf8Heading,
                            ));
                            return false;
                        }
                    }
                    true
                });
            }
            let records = quarantined.len();
            for (record, kind) in quarantined {
                ctx.ledger.record("extract", record, kind);
            }
            if set.is_empty() && before > 0 {
                return Err(StageError::Quarantined {
                    stage: "extract",
                    records,
                });
            }
        }
        finish(ctx, set);
        Ok(())
    }
}

/// Writes the (possibly filtered) extraction set into the context.
fn finish(ctx: &mut StageCtx<'_>, set: EwhoringSet) {
    let all_threads = set.all_threads();
    ctx.note_items(set.len());
    ctx.all_threads = Some(all_threads);
    ctx.extraction = Some(set);
}
