//! Stage `extract`: pull eWhoring threads out of the corpus (paper §3).

use crate::extract::extract_ewhoring_threads;
use crate::pipeline::{Stage, StageCtx, StageError};

/// Produces `extraction` and `all_threads`.
pub struct ExtractStage;

impl Stage for ExtractStage {
    fn name(&self) -> &'static str {
        "extract"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let set = extract_ewhoring_threads(&ctx.world.corpus);
        let all_threads = set.all_threads();
        ctx.note_items(set.len());
        ctx.all_threads = Some(all_threads);
        ctx.extraction = Some(set);
        Ok(())
    }
}
