//! Stage `finance`: earnings harvest and cash-out analysis (paper §5).
//!
//! Reuses the safety stage's gate so proof-of-earnings screenshots are
//! screened through the same hash log the image screening used.

use crate::finance::{
    analyse_currency_exchange, analyse_currency_exchange_stream, analyse_earnings,
    harvest_earnings, harvest_earnings_stream,
};
use crate::pipeline::corruption::RecordErrorKind;
use crate::pipeline::ctx::require;
use crate::pipeline::{Stage, StageCtx, StageError};

/// Produces `harvest`, `earnings`, and `currency`.
pub struct FinanceStage;

impl Stage for FinanceStage {
    fn name(&self) -> &'static str {
        "finance"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let world = ctx.world;
        let all_threads = require(&ctx.all_threads, "all_threads")?;
        let gate = require(&ctx.gate, "gate")?;

        let mut harvest = if ctx.options.stream.is_some() {
            // Streaming fork: fold only the posts that arrived since the
            // carried cursor; counters, dedup sets, and proof records
            // persist across epochs.
            let carry = &mut ctx
                .carry
                .as_mut()
                .expect("stream options imply a carry")
                .finance;
            harvest_earnings_stream(world, gate, all_threads, carry)
        } else {
            harvest_earnings(world, gate, all_threads)
        };

        // Ingestion check on the parsed proofs: a corrupt currency cell
        // yields a non-finite USD amount once the exchange multiplier is
        // applied. Those proofs are quarantined and recounted as
        // `not_proof`, preserving `proofs + not_proof == analysed`, so
        // the monthly aggregation never averages a NaN into Figure 7.
        let plan = ctx.corruption;
        if plan.is_enabled() {
            let mut quarantined = Vec::new();
            let proofs = std::mem::take(&mut harvest.proofs);
            harvest.proofs = proofs
                .into_iter()
                .enumerate()
                .filter(|(i, p)| {
                    let ok = (p.usd * plan.proof_multiplier(*i)).is_finite();
                    if !ok {
                        quarantined.push(*i);
                    }
                    ok
                })
                .map(|(_, p)| p)
                .collect();
            harvest.not_proof += quarantined.len();
            for i in quarantined {
                ctx.ledger.record(
                    "finance",
                    format!("proof/{i}"),
                    RecordErrorKind::NonFiniteFeature,
                );
            }
        }

        let (earnings, currency) = if ctx.options.stream.is_some() {
            let carry = &mut ctx
                .carry
                .as_mut()
                .expect("stream options imply a carry")
                .finance;
            // §5.2 aggregates: fold only the proofs that arrived since
            // the carried cursor — the same `EarningsAgg` code path
            // `analyse_earnings` runs in one shot, so the warm aggregate
            // is byte-identical by fold composition. An enabled
            // corruption plan filters a per-run *copy* of the proof
            // list, so that path re-aggregates the filtered copy in
            // full and leaves the clean carry untouched.
            let earnings = if plan.is_enabled() {
                analyse_earnings(&harvest)
            } else {
                carry.agg.fold(&carry.proofs[carry.agg_cursor..]);
                carry.agg_cursor = carry.proofs.len();
                carry.agg.finish()
            };
            // Table 7 from the carried per-actor tallies + CE ledger.
            let currency = analyse_currency_exchange_stream(&world.corpus, world.hackforums, carry);
            (earnings, currency)
        } else {
            (
                analyse_earnings(&harvest),
                analyse_currency_exchange(&world.corpus, world.hackforums, all_threads),
            )
        };

        ctx.note_items(all_threads.len());
        ctx.harvest = Some(harvest);
        ctx.earnings = Some(earnings);
        ctx.currency = Some(currency);
        Ok(())
    }
}
