//! Stage `finance`: earnings harvest and cash-out analysis (paper §5).
//!
//! Reuses the safety stage's gate so proof-of-earnings screenshots are
//! screened through the same hash log the image screening used.

use crate::finance::{analyse_currency_exchange, analyse_earnings, harvest_earnings};
use crate::pipeline::ctx::require;
use crate::pipeline::{Stage, StageCtx, StageError};

/// Produces `harvest`, `earnings`, and `currency`.
pub struct FinanceStage;

impl Stage for FinanceStage {
    fn name(&self) -> &'static str {
        "finance"
    }

    fn run(&self, ctx: &mut StageCtx<'_>) -> Result<(), StageError> {
        let world = ctx.world;
        let all_threads = require(&ctx.all_threads, "all_threads")?;
        let gate = require(&ctx.gate, "gate")?;

        let harvest = harvest_earnings(world, gate, all_threads);
        let earnings = analyse_earnings(&harvest);
        let currency = analyse_currency_exchange(&world.corpus, world.hackforums, all_threads);

        ctx.note_items(all_threads.len());
        ctx.harvest = Some(harvest);
        ctx.earnings = Some(earnings);
        ctx.currency = Some(currency);
        Ok(())
    }
}
