//! Inter-epoch carry state and the epoch engine (streaming mode).
//!
//! Streaming mode slices the forum feed into `K` calendar epochs
//! ([`worldgen::Feed`]) and re-runs the pipeline after each slice lands.
//! The expensive artifacts are not recomputed from scratch: every hot
//! stage keeps a small, serialisable **carry** here and folds only the
//! epoch's delta into it —
//!
//! * `top_classifier`: the bootstrap-frozen model (trained once at the
//!   first boundary), first-sight decisions per thread, and an
//!   incrementally grown vocabulary / document-frequency index
//!   ([`StreamTextIndex`] — vocab union + new-doc rows, never a rebuild);
//! * `measure_images`: a memo of every `(spec, transform)` pair already
//!   measured (measures are pure, so memoised values are exact);
//! * `nsfv`: the validation-set evaluation (pure in the seed);
//! * `finance`: a fold cursor over the global post timeline plus the
//!   funnel counters, whitelist, URL dedup set, proof records, running
//!   §5.2 earnings aggregates, and the Table 7 per-actor tallies and
//!   CE-thread ledger (folded via a thread cursor);
//! * `provenance`: a memo of every reverse-search outcome keyed
//!   `(robust hash, post day)` — the reverse index and the Wayback
//!   archive are static services, so outcomes are pure in the key;
//! * `actors`: the reply/quote graph grown edge-by-edge, the
//!   warm-started eigenvector-centrality vector, and the per-actor
//!   metric counters behind Table 8 / Figure 4.
//!
//! The correctness contract is **epoch equivalence**: running the same
//! stream code path with a fresh ([`EpochCarry::default`]) carry on the
//! epoch-`e` world produces byte-identical artifacts to advancing a warm
//! carry through epochs `1..=e`. Each stage's carry is designed so the
//! warm fold and the fresh fold traverse the same data in the same
//! order; the gate lives in `tests/determinism.rs`.
//!
//! [`EpochEngine`] owns the feed, the growing world, and the carry, and
//! journals the carry at every epoch boundary (PR 4's record format), so
//! a killed stream resumes from the last completed epoch.

use super::journal::{Journal, LoadOutcome, StageRecord};
use super::{Pipeline, PipelineOptions, PipelineReport, StageError, StreamSpec};
use crate::actors::ActorFold;
use crate::finance::{EarningsAgg, ProofRecord};
use crate::nsfv::{ImageMeasures, NsfvValidation};
use crate::provenance::QueryOutcome;
use crate::topcls::{BootstrapModel, StreamIndexStats};
use crimebb::ThreadId;
use imagesim::RobustHash;
use serde::{Deserialize, Serialize};
use socgraph::DiGraph;
use std::collections::HashSet;
use std::path::Path;
use synthrand::Day;
use textkit::dtm::{DocTermMatrix, Vocabulary};
use textkit::Url;
use websim::StoredImage;
use worldgen::{Feed, World};

/// Everything the stream stages keep between epoch advances. `Default`
/// is the fresh carry: running with it *is* the full recompute.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpochCarry {
    /// `top_classifier` carry.
    pub topcls: TopclsCarry,
    /// `measure_images` carry.
    pub measure: MeasureCarry,
    /// `nsfv` carry: the memoised validation-set evaluation (pure in
    /// the run seed, so computing it once is exact).
    pub nsfv: Option<NsfvValidation>,
    /// `finance` carry.
    pub finance: FinanceCarry,
    /// `provenance` carry.
    pub provenance: ProvenanceCarry,
    /// `actors` carry.
    pub actors: ActorsCarry,
}

/// Carry of the `top_classifier` stage.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TopclsCarry {
    /// Last epoch whose first-sight decisions are folded in.
    pub epoch: u32,
    /// The classifier bootstrapped at the first epoch boundary; `None`
    /// until epoch 1 has run.
    pub model: Option<BootstrapModel>,
    /// First-sight decisions `(thread, ml, heuristic)` in decision
    /// order: threads grouped by the epoch they appeared in, each
    /// decided on its state as of that epoch's boundary.
    pub decisions: Vec<(ThreadId, bool, bool)>,
    /// The incrementally grown corpus text index.
    pub index: StreamTextIndex,
}

/// An incrementally grown vocabulary + document-frequency table: the
/// delta-update form of the DTM/TF-IDF build. Epoch advances extend the
/// vocabulary (append-stable term ids), count only the new documents,
/// and fold their rows into the running `df` — never a from-scratch
/// rebuild. [`TfIdf::fit_from_df`] proves the resulting weights equal a
/// full refit, which is what makes the fold exact.
///
/// [`TfIdf::fit_from_df`]: textkit::dtm::TfIdf::fit_from_df
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamTextIndex {
    /// Union vocabulary over every folded document.
    pub vocab: Vocabulary,
    /// Document frequency per term id.
    pub df: Vec<usize>,
    /// Documents folded in.
    pub docs: usize,
}

impl StreamTextIndex {
    /// Folds one batch of tokenised documents into the index: vocab
    /// union, transient count rows for the batch only, df accumulation.
    pub fn fold(&mut self, docs: &[Vec<String>], workers: usize) {
        if docs.is_empty() {
            return;
        }
        self.vocab.extend(docs.iter().map(|d| d.iter()));
        let mut dtm = DocTermMatrix::default();
        dtm.append_docs_par(&self.vocab, docs, workers);
        dtm.accumulate_df(&mut self.df, 0);
        self.docs += docs.len();
    }

    /// Diagnostics snapshot, including the smoothed-IDF checksum
    /// (`Σ ln((1+N)/(1+df)) + 1`, the [`TfIdf`] weight formula).
    ///
    /// [`TfIdf`]: textkit::dtm::TfIdf
    pub fn stats(&self) -> StreamIndexStats {
        let n = self.docs as f64;
        StreamIndexStats {
            terms: self.vocab.len(),
            docs: self.docs,
            idf_checksum: self
                .df
                .iter()
                .map(|&d| ((1.0 + n) / (1.0 + d as f64)).ln() + 1.0)
                .sum(),
        }
    }
}

/// Carry of the `measure_images` stage: every `(spec, transform)` pair
/// ever measured, with its measures. Measures are pure functions of the
/// pair (the arena-batch bit-identity contract), so a memo hit is exact
/// no matter which epoch computed it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeasureCarry {
    /// Memo entries in first-measured order.
    pub memo: Vec<(StoredImage, ImageMeasures)>,
}

/// Carry of the `finance` stage: a pure fold over the global post
/// timeline. Posts are processed exactly once, in post-id (= date)
/// order, so warm and fresh carriers traverse the identical sequence
/// and fold composition gives equivalence.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FinanceCarry {
    /// Posts `0..cursor` are folded in.
    pub cursor: usize,
    /// Threads `0..thread_cursor` are folded into the earnings-thread
    /// tally and the CE-thread ledger below.
    pub thread_cursor: usize,
    /// Earnings-query threads seen so far (the funnel header): board,
    /// forum, and heading are fixed at creation, so counting each
    /// thread once equals a full rescan at any epoch.
    pub earnings_threads: usize,
    /// Per-actor posts in eWhoring threads (Table 7 qualification),
    /// indexed by actor id.
    pub ew_posts_by_actor: Vec<u32>,
    /// Per-actor first eWhoring post day (`Day(u32::MAX)` sentinel).
    pub first_ew_by_actor: Vec<Day>,
    /// Every Currency Exchange thread at creation, `(author, thread)`
    /// in timeline order; qualification is re-checked at assembly.
    pub ce_threads: Vec<(crimebb::ActorId, ThreadId)>,
    /// Running §5.2 earnings aggregates over `proofs[..agg_cursor]`.
    /// Folded only when the run's corruption plan is inert — an enabled
    /// plan filters a per-run copy of the proof list, so the stage
    /// falls back to the one-shot aggregation instead.
    pub agg: EarningsAgg,
    /// Proofs `0..agg_cursor` are folded into `agg`.
    pub agg_cursor: usize,
    /// Snowballed image-host whitelist (registered domains), grown
    /// at-sight from earnings-thread posts.
    pub whiteset: HashSet<String>,
    /// URLs already counted (global dedup).
    pub seen_urls: HashSet<Url>,
    /// Posts that contributed at least one accepted link.
    pub posts_with_links: usize,
    /// Accepted unique URLs.
    pub unique_urls: usize,
    /// Successful downloads.
    pub downloaded: usize,
    /// Downloads excluded by the NSFV filter.
    pub filtered_nsfv: usize,
    /// Downloads flagged by the safety gate.
    pub filtered_csam: usize,
    /// Images reaching manual annotation.
    pub analysed: usize,
    /// Annotated images that were not proofs (pre-corruption count; the
    /// per-run corruption filter adds its quarantines on top).
    pub not_proof: usize,
    /// Verified proof records, in fold order, *unfiltered* — the run's
    /// corruption plan is applied to a copy each run so carried state
    /// never depends on the plan.
    pub proofs: Vec<ProofRecord>,
}

/// Carry of the `provenance` stage: every reverse-search outcome ever
/// computed, keyed `(robust hash, post day)`. The reverse index and the
/// Wayback archive are static services of the base world — only the
/// forum timeline grows per epoch — so an outcome is a pure function of
/// its key and a memo hit skips the linear index scan exactly.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProvenanceCarry {
    /// Memo entries in first-queried order.
    pub memo: Vec<(RobustHash, Day, QueryOutcome)>,
}

/// Carry of the `actors` stage: the §6.1 interaction graph grown
/// edge-by-edge from the post timeline, plus the eigenvector-centrality
/// vector warm-started across epochs (fixed iteration budget and
/// tolerance, so the warm chain replays bit-identically from scratch).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ActorsCarry {
    /// Last epoch folded into the graph and centrality chain.
    pub epoch: u32,
    /// Posts `0..cursor` are folded into the graph and the metric
    /// counters (one shared cursor: both folds walk the same slice).
    pub cursor: usize,
    /// The reply/quote graph (all actors are nodes from epoch 0).
    pub graph: DiGraph,
    /// Centrality vector after the last epoch's warm-started iteration.
    pub influence: Vec<f64>,
    /// Per-actor metric counters behind Table 8 / Figure 4: integer
    /// counts and day spans folded per epoch slice, assembled into the
    /// same rows `actor_metrics` computes over the full corpus.
    pub fold: ActorFold,
    /// Threads `0..ce_cursor` are folded into the CE-thread ledger.
    pub ce_cursor: usize,
    /// Every Currency Exchange thread at creation, `(author, thread)`;
    /// the >50-post qualification is re-checked at assembly because an
    /// actor can cross the threshold epochs later.
    pub ce_threads: Vec<(crimebb::ActorId, ThreadId)>,
}

/// Materializes the world a streamed spec runs over: the time-ordered
/// feed view advanced to `spec.upto` epochs. The feed re-assigns dense
/// chronological thread/post ids, so a batch (non-incremental) run of a
/// streamed spec MUST go through this — running the raw generated world
/// produces id-shifted artifacts that can never match engine output.
pub fn stream_world(world: World, spec: StreamSpec) -> World {
    Feed::new(world, spec.epochs).world_at(spec.upto)
}

/// Drives a world through its epochs: applies each feed slice, runs the
/// stream pipeline with the warm carry, and (optionally) checkpoints
/// the carry at every boundary so a killed stream resumes from the last
/// completed epoch instead of epoch 0.
pub struct EpochEngine {
    feed: Feed,
    world: World,
    epoch: u32,
    carry: EpochCarry,
    options: PipelineOptions,
    journal: Option<Journal>,
}

impl EpochEngine {
    /// Builds an engine over `world` sliced into `epochs` feed epochs.
    /// The engine starts at epoch 0 (base world, fresh carry).
    pub fn new(world: World, epochs: u32, options: PipelineOptions) -> EpochEngine {
        let feed = Feed::new(world, epochs);
        let world = feed.base_world();
        EpochEngine {
            feed,
            world,
            epoch: 0,
            carry: EpochCarry::default(),
            options,
            journal: None,
        }
    }

    /// [`EpochEngine::new`] with a checkpoint journal under
    /// `journal_dir`. If a valid carry record exists for this run key,
    /// the engine resumes from the most recent journaled epoch —
    /// invalid or stale records are skipped, never trusted.
    pub fn with_journal(
        world: World,
        epochs: u32,
        options: PipelineOptions,
        journal_dir: &Path,
    ) -> Result<EpochEngine, StageError> {
        let mut engine = EpochEngine::new(world, epochs, options);
        let journal = Journal::open(journal_dir, &engine.world.config, &engine.journal_options())?;
        for e in (1..=epochs).rev() {
            let LoadOutcome::Hit(record) = journal.load((e - 1) as usize, &Self::record_name(e))
            else {
                continue;
            };
            let Ok(carry) = serde_json::from_value::<EpochCarry>(record.artifacts.clone()) else {
                continue;
            };
            for j in 1..=e {
                engine.feed.apply_epoch(&mut engine.world, j);
            }
            engine.epoch = e;
            engine.carry = carry;
            break;
        }
        engine.journal = Some(journal);
        Ok(engine)
    }

    /// The run-key options shared by every epoch of this stream: `upto`
    /// is normalised to 0 so all boundary checkpoints land in one run
    /// directory (the epoch index lives in the record name instead).
    fn journal_options(&self) -> PipelineOptions {
        PipelineOptions {
            stream: Some(StreamSpec {
                epochs: self.feed.epochs(),
                upto: 0,
            }),
            ..self.options
        }
    }

    fn record_name(e: u32) -> String {
        format!("epoch-{e}")
    }

    /// Number of epochs in the feed.
    pub fn epochs(&self) -> u32 {
        self.feed.epochs()
    }

    /// The last completed epoch (0 = nothing ran yet).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The world as of the last completed epoch.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The current carry (inspection / diagnostics).
    pub fn carry(&self) -> &EpochCarry {
        &self.carry
    }

    /// Applies the next feed slice and runs the stream pipeline with
    /// the warm carry: the O(delta) advance. Checkpoints the refreshed
    /// carry when a journal is attached. A hard stage failure poisons
    /// the engine (the world has already advanced); recover by
    /// rebuilding via [`EpochEngine::with_journal`].
    pub fn advance(&mut self) -> Result<PipelineReport, StageError> {
        assert!(
            self.epoch < self.feed.epochs(),
            "already at the final epoch"
        );
        let e = self.epoch + 1;
        self.feed.apply_epoch(&mut self.world, e);
        let options = PipelineOptions {
            stream: Some(StreamSpec {
                epochs: self.feed.epochs(),
                upto: e,
            }),
            ..self.options
        };
        let carry = std::mem::take(&mut self.carry);
        let (report, carry) = Pipeline::new(options).run_with_carry(&self.world, carry)?;
        self.carry = carry;
        self.epoch = e;
        if let Some(journal) = &self.journal {
            let record = StageRecord {
                artifacts: serde_json::to_value(&self.carry).map_err(|err| {
                    StageError::CorruptArtifact {
                        path: Self::record_name(e),
                        reason: format!("carry does not serialize: {err}"),
                    }
                })?,
                // The epoch's full ledger and health log ride along in
                // the checkpoint, so the record is a faithful account
                // of the run that produced the carry (and a resumed
                // engine's health section can be audited against it).
                quarantined: report.quarantine.entries().to_vec(),
                health: report.health.clone(),
                items: self.feed.epoch_len(e),
            };
            journal.save((e - 1) as usize, &Self::record_name(e), &record)?;
        }
        Ok(report)
    }

    /// Advances until epoch `e` (inclusive), returning the last report
    /// — `None` when already at or past `e`.
    pub fn advance_to(&mut self, e: u32) -> Result<Option<PipelineReport>, StageError> {
        let e = e.min(self.feed.epochs());
        let mut last = None;
        while self.epoch < e {
            last = Some(self.advance()?);
        }
        Ok(last)
    }

    /// Full recompute at the current epoch: the identical stream code
    /// path run with a fresh carry over the same world. This is the
    /// equivalence partner of the warm advance (and the baseline the
    /// `bench epoch` speedup gate measures against).
    pub fn fresh_report(&self) -> Result<PipelineReport, StageError> {
        assert!(self.epoch >= 1, "no epoch has run yet");
        let options = PipelineOptions {
            stream: Some(StreamSpec {
                epochs: self.feed.epochs(),
                upto: self.epoch,
            }),
            ..self.options
        };
        Ok(Pipeline::new(options)
            .run_with_carry(&self.world, EpochCarry::default())?
            .0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::pipeline::journal::run_key;

    #[test]
    fn carry_round_trips_through_serde() {
        let mut carry = EpochCarry::default();
        carry.topcls.epoch = 2;
        carry.topcls.decisions = vec![(ThreadId(3), true, false), (ThreadId(9), false, true)];
        carry
            .topcls
            .index
            .fold(&[vec!["pack".to_string(), "pics".to_string()]], 1);
        carry.finance.cursor = 41;
        carry.finance.whiteset.insert("imgur.com".to_string());
        carry
            .finance
            .seen_urls
            .insert(Url::new("i.imgur.com", "/x"));
        carry.finance.thread_cursor = 17;
        carry.finance.earnings_threads = 4;
        carry.finance.ew_posts_by_actor = vec![0, 55, 3];
        carry.finance.first_ew_by_actor = vec![Day(u32::MAX), Day(120), Day(360)];
        carry
            .finance
            .ce_threads
            .push((crimebb::ActorId(1), ThreadId(9)));
        carry
            .finance
            .agg
            .per_actor
            .push((crimebb::ActorId(1), 12.5, 2));
        carry.finance.agg.monthly.push((24_193, 3, 1));
        carry.finance.agg_cursor = 2;
        carry.actors.epoch = 2;
        carry.actors.cursor = 41;
        carry.actors.graph = DiGraph::with_nodes(3);
        carry.actors.graph.add_edge(0, 1, 2.0);
        carry.actors.influence = vec![0.25, 0.5, 0.25];
        carry.actors.fold.ensure(3);
        carry
            .actors
            .fold
            .note_post(crimebb::ActorId(1), Day(200), true);
        carry.actors.ce_cursor = 17;
        carry
            .actors
            .ce_threads
            .push((crimebb::ActorId(2), ThreadId(5)));

        let value = serde_json::to_value(&carry).unwrap();
        let back: EpochCarry = serde_json::from_value(value).unwrap();
        assert_eq!(back.topcls.epoch, 2);
        assert_eq!(back.topcls.decisions, carry.topcls.decisions);
        assert_eq!(back.topcls.index.docs, 1);
        assert_eq!(
            back.topcls.index.vocab.len(),
            carry.topcls.index.vocab.len()
        );
        assert_eq!(back.finance.cursor, 41);
        assert!(back.finance.whiteset.contains("imgur.com"));
        assert!(back
            .finance
            .seen_urls
            .contains(&Url::new("i.imgur.com", "/x")));
        assert_eq!(back.finance.thread_cursor, 17);
        assert_eq!(back.finance.earnings_threads, 4);
        assert_eq!(back.finance.ew_posts_by_actor, vec![0, 55, 3]);
        assert_eq!(
            back.finance.first_ew_by_actor,
            vec![Day(u32::MAX), Day(120), Day(360)]
        );
        assert_eq!(back.finance.ce_threads, carry.finance.ce_threads);
        assert_eq!(back.finance.agg.per_actor, carry.finance.agg.per_actor);
        assert_eq!(back.finance.agg.monthly, carry.finance.agg.monthly);
        assert_eq!(back.finance.agg_cursor, 2);
        assert_eq!(back.actors.graph.edge_count(), 1);
        assert_eq!(back.actors.influence, carry.actors.influence);
        assert_eq!(back.actors.fold.ew_posts, carry.actors.fold.ew_posts);
        assert_eq!(back.actors.fold.first_ew, carry.actors.fold.first_ew);
        assert_eq!(back.actors.fold.last_post, carry.actors.fold.last_post);
        assert_eq!(back.actors.ce_cursor, 17);
        assert_eq!(back.actors.ce_threads, carry.actors.ce_threads);
        assert!(back.nsfv.is_none());
    }

    #[test]
    fn stream_index_stats_match_a_full_refit() {
        let docs: Vec<Vec<String>> = vec![
            vec!["pack".into(), "pics".into(), "pack".into()],
            vec!["pics".into(), "tutorial".into()],
        ];
        let mut grown = StreamTextIndex::default();
        grown.fold(&docs[..1], 1);
        grown.fold(&docs[1..], 1);

        let mut whole = StreamTextIndex::default();
        whole.fold(&docs, 1);

        assert_eq!(grown.stats(), whole.stats());
        assert!(grown.stats().idf_checksum > 0.0);
    }

    #[test]
    fn epoch_run_keys_are_shared_across_upto_but_not_with_batch() {
        let config = worldgen::WorldConfig::test_scale(1);
        let stream = |upto| PipelineOptions {
            stream: Some(StreamSpec { epochs: 4, upto }),
            ..PipelineOptions::default()
        };
        // The engine normalises `upto` to 0 for its run key; different
        // live `upto` values would otherwise scatter checkpoints.
        assert_eq!(
            run_key(&config, &stream(0)).unwrap(),
            run_key(&config, &stream(0)).unwrap()
        );
        assert_ne!(
            run_key(&config, &stream(0)).unwrap(),
            run_key(&config, &stream(3)).unwrap(),
            "run_key itself still hashes the full options"
        );
        // A batch run must keep its pre-stream key: stripping the null
        // `stream` field preserves old journal directories.
        assert_ne!(
            run_key(&config, &PipelineOptions::default()).unwrap(),
            run_key(&config, &stream(0)).unwrap()
        );
    }
}
