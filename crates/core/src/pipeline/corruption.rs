//! Seeded input-corruption injection and the quarantine ledger.
//!
//! Real collection pipelines ingest adversarial, messy data: truncated
//! database rows, headings with broken encodings, corrupt archives,
//! amounts that parse to NaN. [`CorruptionPlan`] injects exactly those
//! defects deterministically — it mirrors [`websim::faults::FaultPlan`]:
//! a seed plus a severity multiplier, with every decision a pure
//! stateless draw over the record's stable key. Severity `0.0`
//! (the default) disables injection entirely and the pipeline is
//! byte-identical to the uncorrupted build.
//!
//! Stages do not panic on a corrupt record; they drop it into the
//! [`QuarantineLedger`] (stage, record key, error kind) and continue on
//! the surviving data. The ledger is an artifact: it rides through the
//! journal, the [`PipelineReport`], the text report's pipeline-health
//! section, and the bench JSON.
//!
//! [`PipelineReport`]: super::PipelineReport

use crimebb::ThreadId;
use serde::{Deserialize, Serialize};
use synthrand::splitmix64;

/// What was wrong with a quarantined record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RecordErrorKind {
    /// A forum row cut short mid-field (lost in the dump).
    TruncatedRow,
    /// A forum row whose fields do not parse.
    MalformedRow,
    /// A thread heading that is not valid UTF-8.
    InvalidUtf8Heading,
    /// Image bytes that do not decode.
    CorruptImageBytes,
    /// A numeric input that produced a non-finite value.
    NonFiniteFeature,
    /// A whole shard exhausted its restart budget and was quarantined
    /// by the supervisor; its partition is missing from the report.
    ShardFailure,
}

impl RecordErrorKind {
    /// Short label for report rendering.
    pub fn label(&self) -> &'static str {
        match self {
            RecordErrorKind::TruncatedRow => "truncated row",
            RecordErrorKind::MalformedRow => "malformed row",
            RecordErrorKind::InvalidUtf8Heading => "invalid UTF-8 heading",
            RecordErrorKind::CorruptImageBytes => "corrupt image bytes",
            RecordErrorKind::NonFiniteFeature => "non-finite feature",
            RecordErrorKind::ShardFailure => "shard failure",
        }
    }
}

/// One quarantined record: which stage dropped it, its stable key, and
/// why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// Stage that quarantined the record.
    pub stage: String,
    /// Stable record key (e.g. `thread/1234`, `preview/3/https://…`).
    pub record: String,
    /// What was wrong with it.
    pub kind: RecordErrorKind,
}

/// Append-only ledger of per-record failures, in quarantine order.
///
/// Deterministic in the pipeline seed: the same seed and severity
/// produce the same entries in the same order, for any worker count
/// (every quarantine decision happens in a serial stage section).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuarantineLedger {
    entries: Vec<QuarantineEntry>,
}

impl QuarantineLedger {
    /// An empty ledger.
    pub fn new() -> QuarantineLedger {
        QuarantineLedger::default()
    }

    /// Records one quarantined record.
    pub fn record(&mut self, stage: &str, record: String, kind: RecordErrorKind) {
        self.entries.push(QuarantineEntry {
            stage: stage.to_string(),
            record,
            kind,
        });
    }

    /// Appends an already-built entry (journal restore).
    pub(crate) fn push(&mut self, entry: QuarantineEntry) {
        self.entries.push(entry);
    }

    /// Drops every entry from `len` on (stage-retry rollback).
    pub(crate) fn truncate(&mut self, len: usize) {
        self.entries.truncate(len);
    }

    /// All entries, in quarantine order.
    pub fn entries(&self) -> &[QuarantineEntry] {
        &self.entries
    }

    /// Number of quarantined records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(stage, kind) → count`, sorted, for report rendering.
    pub fn counts(&self) -> Vec<((String, RecordErrorKind), usize)> {
        let mut map: std::collections::BTreeMap<(String, RecordErrorKind), usize> =
            std::collections::BTreeMap::new();
        for e in &self.entries {
            *map.entry((e.stage.clone(), e.kind)).or_insert(0) += 1;
        }
        map.into_iter().collect()
    }
}

/// Per-record corruption rates at severity `1.0`, calibrated so a
/// test-scale world quarantines a handful of records per kind without
/// hollowing out any stage's input.
mod rates {
    /// A thread row truncated mid-field.
    pub const TRUNCATED_ROW: f64 = 0.004;
    /// A thread row that does not parse.
    pub const MALFORMED_ROW: f64 = 0.004;
    /// A heading byte overwritten with a non-UTF-8 byte.
    pub const MANGLED_HEADING: f64 = 0.003;
    /// A downloaded image whose bytes do not decode.
    pub const CORRUPT_IMAGE: f64 = 0.012;
    /// A classifier feature input that evaluates to NaN.
    pub const FEATURE_NOISE: f64 = 0.006;
    /// A proof amount that converts to NaN.
    pub const PROOF_NAN: f64 = 0.02;
}

/// A seeded, deterministic input-corruption plan.
///
/// `severity` scales every per-record rate: `0.0` disables injection
/// entirely (byte-identical to the uncorrupted pipeline), `1.0` is the
/// calibrated rate, larger values stress-test degradation. Every
/// decision is a pure draw over `(seed, record key, salt)` — no state,
/// no ordering sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionPlan {
    seed: u64,
    severity: f64,
}

impl CorruptionPlan {
    /// A plan that never corrupts anything.
    pub fn disabled() -> CorruptionPlan {
        CorruptionPlan {
            seed: 0,
            severity: 0.0,
        }
    }

    /// A plan with an explicit severity multiplier (clamped to `>= 0`).
    pub fn with_severity(seed: u64, severity: f64) -> CorruptionPlan {
        CorruptionPlan {
            seed,
            severity: severity.max(0.0),
        }
    }

    /// True when the plan can corrupt records at all.
    pub fn is_enabled(&self) -> bool {
        self.severity > 0.0
    }

    /// The severity multiplier.
    pub fn severity(&self) -> f64 {
        self.severity
    }

    /// Deterministic 64-bit draw for `(key, salt)`.
    fn draw(&self, key: &str, salt: u64) -> u64 {
        let mut state = self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut acc = splitmix64(&mut state);
        for b in key.bytes() {
            state ^= u64::from(b).wrapping_mul(0x0100_0000_01B3);
            acc ^= splitmix64(&mut state);
        }
        acc ^ splitmix64(&mut state)
    }

    /// Deterministic uniform draw in `[0, 1)` for `(key, salt)`.
    fn unit(&self, key: &str, salt: u64) -> f64 {
        (self.draw(key, salt) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether an event at base `rate` fires for `(key, salt)`.
    fn fires(&self, key: &str, salt: u64, rate: f64) -> bool {
        self.is_enabled() && self.unit(key, salt) < (rate * self.severity).min(1.0)
    }

    /// Row-level damage to one extracted thread record, if any.
    /// Truncation and malformation are mutually exclusive (cumulative
    /// draw, like the fault plan's transient-fault selection).
    pub fn thread_row(&self, t: ThreadId) -> Option<RecordErrorKind> {
        if !self.is_enabled() {
            return None;
        }
        let key = format!("thread/{}", t.0);
        let u = self.unit(&key, 0x7B0B);
        let mut cum = 0.0;
        for (rate, kind) in [
            (rates::TRUNCATED_ROW, RecordErrorKind::TruncatedRow),
            (rates::MALFORMED_ROW, RecordErrorKind::MalformedRow),
        ] {
            cum += rate * self.severity;
            if u < cum.min(1.0) {
                return Some(kind);
            }
        }
        None
    }

    /// Mangled heading bytes for thread `t`, if the plan damages it:
    /// one byte overwritten with `0xFF` (never valid in UTF-8). Returns
    /// `None` when the heading survives or is empty. Callers must still
    /// run a real `std::str::from_utf8` check — the corruption is
    /// injected at the byte level, not assumed invalid.
    pub fn mangled_heading(&self, t: ThreadId, heading: &str) -> Option<Vec<u8>> {
        if heading.is_empty() {
            return None;
        }
        let key = format!("heading/{}", t.0);
        if !self.fires(&key, 0x4EAD, rates::MANGLED_HEADING) {
            return None;
        }
        let mut bytes = heading.as_bytes().to_vec();
        let idx = (self.draw(&key, 0x4EAE) as usize) % bytes.len();
        bytes[idx] = 0xFF;
        Some(bytes)
    }

    /// Whether the downloaded image at `key` has corrupt bytes.
    pub fn image_corrupt(&self, key: &str) -> bool {
        self.fires(key, 0x13A6, rates::CORRUPT_IMAGE)
    }

    /// Additive noise on thread `t`'s classifier feature vector: `0.0`
    /// (clean) or NaN (a corrupt numeric input propagated).
    pub fn feature_noise(&self, t: ThreadId) -> f64 {
        let key = format!("feature/{}", t.0);
        if self.fires(&key, 0xF10A, rates::FEATURE_NOISE) {
            f64::NAN
        } else {
            0.0
        }
    }

    /// Multiplier on the `index`-th harvested proof's USD amount: `1.0`
    /// (clean, bit-exact) or NaN (a corrupt exchange rate).
    pub fn proof_multiplier(&self, index: usize) -> f64 {
        let key = format!("proof/{index}");
        if self.fires(&key, 0x90F5, rates::PROOF_NAN) {
            f64::NAN
        } else {
            1.0
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_corrupts() {
        let plan = CorruptionPlan::disabled();
        for i in 0..5_000u32 {
            let t = ThreadId(i);
            assert_eq!(plan.thread_row(t), None);
            assert_eq!(plan.mangled_heading(t, "free ewhore pack"), None);
            assert!(!plan.image_corrupt(&format!("preview/{i}/x")));
            assert_eq!(plan.feature_noise(t), 0.0);
            assert_eq!(plan.proof_multiplier(i as usize), 1.0);
        }
    }

    #[test]
    fn zero_severity_equals_disabled_for_any_seed() {
        let plan = CorruptionPlan::with_severity(0xDEAD_BEEF, 0.0);
        assert!(!plan.is_enabled());
        for i in 0..1_000u32 {
            assert_eq!(plan.thread_row(ThreadId(i)), None);
            assert!(!plan.image_corrupt(&format!("pack/{i}/0")));
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = CorruptionPlan::with_severity(7, 1.0);
        let b = CorruptionPlan::with_severity(7, 1.0);
        let c = CorruptionPlan::with_severity(8, 1.0);
        let hits = |p: &CorruptionPlan| -> Vec<u32> {
            (0..20_000u32)
                .filter(|&i| p.thread_row(ThreadId(i)).is_some())
                .collect()
        };
        assert_eq!(hits(&a), hits(&b), "same seed, same plan");
        assert_ne!(hits(&a), hits(&c), "different seed, different plan");
        assert!(!hits(&a).is_empty(), "calibrated rate fires at scale");
    }

    #[test]
    fn severity_scales_hit_rate() {
        let lo = CorruptionPlan::with_severity(3, 0.5);
        let hi = CorruptionPlan::with_severity(3, 4.0);
        let count = |p: &CorruptionPlan| {
            (0..20_000u32)
                .filter(|&i| p.image_corrupt(&format!("img/{i}")))
                .count()
        };
        assert!(count(&hi) > count(&lo));
    }

    #[test]
    fn mangled_headings_fail_a_real_utf8_check() {
        let plan = CorruptionPlan::with_severity(11, 100.0);
        let mut mangled = 0;
        for i in 0..200u32 {
            if let Some(bytes) = plan.mangled_heading(ThreadId(i), "selling my pack") {
                assert!(std::str::from_utf8(&bytes).is_err(), "0xFF is never UTF-8");
                mangled += 1;
            }
        }
        assert!(mangled > 0, "severity 100 mangles at least one heading");
        assert_eq!(
            plan.mangled_heading(ThreadId(0), ""),
            None,
            "empty headings cannot be mangled"
        );
    }

    #[test]
    fn ledger_counts_group_by_stage_and_kind() {
        let mut ledger = QuarantineLedger::new();
        ledger.record("extract", "thread/1".into(), RecordErrorKind::TruncatedRow);
        ledger.record("extract", "thread/2".into(), RecordErrorKind::TruncatedRow);
        ledger.record(
            "crawl",
            "preview/0/x".into(),
            RecordErrorKind::CorruptImageBytes,
        );
        assert_eq!(ledger.len(), 3);
        let counts = ledger.counts();
        assert_eq!(
            counts,
            vec![
                (("crawl".to_string(), RecordErrorKind::CorruptImageBytes), 1),
                (("extract".to_string(), RecordErrorKind::TruncatedRow), 2),
            ]
        );
    }

    #[test]
    fn ledger_round_trips_through_json() {
        let mut ledger = QuarantineLedger::new();
        ledger.record(
            "finance",
            "proof/3".into(),
            RecordErrorKind::NonFiniteFeature,
        );
        let json = serde_json::to_string(&ledger).unwrap();
        let back: QuarantineLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ledger);
    }
}
